"""Hardware-based isolation baselines (paper §6.4).

Two kinds of baseline live here:

* **KVM virtualization** (Figure 5): guest code runs at native speed but
  every TLB miss walks *nested* page tables, roughly doubling the walk
  cost.  Modeled by running the native binary with the emulator's TLB walk
  cost scaled by ``NESTED_WALK_SCALE``.

* **context-switch cost models** (Table 5): Linux hardware protection and
  gVisor containerization.  LFI's numbers are *measured* in our runtime;
  Linux and gVisor are reference points computed from a documented cycle
  decomposition calibrated against the paper's measurements and the
  microkernel literature it cites ([22, 53]: hardware-protection IPC floor
  around 400 cycles; Linux context switches cost thousands).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NESTED_WALK_SCALE", "HardwareIsolationModel", "LINUX_MODEL",
           "GVISOR_MODEL"]

#: Nested paging doubles the translation depth (paper §6.4: "the cost of a
#: TLB miss is doubled due to the additional pagetable levels").
NESTED_WALK_SCALE = 2.0


@dataclass(frozen=True)
class HardwareIsolationModel:
    """Cycle decomposition of syscall/pipe transitions for one system."""

    name: str
    #: One user->kernel->user privilege round trip.
    trap_cycles: float
    #: Kernel-side work of a trivial syscall (entry glue, dispatch, audit).
    syscall_work_cycles: float
    #: One full context switch between processes (scheduler + pagetable
    #: switch + TLB/cache effects).
    context_switch_cycles: float
    #: Extra per-transition cost for delegation (gVisor bounces every
    #: syscall to a supervisor process over its systrap platform).
    delegation_cycles: float = 0.0

    def syscall_cycles(self) -> float:
        """A null syscall (getpid)."""
        return self.trap_cycles + self.syscall_work_cycles \
            + self.delegation_cycles

    def pipe_roundtrip_cycles(self) -> float:
        """One hop of the Table-5 pipe ping-pong: a blocking read plus a
        write, forcing a process switch."""
        return (2 * self.syscall_cycles()
                + 2 * self.context_switch_cycles)

    def syscall_ns(self, freq_ghz: float) -> float:
        return self.syscall_cycles() / freq_ghz

    def pipe_ns(self, freq_ghz: float) -> float:
        return self.pipe_roundtrip_cycles() / freq_ghz


#: Linux with standard hardware protection.  Calibrated to the paper's
#: measurements: ~129ns syscall and ~1504ns pipe at 3.2GHz (M1), ~160ns
#: and ~2494ns at 3.0GHz (T2A) — i.e. a ~410-cycle trap+dispatch and a
#: context switch costing a couple thousand cycles.
LINUX_MODEL = HardwareIsolationModel(
    name="linux",
    trap_cycles=290.0,
    syscall_work_cycles=123.0,
    context_switch_cycles=1993.0,
)

#: gVisor (systrap platform): every syscall is intercepted and serviced by
#: the sentry in another process, costing multiple context switches
#: (paper §6.4: "multiple context switches just to handle a system call").
GVISOR_MODEL = HardwareIsolationModel(
    name="gvisor",
    trap_cycles=290.0,
    syscall_work_cycles=900.0,
    context_switch_cycles=6500.0,
    delegation_cycles=35_000.0,
)

"""Comparison systems: Wasm engine models and hardware isolation models."""

from .hardware import (
    GVISOR_MODEL,
    HardwareIsolationModel,
    LINUX_MODEL,
    NESTED_WALK_SCALE,
)
from .wasm import WASM_ENGINES, WasmEngineModel, wasm_rewrite

__all__ = [
    "GVISOR_MODEL",
    "HardwareIsolationModel",
    "LINUX_MODEL",
    "NESTED_WALK_SCALE",
    "WASM_ENGINES",
    "WasmEngineModel",
    "wasm_rewrite",
]

"""WebAssembly engine models: the Figure-4 comparison systems.

The real engines (Wasmtime, Wasm2c, WAMR) are unavailable offline, so each
is modeled as an alternative sandboxing *rewriter* over the same workload
assembly, implementing the cost mechanisms the paper identifies (§6.2):

* **heap-base indirection** — stock Wasm2c keeps the linear-memory base in
  a context struct and loads it for every access; its LLVM *compiler
  barrier* (required for trap-semantics conformance) blocks hoisting of
  that load.  "No barrier" hoists the load to once per basic block;
  "pinned register" (the paper's own Wasm2c patch) and WAMR keep the base
  in a register permanently.
* **32-bit index rebasing** — every Wasm memory access is
  ``base + zext32(index)``; bounds checks are elided via guard pages in
  all configurations, matching the paper's engine settings.
* **indirect-call checks** — Wasm must verify the table index and the
  callee's type signature at every ``call_indirect``; LFI needs no check.
* **code-quality dilation** — Cranelift (Wasmtime) generates measurably
  worse code than LLVM; modeled as a fraction of extra ALU instructions
  (register shuffles) inserted per original instruction.

The rewritten programs execute in the same runtime and cost model as LFI
and native code, so the comparison isolates exactly these mechanisms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..arm64 import isa
from ..arm64.instructions import Instruction, ins
from ..arm64.operands import Extended, Imm, Label, Mem, POST_INDEX, PRE_INDEX, Shifted
from ..arm64.program import Directive, LabelDef, Program
from ..arm64.registers import Reg, X

__all__ = ["WasmEngineModel", "WASM_ENGINES", "wasm_rewrite"]

#: Registers owned by the model (callee-saved, untouched by workloads).
CTX_REG = X[27]  # vmctx pointer (holds the heap base in memory)
HEAP_REG = X[28]  # pinned heap base
ADDR_REG = X[16]  # materialized effective address
TMP_REG = X[17]  # offset scratch


@dataclass(frozen=True)
class WasmEngineModel:
    """One engine configuration of Figure 4."""

    name: str
    #: 'always' (compiler barrier), 'per_block', or 'pinned'.
    heap_base: str
    #: Extra instructions executed per indirect call (type/bounds check).
    indirect_call_checks: int
    #: Fraction of extra ALU instructions (compiler-quality dilation).
    dilation: float
    description: str = ""


WASM_ENGINES = {
    engine.name: engine
    for engine in (
        WasmEngineModel(
            "wasmtime", heap_base="per_block", indirect_call_checks=5,
            dilation=0.55,
            description="Cranelift AOT: correct but weaker codegen",
        ),
        WasmEngineModel(
            "wasm2c", heap_base="always", indirect_call_checks=4,
            dilation=0.02,
            description="stock Wasm2c + Clang: compiler barrier reloads "
                        "the heap base on every access",
        ),
        WasmEngineModel(
            "wasm2c-nobarrier", heap_base="per_block",
            indirect_call_checks=4, dilation=0.02,
            description="Wasm2c with the spec-conformance barrier removed",
        ),
        WasmEngineModel(
            "wasm2c-pinned", heap_base="pinned", indirect_call_checks=4,
            dilation=0.02,
            description="Wasm2c with the heap base pinned in a register "
                        "(the paper's patch)",
        ),
        WasmEngineModel(
            "wamr", heap_base="pinned", indirect_call_checks=4,
            dilation=0.08,
            description="WAMR LLVM AOT: pinned base, slightly weaker "
                        "pipeline than native LLVM",
        ),
    )
}

_PRELUDE = """
    adrp x27, __wasm_ctx
    add x27, x27, :lo12:__wasm_ctx
    str x21, [x27]
    str xzr, [x27, #8]
    mov x28, x21
"""

_DATA = """
.data
.balign 8
__wasm_ctx:
    .skip 16
"""


def wasm_rewrite(asm_text: str, engine: WasmEngineModel) -> str:
    """Instrument workload assembly the way ``engine`` would compile it."""
    from ..arm64.parser import parse_assembly
    from ..arm64.printer import print_assembly

    program = parse_assembly(asm_text)
    out = Program()
    first_inst_done = False
    dilation_credit = 0.0
    check_counter = [0]
    section = ".text"
    #: Is the heap-base register known-loaded in this basic block?
    state = {"heap_valid": False}

    for item in program.items:
        if isinstance(item, Directive):
            if item.name in (".text", ".data", ".bss", ".rodata", ".section"):
                section = item.name
            out.add(item)
            continue
        if isinstance(item, LabelDef):
            state["heap_valid"] = False  # block boundary
            out.add(item)
            continue
        if not section.startswith(".text"):
            out.add(item)
            continue

        if not first_inst_done:
            for line in _parse_lines(_PRELUDE):
                out.add(line)
            first_inst_done = True

        emitted = _transform(item, engine, out, check_counter, state)
        if item.is_branch:
            state["heap_valid"] = False
        dilation_credit += engine.dilation * emitted
        while dilation_credit >= 1.0:
            out.add(ins("add", TMP_REG, TMP_REG, Imm(1)))
            dilation_credit -= 1.0

    text = print_assembly(out) + _DATA
    return text


def _parse_lines(snippet: str) -> List[Instruction]:
    from ..arm64.parser import parse_assembly

    return list(parse_assembly(snippet).instructions())


def _transform(inst: Instruction, engine: WasmEngineModel, out: Program,
               check_counter: List[int], state: dict) -> int:
    """Emit the engine's code for one instruction; returns count emitted."""
    if inst.is_memory and inst.mem is not None and not inst.mem.base.is_sp:
        return _transform_memory(inst, engine, out, state)
    if inst.mnemonic == "blr":
        n = engine.indirect_call_checks
        # A semantics-neutral table-bounds + type check of ``n`` insts:
        # load the (zero) check cell, compare, never-taken branch, repeat.
        emitted = 0
        skip = f"__wasm_ok_{check_counter[0]}"
        check_counter[0] += 1
        out.add(ins("ldr", TMP_REG, Mem(CTX_REG, Imm(8))))
        out.add(ins("cmp", TMP_REG, Imm(0)))
        out.add(ins("b.ne", Label(skip)))
        emitted += 3
        while emitted < n:
            out.add(ins("cmp", TMP_REG, Imm(0)))
            emitted += 1
        out.add(LabelDef(skip))
        out.add(inst)
        return emitted + 1
    out.add(inst)
    return 1


def _transform_memory(inst: Instruction, engine: WasmEngineModel,
                      out: Program, state: dict) -> int:
    """base + zext32(index) materialization for one access."""
    mem = inst.mem
    base = mem.base
    emitted = 0

    def emit(i: Instruction) -> None:
        nonlocal emitted
        out.add(i)
        emitted += 1

    # The heap-base load: reloaded on every access when the compiler
    # barrier is on, hoisted to once per basic block without it, and never
    # needed when the base is pinned in a register.
    if engine.heap_base == "always":
        emit(ins("ldr", HEAP_REG, Mem(CTX_REG)))
    elif engine.heap_base == "per_block" and not state["heap_valid"]:
        emit(ins("ldr", HEAP_REG, Mem(CTX_REG)))
        state["heap_valid"] = True

    offset = mem.offset
    if mem.mode == PRE_INDEX:
        emit(_advance(base, mem.imm_value))
        emit(ins("add", ADDR_REG, HEAP_REG,
                 Extended(base.as_32(), "uxtw")))
        emit(_with_mem(inst, Mem(ADDR_REG)))
        return emitted
    if mem.mode == POST_INDEX:
        emit(ins("add", ADDR_REG, HEAP_REG,
                 Extended(base.as_32(), "uxtw")))
        emit(_with_mem(inst, Mem(ADDR_REG)))
        emit(_advance(base, mem.imm_value))
        return emitted
    if offset is None or isinstance(offset, Imm):
        emit(ins("add", ADDR_REG, HEAP_REG,
                 Extended(base.as_32(), "uxtw")))
        emit(_with_mem(inst, Mem(ADDR_REG, offset)))
        return emitted
    # Register offsets: fold the 32-bit index first (Wasm indices are i32).
    if isinstance(offset, Reg):
        emit(ins("add", TMP_REG.as_32(), base.as_32(), offset.as_32()))
    elif isinstance(offset, Shifted):
        emit(ins("add", TMP_REG.as_32(), base.as_32(),
                 Shifted(offset.reg.as_32(), offset.kind, offset.amount)))
    elif isinstance(offset, Extended):
        emit(ins("add", TMP_REG.as_32(), base.as_32(),
                 Shifted(offset.reg.as_32(), "lsl", offset.amount or 0)))
    emit(ins("add", ADDR_REG, HEAP_REG, Extended(TMP_REG.as_32(), "uxtw")))
    emit(_with_mem(inst, Mem(ADDR_REG)))
    return emitted


def _advance(base: Reg, imm: int) -> Instruction:
    if imm < 0:
        return ins("sub", base, base, Imm(-imm))
    return ins("add", base, base, Imm(imm))


def _with_mem(inst: Instruction, mem: Mem) -> Instruction:
    ops = tuple(mem if isinstance(op, Mem) else op for op in inst.operands)
    return Instruction(inst.mnemonic, ops, inst.line)



"""Sandbox loader: verify an ELF image and map it into a 4GiB slot (§5.3).

Binaries are linked at *sandbox offsets* (position-independent at region
granularity), so loading is: verify the text, add the slot base to every
segment address, install the read-only runtime-call table page, and carve
out a stack below the high guard region.
"""

from __future__ import annotations

from typing import Optional

from ..core.verifier import Verifier, VerifierPolicy
from ..elf.format import ElfImage, PF_W, PF_X
from ..errors import LoadError as _LoadError
from ..memory.layout import PAGE_SIZE, SandboxLayout
from ..memory.pages import PERM_R, PERM_RW, PERM_RX, PagedMemory
from .process import Process, ProcessState, StdStream
from .table import build_table_page

__all__ = ["load_image", "clone_process", "alias_slot",
           "DEFAULT_STACK_SIZE"]

DEFAULT_STACK_SIZE = 1024 * 1024



def _page_span(addr: int, size: int) -> tuple:
    base = addr & ~(PAGE_SIZE - 1)
    end = (addr + max(size, 1) + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
    return base, end - base


def load_image(
    memory: PagedMemory,
    image: ElfImage,
    layout: SandboxLayout,
    pid: int,
    verify: bool = True,
    policy: Optional[VerifierPolicy] = None,
    stack_size: int = DEFAULT_STACK_SIZE,
) -> Process:
    """Map a (verified) ELF image into a sandbox slot and build a Process."""
    if verify:
        result = Verifier(policy).verify_elf(image)
        result.raise_if_failed()

    # Layout constraints (paper §3 / Figure 1).
    usable_lo = layout.usable_base - layout.base
    usable_hi = layout.usable_end - layout.base
    for segment in image.segments:
        if segment.vaddr < usable_lo or segment.vaddr + segment.memsz > usable_hi:
            raise _LoadError(
                f"segment {segment.vaddr:#x}+{segment.memsz:#x} outside the "
                f"usable sandbox region"
            )
        if segment.flags & PF_X:
            end = layout.base + segment.vaddr + segment.memsz
            if end > layout.code_limit:
                raise _LoadError(
                    "executable segment inside the 128MiB keep-out zone"
                )

    # Runtime-call table page: read-only, first page of the sandbox (§4.4).
    memory.map_region(layout.table_base, PAGE_SIZE, PERM_RW)
    memory.load_image(layout.table_base, build_table_page())
    memory.protect(layout.table_base, PAGE_SIZE, PERM_R)

    highest = layout.usable_base
    for segment in image.segments:
        abs_addr = layout.base + segment.vaddr
        base, size = _page_span(abs_addr, segment.memsz)
        memory.map_region(base, size, PERM_RW)
        if segment.data:
            memory.load_image(abs_addr, bytes(segment.data))
        if segment.flags & PF_X:
            perm = PERM_RX
        elif segment.flags & PF_W:
            perm = PERM_RW
        else:
            perm = PERM_R
        memory.protect(base, size, perm)
        highest = max(highest, base + size)

    # Stack: top of the usable region, growing down toward the heap.
    stack_top = layout.usable_end
    memory.map_region(stack_top - stack_size, stack_size, PERM_RW)

    heap_start = highest
    registers = {
        "regs": [0] * 31,
        "sp": stack_top,
        "pc": layout.base + image.entry,
        "nzcv": 0,
        "vregs": [0] * 32,
    }
    registers["regs"][21] = layout.base  # the sandbox base register

    proc = Process(
        pid=pid,
        layout=layout,
        registers=registers,
        brk=heap_start,
        heap_start=heap_start,
        state=ProcessState.READY,
        guard_map={
            layout.base + addr: klass
            for addr, klass in image.provenance.items()
        },
    )
    stdin = StdStream(readable=True)
    stdout = StdStream()
    stderr = StdStream()
    proc.fds = {0: stdin, 1: stdout, 2: stderr}
    return proc


def alias_slot(
    memory: PagedMemory,
    src: SandboxLayout,
    dst: SandboxLayout,
) -> None:
    """COW-alias every mapped region of slot ``src`` into slot ``dst``.

    The paper's memfd optimization (§5.3): the destination slot sees the
    same physical pages at the same in-slot offsets, and pages are copied
    only when either side first writes.  This is the shared mechanism
    behind fork, warm spawn, and O(dirty pages) checkpointing.
    """
    lo, hi = src.base, src.end
    for base, size, _perms in list(memory.mapped_regions()):
        if base >= hi or base + size <= lo:
            continue
        memory.share_region(base, dst.base + (base - lo), size)


def clone_process(
    memory: PagedMemory,
    template: Process,
    layout: SandboxLayout,
    pid: int,
) -> Process:
    """Snapshot-restore a *template* process into a fresh slot (warm spawn).

    The template is a loaded-but-never-run sandbox; cloning COW-aliases its
    pages into the new slot and rebuilds the loader's initial register
    state at the new base.  Because binaries are linked at sandbox offsets
    and every pointer is rebased by the guards, the clone is
    indistinguishable from a cold :func:`load_image` of the same ELF —
    minus the verification and page-population cost (the paper's "verify
    once, map many" instantiation path).
    """
    src = template.layout
    alias_slot(memory, src, layout)

    def rebase(value: int) -> int:
        return layout.base + (value - src.base)

    registers = {
        "regs": [0] * 31,
        "sp": rebase(template.registers["sp"]),
        "pc": rebase(template.registers["pc"]),
        "nzcv": 0,
        "vregs": [0] * 32,
    }
    registers["regs"][21] = layout.base

    proc = Process(
        pid=pid,
        layout=layout,
        registers=registers,
        brk=rebase(template.brk),
        heap_start=rebase(template.heap_start),
        state=ProcessState.READY,
        guard_map={rebase(addr): klass
                   for addr, klass in template.guard_map.items()},
    )
    proc.fds = {0: StdStream(readable=True), 1: StdStream(), 2: StdStream()}
    return proc

"""In-memory Unix-like filesystem for the runtime (paper §5.3).

The LFI runtime mediates all file access: it "first checks the arguments
for correctness — for example, the runtime can disallow all access to
certain directories".  This VFS is the host-filesystem substitute: an
in-memory tree with a path-prefix access policy.
"""

from __future__ import annotations

import errno
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..errors import VfsError as _VfsError

__all__ = ["Vfs", "FileHandle", "Pipe", "PipeEnd",
           "O_RDONLY", "O_WRONLY", "O_RDWR", "O_CREAT", "O_TRUNC",
           "O_APPEND", "SEEK_SET", "SEEK_CUR", "SEEK_END"]

O_RDONLY = 0o0
O_WRONLY = 0o1
O_RDWR = 0o2
O_CREAT = 0o100
O_TRUNC = 0o1000
O_APPEND = 0o2000

SEEK_SET, SEEK_CUR, SEEK_END = 0, 1, 2



@dataclass
class _File:
    data: bytearray = field(default_factory=bytearray)


@dataclass
class _Dir:
    entries: Dict[str, Union["_Dir", _File]] = field(default_factory=dict)


def _split(path: str) -> List[str]:
    parts = [p for p in path.split("/") if p and p != "."]
    out: List[str] = []
    for part in parts:
        if part == "..":
            if out:
                out.pop()
        else:
            out.append(part)
    return out


def normalize(path: str) -> str:
    return "/" + "/".join(_split(path))


class Vfs:
    """A process-shared in-memory filesystem with a deny-prefix policy."""

    def __init__(self):
        self.root = _Dir()
        self.denied_prefixes: List[str] = []

    # -- policy -------------------------------------------------------------

    def deny(self, prefix: str) -> None:
        """Disallow all access under ``prefix`` (runtime argument checks)."""
        self.denied_prefixes.append(normalize(prefix))

    def _check_policy(self, path: str) -> None:
        norm = normalize(path)
        for prefix in self.denied_prefixes:
            if norm == prefix or norm.startswith(prefix.rstrip("/") + "/"):
                raise _VfsError(errno.EACCES, path)

    # -- tree ---------------------------------------------------------------

    def _walk(self, path: str) -> Union[_Dir, _File]:
        node: Union[_Dir, _File] = self.root
        for part in _split(path):
            if not isinstance(node, _Dir) or part not in node.entries:
                raise _VfsError(errno.ENOENT, path)
            node = node.entries[part]
        return node

    def _parent_of(self, path: str) -> Tuple[_Dir, str]:
        parts = _split(path)
        if not parts:
            raise _VfsError(errno.EINVAL, path)
        node = self.root
        for part in parts[:-1]:
            if part not in node.entries:
                raise _VfsError(errno.ENOENT, path)
            child = node.entries[part]
            if not isinstance(child, _Dir):
                raise _VfsError(errno.ENOTDIR, path)
            node = child
        return node, parts[-1]

    def mkdir(self, path: str, parents: bool = False) -> None:
        self._check_policy(path)
        if parents:
            node = self.root
            for part in _split(path):
                child = node.entries.get(part)
                if child is None:
                    child = _Dir()
                    node.entries[part] = child
                if not isinstance(child, _Dir):
                    raise _VfsError(errno.ENOTDIR, path)
                node = child
            return
        parent, name = self._parent_of(path)
        if name in parent.entries:
            raise _VfsError(errno.EEXIST, path)
        parent.entries[name] = _Dir()

    def write_file(self, path: str, data: bytes) -> None:
        """Create or replace a file (host-side convenience)."""
        self._check_policy(path)
        parent, name = self._parent_of(path)
        existing = parent.entries.get(name)
        if isinstance(existing, _Dir):
            raise _VfsError(errno.EISDIR, path)
        parent.entries[name] = _File(bytearray(data))

    def read_file(self, path: str) -> bytes:
        node = self._walk(path)
        if not isinstance(node, _File):
            raise _VfsError(errno.EISDIR, path)
        return bytes(node.data)

    def exists(self, path: str) -> bool:
        try:
            self._walk(path)
            return True
        except _VfsError:
            return False

    def listdir(self, path: str) -> List[str]:
        node = self._walk(path)
        if not isinstance(node, _Dir):
            raise _VfsError(errno.ENOTDIR, path)
        return sorted(node.entries)

    def unlink(self, path: str) -> None:
        self._check_policy(path)
        parent, name = self._parent_of(path)
        if name not in parent.entries:
            raise _VfsError(errno.ENOENT, path)
        if isinstance(parent.entries[name], _Dir):
            raise _VfsError(errno.EISDIR, path)
        del parent.entries[name]

    # -- open files ------------------------------------------------------------

    def open(self, path: str, flags: int) -> "FileHandle":
        self._check_policy(path)
        accmode = flags & 0o3
        try:
            node = self._walk(path)
        except _VfsError:
            if not flags & O_CREAT:
                raise
            parent, name = self._parent_of(path)
            node = _File()
            parent.entries[name] = node
        if isinstance(node, _Dir):
            raise _VfsError(errno.EISDIR, path)
        if flags & O_TRUNC and accmode != O_RDONLY:
            node.data.clear()
        return FileHandle(node, accmode, append=bool(flags & O_APPEND),
                          path=normalize(path))

    # -- checkpoint support -------------------------------------------------

    def state_dict(self) -> dict:
        """Serializable snapshot of the whole tree plus the deny policy."""
        def encode(node: _Dir) -> dict:
            return {
                name: (bytes(child.data) if isinstance(child, _File)
                       else encode(child))
                for name, child in sorted(node.entries.items())
            }
        return {"tree": encode(self.root),
                "denied": list(self.denied_prefixes)}

    def load_state(self, state: dict) -> None:
        """Replace the tree and policy with a :meth:`state_dict` snapshot."""
        def decode(entries: dict) -> _Dir:
            node = _Dir()
            for name, child in entries.items():
                node.entries[name] = (_File(bytearray(child))
                                      if isinstance(child, (bytes, bytearray))
                                      else decode(child))
            return node
        self.root = decode(state["tree"])
        self.denied_prefixes = list(state["denied"])


class FileHandle:
    """An open file description: a file plus an offset and access mode."""

    def __init__(self, node: _File, accmode: int, append: bool = False,
                 path: str = ""):
        self._node = node
        self.accmode = accmode
        self.append = append
        self.offset = 0
        #: Normalized path the handle was opened at; checkpoints re-open
        #: the description by path against the restored tree.
        self.path = path

    @property
    def readable(self) -> bool:
        return self.accmode in (O_RDONLY, O_RDWR)

    @property
    def writable(self) -> bool:
        return self.accmode in (O_WRONLY, O_RDWR)

    def read(self, count: int) -> bytes:
        if not self.readable:
            raise _VfsError(errno.EBADF)
        data = bytes(self._node.data[self.offset:self.offset + count])
        self.offset += len(data)
        return data

    def write(self, data: bytes) -> int:
        if not self.writable:
            raise _VfsError(errno.EBADF)
        if self.append:
            self.offset = len(self._node.data)
        end = self.offset + len(data)
        if end > len(self._node.data):
            self._node.data.extend(b"\x00" * (end - len(self._node.data)))
        self._node.data[self.offset:end] = data
        self.offset = end
        return len(data)

    def seek(self, offset: int, whence: int) -> int:
        if whence == SEEK_SET:
            new = offset
        elif whence == SEEK_CUR:
            new = self.offset + offset
        elif whence == SEEK_END:
            new = len(self._node.data) + offset
        else:
            raise _VfsError(errno.EINVAL)
        if new < 0:
            raise _VfsError(errno.EINVAL)
        self.offset = new
        return new

    @property
    def size(self) -> int:
        return len(self._node.data)


class Pipe:
    """A byte pipe with a bounded buffer, used by the pipe runtime call."""

    CAPACITY = 64 * 1024

    def __init__(self):
        self.buffer = bytearray()
        self.read_open = True
        self.write_open = True

    def read_end(self) -> "PipeEnd":
        return PipeEnd(self, reading=True)

    def write_end(self) -> "PipeEnd":
        return PipeEnd(self, reading=False)


class PipeEnd:
    """One end of a pipe, presented with the FileHandle interface.

    An end can be referenced from several fd tables at once (``fork``
    copies the parent's table), so it is reference counted: the underlying
    pipe direction closes only when the *last* referent drops.
    """

    def __init__(self, pipe: Pipe, reading: bool):
        self.pipe = pipe
        self.reading = reading
        self.refs = 1

    def retain(self) -> "PipeEnd":
        """Add a reference (a new fd table now shares this description)."""
        self.refs += 1
        return self

    @property
    def readable(self) -> bool:
        return self.reading

    @property
    def writable(self) -> bool:
        return not self.reading

    def read(self, count: int) -> Optional[bytes]:
        """Bytes, b"" on EOF, or None if the caller must block."""
        if not self.reading:
            raise _VfsError(errno.EBADF)
        if self.pipe.buffer:
            data = bytes(self.pipe.buffer[:count])
            del self.pipe.buffer[:count]
            return data
        if not self.pipe.write_open:
            return b""
        return None  # would block

    def write(self, data: bytes) -> Optional[int]:
        """Bytes written, or None if the caller must block (buffer full)."""
        if self.reading:
            raise _VfsError(errno.EBADF)
        if not self.pipe.read_open:
            raise _VfsError(errno.EPIPE)
        if len(self.pipe.buffer) + len(data) > Pipe.CAPACITY:
            return None
        self.pipe.buffer.extend(data)
        return len(data)

    def close(self) -> None:
        """Drop one reference; close the pipe direction on the last one."""
        if self.refs > 0:
            self.refs -= 1
        if self.refs:
            return
        if self.reading:
            self.pipe.read_open = False
        else:
            self.pipe.write_open = False

"""Per-sandbox process state."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..memory.layout import SandboxLayout
from .vfs import FileHandle, Pipe, PipeEnd

__all__ = ["Process", "ProcessState"]


class ProcessState:
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"  # waiting on a pipe or a child
    ZOMBIE = "zombie"


FdObject = Union[FileHandle, PipeEnd, "StdStream"]


class StdStream:
    """stdout/stderr sink or stdin source owned by the runtime."""

    def __init__(self, readable: bool = False):
        self.buffer = bytearray()
        self.readable = readable
        self.writable = not readable
        self._read_pos = 0

    def write(self, data: bytes) -> int:
        self.buffer.extend(data)
        return len(data)

    def read(self, count: int) -> bytes:
        data = bytes(self.buffer[self._read_pos:self._read_pos + count])
        self._read_pos += len(data)
        return data

    def text(self) -> str:
        return self.buffer.decode("utf-8", "replace")

    def state(self) -> dict:
        """Serializable snapshot (checkpoint support)."""
        return {"buffer": bytes(self.buffer), "readable": self.readable,
                "read_pos": self._read_pos}

    @classmethod
    def from_state(cls, state: dict) -> "StdStream":
        stream = cls(readable=state["readable"])
        stream.buffer.extend(state["buffer"])
        stream._read_pos = state["read_pos"]
        return stream


@dataclass
class Process:
    """One sandbox: its slot, saved registers, and kernel-side state."""

    pid: int
    layout: SandboxLayout
    registers: dict  # CpuState.snapshot()
    parent: Optional[int] = None
    state: str = ProcessState.READY
    exit_code: Optional[int] = None
    brk: int = 0  # current program break (absolute address)
    heap_start: int = 0
    fds: Dict[int, FdObject] = field(default_factory=dict)
    children: List[int] = field(default_factory=list)
    #: Why the process is blocked ("pipe_read", "pipe_write", "wait").
    block_reason: Optional[str] = None
    #: Pending blocked operation arguments (retried when unblocked).
    block_args: Optional[tuple] = None
    #: The pipe a call-blocked process is waiting on, if any.  Lets
    #: ``wake_pipe_waiters`` retry only the processes actually blocked on
    #: that pipe instead of thundering-herd retrying everything.
    block_pipe: Optional[Pipe] = None
    #: Total instructions retired while this process was scheduled.
    instructions: int = 0
    #: Guard provenance rebased to absolute addresses: pc -> guard class
    #: (``memory``/``branch``/``sp``/``x30``/``hoist``).  Filled by the
    #: loader from the image's PT_NOTE; the obs profiler uses it to
    #: attribute cycle charges to application vs guard code.
    guard_map: Dict[int, str] = field(default_factory=dict)
    #: Force the per-instruction stepping engine for this process.  Set
    #: when a per-instruction probe is registered (HookRegistry contract:
    #: probes observe every retired instruction) or for debugging; the
    #: child inherits it on fork.
    step_mode: bool = False

    @property
    def base(self) -> int:
        return self.layout.base

    def next_fd(self) -> int:
        fd = 0
        while fd in self.fds:
            fd += 1
        return fd

    def pointer(self, value: int) -> int:
        """Resolve a sandbox pointer argument to an absolute address.

        The guard discipline means sandbox pointers are meaningful only in
        their low 32 bits (§5.3: "pointers can be constructed as 32-bit
        offsets"); the runtime rebases them exactly like a guard would.
        """
        return self.layout.guarded(value)

"""The LFI runtime: loader, runtime calls, VFS, scheduler, fork, yield."""

from ..errors import Deadlock, LoadError, RuntimeError_, VfsError
from .loader import DEFAULT_STACK_SIZE, clone_process, load_image
from .process import Process, ProcessState, StdStream
from .runtime import (
    CALL_OVERHEAD_CYCLES,
    ProcessFault,
    ResourceQuota,
    Runtime,
    YIELD_CYCLES,
)
from .scheduler import Scheduler
from .table import RuntimeCall, build_table_page, entry_address, table_offset
from .vfs import (
    FileHandle,
    O_APPEND,
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    Pipe,
    PipeEnd,
    Vfs,
)

__all__ = [
    "DEFAULT_STACK_SIZE",
    "LoadError",
    "load_image",
    "clone_process",
    "Process",
    "ProcessState",
    "StdStream",
    "CALL_OVERHEAD_CYCLES",
    "YIELD_CYCLES",
    "Deadlock",
    "ProcessFault",
    "ResourceQuota",
    "Runtime",
    "RuntimeError_",
    "Scheduler",
    "RuntimeCall",
    "build_table_page",
    "entry_address",
    "table_offset",
    "FileHandle",
    "O_APPEND",
    "O_CREAT",
    "O_RDONLY",
    "O_RDWR",
    "O_TRUNC",
    "O_WRONLY",
    "Pipe",
    "PipeEnd",
    "Vfs",
    "VfsError",
]

"""The LFI runtime: one host process managing many sandboxes (paper §5.3).

Responsibilities:

* allocate 4GiB slots and load verified ELF executables into them;
* install the runtime-call table and service runtime calls;
* schedule sandboxes preemptively (instruction-fuel timeslices standing in
  for ``setitimer`` alarms);
* implement single-address-space ``fork`` by copying the sandbox image to
  a new slot — possible because all pointers are rebased by the guards;
* provide the ~50-cycle direct-invoke ``yield`` used for IPC.

Context switches save/restore only register state — no page-table or
protection changes are ever needed once sandboxes are mapped, which is the
source of LFI's context-switch advantage (§6.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.verifier import VerifierPolicy
from ..elf.format import ElfImage, read_elf
from ..emulator.costs import CostModel
from ..engine import EngineConfig
from ..errors import Deadlock as _Deadlock
from ..errors import RuntimeError_ as _RuntimeError
from ..hooks import HookRegistry
from ..emulator.machine import (
    BrkTrap,
    HltTrap,
    HostCallTrap,
    Machine,
    MemTrap,
    OutOfFuel,
    SvcTrap,
    Trap,
    UnknownInstructionTrap,
)
from ..memory.layout import MAX_SANDBOXES_48BIT, PAGE_SIZE, SandboxLayout
from ..memory.pages import PERM_RW, PERM_X, PagedMemory
from ..obs.events import (
    ContextSwitch,
    FaultEvent,
    ProcessEvent,
    RuntimeCallSpan,
)
from .loader import DEFAULT_STACK_SIZE, alias_slot, clone_process, load_image
from .process import Process, ProcessState, StdStream
from .scheduler import Scheduler
from .syscalls import BLOCK, EXITED, HANDLERS, SWITCH
from .table import HOST_ENTRY_BASE, RuntimeCall, call_for_entry, \
    entry_address
from .vfs import Pipe, PipeEnd, Vfs

__all__ = ["Runtime", "ProcessFault", "ResourceQuota"]

_MASK64 = (1 << 64) - 1

#: Host-side cycles charged per runtime call beyond the emulated
#: instructions (argument checks, save/restore of the runtime's state).
#: Calibrated so a null runtime call costs ~22ns at 3.2GHz (Table 5).
CALL_OVERHEAD_CYCLES = 58.0

#: The optimized direct-invoke yield saves/restores only callee-saved
#: registers: roughly 50 cycles end to end (§5.3).
YIELD_CYCLES = 44.0

_YIELD_CALLS = frozenset((RuntimeCall.YIELD, RuntimeCall.YIELD_TO))


class _SliceExit(Exception):
    """Control-flow signal from the springboard to :meth:`Runtime._run_one`.

    Raised after the springboard has fully closed the current slice
    (state saved, trace emitted, call dispatched, instructions accounted)
    and translated execution must *not* resume inline — the scheduler
    loop takes over exactly as if the slice had ended by trap.
    """



@dataclass
class ProcessFault:
    """Recorded when a sandbox is killed by a trap."""

    pid: int
    kind: str
    detail: str
    pc: int


@dataclass(frozen=True)
class ResourceQuota:
    """Per-sandbox resource limits enforced by the runtime (§5.3).

    ``None`` for any field means unlimited.  Mapped pages are counted in
    the sandbox's 4GiB slot at the :class:`PagedMemory` boundary; fd slots
    at the :class:`Vfs` boundary; instructions cumulatively per process.
    """

    max_mapped_pages: Optional[int] = None
    max_fds: Optional[int] = None
    max_instructions: Optional[int] = None


class Runtime:
    """One runtime instance owning an address space and its sandboxes."""

    def __init__(self, model: Optional[CostModel] = None,
                 timeslice: int = 50_000,
                 stack_size: int = DEFAULT_STACK_SIZE,
                 first_slot: int = 1,
                 tlb_walk_scale: float = 1.0,
                 engine=None):
        #: The validated engine selection + tuning.  ``engine`` accepts an
        #: :class:`~repro.engine.EngineConfig` (canonical), ``None`` (the
        #: defaults), or — deprecated, one release — a bare kind string.
        config = EngineConfig.coerce(engine)
        self.engine_config = config
        #: Whether the vectored BATCH runtime call is serviced (the
        #: handler returns ``-ENOSYS`` to the guest when disabled).
        self.batch_abi = config.batch_abi
        timeslice = config.resolve_timeslice(timeslice)
        self.memory = PagedMemory()
        self.machine = Machine(self.memory, model=model,
                               tlb_walk_scale=tlb_walk_scale,
                               engine=config)
        self.model = model
        self.vfs = Vfs()
        self.scheduler = Scheduler(timeslice=timeslice)
        self.stack_size = stack_size
        self.processes: Dict[int, Process] = {}
        self.faults: List[ProcessFault] = []
        self._next_pid = 1
        self._next_slot = first_slot
        self._current: Optional[Process] = None
        self._mmap_cursors: Dict[int, int] = {}
        #: Per-pid pending blocked runtime call number.
        self._pending_call: Dict[int, int] = {}
        #: Per-pid resource quotas (set by a supervisor; inherited on fork).
        self.quotas: Dict[int, ResourceQuota] = {}
        #: Multi-subscriber hook consulted before every runtime-call
        #: dispatch with ``(proc, call)``.  The first subscriber returning
        #: an ``int`` short-circuits the handler with that result — the
        #: fault injector uses this for transient EINTR/ENOMEM-style
        #: errors; the tracer subscribes alongside and returns ``None``.
        self.call_hooks = HookRegistry(first_result=True)
        #: The attached obs event bus, or ``None``.  Set by
        #: :meth:`repro.obs.Tracer.attach`; every emission is guarded by a
        #: ``None`` check so untraced runs pay one attribute load.
        self.tracer = None
        #: True while the machine is executing sandbox code (as opposed to
        #: host-side runtime work); used by the containment auditor to
        #: attribute memory writes.
        self._in_guest = False
        #: Slice anchors for the scheduling slice currently being run by
        #: :meth:`_run_one` (instance state, not locals, so the fused
        #: springboard can close one slice and open the next inline).
        self._run_start = 0
        self._slice_before = 0
        self._slice_start_cycles = 0.0
        for call in RuntimeCall.ALL:
            self.machine.register_host_entry(entry_address(call), call)
        self.machine.springboard = self._springboard

    def _emit(self, event) -> None:
        if self.tracer is not None:
            self.tracer.emit(event)

    # -- spawning ---------------------------------------------------------------

    def allocate_slot(self) -> SandboxLayout:
        if self._next_slot >= MAX_SANDBOXES_48BIT - 1:
            raise _RuntimeError("out of sandbox slots")
        layout = SandboxLayout.for_slot(self._next_slot)
        self._next_slot += 1
        return layout

    def spawn(self, image, verify: bool = True,
              policy: Optional[VerifierPolicy] = None) -> Process:
        """Load an ELF image (or raw bytes) into a fresh sandbox.

        ``verify=False`` runs *native* (trusted) code under the runtime —
        the paper's baseline methodology (§6.1): native code still benefits
        from accelerated runtime calls.
        """
        if isinstance(image, (bytes, bytearray)):
            image = read_elf(bytes(image))
        layout = self.allocate_slot()
        pid = self._next_pid
        self._next_pid += 1
        proc = load_image(self.memory, image, layout, pid, verify=verify,
                          policy=policy, stack_size=self.stack_size)
        self.processes[pid] = proc
        self.scheduler.add(proc)
        self._emit(ProcessEvent(ts=self.machine.cycles, pid=pid,
                                kind="spawn",
                                detail="native" if not verify else ""))
        return proc

    def load_template(self, image, verify: bool = True,
                      policy: Optional[VerifierPolicy] = None) -> Process:
        """Load an image into a slot as a *template*: mapped, never run.

        The returned process is not scheduled and never appears in
        :attr:`processes`; it exists only as a pristine snapshot for
        :meth:`spawn_clone` to restore from (warm spawn).  Verification is
        paid here, once, regardless of how many clones follow.
        """
        if isinstance(image, (bytes, bytearray)):
            image = read_elf(bytes(image))
        layout = self.allocate_slot()
        pid = self._next_pid
        self._next_pid += 1
        proc = load_image(self.memory, image, layout, pid, verify=verify,
                          policy=policy, stack_size=self.stack_size)
        self._emit(ProcessEvent(ts=self.machine.cycles, pid=pid,
                                kind="spawn", detail="template"))
        return proc

    def spawn_clone(self, template: Process) -> Process:
        """Warm-spawn: snapshot-restore ``template`` into a fresh sandbox.

        Equivalent to :meth:`spawn` of the template's image — same initial
        registers (at the new base), same memory contents (COW-aliased,
        copied lazily on first write) — but skips ELF parsing, verification,
        and page population entirely.
        """
        layout = self.allocate_slot()
        pid = self._next_pid
        self._next_pid += 1
        proc = clone_process(self.memory, template, layout, pid)
        self.processes[pid] = proc
        self.scheduler.add(proc)
        self._emit(ProcessEvent(ts=self.machine.cycles, pid=pid,
                                kind="spawn", detail="warm"))
        return proc

    # -- resource quotas -----------------------------------------------------------

    def set_quota(self, proc: Process, quota: Optional[ResourceQuota]) -> None:
        """Attach (or clear) a resource quota for ``proc``."""
        if quota is None:
            self.quotas.pop(proc.pid, None)
        else:
            self.quotas[proc.pid] = quota

    def fd_slots_free(self, proc: Process, count: int = 1) -> bool:
        """Whether ``proc`` may allocate ``count`` more fd-table slots."""
        quota = self.quotas.get(proc.pid)
        if quota is None or quota.max_fds is None:
            return True
        return len(proc.fds) + count <= quota.max_fds

    def pages_quota_allows(self, proc: Process, new_pages: int) -> bool:
        """Whether mapping ``new_pages`` more pages stays within quota."""
        quota = self.quotas.get(proc.pid)
        if quota is None or quota.max_mapped_pages is None:
            return True
        used = self.memory.pages_in_range(proc.layout.base, proc.layout.end)
        return used + new_pages <= quota.max_mapped_pages

    # -- state switching -----------------------------------------------------------

    def _switch_to(self, proc: Process) -> None:
        self._current = proc
        self.machine.cpu.restore(proc.registers)
        # Per-process superblock context: the fusion patterns depend on the
        # process's guard provenance, and a per-instruction probe forces
        # the stepping fallback (observability contract, DESIGN.md §10).
        self.machine.guard_map = proc.guard_map
        self.machine.force_stepping = proc.step_mode

    def _save(self, proc: Process) -> None:
        proc.registers = self.machine.cpu.snapshot()

    def complete_call(self, proc: Process, result: int) -> None:
        """Write a runtime call's result and return point into ``proc``."""
        regs = proc.registers
        regs["regs"][0] = result & _MASK64
        regs["pc"] = regs["regs"][30]

    # -- process management -------------------------------------------------------

    def terminate(self, proc: Process, code: int) -> None:
        proc.state = ProcessState.ZOMBIE
        proc.exit_code = code
        self._emit(ProcessEvent(ts=self.machine.cycles, pid=proc.pid,
                                kind="exit", exit_code=code))
        proc.block_pipe = None
        self._pending_call.pop(proc.pid, None)
        # Close pipe ends (waking peers) but keep std streams readable so
        # the host can collect output after exit.
        for fd, obj in list(proc.fds.items()):
            if isinstance(obj, PipeEnd):
                obj.close()
                self.wake_pipe_waiters(obj.pipe)
                del proc.fds[fd]
        if proc.parent is not None:
            parent = self.processes.get(proc.parent)
            if parent is not None and parent.state == ProcessState.BLOCKED \
                    and parent.block_reason == "call":
                self._retry_blocked(parent)

    def reap(self, child: Process) -> None:
        self.processes.pop(child.pid, None)
        self.scheduler.forget(child)

    def reclaim(self, proc: Process) -> None:
        """Unmap a dead sandbox's slot so long runs stay bounded.

        Executable pages are swept out of the translation caches; the
        slot's mmap cursor and quota records are dropped too.  The slot
        number itself is not recycled (monotonic allocation keeps fork and
        clone layouts deterministic).
        """
        self.reclaim_slot(proc.layout)
        self._mmap_cursors.pop(proc.pid, None)
        self.quotas.pop(proc.pid, None)

    def reclaim_slot(self, layout: SandboxLayout) -> None:
        """Unmap everything in ``layout``'s slot (see :meth:`reclaim`)."""
        lo, hi = layout.base, layout.end
        for base, size, perms in list(self.memory.mapped_regions()):
            if base >= lo and base + size <= hi:
                self.memory.unmap(base, size)
                if perms & PERM_X:
                    self.machine.invalidate_code(base, size)

    def fork(self, parent: Process,
             cow: bool = True) -> Optional[Process]:
        """Single-address-space fork (§5.3): place the image in a new slot.

        All sandbox pointers are 32-bit offsets under the guard discipline,
        so only pc/sp/x30/x21 need rebasing; everything else transfers
        bit-for-bit and the guards re-add the new base on every access.

        With ``cow=True`` (default) the child's pages alias the parent's
        and are copied lazily on first write — the paper's memfd
        optimization.  ``cow=False`` copies eagerly.
        """
        layout = self.allocate_slot()
        pid = self._next_pid
        self._next_pid += 1

        if cow:
            alias_slot(self.memory, parent.layout, layout)
        else:
            lo, hi = parent.layout.base, parent.layout.end
            for base, size, perms in list(self.memory.mapped_regions()):
                if base >= hi or base + size <= lo:
                    continue
                offset = base - lo
                self.memory.map_region(layout.base + offset, size, PERM_RW)
                data = self.memory._raw_read(base, size)
                self.memory.load_image(layout.base + offset, data)
                self.memory.protect(layout.base + offset, size, perms)

        def rebase(value: int) -> int:
            return layout.guarded(value)

        regs = {
            "regs": list(parent.registers["regs"]),
            "sp": rebase(parent.registers["sp"]),
            "pc": rebase(parent.registers["regs"][30]),
            "nzcv": parent.registers["nzcv"],
            "vregs": list(parent.registers["vregs"]),
        }
        regs["regs"][0] = 0  # fork() returns 0 in the child
        regs["regs"][21] = layout.base
        regs["regs"][30] = rebase(regs["regs"][30])
        # Reserved address registers must hold valid addresses in the child.
        for idx in (18, 23, 24):
            regs["regs"][idx] = rebase(regs["regs"][idx])

        child = Process(
            pid=pid, layout=layout, registers=regs, parent=parent.pid,
            brk=rebase(parent.brk), heap_start=rebase(parent.heap_start),
            state=ProcessState.READY,
            guard_map={rebase(addr): klass
                       for addr, klass in parent.guard_map.items()},
            step_mode=parent.step_mode,
        )
        child.fds = dict(parent.fds)  # shared descriptions, like Unix
        for obj in child.fds.values():
            if isinstance(obj, PipeEnd):
                obj.retain()  # the child's table is a second referent
        if parent.pid in self.quotas:
            self.quotas[pid] = self.quotas[parent.pid]
        self.processes[pid] = child
        parent.children.append(pid)
        self.scheduler.add(child)
        self._emit(ProcessEvent(ts=self.machine.cycles, pid=pid,
                                kind="fork", parent=parent.pid,
                                detail="cow" if cow else "eager"))
        return child

    def mmap_allocate(self, proc: Process, length: int) -> Optional[int]:
        """Bump allocator below the stack for anonymous mappings."""
        cursor = self._mmap_cursors.get(
            proc.pid, proc.layout.usable_end - self.stack_size
        )
        base = cursor - length
        if base < proc.brk + PAGE_SIZE:
            return None
        self._mmap_cursors[proc.pid] = base
        return base

    # -- blocking -----------------------------------------------------------------

    def wake_pipe_waiters(self, pipe: Pipe) -> None:
        """Retry only the processes actually blocked on ``pipe``."""
        for proc in list(self.processes.values()):
            if proc.state == ProcessState.BLOCKED \
                    and proc.block_reason == "call" \
                    and proc.block_pipe is pipe:
                self._retry_blocked(proc)

    def _retry_blocked(self, proc: Process) -> None:
        call = self._pending_call.get(proc.pid)
        if call is None:
            return
        proc.block_pipe = None  # the handler re-records it if still blocked
        result = HANDLERS[call](self, proc)
        if result is BLOCK:
            return
        self._pending_call.pop(proc.pid, None)
        proc.block_reason = None
        if result is SWITCH or result is EXITED:
            return
        self.complete_call(proc, result)
        self.scheduler.add(proc)

    # -- dispatch -----------------------------------------------------------------

    def _dispatch(self, proc: Process, call: int) -> None:
        handler = HANDLERS.get(call)
        # ``entry_cycles`` only feeds span emission; skip the costing
        # property walk on untraced runs (the springboard hot path).
        entry_cycles = self.machine.cycles if self.tracer is not None else 0.0
        self.machine.add_cycles(
            YIELD_CYCLES if call in _YIELD_CALLS
            else CALL_OVERHEAD_CYCLES,
            kind="call",
        )
        if handler is None:
            self._fault(proc, "badcall", f"unknown runtime call {call}")
            return
        injected = self.call_hooks(proc, call) if self.call_hooks else None
        if injected is not None:
            self.complete_call(proc, injected)
            self.scheduler.add_front(proc)
            self._emit_call_span(proc, call, entry_cycles, injected,
                                 blocked=False, injected=True)
            return
        proc.block_pipe = None
        result = handler(self, proc)
        if result is BLOCK:
            proc.state = ProcessState.BLOCKED
            proc.block_reason = "call"
            self._pending_call[proc.pid] = call
            self._emit_call_span(proc, call, entry_cycles, None, blocked=True)
            return
        if result is SWITCH or result is EXITED:
            self._emit_call_span(proc, call, entry_cycles, None, blocked=False)
            return
        self.complete_call(proc, result)
        self.scheduler.add_front(proc)
        self._emit_call_span(proc, call, entry_cycles, result, blocked=False)

    def _emit_call_span(self, proc: Process, call: int, entry_cycles: float,
                        result: Optional[int], blocked: bool,
                        injected: bool = False) -> None:
        if self.tracer is None:
            return
        self.tracer.emit(RuntimeCallSpan(
            ts=entry_cycles,
            pid=proc.pid,
            call=RuntimeCall.NAMES.get(call, f"call{call}"),
            dur=self.machine.cycles - entry_cycles,
            result=result,
            blocked=blocked,
            injected=injected,
        ))

    def _fault(self, proc: Process, kind: str, detail: str,
               status: int = 128 + 11) -> None:
        pc = proc.registers.get("pc", 0)
        self.faults.append(ProcessFault(proc.pid, kind, detail, pc))
        self._emit(FaultEvent(ts=self.machine.cycles, pid=proc.pid,
                              kind=kind, detail=detail, pc=pc))
        self.terminate(proc, status)  # SIGSEGV-style status by default

    # -- main loop -----------------------------------------------------------------

    def run(self, max_instructions: Optional[int] = None) -> None:
        """Run until every process has exited (or faulted)."""
        start = self.machine.instret
        while True:
            proc = self.scheduler.pick()
            if proc is None:
                live = [p for p in self.processes.values()
                        if p.state not in (ProcessState.ZOMBIE,)]
                if not live:
                    return
                blocked = [p for p in live
                           if p.state == ProcessState.BLOCKED]
                if blocked:
                    for p in blocked:
                        self._retry_blocked(p)
                    if self.scheduler.empty:
                        raise _Deadlock(
                            f"{len(blocked)} process(es) blocked forever"
                        )
                    continue
                return
            self._run_one(proc)
            if max_instructions is not None \
                    and self.machine.instret - start > max_instructions:
                raise _RuntimeError("global instruction budget exceeded")

    def run_until_exit(self, proc: Process,
                       max_instructions: Optional[int] = None) -> int:
        """Run until ``proc`` exits; returns its exit code."""
        start = self.machine.instret
        while proc.state != ProcessState.ZOMBIE:
            self._step_target()
            if max_instructions is not None \
                    and self.machine.instret - start > max_instructions:
                raise _RuntimeError("instruction budget exceeded")
        return proc.exit_code or 0

    def run_bounded(self, proc: Process, max_instructions: int) -> bool:
        """Run toward ``proc``'s exit for at most ~``max_instructions``.

        Returns True once ``proc`` has exited, False when the budget ran
        out first (checked between scheduling slices, so the pause always
        lands on a slice boundary — the precondition for checkpointing
        without perturbing the slice pattern).  Unlike
        :meth:`run_until_exit` the budget is a pause, not an error, so
        callers can interleave work (checkpoints, control messages) and
        resume by calling again.
        """
        start = self.machine.instret
        while proc.state != ProcessState.ZOMBIE:
            self._step_target()
            if self.machine.instret - start > max_instructions:
                return False
        return True

    def _step_target(self) -> None:
        """One scheduling step: pick and run a slice, or retry the blocked."""
        runnable = self.scheduler.pick()
        if runnable is None:
            blocked = [p for p in self.processes.values()
                       if p.state == ProcessState.BLOCKED]
            for p in blocked:
                self._retry_blocked(p)
            if self.scheduler.empty:
                raise _Deadlock("target process cannot make progress")
            return
        self._run_one(runnable)

    def _run_one(self, proc: Process) -> None:
        machine = self.machine
        self._switch_to(proc)
        self._run_start = machine.instret
        self._slice_before = machine.instret
        self._slice_start_cycles = machine.cycles
        try:
            self._in_guest = True
            try:
                machine.run(fuel=self.scheduler.timeslice)
            finally:
                self._in_guest = False
        except _SliceExit:
            # The springboard fully closed the final slice before raising.
            return
        except OutOfFuel:
            # A springboard may have switched processes mid-call; every
            # trap belongs to whoever is current *now*, not to the proc
            # this call started with.
            proc = self._current
            self._save(proc)
            self.scheduler.requeue(proc)  # timer preemption
            self._close_slice(proc, "preempt")
        except HostCallTrap as trap:
            proc = self._current
            self._save(proc)
            self._emit_slice(proc, self._slice_start_cycles, machine.cycles,
                             machine.instret - self._slice_before, "call")
            self._dispatch(proc, call_for_entry(trap.entry))
            self._close_slice(proc, "call", emit=False)
        except MemTrap as trap:
            proc = self._current
            self._save(proc)
            self._fault(proc, "segv", str(trap))
            self._close_slice(proc, "fault")
        except (UnknownInstructionTrap, SvcTrap, BrkTrap, HltTrap) as trap:
            proc = self._current
            self._save(proc)
            self._fault(proc, "sigill", str(trap))
            self._close_slice(proc, "fault")

    def _close_slice(self, proc: Process, reason: str,
                     emit: bool = True) -> None:
        """Account the just-ended slice and retire the RUNNING state."""
        machine = self.machine
        proc.instructions += machine.instret - self._slice_before
        if proc.state == ProcessState.RUNNING:
            proc.state = ProcessState.READY
        if emit:
            self._emit_slice(proc, self._slice_start_cycles, machine.cycles,
                             machine.instret - self._slice_before, reason)
        self._check_instruction_quota(proc)

    def _springboard(self, entry: int):
        """Service a fused runtime call without unwinding the engine.

        Called by the superblock dispatch loops when a fused
        ``ldr x30, [x21, #n]; blr x30`` pair lands on a registered host
        entry.  Replicates the ``HostCallTrap`` path of :meth:`_run_one`
        byte-for-byte — save, slice trace emission, dispatch (which
        charges ``CALL_OVERHEAD_CYCLES``/``YIELD_CYCLES`` and runs call
        hooks), instruction accounting, quota check — then decides
        whether translated execution may resume *inline*:

        * the slice budget must not be spent (bounds one
          :meth:`_run_one` to ~2 timeslices, so ``run_bounded`` pauses
          keep landing on slice boundaries);
        * :meth:`Scheduler.peek` must see a runnable process.  ``peek``
          is pure, so when resumption is declined the scheduler is
          untouched and the outer loop's ``pick()`` sequence — and any
          checkpoint taken at the pause — is identical to stepping's.

        On resume: exactly one ``pick()`` (the one the outer loop would
        have issued), a context switch, fresh slice anchors, and a
        ``run_hooks`` refire, exactly like a fresh ``machine.run`` slice.
        Returns ``(fresh_fuel, force_step)``; ``force_step`` tells the
        engine to finish the slice in the stepping interpreter (a hook
        registered a probe, or the new process is in step mode).
        Raises :class:`_SliceExit` when the slice must end instead.
        """
        machine = self.machine
        scheduler = self.scheduler
        proc = self._current
        self._in_guest = False
        proc.registers = machine.cpu.snapshot()
        executed = machine.instret - self._slice_before
        if self.tracer is not None:
            self._emit_slice(proc, self._slice_start_cycles, machine.cycles,
                             executed, "call")
        self._dispatch(proc, (entry - HOST_ENTRY_BASE) // 8)
        proc.instructions += executed
        if proc.state == ProcessState.RUNNING:
            proc.state = ProcessState.READY
        if self.quotas:
            self._check_instruction_quota(proc)
        timeslice = scheduler.timeslice
        if machine.instret - self._run_start >= timeslice:
            raise _SliceExit()
        if scheduler.peek() is None:
            raise _SliceExit()
        nxt = scheduler.pick()
        self._switch_to(nxt)
        self._slice_before = machine.instret
        self._slice_start_cycles = machine.cycles
        self._in_guest = True
        if machine.run_hooks:
            machine.run_hooks(machine, timeslice)
        force_step = bool(machine.force_stepping or machine._step_probes)
        return timeslice, force_step

    def _emit_slice(self, proc: Process, start: float, end: float,
                    instructions: int, reason: str) -> None:
        if self.tracer is None:
            return
        if proc.state == ProcessState.BLOCKED:
            reason = "block"
        self.tracer.emit(ContextSwitch(ts=start, pid=proc.pid,
                                       dur=end - start,
                                       instructions=instructions,
                                       reason=reason))

    def _check_instruction_quota(self, proc: Process) -> None:
        quota = self.quotas.get(proc.pid)
        if quota is None or quota.max_instructions is None \
                or proc.state == ProcessState.ZOMBIE:
            return
        if proc.instructions > quota.max_instructions:
            self._fault(
                proc, "quota",
                f"instruction budget exceeded "
                f"({proc.instructions} > {quota.max_instructions})",
                status=128 + 9,  # SIGKILL-style status
            )

    # -- observability ----------------------------------------------------------

    def stdout_of(self, proc: Process) -> str:
        obj = proc.fds.get(1)
        if isinstance(obj, StdStream):
            return obj.text()
        return ""

    def virtual_ns(self) -> float:
        if self.model is None:
            return float(self.machine.instret)
        return self.machine.cycles * self.model.ns_per_cycle()

    @property
    def cycles(self) -> float:
        return self.machine.cycles

"""Round-robin preemptive scheduler (paper §5.3).

The real runtime uses ``setitimer`` alarm signals for preemption; the
emulator equivalent is an instruction *fuel* slice — when a sandbox
exhausts its slice the machine raises ``OutOfFuel`` and the scheduler picks
the next runnable process.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from .process import Process, ProcessState

__all__ = ["Scheduler"]


class Scheduler:
    """FIFO run queue with requeue-on-preempt semantics."""

    def __init__(self, timeslice: int = 50_000):
        #: Instructions per scheduling quantum (the "timer interval").
        self.timeslice = timeslice
        self._queue: Deque[Process] = deque()

    def add(self, proc: Process) -> None:
        proc.state = ProcessState.READY
        self._queue.append(proc)

    def add_front(self, proc: Process) -> None:
        """Schedule next (used by the direct-invoke yield fast path)."""
        proc.state = ProcessState.READY
        self._queue.appendleft(proc)

    def pick(self) -> Optional[Process]:
        """Next runnable process, skipping stale entries."""
        while self._queue:
            proc = self._queue.popleft()
            if proc.state == ProcessState.READY:
                proc.state = ProcessState.RUNNING
                return proc
        return None

    def requeue(self, proc: Process) -> None:
        self.add(proc)

    def __len__(self) -> int:
        return sum(1 for p in self._queue if p.state == ProcessState.READY)

    @property
    def empty(self) -> bool:
        return len(self) == 0

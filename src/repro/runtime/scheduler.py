"""Epoch-fair preemptive scheduler (paper §5.3).

The real runtime uses ``setitimer`` alarm signals for preemption; the
emulator equivalent is an instruction *fuel* slice — when a sandbox
exhausts its slice the machine raises ``OutOfFuel`` and the scheduler picks
the next runnable process.

The run queue is a two-queue round-robin (an *active* queue for processes
that have not had their turn this scheduling round, and an *expired* queue
for processes that have).  This hardens the seed's plain FIFO against a
starvation hole: a call-heavy sandbox used to be re-inserted at the front
after every runtime call and could be picked an unbounded number of times
between two picks of its neighbour.  Under the epoch discipline:

* every ready process is picked at most once per round, so no ready
  process waits more than ``len(queue)`` picks for its turn;
* :meth:`add_front` (the direct-invoke yield fast path) still runs the
  target *next* when its turn for the round is unspent — the ~50-cycle
  IPC path is unchanged — but a process that already ran this round goes
  to the back of the next round instead of cutting the line again.

``tests/test_scheduler.py`` checks both properties under randomized
interleavings (hypothesis, ``slow``-marked).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Set

from .process import Process, ProcessState

__all__ = ["Scheduler"]


class Scheduler:
    """Two-queue epoch round-robin with requeue-on-preempt semantics."""

    def __init__(self, timeslice: int = 50_000):
        #: Instructions per scheduling quantum (the "timer interval").
        self.timeslice = timeslice
        self._active: Deque[Process] = deque()
        self._expired: Deque[Process] = deque()
        #: Monotonic round counter, bumped when the active queue drains.
        self._epoch = 0
        #: pid -> epoch of the most recent pick (the "turn spent" record).
        self._picked: Dict[int, int] = {}
        #: pids currently enqueued (each process appears at most once).
        self._queued: Set[int] = set()

    # -- introspection (used by the fairness property tests) ------------------

    @property
    def epoch(self) -> int:
        return self._epoch

    def turn_spent(self, proc: Process) -> bool:
        """Whether ``proc`` has already been picked this round."""
        return self._picked.get(proc.pid) == self._epoch

    # -- enqueueing -----------------------------------------------------------

    def add(self, proc: Process) -> None:
        proc.state = ProcessState.READY
        if proc.pid in self._queued:
            return
        self._queued.add(proc.pid)
        if self.turn_spent(proc):
            self._expired.append(proc)
        else:
            self._active.append(proc)

    def add_front(self, proc: Process) -> None:
        """Schedule next (used by the direct-invoke yield fast path).

        Honored immediately when ``proc`` has not yet run this round;
        otherwise the process has spent its turn and joins the back of the
        next round — front-of-queue privilege is bounded to once per round
        so it can never starve the other ready processes.
        """
        proc.state = ProcessState.READY
        if self.turn_spent(proc):
            if proc.pid not in self._queued:
                self._queued.add(proc.pid)
                self._expired.append(proc)
            return
        if proc.pid in self._queued:
            self._dequeue(proc)
        self._queued.add(proc.pid)
        self._active.appendleft(proc)

    def requeue(self, proc: Process) -> None:
        self.add(proc)

    def _dequeue(self, proc: Process) -> None:
        for queue in (self._active, self._expired):
            try:
                queue.remove(proc)
                return
            except ValueError:
                continue

    # -- picking --------------------------------------------------------------

    def peek(self) -> Optional[Process]:
        """The process :meth:`pick` would return, with no state change.

        Used by the superblock springboard fast path to decide whether
        translated execution can resume inline: it must not perturb the
        queues, the epoch counter, or the turn records, so a run paused
        here checkpoints byte-identically to the stepping engine's.
        """
        for queue in (self._active, self._expired):
            for proc in queue:
                if proc.state == ProcessState.READY:
                    return proc
        return None

    def pick(self) -> Optional[Process]:
        """Next runnable process, skipping stale entries."""
        while True:
            if not self._active:
                if not self._expired:
                    return None
                self._active, self._expired = self._expired, self._active
                self._epoch += 1
            proc = self._active.popleft()
            self._queued.discard(proc.pid)
            if proc.state == ProcessState.READY:
                proc.state = ProcessState.RUNNING
                self._picked[proc.pid] = self._epoch
                return proc

    def forget(self, proc: Process) -> None:
        """Drop a reaped process's bookkeeping (long-lived runtimes)."""
        self._picked.pop(proc.pid, None)

    # -- checkpoint support ---------------------------------------------------

    def capture_order(self, pids) -> dict:
        """Queue membership, order, and epoch position for ``pids``.

        Epochs are recorded relative to the current round (``0`` = turn
        spent this round), so the state is meaningful in a scheduler whose
        absolute epoch counter differs — restore re-anchors against the
        destination's round.
        """
        return {
            "active": [p.pid for p in self._active if p.pid in pids],
            "expired": [p.pid for p in self._expired if p.pid in pids],
            "picked": {pid: self._epoch - epoch
                       for pid, epoch in self._picked.items()
                       if pid in pids},
        }

    def restore_order(self, state: dict, procs: Dict[int, Process]) -> None:
        """Re-enqueue ``procs`` (old pid -> Process) exactly as captured.

        Appends preserve the captured relative order; a worker scheduler
        holds only the one job's processes, so the restored queues are
        byte-equivalent to the uninterrupted run's.
        """
        for old_pid in state["active"]:
            proc = procs[old_pid]
            self._queued.add(proc.pid)
            self._active.append(proc)
        for old_pid in state["expired"]:
            proc = procs[old_pid]
            self._queued.add(proc.pid)
            self._expired.append(proc)
        for old_pid, delta in state["picked"].items():
            self._picked[procs[old_pid].pid] = self._epoch - delta

    def __len__(self) -> int:
        return sum(1 for p in self._active if p.state == ProcessState.READY) \
            + sum(1 for p in self._expired if p.state == ProcessState.READY)

    @property
    def empty(self) -> bool:
        return len(self) == 0

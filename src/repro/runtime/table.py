"""The runtime-call table (paper §4.4).

The first page of every sandbox is a read-only table of runtime entry
point addresses.  A sandboxed program calls the runtime with::

    ldr x30, [x21, #8*CALL]
    blr x30

No trampoline and no reserved register are needed: ``x21`` already points
at the sandbox base, and the verifier permits exactly this pattern.  The
entry addresses point *outside* every sandbox — into the runtime's
dedicated region — and the emulator traps the branch there, exactly as real
LFI transfers control to runtime code.

Since the table page sits before the guard region it is readable by the
neighbouring sandbox, so it must not contain sandbox-specific secrets: the
same entry addresses are used for every sandbox.  Unused entries point to
an unmapped page so a stray call traps.
"""

from __future__ import annotations

import struct
from typing import Dict

from ..memory.layout import MAX_SANDBOXES_48BIT, PAGE_SIZE, SANDBOX_SIZE

__all__ = ["RuntimeCall", "RUNTIME_REGION_BASE", "HOST_ENTRY_BASE",
           "UNMAPPED_ENTRY", "BATCH_RECORD_SIZE", "BATCH_MAX_RECORDS",
           "entry_address", "call_for_entry", "build_table_page",
           "table_offset"]


class RuntimeCall:
    """Runtime call numbers (table slot indices)."""

    EXIT = 0
    OPEN = 1
    CLOSE = 2
    READ = 3
    WRITE = 4
    LSEEK = 5
    BRK = 6
    MMAP = 7
    MUNMAP = 8
    FORK = 9
    WAIT = 10
    GETPID = 11
    PIPE = 12
    YIELD = 13
    YIELD_TO = 14
    CLOCK = 15
    UNLINK = 16
    BATCH = 17

    ALL = tuple(range(18))
    NAMES = {
        EXIT: "exit", OPEN: "open", CLOSE: "close", READ: "read",
        WRITE: "write", LSEEK: "lseek", BRK: "brk", MMAP: "mmap",
        MUNMAP: "munmap", FORK: "fork", WAIT: "wait", GETPID: "getpid",
        PIPE: "pipe", YIELD: "yield", YIELD_TO: "yield_to", CLOCK: "clock",
        UNLINK: "unlink", BATCH: "batch",
    }


#: Byte size of one BATCH record: eight little-endian u64 words
#: ``[call, a0, a1, a2, a3, a4, a5, result]`` — see
#: :func:`repro.runtime.syscalls.rt_batch` for the exact layout.
BATCH_RECORD_SIZE = 64

#: Maximum records serviceable by one BATCH crossing.
BATCH_MAX_RECORDS = 64


#: The last 4GiB slot of the 48-bit space is dedicated to the runtime
#: (paper §3: "one sandbox region may need to be dedicated to the runtime").
RUNTIME_REGION_BASE = (MAX_SANDBOXES_48BIT - 1) * SANDBOX_SIZE

#: Runtime entry points live at the start of the runtime region.
HOST_ENTRY_BASE = RUNTIME_REGION_BASE

#: Unused table entries point at an unmapped page inside the runtime
#: region, so calling them faults.
UNMAPPED_ENTRY = RUNTIME_REGION_BASE + SANDBOX_SIZE - PAGE_SIZE


def entry_address(call: int) -> int:
    """Host entry-point address for a runtime call number."""
    return HOST_ENTRY_BASE + call * 8


def call_for_entry(address: int) -> int:
    """Inverse of :func:`entry_address`."""
    return (address - HOST_ENTRY_BASE) // 8


def table_offset(call: int) -> int:
    """Byte offset of a call's entry within the sandbox's first page."""
    return call * 8


def build_table_page() -> bytes:
    """The read-only first page: entry addresses, then unmapped fillers."""
    entries = PAGE_SIZE // 8
    out = bytearray()
    for slot in range(entries):
        if slot in RuntimeCall.ALL:
            out += struct.pack("<Q", entry_address(slot))
        else:
            out += struct.pack("<Q", UNMAPPED_ENTRY)
    return bytes(out)

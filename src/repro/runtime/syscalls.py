"""Runtime call handlers: a small Unix-like OS inside one process (§5.3).

Each handler receives the runtime and the calling process (whose registers
were just saved), reads arguments from ``x0``-``x5``, and returns either an
integer result (negative errno on failure), or one of the control sentinels
``BLOCK`` (the caller must sleep and retry), ``SWITCH`` (the handler
already completed the call and rearranged the run queue), or ``EXITED``.

File-access calls end up in the VFS ("often end up making a system call to
Linux" in the paper); process-management calls (fork/wait/yield/pipe) are
handled *internally*, with no host involvement — the source of LFI's
syscall speedup.
"""

from __future__ import annotations

import errno
from typing import Callable, Dict

from ..memory.layout import PAGE_SIZE
from ..memory.pages import MemoryFault, PERM_RW
from .process import Process, ProcessState, StdStream
from .table import BATCH_MAX_RECORDS, BATCH_RECORD_SIZE, RuntimeCall
from ..errors import VfsError
from .vfs import FileHandle, PipeEnd, Pipe

__all__ = ["BLOCK", "SWITCH", "EXITED", "HANDLERS", "BATCHABLE"]

BLOCK = object()
SWITCH = object()
EXITED = object()

_MASK64 = (1 << 64) - 1


def _args(proc: Process):
    regs = proc.registers["regs"]
    return regs[0], regs[1], regs[2], regs[3], regs[4], regs[5]


def _signed(value: int) -> int:
    return value - (1 << 64) if value >> 63 else value


def rt_exit(runtime, proc: Process):
    status, *_ = _args(proc)
    runtime.terminate(proc, status & 0xFF)
    return EXITED


def rt_open(runtime, proc: Process):
    path_ptr, flags, _mode, *_ = _args(proc)
    if not runtime.fd_slots_free(proc, 1):
        return -errno.EMFILE
    try:
        path = runtime.memory.read_cstring(proc.pointer(path_ptr)).decode()
        handle = runtime.vfs.open(path, flags)
    except VfsError as exc:
        return -exc.err
    except Exception:
        return -errno.EFAULT
    fd = proc.next_fd()
    proc.fds[fd] = handle
    return fd


def rt_close(runtime, proc: Process):
    fd, *_ = _args(proc)
    obj = proc.fds.pop(fd, None)
    if obj is None:
        return -errno.EBADF
    if isinstance(obj, PipeEnd):
        obj.close()
        runtime.wake_pipe_waiters(obj.pipe)
    return 0


def rt_read(runtime, proc: Process):
    fd, buf, count, *_ = _args(proc)
    obj = proc.fds.get(fd)
    if obj is None:
        return -errno.EBADF
    count = min(count, 1 << 20)
    try:
        if isinstance(obj, PipeEnd):
            data = obj.read(count)
            if data is None:
                proc.block_pipe = obj.pipe
                return BLOCK
        else:
            data = obj.read(count)
    except VfsError as exc:
        return -exc.err
    if data:
        runtime.memory.write(proc.pointer(buf), data)
    return len(data)


def rt_write(runtime, proc: Process):
    fd, buf, count, *_ = _args(proc)
    obj = proc.fds.get(fd)
    if obj is None:
        return -errno.EBADF
    count = min(count, 1 << 20)
    data = runtime.memory.read(proc.pointer(buf), count) if count else b""
    try:
        if isinstance(obj, PipeEnd):
            written = obj.write(data)
            if written is None:
                proc.block_pipe = obj.pipe
                return BLOCK
            runtime.wake_pipe_waiters(obj.pipe)
            return written
        return obj.write(data)
    except VfsError as exc:
        return -exc.err


def rt_lseek(runtime, proc: Process):
    fd, offset, whence, *_ = _args(proc)
    obj = proc.fds.get(fd)
    if not isinstance(obj, FileHandle):
        return -errno.ESPIPE if obj is not None else -errno.EBADF
    try:
        return obj.seek(_signed(offset), whence)
    except VfsError as exc:
        return -exc.err


def rt_brk(runtime, proc: Process):
    addr, *_ = _args(proc)
    if addr == 0:
        return proc.brk & _MASK64
    new = proc.pointer(addr)
    limit = proc.layout.usable_end - runtime.stack_size - PAGE_SIZE
    if new < proc.heap_start or new > limit:
        return -errno.ENOMEM
    old_top = (proc.brk + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
    new_top = (new + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
    if new_top > old_top:
        if not runtime.pages_quota_allows(
                proc, (new_top - old_top) // PAGE_SIZE):
            return -errno.ENOMEM
        runtime.memory.map_region(old_top, new_top - old_top, PERM_RW)
    proc.brk = new
    return new & _MASK64


def rt_mmap(runtime, proc: Process):
    _addr, length, _prot, _flags, _fd, _off = _args(proc)
    if length == 0:
        return -errno.EINVAL
    length = (length + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
    if not runtime.pages_quota_allows(proc, length // PAGE_SIZE):
        return -errno.ENOMEM
    base = runtime.mmap_allocate(proc, length)
    if base is None:
        return -errno.ENOMEM
    runtime.memory.map_region(base, length, PERM_RW)
    return base & _MASK64


def rt_munmap(runtime, proc: Process):
    addr, length, *_ = _args(proc)
    addr = proc.pointer(addr)
    length = (length + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
    if addr % PAGE_SIZE:
        return -errno.EINVAL
    lo = proc.layout.usable_base
    hi = proc.layout.usable_end
    if addr < lo or addr + length > hi:
        return -errno.EINVAL
    runtime.memory.unmap(addr, length)
    runtime.machine.invalidate_code(addr, length)
    return 0


def rt_fork(runtime, proc: Process):
    child = runtime.fork(proc)
    if child is None:
        return -errno.EAGAIN
    return child.pid


def rt_wait(runtime, proc: Process):
    status_ptr, *_ = _args(proc)
    zombies = [
        runtime.processes[pid]
        for pid in proc.children
        if runtime.processes[pid].state == ProcessState.ZOMBIE
    ]
    if not zombies:
        if not proc.children:
            return -errno.ECHILD
        return BLOCK
    child = zombies[0]
    proc.children.remove(child.pid)
    runtime.reap(child)
    if status_ptr:
        runtime.memory.write_u32(proc.pointer(status_ptr),
                                 child.exit_code or 0)
    return child.pid


def rt_getpid(runtime, proc: Process):
    return proc.pid


def rt_pipe(runtime, proc: Process):
    fds_ptr, *_ = _args(proc)
    if not runtime.fd_slots_free(proc, 2):
        return -errno.EMFILE
    pipe = Pipe()
    r, w = proc.next_fd(), None
    proc.fds[r] = pipe.read_end()
    w = proc.next_fd()
    proc.fds[w] = pipe.write_end()
    runtime.memory.write_u32(proc.pointer(fds_ptr), r)
    runtime.memory.write_u32(proc.pointer(fds_ptr) + 4, w)
    return 0


def rt_yield(runtime, proc: Process):
    runtime.complete_call(proc, 0)
    runtime.scheduler.requeue(proc)
    return SWITCH


def rt_yield_to(runtime, proc: Process):
    """Direct cross-sandbox invocation: the microkernel-style IPC fast path
    (§5.3).  Only callee-saved registers survive; the target runs next."""
    target_pid, *_ = _args(proc)
    target = runtime.processes.get(target_pid)
    if target is None or target.state == ProcessState.ZOMBIE:
        return -errno.ESRCH
    runtime.complete_call(proc, 0)
    runtime.scheduler.requeue(proc)
    if target.state == ProcessState.READY:
        runtime.scheduler.add_front(target)
    return SWITCH


def rt_clock(runtime, proc: Process):
    """Nanoseconds of virtual time (cycle model at the machine frequency)."""
    return int(runtime.virtual_ns()) & _MASK64


#: Calls serviceable inside one BATCH crossing.  Excluded are the calls
#: that terminate, fork, or reschedule the caller (EXIT/FORK/WAIT/YIELD/
#: YIELD_TO) and BATCH itself — those need the full dispatch path.
BATCHABLE = frozenset({
    RuntimeCall.OPEN, RuntimeCall.CLOSE, RuntimeCall.READ,
    RuntimeCall.WRITE, RuntimeCall.LSEEK, RuntimeCall.BRK,
    RuntimeCall.MMAP, RuntimeCall.MUNMAP, RuntimeCall.GETPID,
    RuntimeCall.PIPE, RuntimeCall.CLOCK, RuntimeCall.UNLINK,
})


def rt_batch(runtime, proc: Process):
    """Vectored runtime calls: many crossings for one transition (§15).

    ``x0`` points at an array of ``x1`` 64-byte records, each eight
    little-endian u64 words ``[call, a0, a1, a2, a3, a4, a5, result]``.
    Every record is serviced in order through the ordinary handlers and
    its result word written back; the whole batch costs one transition
    (one ``CALL_OVERHEAD_CYCLES`` charge in :meth:`Runtime._dispatch`).

    A record whose call would block returns ``-EAGAIN`` in its result
    word instead of sleeping — batches never block.  Non-batchable or
    unknown call numbers yield ``-ENOSYS`` per record.  The return value
    is the number of records serviced, or a negative errno if the batch
    itself is malformed.
    """
    if not getattr(runtime, "batch_abi", True):
        return -errno.ENOSYS
    buf, count, *_ = _args(proc)
    if count > BATCH_MAX_RECORDS:
        return -errno.EINVAL
    regs = proc.registers["regs"]
    saved = regs[:6]
    try:
        for i in range(count):
            rec = proc.pointer(buf) + i * BATCH_RECORD_SIZE
            try:
                raw = runtime.memory.read(rec, BATCH_RECORD_SIZE)
            except MemoryFault:
                return -errno.EFAULT
            words = [int.from_bytes(raw[j * 8:j * 8 + 8], "little")
                     for j in range(8)]
            call = words[0]
            if call not in BATCHABLE:
                result = -errno.ENOSYS
            else:
                regs[0:6] = words[1:7]
                proc.block_pipe = None
                result = HANDLERS[call](runtime, proc)
                if result is BLOCK:
                    proc.block_pipe = None
                    result = -errno.EAGAIN
            runtime.memory.write(
                rec + 56, (result & _MASK64).to_bytes(8, "little"))
        return count
    finally:
        regs[0:6] = saved


def rt_unlink(runtime, proc: Process):
    path_ptr, *_ = _args(proc)
    try:
        path = runtime.memory.read_cstring(proc.pointer(path_ptr)).decode()
        runtime.vfs.unlink(path)
    except VfsError as exc:
        return -exc.err
    return 0


HANDLERS: Dict[int, Callable] = {
    RuntimeCall.EXIT: rt_exit,
    RuntimeCall.OPEN: rt_open,
    RuntimeCall.CLOSE: rt_close,
    RuntimeCall.READ: rt_read,
    RuntimeCall.WRITE: rt_write,
    RuntimeCall.LSEEK: rt_lseek,
    RuntimeCall.BRK: rt_brk,
    RuntimeCall.MMAP: rt_mmap,
    RuntimeCall.MUNMAP: rt_munmap,
    RuntimeCall.FORK: rt_fork,
    RuntimeCall.WAIT: rt_wait,
    RuntimeCall.GETPID: rt_getpid,
    RuntimeCall.PIPE: rt_pipe,
    RuntimeCall.YIELD: rt_yield,
    RuntimeCall.YIELD_TO: rt_yield_to,
    RuntimeCall.CLOCK: rt_clock,
    RuntimeCall.UNLINK: rt_unlink,
    RuntimeCall.BATCH: rt_batch,
}

"""Branch range fixing (paper §5.1 "Difficulties").

``tbz``/``tbnz`` reach only ±32KiB.  Inserting guard instructions can push
a target out of range, so after rewriting we conservatively estimate every
test-branch's distance and, when it approaches the limit, replace

    tbz x0, #3, target          tbnz x0, #3, .Llfi_skip_N
                         ==>    b target
                                .Llfi_skip_N:

The estimate is recomputed to a fixed point since each fix adds code.
"""

from __future__ import annotations

from typing import Dict, List

from ..arm64.instructions import Instruction, ins
from ..arm64.operands import Label
from ..arm64.program import DATA_DIRECTIVES, Directive, LabelDef, Program

__all__ = ["fix_branch_ranges", "TB_RANGE"]

#: Architectural reach of tbz/tbnz.
TB_RANGE = 1 << 15
#: Conservative margin: fix anything within 4KiB of the limit.
_THRESHOLD = TB_RANGE - 4096


def _item_bytes(item) -> int:
    if isinstance(item, Instruction):
        return 4
    if isinstance(item, Directive):
        if item.name in DATA_DIRECTIVES:
            return DATA_DIRECTIVES[item.name] * max(1, len(item.args))
        if item.name in (".skip", ".space", ".zero"):
            return int(item.args[0], 0)
        if item.name in (".align", ".p2align"):
            return (1 << int(item.args[0], 0)) - 1  # worst case padding
        if item.name == ".balign":
            return int(item.args[0], 0) - 1
    return 0


def _layout(program: Program) -> Dict[str, int]:
    """Conservative byte offset of each label (single flat estimate)."""
    offsets: Dict[str, int] = {}
    cursor = 0
    for item in program.items:
        if isinstance(item, LabelDef):
            offsets[item.name] = cursor
        else:
            cursor += _item_bytes(item)
    return offsets


def fix_branch_ranges(program: Program, threshold: int = _THRESHOLD) -> int:
    """Rewrite out-of-range test branches in place; returns the fix count."""
    fixes = 0
    counter = 0
    changed = True
    while changed:
        changed = False
        labels = _layout(program)
        cursor = 0
        new_items: List = []
        for item in program.items:
            if (isinstance(item, Instruction)
                    and item.mnemonic in ("tbz", "tbnz")):
                target = item.branch_target()
                if target is not None and target.name in labels:
                    distance = labels[target.name] - cursor
                    if abs(distance) >= threshold:
                        inverted = "tbnz" if item.mnemonic == "tbz" else "tbz"
                        skip = f".Llfi_tbfix_{counter}"
                        counter += 1
                        new_items.append(
                            ins(inverted, item.operands[0], item.operands[1],
                                Label(skip))
                        )
                        new_items.append(ins("b", target))
                        new_items.append(LabelDef(skip))
                        cursor += 8
                        fixes += 1
                        changed = True
                        continue
            new_items.append(item)
            cursor += _item_bytes(item)
        program.items = new_items
    return fixes

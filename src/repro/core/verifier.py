"""The LFI static verifier (paper §5.2).

A single linear pass over the text segment's *machine code* that enforces:

1. loads, stores, and indirect branches only target reserved registers
   (guaranteed to hold valid sandbox addresses) or use safe addressing
   modes;
2. reserved registers are only modified in invariant-preserving ways
   (x21 never; x18/x23/x24 only via the ``add xR, x21, wN, uxtw`` guard;
   x22 only with 32-bit writes; sp and x30 via their dedicated guard
   patterns);
3. only instructions from the premade safe-ARMv8.0 allowlist appear —
   anything the decoder does not recognize is rejected.

The verifier is the trusted half of the system: the rewriter (like the
compiler that feeds it) is *untrusted*, and nothing here depends on knowing
how the rewriter works — e.g. hoisted access runs verify with the same two
rules that verify everything else (§4.3).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..arm64 import isa
from ..arm64.decoder import decode_word
from ..arm64.instructions import Instruction
from ..arm64.operands import Extended, Imm, Mem, OFFSET
from ..arm64.registers import Reg
from ..errors import VerificationError as _VerificationError
from .constants import (
    ADDRESS_INDICES,
    BRANCH_TARGET_INDICES,
    MAX_IMM_DISPLACEMENT,
    RESERVED_INDICES,
    SP_SMALL_IMM,
)

__all__ = ["Violation", "VerificationResult", "VerifierPolicy", "Verifier",
           "verify_text", "verify_elf"]


#: Ordered (substring, code) table mapping human-readable violation
#: reasons to stable machine-readable codes.  First match wins, so more
#: specific patterns come first.  Prover and fuzz tooling key on these
#: codes instead of parsing prose.
_REASON_CODES = (
    ("undecodable instruction", "undecodable"),
    ("text size not a multiple", "text-size"),
    ("not on the safe list", "unsafe-mnemonic"),
    ("disallowed by policy", "exclusives-disallowed"),
    ("writeback would modify reserved register", "writeback-reserved"),
    ("writeback would modify x21", "writeback-x21"),
    ("register-offset addressing from sp", "sp-regoffset"),
    ("sp displacement", "sp-displacement"),
    ("register-offset addressing from", "regoffset-reserved"),
    ("unsafe extend", "unsafe-extend"),
    ("store through x21", "store-x21"),
    ("negative displacement from x21", "x21-negative"),
    ("x21 displacement", "x21-displacement"),
    ("unsafe addressing from x21", "x21-addressing"),
    ("displacement", "displacement"),
    ("unguarded base register", "unguarded-base"),
    ("load writes x21", "load-x21"),
    ("load writes reserved register", "load-reserved"),
    ("64-bit load writes x22", "load-x22-64"),
    ("32-bit write to link register", "x30-32bit-write"),
    ("load writes x30 without", "load-x30-unguarded"),
    ("malformed indirect branch", "branch-malformed"),
    ("indirect branch through unguarded", "branch-unguarded"),
    ("write to x21", "write-x21"),
    ("64-bit write to x22", "write-x22-64"),
    ("modified by something other than the guard", "unguarded-write"),
    ("sp arithmetic without a following sp access", "sp-arith-unclosed"),
    ("unsafe sp modification", "sp-unsafe"),
    ("memory instruction without memory operand", "malformed-memory"),
)


@dataclass(frozen=True)
class Violation:
    """One verification failure.

    ``disasm`` carries the decoded instruction's disassembly and ``mode``
    the verifier policy label, so reports are actionable without
    re-decoding the word or knowing which policy produced them.  Both
    default to empty for compatibility with positional construction.
    """

    address: int
    word: int
    reason: str
    disasm: str = ""
    mode: str = ""

    @property
    def code(self) -> str:
        """Stable machine-readable code for the reason category."""
        for pattern, code in _REASON_CODES:
            if pattern in self.reason:
                return code
        return "other"

    def __str__(self) -> str:
        text = f"{self.address:#x}: {self.word:#010x}: "
        if self.disasm:
            text += f"{self.disasm}: "
        text += self.reason
        if self.mode:
            text += f" [{self.mode}]"
        return text


@dataclass(frozen=True)
class VerifierPolicy:
    """Knobs for the verifier.

    ``allow_exclusives=False`` implements the §7.1 hardening example:
    LL/SC instructions (usable for timerless side channels) are simply
    disallowed by the verifier.
    """

    allow_exclusives: bool = True
    #: Maximum immediate displacement covered by the guard regions.
    max_displacement: int = MAX_IMM_DISPLACEMENT
    #: When False, load addressing is not checked (the paper's "no loads"
    #: fault-isolation-only mode, §6.1); stores, indirect branches, and all
    #: register invariants are still enforced.
    sandbox_loads: bool = True

    def label(self) -> str:
        """Short human-readable mode label for reports and violations."""
        text = "sandbox" if self.sandbox_loads else "store-only"
        if not self.allow_exclusives:
            text += "+no-exclusives"
        return text


@dataclass
class VerificationResult:
    ok: bool
    violations: List[Violation] = field(default_factory=list)
    instructions: int = 0
    bytes_verified: int = 0

    def raise_if_failed(self) -> None:
        if not self.ok:
            summary = "; ".join(str(v) for v in self.violations[:5])
            raise _VerificationError(
                f"{len(self.violations)} violation(s): {summary}"
            )



def _is_guard(inst: Instruction, dest_index: int) -> bool:
    """Is this exactly ``add x<dest>, x21, wN, uxtw`` (the §3 guard)?"""
    if inst.mnemonic != "add" or len(inst.operands) != 3:
        return False
    rd, rn, ext = inst.operands
    if not (isinstance(rd, Reg) and rd.is_gpr and rd.bits == 64
            and rd.index == dest_index):
        return False
    if not (isinstance(rn, Reg) and rn.is_gpr and rn.index == 21
            and rn.bits == 64):
        return False
    return (isinstance(ext, Extended) and ext.kind == "uxtw"
            and not ext.amount and ext.reg.bits == 32)


def _is_masked_index(inst: Instruction) -> bool:
    """Is this exactly ``bic w18, wN, w25`` (the §16 poison mask)?"""
    if inst.mnemonic != "bic" or len(inst.operands) != 3:
        return False
    rd, rn, rm = inst.operands
    if not (isinstance(rd, Reg) and rd.is_gpr and rd.bits == 32
            and rd.index == 18):
        return False
    if not (isinstance(rn, Reg) and rn.is_gpr and rn.bits == 32):
        return False
    return (isinstance(rm, Reg) and rm.is_gpr and rm.bits == 32
            and rm.index == 25)


def _is_sp_guard(inst: Instruction) -> bool:
    """Is this exactly ``add sp, x21, x22`` (§4.2)?"""
    if inst.mnemonic != "add" or len(inst.operands) != 3:
        return False
    rd, rn, src = inst.operands
    if not (isinstance(rd, Reg) and rd.is_sp and rd.bits == 64):
        return False
    if not (isinstance(rn, Reg) and rn.is_gpr and rn.index == 21):
        return False
    if isinstance(src, Reg):
        return src.index == 22 and src.bits == 64
    return (isinstance(src, Extended) and src.reg.index == 22
            and src.reg.bits == 64 and src.kind in ("uxtx", "lsl")
            and not src.amount)


class Verifier:
    """Stateless linear verifier over a decoded instruction stream."""

    def __init__(self, policy: Optional[VerifierPolicy] = None):
        self.policy = policy or VerifierPolicy()

    # -- public API ----------------------------------------------------------

    def verify_text(self, data: bytes, base: int = 0) -> VerificationResult:
        """Verify one text segment (a single linear pass)."""
        result = VerificationResult(ok=True)
        if len(data) % 4:
            result.ok = False
            result.violations.append(
                Violation(base + len(data) - len(data) % 4, 0,
                          "text size not a multiple of 4")
            )
        words = [
            struct.unpack_from("<I", data, off)[0]
            for off in range(0, len(data) - len(data) % 4, 4)
        ]
        decoded = [decode_word(w, base + 4 * i) for i, w in enumerate(words)]
        for i, inst in enumerate(decoded):
            address = base + 4 * i
            word = words[i]
            if inst is None:
                self._fail(result, address, word, "undecodable instruction")
                continue
            for reason in self._check(inst, decoded, i):
                self._fail(result, address, word, reason, inst=inst)
            result.instructions += 1
        result.bytes_verified = len(words) * 4
        return result

    def verify_elf(self, image) -> VerificationResult:
        """Verify every executable segment of an ELF image."""
        result = VerificationResult(ok=True)
        for segment in image.segments:
            if not segment.flags & 0x1:  # PF_X
                continue
            part = self.verify_text(bytes(segment.data), segment.vaddr)
            result.instructions += part.instructions
            result.bytes_verified += part.bytes_verified
            result.violations.extend(part.violations)
            result.ok = result.ok and part.ok
        return result

    def check_instruction(self, inst: Instruction,
                          stream: Optional[Sequence[Optional[Instruction]]]
                          = None, index: int = 0) -> List[str]:
        """Per-instruction check entry point (used by ``repro.prove``).

        Returns the violation reasons for ``inst`` at position ``index``
        of ``stream`` (default: the instruction alone).  Empty list means
        the verifier accepts the instruction in that context.
        """
        if stream is None:
            stream = [inst]
        return list(self._check(inst, stream, index))

    # -- checks ---------------------------------------------------------------

    def _fail(self, result: VerificationResult, address: int, word: int,
              reason: str, inst: Optional[Instruction] = None) -> None:
        result.ok = False
        result.violations.append(Violation(
            address, word, reason,
            disasm=str(inst) if inst is not None else "",
            mode=self.policy.label()))

    def _check(self, inst: Instruction,
               stream: Sequence[Optional[Instruction]], i: int):
        m = inst.mnemonic
        if m not in isa.SAFE_MNEMONICS:
            yield f"instruction not on the safe list: {m}"
            return
        if not self.policy.allow_exclusives and (
            m in isa.EXCLUSIVE_MEMORY or m in ("ldar", "stlr")
        ):
            yield f"exclusive/ordered instruction disallowed by policy: {m}"
            return
        if inst.is_memory:
            if self.policy.sandbox_loads or not inst.is_load:
                yield from self._check_memory(inst, stream, i)
            elif inst.mem is not None and inst.mem.writes_back \
                    and inst.mem.base.index in RESERVED_INDICES | {30} \
                    and not inst.mem.base.is_sp and inst.mem.base.is_gpr:
                # Even unsandboxed loads must not move the sandbox base,
                # the 32-bit invariant register, a hoisting register, or
                # the link register via writeback (found by fuzzing: the
                # old ADDRESS_INDICES check let `ldr x0, [x21], #8`
                # through in no-loads mode).
                yield ("writeback would modify reserved register "
                       f"{inst.mem.base}")
            yield from self._check_memory_destinations(inst, stream, i)
            return
        if inst.is_indirect_branch:
            yield from self._check_indirect_branch(inst)
            return
        yield from self._check_register_writes(inst, stream, i)

    # Memory addressing safety (rule 1).

    def _check_memory(self, inst: Instruction,
                      stream: Sequence[Optional[Instruction]], i: int):
        mem = inst.mem
        if mem is None:
            yield "memory instruction without memory operand"
            return
        base = mem.base
        offset = mem.offset
        imm_ok = offset is None or isinstance(offset, Imm)
        displacement = abs(mem.imm_value)

        if base.is_sp:
            if not imm_ok:
                yield "register-offset addressing from sp"
            elif displacement >= self.policy.max_displacement:
                yield f"sp displacement {displacement} exceeds guard region"
            return

        if base.index in ADDRESS_INDICES and base.bits == 64 and base.is_gpr:
            if not imm_ok:
                yield f"register-offset addressing from {base}"
                return
            if displacement >= self.policy.max_displacement:
                yield f"displacement {displacement} exceeds guard region"
            if mem.writes_back:
                yield f"writeback would modify reserved register {base}"
            return

        if base.is_gpr and base.index == 21 and base.bits == 64:
            # Either the zero-instruction guard form, or a table read.
            if isinstance(offset, Extended):
                if (offset.kind == "uxtw" and not offset.amount
                        and offset.reg.bits == 32):
                    return  # the guarded addressing mode: always in-sandbox
                yield (f"unsafe extend {offset.kind}"
                       f" #{offset.amount or 0} from x21")
                return
            if imm_ok:
                if inst.is_store:
                    yield "store through x21 (runtime-call table is read-only)"
                elif mem.writes_back:
                    yield "writeback would modify x21"
                elif mem.imm_value < 0:
                    yield "negative displacement from x21"
                elif displacement >= self.policy.max_displacement:
                    yield f"x21 displacement {displacement} out of table"
                return
            yield f"unsafe addressing from x21: {mem}"
            return

        yield f"unguarded base register {base}"

    # Loads must not write reserved registers (rule 2, memory flavour).

    def _check_memory_destinations(self, inst: Instruction,
                                   stream: Sequence[Optional[Instruction]],
                                   i: int):
        mem = inst.mem
        written: List[Reg] = []
        if inst.is_load:
            written.extend(r for r in inst.transfer_regs if not r.is_vector)
        elif inst.mnemonic in ("stxr", "stlxr"):
            status = inst.operands[0]
            if isinstance(status, Reg) and not status.is_vector:
                written.append(status)
        for reg in written:
            idx = reg.index
            if idx == 21:
                yield "load writes x21"
            elif idx in (18, 23, 24):
                yield f"load writes reserved register x{idx}"
            elif idx == 22:
                if reg.bits == 64:
                    yield "64-bit load writes x22 (32-bit invariant)"
            elif idx == 30:
                if reg.bits == 32:
                    yield "32-bit write to link register"
                    continue
                if self._is_runtime_call(inst, stream, i):
                    continue
                nxt = stream[i + 1] if i + 1 < len(stream) else None
                if nxt is None or not _is_guard(nxt, 30):
                    yield ("load writes x30 without a following "
                           "link-register guard")

    def _is_runtime_call(self, inst: Instruction,
                         stream: Sequence[Optional[Instruction]],
                         i: int) -> bool:
        """``ldr x30, [x21, #n]`` followed by ``blr x30`` (§4.4)."""
        mem = inst.mem
        if inst.mnemonic != "ldr" or mem is None:
            return False
        if not (mem.base.is_gpr and mem.base.index == 21):
            return False
        if mem.mode != OFFSET or (
            mem.offset is not None and not isinstance(mem.offset, Imm)
        ):
            return False
        if not 0 <= mem.imm_value < self.policy.max_displacement:
            return False
        nxt = stream[i + 1] if i + 1 < len(stream) else None
        return (nxt is not None and nxt.mnemonic == "blr"
                and len(nxt.operands) == 1
                and isinstance(nxt.operands[0], Reg)
                and nxt.operands[0].index == 30)

    # Indirect branch targets (rule 1, branch flavour).

    def _check_indirect_branch(self, inst: Instruction):
        target = inst.operands[0] if inst.operands else None
        if target is None:  # bare ret == ret x30
            return
        if not isinstance(target, Reg) or target.is_vector \
                or target.bits != 64:
            yield f"malformed indirect branch {inst}"
            return
        if target.index not in BRANCH_TARGET_INDICES:
            yield f"indirect branch through unguarded register {target}"

    # Reserved register writes (rule 2).

    def _check_register_writes(self, inst: Instruction,
                               stream: Sequence[Optional[Instruction]],
                               i: int):
        for reg in inst.defs():
            if reg.is_vector:
                continue
            idx = reg.index
            if reg.is_sp:
                yield from self._check_sp_write(inst, stream, i)
            elif idx == 21:
                yield "write to x21 (sandbox base)"
            elif idx in (18, 23, 24):
                if reg.bits == 64 and _is_guard(inst, idx):
                    continue
                # The masked guard (§16): ``bic w18, wN, w25`` is
                # tolerated when the very next instruction is the x18
                # guard — nothing can execute in between, and even a
                # computed jump landing on the add still produces
                # x21 + uint32, a sandbox address.  Mirrors the x30
                # mov-then-guard tolerance below.
                if idx == 18 and _is_masked_index(inst):
                    nxt = stream[i + 1] if i + 1 < len(stream) else None
                    if nxt is not None and _is_guard(nxt, 18):
                        continue
                yield (f"x{idx} modified by something other than the "
                       f"guard: {inst}")
            elif idx == 22:
                if reg.bits != 32:
                    yield f"64-bit write to x22 breaks its invariant: {inst}"
            elif idx == 30:
                if inst.is_call:
                    continue  # bl/blr write pc+4: always in-sandbox
                if reg.bits == 64 and _is_guard(inst, 30):
                    continue
                # A plain write is tolerated when the very next instruction
                # re-establishes the invariant (the rewriter's mov-then-
                # guard pattern) — nothing can execute in between.
                nxt = stream[i + 1] if i + 1 < len(stream) else None
                if (reg.bits == 64 and nxt is not None
                        and _is_guard(nxt, 30)):
                    continue
                yield (f"x30 modified by something other than the "
                       f"guard: {inst}")

    def _check_sp_write(self, inst: Instruction,
                        stream: Sequence[Optional[Instruction]], i: int):
        if _is_sp_guard(inst):
            return
        m = inst.mnemonic
        small = False
        if m in ("add", "sub") and len(inst.operands) == 3:
            rd, rn, src = inst.operands
            # The 64-bit check matters: a 32-bit `add wsp, wsp, #imm`
            # truncates sp to its low 32 bits — an absolute address far
            # outside the sandbox — so it is never a "small drift"
            # (found by the ``repro.prove`` symbolic executor; pinned as
            # the ``sp-arith-32bit`` corpus entry).
            small = (isinstance(rn, Reg) and rn.is_sp
                     and rd.bits == 64
                     and isinstance(src, Imm)
                     and 0 <= src.value < SP_SMALL_IMM)
        if self._sp_reestablished(stream, i, allow_access=small):
            return
        if small:
            yield ("sp arithmetic without a following sp access in the "
                   "same basic block")
        else:
            yield f"unsafe sp modification: {inst}"

    def _sp_reestablished(self, stream: Sequence[Optional[Instruction]],
                          i: int, allow_access: bool) -> bool:
        """Scan forward: the sp invariant is restored if we reach the sp
        guard (``mov w22, wsp; add sp, x21, x22``) — or, for small drifts,
        a trapping sp-based memory access — before any branch or other sp
        modification (the §4.2 same-basic-block rules).

        The re-establishing access must itself use a *small* immediate:
        an access at ``sp + d`` only pins sp within ``|d|`` of the mapped
        region, so accepting an arbitrary in-guard displacement here
        would let sp drift by up to ``max_displacement`` per window and
        walk out of the guard band over enough windows (found by the
        ``repro.prove`` symbolic executor; pinned as the
        ``sp-arith-large-offset`` corpus entry)."""
        for nxt in stream[i + 1:]:
            if nxt is None:
                return False
            if _is_sp_guard(nxt):
                return True
            mem = nxt.mem
            if mem is not None and mem.base.is_sp:
                if allow_access:
                    return ((mem.offset is None
                             or isinstance(mem.offset, Imm))
                            and abs(mem.imm_value) < SP_SMALL_IMM)
                return False
            if any(d.is_sp for d in nxt.defs()):
                return False
            if nxt.is_branch:
                return False
        return False


def verify_text(data: bytes, base: int = 0,
                policy: Optional[VerifierPolicy] = None) -> VerificationResult:
    return Verifier(policy).verify_text(data, base)


def verify_elf(image, policy: Optional[VerifierPolicy] = None
               ) -> VerificationResult:
    return Verifier(policy).verify_elf(image)

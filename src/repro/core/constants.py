"""LFI reserved registers and invariants (paper §3).

LFI reserves five general-purpose registers:

* ``x21`` — the sandbox base address (never modified).
* ``x18`` — always contains a valid sandbox address (the guard scratch).
* ``x22`` — always contains a 32-bit value (top 32 bits zero).
* ``x23``, ``x24`` — always contain valid sandbox addresses (hoisting
  registers for redundant guard elimination, §4.3).

Two special registers carry invariants without being "reserved":

* ``x30`` — always a valid jump target within the sandbox.
* ``sp`` — always a valid address within the sandbox (or at most one guard
  region away, pending an access that will trap).
"""

from __future__ import annotations

from ..arm64.registers import SP, X

#: Sandbox base register (never written inside the sandbox).
BASE_REG = X[21]

#: Guard scratch: always a valid sandbox address.
SCRATCH_REG = X[18]

#: Always holds a zero-extended 32-bit value.
LO32_REG = X[22]

#: Hoisting registers for redundant guard elimination (§4.3).
HOIST_REGS = (X[23], X[24])

#: Speculation poison register (DESIGN.md §16): zero on every
#: architectural path, all-ones on the transient fall-through of a
#: mispredicted conditional branch.  Masked guards clear the index with
#: ``bic`` through it, so wrong-path addresses collapse to a constant.
#: Reserved only when ``speculation_hardening="mask"`` is selected.
POISON_REG = X[25]

#: All five reserved general-purpose registers.
RESERVED_REGS = frozenset({BASE_REG, SCRATCH_REG, LO32_REG, *HOIST_REGS})
RESERVED_INDICES = frozenset(r.index for r in RESERVED_REGS)

#: Registers guaranteed to hold valid sandbox addresses (safe to
#: dereference or jump through).
ADDRESS_REGS = frozenset({SCRATCH_REG, *HOIST_REGS})
ADDRESS_INDICES = frozenset(r.index for r in ADDRESS_REGS)

#: Registers an indirect branch may target: the address registers plus the
#: link register (x30), whose invariant is maintained separately.
BRANCH_TARGET_INDICES = ADDRESS_INDICES | {30}

#: Maximum immediate displacement reachable by any supported addressing
#: mode: imm12 (unsigned, scaled by up to 8/16) tops out at 32760+ bytes and
#: is covered by the 48KiB guard regions (paper §3).
MAX_IMM_DISPLACEMENT = 1 << 15

#: Unguarded sp arithmetic is allowed only for immediates below 2**10,
#: provided a trapping sp access follows in the same basic block (§4.2).
SP_SMALL_IMM = 1 << 10

"""Rewriter configuration: the paper's optimization levels (§6.1).

* **O0** — only the basic two-cycle ``add xA, xB, wC, uxtw`` guard;
  stack-pointer optimizations stay on (they are part of the base scheme).
* **O1** — zero-instruction guards: addressing modes are rewritten to use
  the guarded ``[x21, wN, uxtw]`` form (Table 3).
* **O2** — adds redundant guard elimination via hoisting registers (§4.3).
* ``sandbox_loads=False`` — the "no loads" variant: only stores and
  indirect branches are isolated (write-protection-only fault isolation).
* ``speculation_hardening`` — Spectre hardening (DESIGN.md §16):
  ``"fence"`` places ``dsb`` speculation barriers on every mispredictable
  edge; ``"mask"`` poisons transient fall-through paths and clears guard
  indices through x25 (SLH-style), converting ``ret`` to ``br x30`` so
  the return-stack predictor never engages.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["RewriteOptions", "O0", "O1", "O2", "O2_NO_LOADS",
           "O2_FENCE", "O2_MASK", "OPT_LEVELS"]


@dataclass(frozen=True)
class RewriteOptions:
    """Configuration for one rewriter run."""

    #: 0, 1, or 2 (paper §6.1 optimization levels).
    opt_level: int = 2
    #: Sandbox loads as well as stores (False = "no loads" variant).
    sandbox_loads: bool = True
    #: Reject LL/SC exclusives at rewrite time (Spectre/side-channel
    #: hardening knob, §7.1: the verifier can simply disallow exploitable
    #: instructions).
    allow_exclusives: bool = True
    #: Elide sp guards when a trapping access follows in the same basic
    #: block (§4.2).  Exposed for the ablation benchmark.
    sp_block_elision: bool = True
    #: Number of hoisting registers for redundant guard elimination
    #: (paper reserves two, x23 and x24, so two interleaved access runs
    #: per basic block can both be hoisted — §4.3).  Ablation knob.
    hoist_registers: int = 2
    #: Spectre hardening (DESIGN.md §16): ``None`` (off), ``"fence"``
    #: (speculation barriers on mispredictable edges), or ``"mask"``
    #: (poison-register index masking).
    speculation_hardening: Optional[str] = None

    def __post_init__(self):
        if self.opt_level not in (0, 1, 2):
            raise ValueError(f"bad opt level {self.opt_level}")
        if not 0 <= self.hoist_registers <= 2:
            raise ValueError(f"bad hoist register count "
                             f"{self.hoist_registers}")
        if self.speculation_hardening not in (None, "fence", "mask"):
            raise ValueError(f"bad speculation hardening "
                             f"{self.speculation_hardening!r}")

    @property
    def zero_instruction_guards(self) -> bool:
        # Masking needs an explicit bic+add guard sequence to clear the
        # index: a folded [x21, wN, uxtw] access has nowhere to mask.
        return self.opt_level >= 1 and self.speculation_hardening != "mask"

    @property
    def hoisting(self) -> bool:
        # Hoisted guards move the address computation away from the
        # access, so a transient window could reuse a stale hoist
        # register; masking disables hoisting rather than weaken it.
        return self.opt_level >= 2 and self.speculation_hardening != "mask"

    def with_(self, **kwargs) -> "RewriteOptions":
        return replace(self, **kwargs)

    @property
    def label(self) -> str:
        name = f"O{self.opt_level}"
        if not self.sandbox_loads:
            name += ", no loads"
        if self.speculation_hardening:
            name += f", {self.speculation_hardening}"
        return name


O0 = RewriteOptions(opt_level=0)
O1 = RewriteOptions(opt_level=1)
O2 = RewriteOptions(opt_level=2)
O2_NO_LOADS = RewriteOptions(opt_level=2, sandbox_loads=False)
O2_FENCE = RewriteOptions(opt_level=2, speculation_hardening="fence")
O2_MASK = RewriteOptions(opt_level=2, speculation_hardening="mask")

#: The four configurations of Figure 3 (the Spectre-hardened variants are
#: ablations on top, not part of the paper's figure).
OPT_LEVELS = (O0, O1, O2, O2_NO_LOADS)

"""Rewriter configuration: the paper's optimization levels (§6.1).

* **O0** — only the basic two-cycle ``add xA, xB, wC, uxtw`` guard;
  stack-pointer optimizations stay on (they are part of the base scheme).
* **O1** — zero-instruction guards: addressing modes are rewritten to use
  the guarded ``[x21, wN, uxtw]`` form (Table 3).
* **O2** — adds redundant guard elimination via hoisting registers (§4.3).
* ``sandbox_loads=False`` — the "no loads" variant: only stores and
  indirect branches are isolated (write-protection-only fault isolation).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["RewriteOptions", "O0", "O1", "O2", "O2_NO_LOADS", "OPT_LEVELS"]


@dataclass(frozen=True)
class RewriteOptions:
    """Configuration for one rewriter run."""

    #: 0, 1, or 2 (paper §6.1 optimization levels).
    opt_level: int = 2
    #: Sandbox loads as well as stores (False = "no loads" variant).
    sandbox_loads: bool = True
    #: Reject LL/SC exclusives at rewrite time (Spectre/side-channel
    #: hardening knob, §7.1: the verifier can simply disallow exploitable
    #: instructions).
    allow_exclusives: bool = True
    #: Elide sp guards when a trapping access follows in the same basic
    #: block (§4.2).  Exposed for the ablation benchmark.
    sp_block_elision: bool = True
    #: Number of hoisting registers for redundant guard elimination
    #: (paper reserves two, x23 and x24, so two interleaved access runs
    #: per basic block can both be hoisted — §4.3).  Ablation knob.
    hoist_registers: int = 2

    def __post_init__(self):
        if self.opt_level not in (0, 1, 2):
            raise ValueError(f"bad opt level {self.opt_level}")
        if not 0 <= self.hoist_registers <= 2:
            raise ValueError(f"bad hoist register count "
                             f"{self.hoist_registers}")

    @property
    def zero_instruction_guards(self) -> bool:
        return self.opt_level >= 1

    @property
    def hoisting(self) -> bool:
        return self.opt_level >= 2

    def with_(self, **kwargs) -> "RewriteOptions":
        return replace(self, **kwargs)

    @property
    def label(self) -> str:
        name = f"O{self.opt_level}"
        if not self.sandbox_loads:
            name += ", no loads"
        return name


O0 = RewriteOptions(opt_level=0)
O1 = RewriteOptions(opt_level=1)
O2 = RewriteOptions(opt_level=2)
O2_NO_LOADS = RewriteOptions(opt_level=2, sandbox_loads=False)

#: The four configurations of Figure 3.
OPT_LEVELS = (O0, O1, O2, O2_NO_LOADS)

"""The LFI assembly transformer (paper §5.1).

Consumes a parsed GNU-assembly :class:`Program` (as produced by an
off-the-shelf compiler) and inserts SFI guards so that the resulting
machine code passes the static verifier.  The transformation is purely
local to basic blocks plus a final branch-range fixup pass, mirroring the
paper's ~1,500-line assembly-to-assembly tool.

The input program must not use the reserved registers (the paper invokes
Clang with ``-ffixed-reg`` flags to guarantee this); the only permitted
appearance is the runtime-call idiom ``ldr x30, [x21, #n]; blr x30``
(§4.4), which is passed through unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..arm64 import isa
from ..arm64.instructions import Instruction, ins
from ..arm64.operands import Extended, Imm, Label, Mem, OFFSET, Shifted
from ..arm64.program import Directive, LabelDef, Program
from ..arm64.registers import Reg, SP, X
from ..errors import RewriteError as _RewriteError
from . import guards
from .branches import fix_branch_ranges
from .constants import (
    ADDRESS_INDICES,
    BASE_REG,
    LO32_REG,
    POISON_REG,
    RESERVED_INDICES,
    SCRATCH_REG,
    SP_SMALL_IMM,
)
from .hoisting import HoistPlan, plan_hoisting
from .options import O2, RewriteOptions

__all__ = ["RewriteStats", "RewriteResult", "rewrite_program",
           "rewrite_assembly", "is_runtime_call_load"]


@dataclass
class RewriteStats:
    """Counters describing what the rewriter did."""

    input_instructions: int = 0
    output_instructions: int = 0
    memory_guards: int = 0
    zero_cost_guards: int = 0  # accesses folded into [x21, wN, uxtw] freely
    branch_guards: int = 0
    sp_guards: int = 0
    sp_guards_elided: int = 0
    x30_guards: int = 0
    hoist_guards: int = 0
    hoisted_accesses: int = 0
    range_fixed_branches: int = 0
    fence_guards: int = 0     # dsb speculation barriers (hardening §16)
    mask_guards: int = 0      # poison updates + masked-index bics (§16)
    demoted_returns: int = 0  # ret -> br x30 conversions under masking

    @property
    def added_instructions(self) -> int:
        return self.output_instructions - self.input_instructions

    @property
    def code_size_overhead(self) -> float:
        if not self.input_instructions:
            return 0.0
        return self.added_instructions / self.input_instructions

    def guard_class_counts(self) -> Dict[str, int]:
        """Guard *sites* by class — the single source of truth consumed by
        ``repro.tools rewrite`` and ``repro.tools profile`` (DESIGN.md §9).

        ``memory`` counts only guarded accesses that cost instructions;
        zero-instruction guards are reported separately since the paper's
        point is that they are free.
        """
        return {
            "memory": self.memory_guards,
            "zero-cost": self.zero_cost_guards,
            "branch": self.branch_guards,
            "sp": self.sp_guards,
            "x30": self.x30_guards,
            "hoist": self.hoist_guards,
            "fence": self.fence_guards,
            "mask": self.mask_guards,
        }


@dataclass
class RewriteResult:
    program: Program
    stats: RewriteStats
    options: RewriteOptions

    def guard_provenance(self) -> Dict[int, str]:
        """Map text-instruction *index* -> guard class for rewriter-inserted
        guards.  The assembler converts indices to addresses; the index form
        exists so provenance can be checked before layout is known."""
        return {
            i: inst.guard
            for i, inst in enumerate(self.program.text_instructions())
            if inst.guard is not None
        }


def rewrite_assembly(text: str, options: RewriteOptions = O2) -> str:
    """Convenience wrapper: assembly text in, sandboxed assembly text out."""
    from ..arm64.parser import parse_assembly
    from ..arm64.printer import print_assembly

    result = rewrite_program(parse_assembly(text), options)
    return print_assembly(result.program)


def rewrite_program(program: Program,
                    options: RewriteOptions = O2) -> RewriteResult:
    """Insert SFI guards into a program (the paper's §5.1 transformation)."""
    stats = RewriteStats()
    out = Program()
    section = ".text"
    block: List[Instruction] = []

    def flush_block():
        if block:
            _rewrite_block(block, out, options, stats)
            block.clear()

    for item in program.items:
        if isinstance(item, Directive):
            flush_block()
            if item.name in (".text", ".data", ".bss", ".rodata", ".section"):
                section = item.name if item.name != ".section" else (
                    item.args[0] if item.args else ".data"
                )
            out.add(item)
            continue
        if isinstance(item, LabelDef):
            flush_block()
            out.add(item)
            if (options.speculation_hardening == "fence"
                    and section.startswith(".text")):
                # Taken-edge protection: a mispredicted-taken window
                # starts at a branch target, i.e. at a label.
                out.add(guards.speculation_fence())
                stats.fence_guards += 1
            continue
        if not section.startswith(".text"):
            out.add(item)
            continue
        stats.input_instructions += 1
        block.append(item)
        if item.is_branch:
            flush_block()
    flush_block()

    stats.range_fixed_branches = fix_branch_ranges(out)
    stats.output_instructions = sum(1 for _ in out.text_instructions())
    return RewriteResult(program=out, stats=stats, options=options)


# ---------------------------------------------------------------------------
# Per-block rewriting
# ---------------------------------------------------------------------------

def _rewrite_block(block: List[Instruction], out: Program,
                   options: RewriteOptions, stats: RewriteStats) -> None:
    plan = (plan_hoisting(block, options.sandbox_loads,
                          options.hoist_registers)
            if options.hoisting else HoistPlan())
    reserved = RESERVED_INDICES
    if options.speculation_hardening == "mask":
        reserved = reserved | {POISON_REG.index}
    for i, inst in enumerate(block):
        _check_reserved(block, i, reserved)
        guard_at = plan.guards.get(i)
        if guard_at is not None:
            hoist_reg, base = guard_at
            out.add(guards.guard_address(base, hoist_reg, klass="hoist"))
            stats.hoist_guards += 1
        redirect = plan.redirects.get(i)
        if redirect is not None:
            mem = inst.mem
            new_mem = Mem(redirect, mem.offset)
            out.add(_replace_mem(inst, new_mem))
            stats.hoisted_accesses += 1
            _after_load_fixups(inst, out, stats)
            continue
        _rewrite_instruction(block, i, out, options, stats)


def _replace_mem(inst: Instruction, mem: Mem) -> Instruction:
    ops = tuple(mem if isinstance(op, Mem) else op for op in inst.operands)
    return Instruction(inst.mnemonic, ops, inst.line)


def _is_runtime_call_load(block: List[Instruction], i: int) -> bool:
    """``ldr x30, [x21, #n]`` immediately followed by ``blr x30`` (§4.4)."""
    inst = block[i]
    if inst.mnemonic != "ldr" or not inst.transfer_regs:
        return False
    if inst.transfer_regs[0].index != 30 or inst.transfer_regs[0].is_vector:
        return False
    mem = inst.mem
    if mem is None or mem.base is not BASE_REG or mem.mode != OFFSET:
        return False
    if mem.offset is not None and not isinstance(mem.offset, Imm):
        return False
    if i + 1 >= len(block):
        return False
    nxt = block[i + 1]
    return (nxt.mnemonic == "blr" and len(nxt.operands) == 1
            and isinstance(nxt.operands[0], Reg)
            and nxt.operands[0].index == 30)


#: Public name for the runtime-call idiom predicate.  The superblock
#: engine uses the exact same recognizer at translation time to fuse the
#: pair into a springboard closure, so rewriter provenance and emulator
#: fusion can never disagree about what constitutes a runtime call.
is_runtime_call_load = _is_runtime_call_load


def _check_reserved(block: List[Instruction], i: int,
                    reserved: frozenset = RESERVED_INDICES) -> None:
    """Reject input that touches reserved registers (-ffixed-reg contract).

    Under mask hardening the poison register (x25) joins the reserved
    set: application writes would let a transient path clear the poison.
    """
    inst = block[i]
    if _is_runtime_call_load(block, i):
        return
    if i > 0 and _is_runtime_call_load(block, i - 1) and inst.mnemonic == "blr":
        return
    for reg in list(inst.uses()) + list(inst.defs()):
        if not reg.is_vector and reg.index in reserved:
            raise _RewriteError(
                f"input uses reserved register {reg}: {inst}"
            )


def _rewrite_instruction(block: List[Instruction], i: int, out: Program,
                         options: RewriteOptions, stats: RewriteStats) -> None:
    inst = block[i]
    m = inst.mnemonic

    if m in isa.UNSAFE_SYSTEM:
        raise _RewriteError(f"unsafe instruction in input: {inst}")
    if not options.allow_exclusives and (
        m in isa.EXCLUSIVE_MEMORY or m in ("ldar", "stlr")
    ):
        raise _RewriteError(
            f"exclusives disallowed by hardening policy: {inst}"
        )

    if inst.is_memory:
        _rewrite_memory(block, i, out, options, stats)
        return

    hardening = options.speculation_hardening

    if inst.is_indirect_branch:
        target = inst.operands[0] if inst.operands else X[30]
        if target.index == 30 and not target.is_vector:
            if m == "ret" and hardening == "mask":
                # br never engages the return-stack predictor, so a
                # demoted return cannot open an RSB window (§16).
                out.add(ins("br", X[30]))
                stats.demoted_returns += 1
            else:
                out.add(inst)  # x30 invariant makes ret/br x30 safe
        else:
            replacement = guards.transform_indirect_branch(inst)
            if m == "ret" and hardening == "mask":
                replacement[-1] = ins("br", replacement[-1].operands[0])
                stats.demoted_returns += 1
            out.add(*replacement)
            stats.branch_guards += 1
        if m == "blr" and hardening == "fence":
            # The instruction after a call is a predicted return site.
            out.add(guards.speculation_fence())
            stats.fence_guards += 1
        return

    defs = inst.defs()
    if any(d.is_sp for d in defs):
        _rewrite_sp_write(block, i, out, options, stats)
        return
    if any(d.index == 30 and not d.is_vector for d in defs) and not inst.is_call:
        # Arithmetic or address computation into the link register.
        out.add(inst)
        out.add(guards.x30_guard())
        stats.x30_guards += 1
        return

    if hardening is not None and inst.is_branch:
        if m.startswith("b."):
            out.add(inst)
            if hardening == "mask":
                out.add(guards.poison_update(m[2:]))
                stats.mask_guards += 1
            else:
                out.add(guards.speculation_fence())
                stats.fence_guards += 1
            return
        if m in ("cbz", "cbnz", "tbz", "tbnz"):
            # Compare/test branches consume no flags, so there is no
            # condition code to poison with; both levels fence instead.
            out.add(inst)
            out.add(guards.speculation_fence())
            stats.fence_guards += 1
            return
        if m == "bl" and hardening == "fence":
            out.add(inst)
            out.add(guards.speculation_fence())
            stats.fence_guards += 1
            return

    out.add(inst)


def _after_load_fixups(inst: Instruction, out: Program,
                       stats: RewriteStats) -> None:
    """Insert the x30 guard after any load that restores the link register."""
    if inst.is_load and any(
        r.index == 30 and not r.is_vector for r in inst.transfer_regs
    ):
        out.add(guards.x30_guard())
        stats.x30_guards += 1


def _rewrite_memory(block: List[Instruction], i: int, out: Program,
                    options: RewriteOptions, stats: RewriteStats) -> None:
    inst = block[i]
    mem = inst.mem
    base = mem.base

    if _is_runtime_call_load(block, i):
        out.add(inst)
        return
    if i > 0 and _is_runtime_call_load(block, i - 1):
        out.add(inst)
        return

    if base.is_sp:
        _rewrite_sp_access(inst, out, options, stats)
        return

    if inst.is_load and not options.sandbox_loads:
        out.add(inst)  # "no loads" variant: reads are not isolated
        _after_load_fixups(inst, out, stats)
        return

    if options.speculation_hardening == "mask":
        out.add(*guards.transform_memory_masked(inst))
        stats.memory_guards += 1
        stats.mask_guards += 1
        _after_load_fixups(inst, out, stats)
        return

    if (options.zero_instruction_guards
            and inst.mnemonic in isa.FULL_ADDRESSING):
        replacement = guards.transform_memory_guarded(inst)
        if len(replacement) == 1:
            stats.zero_cost_guards += 1
        else:
            stats.memory_guards += 1
        out.add(*replacement)
    else:
        out.add(*guards.transform_memory_basic(inst))
        stats.memory_guards += 1
    _after_load_fixups(inst, out, stats)


def _rewrite_sp_access(inst: Instruction, out: Program,
                       options: RewriteOptions, stats: RewriteStats) -> None:
    """Memory access with the stack pointer as base (§4.2)."""
    mem = inst.mem
    if mem.offset is None or isinstance(mem.offset, Imm):
        # Immediate forms (including pre/post writeback) are free: sp is
        # valid, immediates are covered by the guard regions, and writeback
        # stays within one guard region of the sandbox.
        out.add(inst)
        _after_load_fixups(inst, out, stats)
        return
    # Register-offset from sp (rare): fold sp into w22 and guard.
    from ..arm64.registers import WSP

    out.add(guards.tag(ins("mov", LO32_REG.as_32(), WSP), "memory"))
    out.add(guards._offset_add(LO32_REG, mem.offset))
    if (options.zero_instruction_guards
            and inst.mnemonic in isa.FULL_ADDRESSING):
        out.add(_replace_mem(inst, guards.guarded_mem(LO32_REG)))
    elif options.speculation_hardening == "mask":
        out.add(*guards.masked_guard_address(LO32_REG))
        out.add(_replace_mem(inst, Mem(SCRATCH_REG)))
        stats.mask_guards += 1
    else:
        out.add(guards.guard_address(LO32_REG))
        out.add(_replace_mem(inst, Mem(SCRATCH_REG)))
    stats.memory_guards += 1
    _after_load_fixups(inst, out, stats)


def _rewrite_sp_write(block: List[Instruction], i: int, out: Program,
                      options: RewriteOptions, stats: RewriteStats) -> None:
    """Non-memory instruction writing sp: insert the sp guard unless the
    small-immediate/same-basic-block elision applies (§4.2)."""
    inst = block[i]
    m = inst.mnemonic

    small = (
        m in ("add", "sub")
        and len(inst.operands) == 3
        and inst.operands[1] is SP
        and isinstance(inst.operands[2], Imm)
        and 0 <= inst.operands[2].value < SP_SMALL_IMM
    )
    if small and options.sp_block_elision and _sp_access_follows(block, i):
        out.add(inst)
        stats.sp_guards_elided += 1
        return

    if m == "mov" and isinstance(inst.operands[1], Reg) \
            and not inst.operands[1].is_sp:
        # mov sp, xN: zero-extend through w22, then the cheap add guard.
        # The mov stands in for the application's own move; only the add
        # is rewriter overhead.
        src = inst.operands[1]
        out.add(ins("mov", LO32_REG.as_32(), src.as_32()))
        out.add(guards.tag(ins("add", SP, BASE_REG, LO32_REG), "sp"))
        stats.sp_guards += 1
        return

    out.add(inst)
    out.add(*guards.sp_guard_pair())
    stats.sp_guards += 1


def _sp_access_follows(block: List[Instruction], i: int) -> bool:
    """Will a trapping sp-based access execute before sp can be misused?"""
    for inst in block[i + 1:]:
        mem = inst.mem
        if mem is not None and mem.base.is_sp:
            if mem.offset is None or isinstance(mem.offset, Imm):
                return True
            return False
        if any(d.is_sp for d in inst.defs()):
            return False
        if inst.is_branch:
            return False
    return False

"""Redundant guard elimination without CFI (paper §4.3).

Programs often perform several loads/stores in a row offset from the same
base register.  Instead of guarding each access, one guard materializes the
base into a reserved *hoisting register* (``x23``/``x24``) and every access
in the run is rewritten to be offset from it:

    str x0, [x1, #8]            add  x24, x21, w1, uxtw
    str x0, [x1, #16]    ==>    str  x0, [x24, #8]
    str x0, [x1, #24]           str  x0, [x24, #16]
                                str  x0, [x24, #24]

Because the hoisting register is reserved (only writable by the guard), a
jump into the middle of the run still lands on accesses through a register
that holds a valid sandbox address — no control-flow integrity is needed,
and the verifier needs no knowledge of this optimization (§4.3).

Planning runs per basic block.  A *segment* is a maximal run of hoistable
accesses to one base register with no intervening redefinition of that
base; segments with at least two accesses get a hoisting register if one of
the two is free over the segment's span (greedy interval assignment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..arm64 import isa
from ..arm64.instructions import Instruction
from ..arm64.operands import Imm, Mem, OFFSET
from ..arm64.registers import Reg
from .constants import HOIST_REGS, MAX_IMM_DISPLACEMENT, RESERVED_INDICES

__all__ = ["HoistPlan", "plan_hoisting", "is_hoistable"]

_HOISTABLE_MNEMONICS = (
    isa.FULL_ADDRESSING | isa.PAIR_MEMORY | isa.UNSCALED_MEMORY
)


def is_hoistable(inst: Instruction, sandbox_loads: bool = True) -> bool:
    """Can this access be redirected through a hoisting register?"""
    if not inst.is_memory or inst.mnemonic not in _HOISTABLE_MNEMONICS:
        return False
    if inst.is_load and not sandbox_loads:
        return False  # unguarded loads need no hoisting
    mem = inst.mem
    if mem is None or mem.mode != OFFSET:
        return False
    if mem.offset is not None and not isinstance(mem.offset, Imm):
        return False
    if abs(mem.imm_value) >= MAX_IMM_DISPLACEMENT:
        return False
    base = mem.base
    if base.is_sp or base.is_zero or base.index in RESERVED_INDICES:
        return False
    # Loads that restore x30 take the dedicated link-register path.
    if inst.is_load and any(r.index == 30 for r in inst.transfer_regs):
        return False
    return True


@dataclass
class HoistPlan:
    """The hoisting decisions for one basic block.

    ``guards[i]`` — insert ``add <reg>, x21, w<base>, uxtw`` before
    instruction index ``i``;  ``redirects[i]`` — rewrite the access at
    index ``i`` to use the given hoisting register as its base.
    """

    guards: Dict[int, Tuple[Reg, Reg]] = field(default_factory=dict)
    redirects: Dict[int, Reg] = field(default_factory=dict)

    @property
    def eliminated(self) -> int:
        """Number of guards saved (accesses redirected minus guards added)."""
        return len(self.redirects) - len(self.guards)


@dataclass
class _Segment:
    base: Reg
    positions: List[int]

    @property
    def start(self) -> int:
        return self.positions[0]

    @property
    def end(self) -> int:
        return self.positions[-1]


def _collect_segments(block: List[Instruction],
                      sandbox_loads: bool) -> List[_Segment]:
    open_segments: Dict[int, _Segment] = {}
    done: List[_Segment] = []
    for i, inst in enumerate(block):
        if is_hoistable(inst, sandbox_loads):
            base = inst.mem.base
            seg = open_segments.get(base.index)
            if seg is None:
                seg = _Segment(base, [])
                open_segments[base.index] = seg
                done.append(seg)
            seg.positions.append(i)
        # Any redefinition of a base register ends its segment.
        for reg in inst.defs():
            if not reg.is_vector and reg.index in open_segments:
                # A hoistable access never redefines its own base, so this
                # is always a true invalidation.
                del open_segments[reg.index]
    return [seg for seg in done if len(seg.positions) >= 2]


def plan_hoisting(block: List[Instruction],
                  sandbox_loads: bool = True,
                  hoist_registers: int = len(HOIST_REGS)) -> HoistPlan:
    """Plan redundant guard elimination for one basic block.

    ``hoist_registers`` limits how many of x23/x24 may be used (the
    paper's design reserves two; one suffices for single-base runs but
    cannot hoist interleaved accesses to two bases — §4.3).
    """
    plan = HoistPlan()
    if hoist_registers <= 0:
        return plan
    segments = sorted(_collect_segments(block, sandbox_loads),
                      key=lambda s: s.start)
    #: For each hoisting register, the last instruction index it is live at.
    busy_until = {reg: -1 for reg in HOIST_REGS[:hoist_registers]}
    for seg in segments:
        assigned: Optional[Reg] = None
        for reg in busy_until:
            if busy_until[reg] < seg.start:
                assigned = reg
                break
        if assigned is None:
            continue  # both hoisting registers busy; leave guards in place
        busy_until[assigned] = seg.end
        plan.guards[seg.start] = (assigned, seg.base)
        for pos in seg.positions:
            plan.redirects[pos] = assigned
    return plan

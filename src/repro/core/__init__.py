"""LFI core: the paper's primary contribution.

* :mod:`repro.core.rewriter` — the untrusted assembly transformer that
  inserts SFI guards (paper §5.1, §4).
* :mod:`repro.core.verifier` — the trusted machine-code verifier
  (paper §5.2).
* :mod:`repro.core.constants` — reserved registers and invariants (§3).
"""

from .constants import (
    ADDRESS_REGS,
    BASE_REG,
    HOIST_REGS,
    LO32_REG,
    POISON_REG,
    RESERVED_REGS,
    SCRATCH_REG,
)
from ..errors import GuardError, RewriteError, VerificationError
from .options import (
    O0,
    O1,
    O2,
    O2_FENCE,
    O2_MASK,
    O2_NO_LOADS,
    OPT_LEVELS,
    RewriteOptions,
)
from .rewriter import (
    RewriteResult,
    RewriteStats,
    rewrite_assembly,
    rewrite_program,
)
from .verifier import (
    VerificationResult,
    Verifier,
    VerifierPolicy,
    Violation,
    verify_elf,
    verify_text,
)

__all__ = [
    "ADDRESS_REGS",
    "BASE_REG",
    "HOIST_REGS",
    "LO32_REG",
    "POISON_REG",
    "RESERVED_REGS",
    "SCRATCH_REG",
    "O0",
    "O1",
    "O2",
    "O2_NO_LOADS",
    "O2_FENCE",
    "O2_MASK",
    "OPT_LEVELS",
    "RewriteOptions",
    "GuardError",
    "RewriteError",
    "RewriteResult",
    "RewriteStats",
    "rewrite_assembly",
    "rewrite_program",
    "VerificationError",
    "VerificationResult",
    "Verifier",
    "VerifierPolicy",
    "Violation",
    "verify_elf",
    "verify_text",
]

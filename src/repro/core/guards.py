"""Guard sequence emission: the paper's Table 3 transformations.

Every function returns the replacement instruction list for one unsafe
memory access or indirect branch.  Two strategies exist:

* the **basic guard** (§3): materialize a safe address in the reserved
  scratch register with ``add x18, x21, wN, uxtw`` and access through it
  (used at O0, and at all levels for instructions without access to the
  guarded addressing mode: pairs, exclusives, acquire/release);
* the **zero-instruction guard** (§4.1): fold the guard into the access
  itself with the ``[x21, wN, uxtw]`` addressing mode (O1+), with a single
  32-bit ``add`` into ``x22`` for the complex addressing modes.
"""

from __future__ import annotations

from typing import List, Optional

from ..arm64 import isa
from ..arm64.instructions import Instruction, ins
from ..arm64.operands import (
    Cond,
    Extended,
    Imm,
    Mem,
    OFFSET,
    POST_INDEX,
    PRE_INDEX,
    Shifted,
    invert_condition,
)
from ..arm64.registers import Reg, X, XZR
from ..errors import GuardError as _GuardError
from .constants import BASE_REG, LO32_REG, POISON_REG, SCRATCH_REG

__all__ = [
    "GUARD_CLASSES",
    "tag",
    "guard_address",
    "guarded_mem",
    "x30_guard",
    "sp_guard_pair",
    "speculation_fence",
    "poison_update",
    "masked_guard_address",
    "transform_memory_basic",
    "transform_memory_guarded",
    "transform_memory_masked",
    "transform_indirect_branch",
]

#: The guard taxonomy used for provenance and cycle attribution
#: (DESIGN.md §9): each class matches one Table-3 transformation family;
#: "fence" and "mask" are the Spectre-hardening additions (§16).
GUARD_CLASSES = ("memory", "branch", "sp", "x30", "hoist", "fence", "mask")



def tag(inst: Instruction, klass: str) -> Instruction:
    """Mark ``inst`` as rewriter-inserted guard overhead of ``klass``."""
    if klass not in GUARD_CLASSES:
        raise _GuardError(f"unknown guard class {klass!r}")
    inst.guard = klass
    return inst


def guard_address(source: Reg, dest: Reg = SCRATCH_REG,
                  klass: str = "memory") -> Instruction:
    """The basic guard: ``add dest, x21, wN, uxtw`` (§3)."""
    return tag(ins("add", dest, BASE_REG, Extended(source.as_32(), "uxtw")),
               klass)


def guarded_mem(offset_reg: Reg) -> Mem:
    """The zero-instruction guard addressing mode ``[x21, wN, uxtw]``."""
    return Mem(BASE_REG, Extended(offset_reg.as_32(), "uxtw"))


def x30_guard() -> Instruction:
    """Re-establish the link-register invariant after a restore (§4.2)."""
    return tag(ins("add", X[30], BASE_REG, Extended(X[30].as_32(), "uxtw")),
               "x30")


def sp_guard_pair() -> List[Instruction]:
    """The two-instruction stack pointer guard (§4.2).

    ``sp`` cannot be an operand of the zero-extending add, so the
    zero-extension moves into ``x22`` (whose invariant makes the following
    plain add safe) — saving one cycle over the extended-register add::

        mov w22, wsp
        add sp, x21, x22
    """
    from ..arm64.registers import SP, WSP

    return [
        tag(ins("mov", LO32_REG.as_32(), WSP), "sp"),
        tag(ins("add", SP, BASE_REG, LO32_REG), "sp"),
    ]


def speculation_fence() -> Instruction:
    """A ``dsb`` speculation barrier: the emulator's speculative mode
    squashes any transient window that reaches one (DESIGN.md §16)."""
    return tag(ins("dsb"), "fence")


def poison_update(condition: str) -> Instruction:
    """Set the poison register on the transient fall-through of ``b.cond``.

    Placed immediately after a conditional branch::

        b.cond  target
        csinv   x25, x25, xzr, !cond

    On the architectural fall-through ``cond`` is false, the inverted
    condition selects ``x25`` and the register stays zero.  When the
    fall-through executes *transiently* (the branch was actually taken),
    ``cond`` holds, the inverted condition fails, and ``x25`` becomes
    ``~xzr`` — all ones — until the squash rolls it back.  ``csinv``
    leaves the flags untouched, so the branch context survives.
    """
    return tag(ins("csinv", POISON_REG, POISON_REG, XZR,
                   Cond(invert_condition(condition))), "mask")


def masked_guard_address(source: Reg, dest: Reg = SCRATCH_REG,
                         ) -> List[Instruction]:
    """The speculation-masked guard (§16)::

        bic  w18, wN, w25
        add  x18, x21, w18, uxtw

    Architecturally ``x25`` is zero and this is the plain §3 guard.  On a
    poisoned transient path the ``bic`` clears every index bit, so the
    access collapses to the constant address ``x21`` — the wrong-path
    footprint carries no secret-dependent bits.
    """
    return [
        tag(ins("bic", dest.as_32(), source.as_32(), POISON_REG.as_32()),
            "mask"),
        tag(ins("add", dest, BASE_REG, Extended(dest.as_32(), "uxtw")),
            "memory"),
    ]


def _with_mem(inst: Instruction, mem: Mem) -> Instruction:
    """Copy of ``inst`` with its memory operand replaced."""
    ops = tuple(mem if isinstance(op, Mem) else op for op in inst.operands)
    return Instruction(inst.mnemonic, ops, inst.line)


def _offset_add(base: Reg, offset, dest: Reg = LO32_REG) -> Instruction:
    """One 32-bit add computing base+offset into w22 (Table 3 rows 2,5-7)."""
    w_dest = dest.as_32()
    w_base = base.as_32()
    if isinstance(offset, Imm):
        if offset.value < 0:
            return tag(ins("sub", w_dest, w_base, Imm(-offset.value)),
                       "memory")
        return tag(ins("add", w_dest, w_base, offset), "memory")
    if isinstance(offset, Reg):
        return tag(ins("add", w_dest, w_base, offset.as_32()), "memory")
    if isinstance(offset, Shifted):
        return tag(ins("add", w_dest, w_base,
                       Shifted(offset.reg.as_32(), offset.kind,
                               offset.amount)), "memory")
    if isinstance(offset, Extended):
        # At 32-bit width, uxtw/sxtw with shift reduce to an lsl of the w
        # register (addresses are taken mod 2**32 by the guard anyway).
        return tag(ins("add", w_dest, w_base,
                       Shifted(offset.reg.as_32(), "lsl",
                               offset.amount or 0)), "memory")
    raise _GuardError(f"unsupported offset {offset!r}")


def transform_memory_guarded(inst: Instruction) -> List[Instruction]:
    """Table 3: rewrite a basic load/store to use the guarded addressing
    mode.  Only valid for mnemonics with full addressing-mode support."""
    mem = inst.mem
    if mem is None:
        raise _GuardError(f"not a memory instruction: {inst}")
    base = mem.base
    assert inst.mnemonic in isa.FULL_ADDRESSING

    if mem.mode == PRE_INDEX:
        # add xN, xN, #i ; op [x21, wN, uxtw]
        return [
            _pre_post_add(base, mem.imm_value),
            _with_mem(inst, guarded_mem(base)),
        ]
    if mem.mode == POST_INDEX:
        # op [x21, wN, uxtw] ; add xN, xN, #i
        return [
            _with_mem(inst, guarded_mem(base)),
            _pre_post_add(base, mem.imm_value),
        ]
    offset = mem.offset
    if offset is None or (isinstance(offset, Imm) and offset.value == 0):
        # ldr rt, [xN]  ->  ldr rt, [x21, wN, uxtw]      (0 extra cycles)
        return [_with_mem(inst, guarded_mem(base))]
    # All remaining forms: one 32-bit add into w22, then the guarded access.
    return [
        _offset_add(base, offset),
        _with_mem(inst, guarded_mem(LO32_REG)),
    ]


def _pre_post_add(base: Reg, imm: int) -> Instruction:
    if imm < 0:
        return ins("sub", base, base, Imm(-imm))
    return ins("add", base, base, Imm(imm))


def transform_memory_basic(inst: Instruction) -> List[Instruction]:
    """The basic-guard transformation (§3), used at O0 and for pair /
    exclusive / unscaled instructions at every level.

    Writeback is never performed on the scratch register (its invariant
    must hold unconditionally), so pre/post-index forms split the base
    update into a separate add on the original register.
    """
    mem = inst.mem
    if mem is None:
        raise _GuardError(f"not a memory instruction: {inst}")
    base = mem.base

    if mem.mode == PRE_INDEX:
        return [
            _pre_post_add(base, mem.imm_value),
            guard_address(base),
            _with_mem(inst, Mem(SCRATCH_REG)),
        ]
    if mem.mode == POST_INDEX:
        return [
            guard_address(base),
            _with_mem(inst, Mem(SCRATCH_REG)),
            _pre_post_add(base, mem.imm_value),
        ]
    offset = mem.offset
    if offset is None:
        return [guard_address(base), _with_mem(inst, Mem(SCRATCH_REG))]
    if isinstance(offset, Imm):
        # Immediates ride along: the guard regions cover them (§3).
        if inst.mnemonic in isa.BASE_ONLY_MEMORY and offset.value:
            raise _GuardError(f"{inst}: immediate not allowed")
        return [
            guard_address(base),
            _with_mem(inst, Mem(SCRATCH_REG, offset)),
        ]
    # Register offsets: fold into w22 first, then guard w22.
    return [
        _offset_add(base, offset),
        guard_address(LO32_REG),
        _with_mem(inst, Mem(SCRATCH_REG)),
    ]


def transform_memory_masked(inst: Instruction) -> List[Instruction]:
    """The mask-hardened memory transformation (§16).

    Mirrors :func:`transform_memory_basic` but materializes the address
    through the poison-masked guard, so every non-sp access keeps its
    index clearable on transient paths.  Immediate displacements ride
    along (a poisoned access lands at ``x21 + imm`` — constant, and
    covered by the guard regions like any §3 immediate).
    """
    mem = inst.mem
    if mem is None:
        raise _GuardError(f"not a memory instruction: {inst}")
    base = mem.base

    if mem.mode == PRE_INDEX:
        return [
            _pre_post_add(base, mem.imm_value),
            *masked_guard_address(base),
            _with_mem(inst, Mem(SCRATCH_REG)),
        ]
    if mem.mode == POST_INDEX:
        return [
            *masked_guard_address(base),
            _with_mem(inst, Mem(SCRATCH_REG)),
            _pre_post_add(base, mem.imm_value),
        ]
    offset = mem.offset
    if offset is None:
        return [*masked_guard_address(base), _with_mem(inst, Mem(SCRATCH_REG))]
    if isinstance(offset, Imm):
        if inst.mnemonic in isa.BASE_ONLY_MEMORY and offset.value:
            raise _GuardError(f"{inst}: immediate not allowed")
        return [
            *masked_guard_address(base),
            _with_mem(inst, Mem(SCRATCH_REG, offset)),
        ]
    # Register offsets: fold into w22 first, then mask-guard w22.
    return [
        _offset_add(base, offset),
        *masked_guard_address(LO32_REG),
        _with_mem(inst, Mem(SCRATCH_REG)),
    ]


def transform_indirect_branch(inst: Instruction) -> List[Instruction]:
    """Guard ``br``/``blr``/``ret`` through the scratch register (§3)."""
    target = inst.operands[0] if inst.operands else X[30]
    if not isinstance(target, Reg):
        raise _GuardError(f"bad indirect branch {inst}")
    return [
        guard_address(target, klass="branch"),
        ins(inst.mnemonic, SCRATCH_REG),
    ]

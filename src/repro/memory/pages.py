"""Sparse paged virtual memory with R/W/X permissions and faults.

This is the substitute for real MMU-protected memory (see DESIGN.md §2):
guard regions are genuinely unmapped, the text segment is mapped
read+execute-only, and any access that violates permissions raises a
:class:`MemoryFault`, exactly the behaviour the paper's runtime relies on
for stack-pointer guard elision and write protection of code.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterator, Optional, Tuple

__all__ = [
    "PERM_R",
    "PERM_W",
    "PERM_X",
    "PERM_RW",
    "PERM_RX",
    "MemoryFault",
    "PagedMemory",
]

PERM_R = 0b001
PERM_W = 0b010
PERM_X = 0b100
PERM_RW = PERM_R | PERM_W
PERM_RX = PERM_R | PERM_X
PERM_NONE = 0

#: Default page size: 16KiB, matching Apple ARM64 machines (paper §3).
DEFAULT_PAGE_SIZE = 16 * 1024

_FAULT_NAMES = {"unmapped": "unmapped address", "perm": "permission violation",
                "align": "misaligned access"}


class MemoryFault(Exception):
    """A memory access trap (unmapped page, permission, or alignment)."""

    def __init__(self, kind: str, address: int, access: str,
                 detail: str = ""):
        self.kind = kind
        self.address = address
        self.access = access  # "read" | "write" | "execute"
        message = (
            f"{_FAULT_NAMES.get(kind, kind)} on {access} at {address:#x}"
        )
        if detail:
            message += f" ({detail})"
        super().__init__(message)


class PagedMemory:
    """A sparse page-granular address space.

    Pages are materialized lazily on mapping.  All multi-byte accessors are
    little-endian, matching AArch64.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE,
                 va_bits: int = 48):
        if page_size & (page_size - 1):
            raise ValueError("page size must be a power of two")
        self.page_size = page_size
        self.va_bits = va_bits
        self.va_limit = 1 << va_bits
        self._pages: Dict[int, bytearray] = {}
        self._perms: Dict[int, int] = {}
        #: Pages whose storage is shared and must be copied before a write
        #: (single-address-space copy-on-write fork, paper §5.3).
        self._cow: set = set()
        self.cow_copies = 0
        #: Optional callback ``(address, size)`` invoked on every
        #: permission-checked write.  The containment auditor uses it to
        #: attribute stores to the sandbox that issued them.
        self.write_observer = None
        #: Callbacks ``(address, size)`` invoked whenever the *mapping*
        #: of a region changes (map, unmap, protect, share).  The machine
        #: uses this to drop translated superblocks and cached decodes
        #: whose backing text may have changed.
        self.map_observers: list = []

    def _notify_map_change(self, address: int, size: int) -> None:
        for observer in self.map_observers:
            observer(address, size)

    # -- mapping -----------------------------------------------------------

    def _page_range(self, address: int, size: int) -> range:
        if address % self.page_size or size % self.page_size:
            raise ValueError(
                f"region {address:#x}+{size:#x} not page-aligned"
            )
        return range(address // self.page_size,
                     (address + size) // self.page_size)

    def map_region(self, address: int, size: int, perms: int) -> None:
        """Map (or re-map) a page-aligned region with the given permissions."""
        if address < 0 or address + size > self.va_limit:
            raise ValueError(f"region outside {self.va_bits}-bit VA space")
        for page in self._page_range(address, size):
            if page not in self._pages:
                self._pages[page] = bytearray(self.page_size)
            self._perms[page] = perms
        self._notify_map_change(address, size)

    def protect(self, address: int, size: int, perms: int) -> None:
        """Change permissions of an already-mapped region."""
        for page in self._page_range(address, size):
            if page not in self._pages:
                raise ValueError(f"page at {page * self.page_size:#x} not mapped")
            self._perms[page] = perms
        self._notify_map_change(address, size)

    def unmap(self, address: int, size: int) -> None:
        for page in self._page_range(address, size):
            self._pages.pop(page, None)
            self._perms.pop(page, None)
            self._cow.discard(page)
        self._notify_map_change(address, size)

    def share_region(self, src: int, dst: int, size: int,
                     perms: Optional[int] = None) -> None:
        """Map ``dst`` onto the same storage as ``src``, copy-on-write.

        This is the paper's memfd-style fork optimization (§5.3): the same
        memory appears at multiple places in the address space, and pages
        are physically copied only when either side first writes.
        """
        src_pages = list(self._page_range(src, size))
        dst_pages = list(self._page_range(dst, size))
        for s, d in zip(src_pages, dst_pages):
            if s not in self._pages:
                raise ValueError(f"source page {s * self.page_size:#x} "
                                 f"not mapped")
            self._pages[d] = self._pages[s]
            self._perms[d] = self._perms[s] if perms is None else perms
            self._cow.add(s)
            self._cow.add(d)
        self._notify_map_change(dst, size)

    def _break_cow(self, first_page: int, last_page: int) -> None:
        for page in range(first_page, last_page + 1):
            if page in self._cow:
                self._pages[page] = bytearray(self._pages[page])
                self._cow.discard(page)
                self.cow_copies += 1

    def is_mapped(self, address: int) -> bool:
        return (address // self.page_size) in self._pages

    def pages_in_range(self, lo: int, hi: int) -> int:
        """Number of mapped pages whose base lies in ``[lo, hi)``.

        Used by the runtime to enforce per-sandbox mapped-page quotas at
        the memory boundary.
        """
        ps = self.page_size
        return sum(1 for page in self._pages if lo <= page * ps < hi)

    def perms_at(self, address: int) -> int:
        return self._perms.get(address // self.page_size, PERM_NONE)

    def mapped_regions(self) -> Iterator[Tuple[int, int, int]]:
        """Yield (base, size, perms) for maximal contiguous mapped runs."""
        pages = sorted(self._pages)
        i = 0
        while i < len(pages):
            start = pages[i]
            perms = self._perms[start]
            j = i
            while (
                j + 1 < len(pages)
                and pages[j + 1] == pages[j] + 1
                and self._perms[pages[j + 1]] == perms
            ):
                j += 1
            yield (start * self.page_size, (j - i + 1) * self.page_size, perms)
            i = j + 1

    # -- access ------------------------------------------------------------

    def _check(self, address: int, size: int, need: int, access: str) -> None:
        page = address // self.page_size
        end_page = (address + size - 1) // self.page_size
        for p in range(page, end_page + 1):
            perms = self._perms.get(p)
            if perms is None:
                raise MemoryFault("unmapped", address, access)
            if perms & need != need:
                raise MemoryFault("perm", address, access)

    def read(self, address: int, size: int) -> bytes:
        # Fast path: a permitted access within one page (the common case
        # for aligned word loads).  Any failure falls back to the checked
        # path below so the fault kind/message stays identical.
        ps = self.page_size
        page = address // ps
        offset = address - page * ps
        if offset + size <= ps:
            perms = self._perms.get(page)
            if perms is not None and perms & PERM_R:
                buf = self._pages.get(page)
                if buf is not None:
                    return bytes(buf[offset:offset + size])
        self._check(address, size, PERM_R, "read")
        return self._raw_read(address, size)

    def write(self, address: int, data: bytes) -> None:
        size = len(data)
        ps = self.page_size
        page = address // ps
        offset = address - page * ps
        if (offset + size <= ps and self.write_observer is None
                and not self._cow):
            perms = self._perms.get(page)
            if perms is not None and perms & PERM_W:
                buf = self._pages.get(page)
                if buf is not None:
                    buf[offset:offset + size] = data
                    return
        self._check(address, size, PERM_W, "write")
        if self.write_observer is not None:
            self.write_observer(address, size)
        if self._cow:
            self._break_cow(page, (address + size - 1) // ps)
        self._raw_write(address, data)

    def fetch(self, address: int) -> int:
        """Fetch one instruction word (requires execute permission)."""
        if address % 4:
            raise MemoryFault("align", address, "execute")
        self._check(address, 4, PERM_X, "execute")
        return struct.unpack("<I", self._raw_read(address, 4))[0]

    # Raw accessors skip permission checks (used by the loader/runtime).

    def _raw_read(self, address: int, size: int) -> bytes:
        ps = self.page_size
        page, offset = divmod(address, ps)
        if offset + size <= ps:
            buf = self._pages.get(page)
            if buf is None:
                raise MemoryFault("unmapped", address, "read")
            return bytes(buf[offset:offset + size])
        out = bytearray()
        remaining = size
        while remaining:
            buf = self._pages.get(page)
            if buf is None:
                raise MemoryFault("unmapped", page * ps, "read")
            chunk = min(ps - offset, remaining)
            out.extend(buf[offset:offset + chunk])
            remaining -= chunk
            page += 1
            offset = 0
        return bytes(out)

    def _raw_write(self, address: int, data: bytes) -> None:
        ps = self.page_size
        page, offset = divmod(address, ps)
        if offset + len(data) <= ps:
            buf = self._pages.get(page)
            if buf is None:
                raise MemoryFault("unmapped", address, "write")
            buf[offset:offset + len(data)] = data
            return
        pos = 0
        while pos < len(data):
            buf = self._pages.get(page)
            if buf is None:
                raise MemoryFault("unmapped", page * ps, "write")
            chunk = min(ps - offset, len(data) - pos)
            buf[offset:offset + chunk] = data[pos:pos + chunk]
            pos += chunk
            page += 1
            offset = 0

    def load_image(self, address: int, data: bytes) -> None:
        """Write bytes ignoring permissions (loader-only path)."""
        if self._cow:
            self._break_cow(address // self.page_size,
                            (address + len(data) - 1) // self.page_size)
        self._raw_write(address, data)
        if data:
            self._notify_map_change(address, len(data))

    # -- typed helpers -------------------------------------------------------

    def read_u64(self, address: int) -> int:
        return int.from_bytes(self.read(address, 8), "little")

    def read_u32(self, address: int) -> int:
        return int.from_bytes(self.read(address, 4), "little")

    def write_u64(self, address: int, value: int) -> None:
        self.write(address, (value & (2**64 - 1)).to_bytes(8, "little"))

    def write_u32(self, address: int, value: int) -> None:
        self.write(address, (value & (2**32 - 1)).to_bytes(4, "little"))

    def read_cstring(self, address: int, limit: int = 4096) -> bytes:
        """Read a NUL-terminated string (for runtime-call arguments)."""
        out = bytearray()
        while len(out) < limit:
            byte = self.read(address + len(out), 1)[0]
            if byte == 0:
                return bytes(out)
            out.append(byte)
        raise MemoryFault("perm", address, "read", "unterminated string")

"""Virtual memory substrate: sparse paged memory and sandbox layout math."""

from .layout import (
    CODE_KEEPOUT,
    GUARD_SIZE,
    MAX_SANDBOXES_48BIT,
    MAX_SANDBOXES_49BIT,
    PAGE_SIZE,
    SANDBOX_BITS,
    SANDBOX_SIZE,
    SandboxLayout,
)
from .pages import (
    MemoryFault,
    PERM_NONE,
    PERM_R,
    PERM_RW,
    PERM_RX,
    PERM_W,
    PERM_X,
    PagedMemory,
)

__all__ = [
    "CODE_KEEPOUT",
    "GUARD_SIZE",
    "MAX_SANDBOXES_48BIT",
    "MAX_SANDBOXES_49BIT",
    "PAGE_SIZE",
    "SANDBOX_BITS",
    "SANDBOX_SIZE",
    "SandboxLayout",
    "MemoryFault",
    "PERM_NONE",
    "PERM_R",
    "PERM_RW",
    "PERM_RX",
    "PERM_W",
    "PERM_X",
    "PagedMemory",
]

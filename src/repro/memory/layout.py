"""Sandbox address-space layout (paper §3, Figure 1).

Each sandbox occupies one 4GiB-aligned 4GiB region:

    +---------------------+  base (4GiB aligned)
    | runtime-call table  |  one read-only page (§4.4)
    +---------------------+  base + PAGE_SIZE
    | guard region        |  48KiB, unmapped
    +---------------------+  base + PAGE_SIZE + GUARD_SIZE
    | code, data, heap,   |
    | stack ...           |
    +---------------------+  base + 4GiB - GUARD_SIZE
    | guard region        |  48KiB, unmapped
    +---------------------+  base + 4GiB

Additionally no executable code may be placed in the last 128MiB of the
region so that direct branches (±128MiB reach) cannot land in a neighbour's
text segment.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "SANDBOX_SIZE",
    "SANDBOX_BITS",
    "GUARD_SIZE",
    "PAGE_SIZE",
    "CODE_KEEPOUT",
    "MAX_SANDBOXES_48BIT",
    "MAX_SANDBOXES_49BIT",
    "SandboxLayout",
]

SANDBOX_BITS = 32
SANDBOX_SIZE = 1 << SANDBOX_BITS  # 4GiB
PAGE_SIZE = 16 * 1024  # Apple ARM64 page size

#: Guard size: smallest multiple of 16KiB greater than 2**15 + 2**10
#: (paper §3 footnote): 48KiB.
GUARD_SIZE = 48 * 1024
assert GUARD_SIZE % PAGE_SIZE == 0
assert GUARD_SIZE > 2**15 + 2**10

#: Direct branches reach +-128MiB, so the last 128MiB holds no code.
CODE_KEEPOUT = 128 * 1024 * 1024

#: 48-bit usermode address space -> 2^16 sandboxes (paper §3).
MAX_SANDBOXES_48BIT = 1 << (48 - SANDBOX_BITS)
MAX_SANDBOXES_49BIT = 1 << (49 - SANDBOX_BITS)


@dataclass(frozen=True)
class SandboxLayout:
    """Derived addresses for one sandbox slot."""

    base: int

    def __post_init__(self):
        if self.base % SANDBOX_SIZE:
            raise ValueError(
                f"sandbox base {self.base:#x} not 4GiB aligned"
            )

    @classmethod
    def for_slot(cls, index: int) -> "SandboxLayout":
        return cls(index * SANDBOX_SIZE)

    @property
    def slot(self) -> int:
        return self.base // SANDBOX_SIZE

    @property
    def end(self) -> int:
        return self.base + SANDBOX_SIZE

    @property
    def table_base(self) -> int:
        """Runtime-call table page (read-only, §4.4)."""
        return self.base

    @property
    def table_size(self) -> int:
        return PAGE_SIZE

    @property
    def low_guard_base(self) -> int:
        return self.base + PAGE_SIZE

    @property
    def high_guard_base(self) -> int:
        return self.end - GUARD_SIZE

    @property
    def usable_base(self) -> int:
        """First address usable for program segments."""
        return self.base + PAGE_SIZE + GUARD_SIZE

    @property
    def usable_end(self) -> int:
        return self.high_guard_base

    @property
    def code_limit(self) -> int:
        """Code must end below this address (128MiB keep-out, §3)."""
        return self.end - CODE_KEEPOUT

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def offset_of(self, address: int) -> int:
        """32-bit offset of an in-sandbox address."""
        return address - self.base

    def guarded(self, address: int) -> int:
        """What the add-uxtw guard would produce for this value (§3)."""
        return self.base | (address & (SANDBOX_SIZE - 1))

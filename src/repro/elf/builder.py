"""Bridge from the assembler's sections to an ELF image."""

from __future__ import annotations

from typing import Optional

from ..arm64.assembler import AssembledImage
from .format import ElfImage, ElfSegment, PF_R, PF_W, PF_X

__all__ = ["build_elf"]

_SECTION_FLAGS = {
    ".text": PF_R | PF_X,
    ".rodata": PF_R,
    ".data": PF_R | PF_W,
    ".bss": PF_R | PF_W,
}


def build_elf(image: AssembledImage, bss_size: int = 0) -> ElfImage:
    """Package assembled sections as an ELF executable.

    ``bss_size`` reserves extra zero-initialized memory after the .bss
    section (memsz > filesz).  Guard provenance recorded by the assembler
    rides along on the image (serialized as a PT_NOTE by ``write_elf``).
    """
    segments = []
    for name in (".text", ".rodata", ".data", ".bss"):
        section = image.sections.get(name)
        if section is None or (not section.data and name != ".bss"):
            if name == ".bss" and bss_size:
                base = image.sections.get(".bss")
                vaddr = base.base if base else _next_free(image)
                segments.append(
                    ElfSegment(vaddr=vaddr, data=b"", memsz=bss_size,
                               flags=PF_R | PF_W)
                )
            continue
        memsz = len(section.data)
        if name == ".bss":
            memsz += bss_size
        if memsz == 0:
            continue
        segments.append(
            ElfSegment(
                vaddr=section.base,
                data=bytes(section.data),
                memsz=memsz,
                flags=_SECTION_FLAGS[name],
            )
        )
    return ElfImage(entry=image.entry, segments=segments,
                    provenance=dict(image.provenance))


def _next_free(image: AssembledImage) -> int:
    end = 0
    for section in image.sections.values():
        end = max(end, section.end)
    return (end + 0x3FFF) & ~0x3FFF

"""ELF64 serialization: header + program headers + segment payloads."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List

__all__ = ["ElfError", "ElfSegment", "ElfImage", "PF_R", "PF_W", "PF_X",
           "read_elf", "write_elf"]

PF_X = 0x1
PF_W = 0x2
PF_R = 0x4

_EI_MAGIC = b"\x7fELF"
_ELFCLASS64 = 2
_ELFDATA2LSB = 1
_EV_CURRENT = 1
_ET_EXEC = 2
_EM_AARCH64 = 183
_PT_LOAD = 1

_EHDR = struct.Struct("<16sHHIQQQIHHHHHH")
_PHDR = struct.Struct("<IIQQQQQQ")


class ElfError(ValueError):
    """Raised for malformed ELF input."""


@dataclass
class ElfSegment:
    """One PT_LOAD segment."""

    vaddr: int
    data: bytes
    memsz: int  # >= len(data); the excess is zero-filled (bss)
    flags: int  # PF_R | PF_W | PF_X

    def __post_init__(self):
        if self.memsz < len(self.data):
            raise ElfError("memsz smaller than file data")

    @property
    def filesz(self) -> int:
        return len(self.data)


@dataclass
class ElfImage:
    """A loadable executable: entry point plus PT_LOAD segments."""

    entry: int
    segments: List[ElfSegment] = field(default_factory=list)

    def segment_containing(self, vaddr: int) -> ElfSegment:
        for segment in self.segments:
            if segment.vaddr <= vaddr < segment.vaddr + segment.memsz:
                return segment
        raise ElfError(f"no segment contains {vaddr:#x}")

    @property
    def text(self) -> ElfSegment:
        """The (single) executable segment."""
        executable = [s for s in self.segments if s.flags & PF_X]
        if len(executable) != 1:
            raise ElfError(f"expected 1 executable segment, found "
                           f"{len(executable)}")
        return executable[0]


def write_elf(image: ElfImage) -> bytes:
    """Serialize an image to ELF64 bytes."""
    ehsize = _EHDR.size
    phentsize = _PHDR.size
    phnum = len(image.segments)
    header_size = ehsize + phentsize * phnum

    payloads = []
    offset = header_size
    for segment in image.segments:
        # Keep file offset congruent with vaddr modulo a page for realism.
        payloads.append((offset, segment))
        offset += segment.filesz

    out = bytearray()
    ident = _EI_MAGIC + bytes([_ELFCLASS64, _ELFDATA2LSB, _EV_CURRENT]) + bytes(9)
    out += _EHDR.pack(
        ident, _ET_EXEC, _EM_AARCH64, _EV_CURRENT, image.entry,
        ehsize, 0, 0, ehsize, phentsize, phnum, 0, 0, 0,
    )
    for file_offset, segment in payloads:
        out += _PHDR.pack(
            _PT_LOAD, segment.flags, file_offset, segment.vaddr,
            segment.vaddr, segment.filesz, segment.memsz, 0x4000,
        )
    for file_offset, segment in payloads:
        assert len(out) == file_offset
        out += segment.data
    return bytes(out)


def read_elf(data: bytes) -> ElfImage:
    """Parse ELF64 bytes back into an image."""
    if len(data) < _EHDR.size:
        raise ElfError("truncated ELF header")
    fields = _EHDR.unpack_from(data, 0)
    ident = fields[0]
    if ident[:4] != _EI_MAGIC:
        raise ElfError("bad ELF magic")
    if ident[4] != _ELFCLASS64 or ident[5] != _ELFDATA2LSB:
        raise ElfError("not a little-endian ELF64 file")
    e_type, e_machine = fields[1], fields[2]
    if e_machine != _EM_AARCH64:
        raise ElfError(f"unsupported machine {e_machine}")
    if e_type != _ET_EXEC:
        raise ElfError(f"unsupported ELF type {e_type}")
    entry = fields[4]
    phoff = fields[5]
    phentsize, phnum = fields[9], fields[10]
    if phentsize != _PHDR.size:
        raise ElfError(f"unexpected phentsize {phentsize}")

    segments: List[ElfSegment] = []
    for i in range(phnum):
        p = _PHDR.unpack_from(data, phoff + i * phentsize)
        p_type, p_flags, p_offset, p_vaddr, _p_paddr, p_filesz, p_memsz, _ = p
        if p_type != _PT_LOAD:
            continue
        if p_offset + p_filesz > len(data):
            raise ElfError("segment payload out of range")
        segments.append(
            ElfSegment(
                vaddr=p_vaddr,
                data=bytes(data[p_offset:p_offset + p_filesz]),
                memsz=p_memsz,
                flags=p_flags,
            )
        )
    return ElfImage(entry=entry, segments=segments)

"""ELF64 serialization: header + program headers + segment payloads.

Besides PT_LOAD segments, images may carry *guard provenance* — the map
from rewriter-inserted guard instruction addresses to guard classes used
by the obs profiler (DESIGN.md §9).  Provenance is serialized as one
PT_NOTE segment (never mapped by the loader) so it survives a round trip
through an on-disk ELF; images without the note simply load with an empty
map.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import ElfError as _ElfError

__all__ = ["ElfSegment", "ElfImage", "PF_R", "PF_W", "PF_X",
           "read_elf", "write_elf"]

PF_X = 0x1
PF_W = 0x2
PF_R = 0x4

_EI_MAGIC = b"\x7fELF"
_ELFCLASS64 = 2
_ELFDATA2LSB = 1
_EV_CURRENT = 1
_ET_EXEC = 2
_EM_AARCH64 = 183
_PT_LOAD = 1
_PT_NOTE = 4

_EHDR = struct.Struct("<16sHHIQQQIHHHHHH")
_PHDR = struct.Struct("<IIQQQQQQ")

#: Guard-provenance note payload: magic, then (u64 address, u8 class
#: index) entries sorted by address.  The class table is positional so
#: the payload is byte-deterministic.
_PROV_MAGIC = b"LFIPROV1"
_PROV_CLASSES = ("memory", "branch", "sp", "x30", "hoist")
_PROV_ENTRY = struct.Struct("<QB")


def _pack_provenance(provenance: Dict[int, str]) -> bytes:
    out = bytearray(_PROV_MAGIC)
    out += struct.pack("<I", len(provenance))
    for addr in sorted(provenance):
        klass = provenance[addr]
        try:
            index = _PROV_CLASSES.index(klass)
        except ValueError:
            raise _ElfError(f"unknown guard class {klass!r}") from None
        out += _PROV_ENTRY.pack(addr, index)
    return bytes(out)


def _unpack_provenance(data: bytes) -> Dict[int, str]:
    if data[:8] != _PROV_MAGIC:
        raise _ElfError("bad guard-provenance note magic")
    (count,) = struct.unpack_from("<I", data, 8)
    expected = 12 + count * _PROV_ENTRY.size
    if len(data) < expected:
        raise _ElfError("truncated guard-provenance note")
    out: Dict[int, str] = {}
    for i in range(count):
        addr, index = _PROV_ENTRY.unpack_from(data, 12 + i * _PROV_ENTRY.size)
        if index >= len(_PROV_CLASSES):
            raise _ElfError(f"unknown guard class index {index}")
        out[addr] = _PROV_CLASSES[index]
    return out


@dataclass
class ElfSegment:
    """One PT_LOAD segment."""

    vaddr: int
    data: bytes
    memsz: int  # >= len(data); the excess is zero-filled (bss)
    flags: int  # PF_R | PF_W | PF_X

    def __post_init__(self):
        if self.memsz < len(self.data):
            raise _ElfError("memsz smaller than file data")

    @property
    def filesz(self) -> int:
        return len(self.data)


@dataclass
class ElfImage:
    """A loadable executable: entry point plus PT_LOAD segments."""

    entry: int
    segments: List[ElfSegment] = field(default_factory=list)
    #: Guard instruction address (image offset) -> guard class.  Carried
    #: out-of-band in a PT_NOTE segment; empty for native baselines and
    #: foreign ELFs.
    provenance: Dict[int, str] = field(default_factory=dict)

    def segment_containing(self, vaddr: int) -> ElfSegment:
        for segment in self.segments:
            if segment.vaddr <= vaddr < segment.vaddr + segment.memsz:
                return segment
        raise _ElfError(f"no segment contains {vaddr:#x}")

    @property
    def text(self) -> ElfSegment:
        """The (single) executable segment."""
        executable = [s for s in self.segments if s.flags & PF_X]
        if len(executable) != 1:
            raise _ElfError(f"expected 1 executable segment, found "
                           f"{len(executable)}")
        return executable[0]


def write_elf(image: ElfImage) -> bytes:
    """Serialize an image to ELF64 bytes."""
    note = _pack_provenance(image.provenance) if image.provenance else None
    ehsize = _EHDR.size
    phentsize = _PHDR.size
    phnum = len(image.segments) + (1 if note is not None else 0)
    header_size = ehsize + phentsize * phnum

    # (p_type, flags, vaddr, memsz, data) per program header.
    entries = [
        (_PT_LOAD, s.flags, s.vaddr, s.memsz, s.data) for s in image.segments
    ]
    if note is not None:
        entries.append((_PT_NOTE, PF_R, 0, len(note), note))

    payloads = []
    offset = header_size
    for entry in entries:
        # Keep file offset congruent with vaddr modulo a page for realism.
        payloads.append((offset, entry))
        offset += len(entry[4])

    out = bytearray()
    ident = _EI_MAGIC + bytes([_ELFCLASS64, _ELFDATA2LSB, _EV_CURRENT]) + bytes(9)
    out += _EHDR.pack(
        ident, _ET_EXEC, _EM_AARCH64, _EV_CURRENT, image.entry,
        ehsize, 0, 0, ehsize, phentsize, phnum, 0, 0, 0,
    )
    for file_offset, (p_type, flags, vaddr, memsz, data) in payloads:
        out += _PHDR.pack(
            p_type, flags, file_offset, vaddr,
            vaddr, len(data), memsz, 0x4000,
        )
    for file_offset, (_, _, _, _, data) in payloads:
        assert len(out) == file_offset
        out += data
    return bytes(out)


def read_elf(data: bytes) -> ElfImage:
    """Parse ELF64 bytes back into an image."""
    if len(data) < _EHDR.size:
        raise _ElfError("truncated ELF header")
    fields = _EHDR.unpack_from(data, 0)
    ident = fields[0]
    if ident[:4] != _EI_MAGIC:
        raise _ElfError("bad ELF magic")
    if ident[4] != _ELFCLASS64 or ident[5] != _ELFDATA2LSB:
        raise _ElfError("not a little-endian ELF64 file")
    e_type, e_machine = fields[1], fields[2]
    if e_machine != _EM_AARCH64:
        raise _ElfError(f"unsupported machine {e_machine}")
    if e_type != _ET_EXEC:
        raise _ElfError(f"unsupported ELF type {e_type}")
    entry = fields[4]
    phoff = fields[5]
    phentsize, phnum = fields[9], fields[10]
    if phentsize != _PHDR.size:
        raise _ElfError(f"unexpected phentsize {phentsize}")

    segments: List[ElfSegment] = []
    provenance: Dict[int, str] = {}
    for i in range(phnum):
        p = _PHDR.unpack_from(data, phoff + i * phentsize)
        p_type, p_flags, p_offset, p_vaddr, _p_paddr, p_filesz, p_memsz, _ = p
        if p_offset + p_filesz > len(data):
            raise _ElfError("segment payload out of range")
        payload = bytes(data[p_offset:p_offset + p_filesz])
        if p_type == _PT_NOTE and payload[:8] == _PROV_MAGIC:
            provenance = _unpack_provenance(payload)
            continue
        if p_type != _PT_LOAD:
            continue
        segments.append(
            ElfSegment(
                vaddr=p_vaddr,
                data=payload,
                memsz=p_memsz,
                flags=p_flags,
            )
        )
    return ElfImage(entry=entry, segments=segments, provenance=provenance)

"""Minimal ELF64 (EM_AARCH64) object format.

The paper's runtime loads verified ELF executables into sandbox slots
(§5.3).  We implement just enough of ELF64 — the header and program headers
— to carry text/rodata/data/bss segments with per-segment permissions and an
entry point, writable and readable without external tooling.
"""

from ..errors import ElfError
from .format import (
    ElfImage,
    ElfSegment,
    PF_R,
    PF_W,
    PF_X,
    read_elf,
    write_elf,
)
from .builder import build_elf

__all__ = [
    "ElfError",
    "ElfImage",
    "ElfSegment",
    "PF_R",
    "PF_W",
    "PF_X",
    "read_elf",
    "write_elf",
    "build_elf",
]

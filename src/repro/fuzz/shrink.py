"""Greedy minimization of failing fuzz cases.

Two shrinkers, one per input shape:

* :func:`shrink_program` — ddmin-style reduction over a generated
  program's *fragments* (the generator's unit of meaning); removing whole
  fragments keeps the residue well-formed, so every candidate is still a
  valid program;
* :func:`shrink_mutations` — drops mutations from a mutant's batch one at
  a time, keeping the smallest suffix that still reproduces.

Both take a ``fails`` predicate and guarantee the returned case satisfies
it (the original is returned unchanged if nothing smaller reproduces).
Predicates are called a bounded number of times so shrinking can never
stall a campaign.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from .genasm import GeneratedProgram
from .mutate import Mutation

__all__ = ["shrink_program", "shrink_mutations", "shrink_words"]

#: Cap on predicate evaluations per shrink (each evaluation may rebuild and
#: re-run a program at four opt levels).
MAX_PROBES = 64


def shrink_program(program: GeneratedProgram,
                   fails: Callable[[GeneratedProgram], bool],
                   ) -> GeneratedProgram:
    """Smallest fragment subset of ``program`` still failing ``fails``."""
    probes = 0
    current = program
    chunk = max(1, len(current.fragments) // 2)
    while chunk >= 1 and probes < MAX_PROBES:
        shrunk = False
        n = len(current.fragments)
        start = 0
        while start < n and probes < MAX_PROBES:
            keep = [i for i in range(n)
                    if not start <= i < start + chunk]
            if not keep:
                start += chunk
                continue
            candidate = current.with_fragments(keep)
            probes += 1
            if fails(candidate):
                current = candidate
                n = len(current.fragments)
                shrunk = True
                # Restart at the same position: indices shifted left.
            else:
                start += chunk
        if not shrunk:
            chunk //= 2
    return current


def shrink_mutations(mutations: Sequence[Mutation],
                     fails: Callable[[List[Mutation]], bool],
                     ) -> List[Mutation]:
    """Smallest sub-batch of ``mutations`` still failing ``fails``."""
    current = list(mutations)
    probes = 0
    i = 0
    while i < len(current) and len(current) > 1 and probes < MAX_PROBES:
        candidate = current[:i] + current[i + 1:]
        probes += 1
        if fails(candidate):
            current = candidate
        else:
            i += 1
    return current


def shrink_words(words: Sequence[int],
                 fails: Callable[[List[int]], bool],
                 max_probes: int = MAX_PROBES) -> List[int]:
    """Smallest subsequence of machine-code ``words`` still failing.

    Drop-one-at-a-time over raw 32-bit instruction words — the unit the
    ``repro.prove`` counterexample bridge works in.  The predicate sees
    the surviving words in their original order, so context-sensitive
    verifier rules (guards, runtime-call pairs) keep their adjacency.
    """
    current = list(words)
    probes = 0
    i = 0
    while i < len(current) and len(current) > 1 and probes < max_probes:
        candidate = current[:i] + current[i + 1:]
        probes += 1
        if fails(candidate):
            current = candidate
        else:
            i += 1
    return current

"""Shrunk-failure corpus: persistence and deterministic replay.

Every failure a campaign shrinks is saved as one JSON file under
``tests/corpus/`` and replayed forever after.  Two entry kinds:

* ``program`` — an assembly source; the completeness and semantics
  oracles must pass on it at every opt level (``expect: "pass"``), or the
  rewriter/verifier must reject it (``expect: "reject"``);
* ``machine`` — a raw text segment (hex) standing in for an adversarial
  binary; the verifier must reject it (``expect: "reject"``), or, if
  accepted, the soundness probe must find zero containment violations
  (``expect: "contained"``).

Replay is pure: entries are loaded in sorted filename order and evaluated
with the same oracle functions the live campaign uses, so a corpus run
emits byte-identical logs on every machine.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..core import VerifierPolicy
from ..elf import PF_R, PF_W, PF_X, ElfImage, ElfSegment
from .differential import (
    DATA_OFFSET,
    Finding,
    check_completeness,
    check_semantics,
    soundness_probe,
)

__all__ = ["CorpusEntry", "entry_elf", "entry_from_words", "load_corpus",
           "policy_dict", "replay_corpus", "save_entry"]

#: Default corpus location, relative to the repository root.
DEFAULT_CORPUS = Path(__file__).resolve().parents[3] / "tests" / "corpus"

#: Assembler text base: machine entries place their text here so offsets
#: match what the live campaign verified.
TEXT_BASE = 0x0004_0000

#: ``brk #0`` — appended to word-built machine entries so replay halts
#: deterministically if the verifier were ever to accept them.
BRK_WORD = 0xD420_0000


@dataclass
class CorpusEntry:
    """One persisted failure (or regression anchor)."""

    name: str
    kind: str  # "program" | "machine"
    expect: str  # "pass" | "reject" | "contained"
    description: str = ""
    source: str = ""  # program kind
    text_hex: str = ""  # machine kind
    policy: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> str:
        body = {"name": self.name, "kind": self.kind, "expect": self.expect,
                "description": self.description}
        if self.kind == "program":
            body["source"] = self.source
        else:
            body["text_hex"] = self.text_hex
            if self.policy:
                body["policy"] = self.policy
        return json.dumps(body, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "CorpusEntry":
        raw = json.loads(text)
        return cls(
            name=raw["name"], kind=raw["kind"], expect=raw["expect"],
            description=raw.get("description", ""),
            source=raw.get("source", ""),
            text_hex=raw.get("text_hex", ""),
            policy=raw.get("policy", {}),
        )

    def verifier_policy(self) -> VerifierPolicy:
        return VerifierPolicy(**self.policy)


def policy_dict(policy: Optional[VerifierPolicy]) -> Dict[str, object]:
    """The non-default fields of a policy, as a JSON-able dict."""
    if policy is None:
        return {}
    default = VerifierPolicy()
    return {
        name: getattr(policy, name)
        for name in ("allow_exclusives", "max_displacement", "sandbox_loads")
        if getattr(policy, name) != getattr(default, name)
    }


def entry_from_words(name: str, words: List[int],
                     policy: Optional[VerifierPolicy] = None,
                     description: str = "", expect: str = "reject",
                     source: str = "") -> CorpusEntry:
    """A ``machine`` corpus entry from raw instruction words.

    Appends :data:`BRK_WORD` so an (unexpectedly) accepted entry halts
    rather than running off the end of its text; ``policy`` round-trips
    through :func:`policy_dict` so replay verifies under the same mode
    the words were found in.
    """
    text = b"".join((w & 0xFFFFFFFF).to_bytes(4, "little")
                    for w in list(words) + [BRK_WORD])
    entry = CorpusEntry(
        name=name, kind="machine", expect=expect,
        description=description, text_hex=text.hex(),
        policy=policy_dict(policy),
    )
    if source:
        entry.description = (f"{description} [{source}]" if description
                             else f"[{source}]")
    return entry


def entry_elf(entry: CorpusEntry) -> ElfImage:
    """Build the image for a ``machine`` entry: its text plus a data page."""
    text = bytes.fromhex(entry.text_hex)
    return ElfImage(entry=TEXT_BASE, segments=[
        ElfSegment(vaddr=TEXT_BASE, data=text, memsz=max(len(text), 4),
                   flags=PF_R | PF_X),
        ElfSegment(vaddr=DATA_OFFSET, data=b"", memsz=4096,
                   flags=PF_R | PF_W),
    ])


def load_corpus(directory: Optional[Path] = None) -> List[CorpusEntry]:
    """All corpus entries, in sorted filename order (deterministic)."""
    directory = Path(directory) if directory else DEFAULT_CORPUS
    entries = []
    if directory.is_dir():
        for path in sorted(directory.glob("*.json")):
            entries.append(CorpusEntry.from_json(path.read_text()))
    return entries


def save_entry(entry: CorpusEntry, directory: Optional[Path] = None) -> Path:
    """Persist one entry as ``<name>.json``; returns the path written."""
    directory = Path(directory) if directory else DEFAULT_CORPUS
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{entry.name}.json"
    path.write_text(entry.to_json())
    return path


def replay_entry(entry: CorpusEntry) -> List[Finding]:
    """Re-run one entry through the oracles; returns surviving findings."""
    if entry.kind == "program":
        findings = check_completeness(entry.source)
        if entry.expect == "reject":
            # The entry is *supposed* to be rejected by the rewriter or
            # verifier: a finding is the expected outcome, silence is not.
            if findings:
                return []
            return [Finding("completeness", "-",
                            f"{entry.name}: expected rejection, got none")]
        return findings + check_semantics(entry.source)

    accepted, findings = soundness_probe(entry_elf(entry),
                                         entry.verifier_policy())
    if entry.expect == "reject" and accepted:
        return [Finding("soundness", "-",
                        f"{entry.name}: verifier accepted a known-bad "
                        f"mutant")] + findings
    return findings


def replay_corpus(directory: Optional[Path] = None,
                  log=None) -> List[Finding]:
    """Replay every corpus entry; log one line per entry; return findings."""
    findings: List[Finding] = []
    for entry in load_corpus(directory):
        got = replay_entry(entry)
        if log is not None:
            status = "FAIL" if got else "ok"
            log(f"corpus {entry.name} [{entry.kind}/{entry.expect}] "
                f"{status}")
        findings.extend(got)
    return findings

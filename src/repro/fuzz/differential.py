"""The differential oracles (ISSUE 2 tentpole, extended by ISSUE 6).

* :func:`check_completeness` — everything the rewriter emits must be
  accepted by the verifier, at every optimization level (paper §5.1);
* :func:`check_semantics` — O0/O1/O2 (and the store-only variant) rewrites
  of one program must be observationally equivalent to the native run on
  final register file and data buffer;
* :func:`soundness_probe` — a mutant the verifier *accepts* must execute
  under the :class:`~repro.robustness.ContainmentAuditor` with zero
  out-of-sandbox effects (paper §5.2, tested adversarially);
* :func:`check_checkpoint` — interrupting a run at an arbitrary point,
  serializing it through :class:`~repro.checkpoint.Checkpoint` bytes, and
  resuming in a *fresh* runtime must be observationally invisible: exit
  code, stdout, instruction count, canonical registers, normalized memory
  digests, metrics, and the full normalized event trace all byte-identical
  to the uninterrupted run (DESIGN.md §12);
* :func:`check_speculation` — enabling the bounded-speculation engine
  mode must be architecturally invisible: registers, memory, retired
  instructions, cycle totals, gauge counters, stdout, and event traces
  all byte-identical to the non-speculative stepping run (DESIGN.md §16).

All entry points are pure functions of their inputs; nothing here consults
global randomness, so a fuzz campaign driven by one seed replays exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..arm64 import parse_assembly
from ..arm64.assembler import assemble
from ..checkpoint import (
    Checkpoint,
    canonical_registers,
    capture_job,
    job_processes,
    memory_digest,
    normalize_events,
    restore_job,
    track_slot_bases,
)
from ..core import (
    O0,
    O1,
    O2,
    O2_FENCE,
    O2_MASK,
    O2_NO_LOADS,
    RewriteError,
    RewriteOptions,
    VerifierPolicy,
    rewrite_program,
    verify_elf,
)
from ..elf import PF_X, ElfImage, ElfSegment, build_elf
from ..emulator import BrkTrap, Machine, OutOfFuel
from ..emulator.costs import APPLE_M1
from ..engine import EngineConfig, SpeculationConfig
from ..memory import GUARD_SIZE, PERM_RW, PERM_RX, PagedMemory, SandboxLayout
from ..obs import MetricsHub, Tracer
from ..robustness import ContainmentAuditor
from ..runtime import Deadlock, Runtime, RuntimeError_

__all__ = [
    "Finding",
    "LEVELS",
    "CHECKPOINT_POINTS",
    "check_checkpoint",
    "check_completeness",
    "check_semantics",
    "check_speculation",
    "assemble_to_elf",
    "mutant_elf",
    "rewrite_to_elf",
    "run_elf_in_slot",
    "state_diff",
    "soundness_probe",
]

#: ``(label, rewrite options, matching verifier policy)`` for each level the
#: oracles exercise — the four configurations of the paper's Figure 3, plus
#: the two Spectre-hardened ablations (DESIGN.md §16).
LEVELS: Tuple[Tuple[str, RewriteOptions, VerifierPolicy], ...] = (
    ("O0", O0, VerifierPolicy()),
    ("O1", O1, VerifierPolicy()),
    ("O2", O2, VerifierPolicy()),
    ("O2-noloads", O2_NO_LOADS, VerifierPolicy(sandbox_loads=False)),
    ("O2-fence", O2_FENCE, VerifierPolicy()),
    ("O2-mask", O2_MASK, VerifierPolicy()),
)

#: Slot used for the machine-level (non-runtime) differential runs.
SLOT = SandboxLayout.for_slot(3)

#: Offset of the ``.data`` section inside the image (assembler layout).
DATA_OFFSET = 0x2000_0000

#: Machine-level fuel for one differential run.  Generated programs are a
#: few hundred dynamic instructions; rewriting at most triples that.
RUN_FUEL = 200_000

#: Instruction budget for one mutant probe under the runtime.
PROBE_BUDGET = 50_000

#: Default interruption points (in retired instructions) for the
#: checkpoint oracle.  Deliberately *not* timeslice-aligned: run_bounded
#: rounds up to the next slice boundary, so odd points also prove that
#: chunked execution never pauses mid-slice.
CHECKPOINT_POINTS: Tuple[int, ...] = (37, 120, 451, 1900)

#: Instruction budget for one checkpoint-oracle run.
CHECKPOINT_BUDGET = 500_000


@dataclass(frozen=True)
class Finding:
    """One oracle failure, formatted deterministically."""

    oracle: str  # "completeness" | "semantics" | "soundness" | "crash"
    level: str  # opt-level label, or "-" when not level-specific
    detail: str

    def line(self) -> str:
        return f"FINDING {self.oracle} level={self.level} {self.detail}"


# -- building and running images ---------------------------------------------


def rewrite_to_elf(source: str, options: RewriteOptions) -> ElfImage:
    """Parse, rewrite, assemble, and link one program."""
    program = rewrite_program(parse_assembly(source), options).program
    return build_elf(assemble(program))


def assemble_to_elf(source: str) -> ElfImage:
    """Assemble a program natively (no rewriting)."""
    return build_elf(assemble(parse_assembly(source)))


def mutant_elf(elf: ElfImage, text: bytes) -> ElfImage:
    """A copy of ``elf`` whose executable segment holds ``text``."""
    segments = []
    for seg in elf.segments:
        if seg.flags & PF_X:
            segments.append(ElfSegment(
                vaddr=seg.vaddr, data=text,
                memsz=max(seg.memsz, len(text)), flags=seg.flags))
        else:
            segments.append(seg)
    return ElfImage(entry=elf.entry, segments=segments)


def slot_machine(elf: ElfImage, engine=None, model=None) -> Machine:
    """Map ``elf`` into the differential slot; return a ready machine.

    Mirrors the runtime loader: segments land at ``SLOT.base + vaddr``, a
    stack is mapped below ``usable_end``, x21 holds the slot base.
    """
    memory = PagedMemory()
    page = memory.page_size
    for seg in elf.segments:
        vaddr = SLOT.base + seg.vaddr
        base = vaddr & ~(page - 1)
        end = (vaddr + max(seg.memsz, 1) + page - 1) & ~(page - 1)
        memory.map_region(base, end - base, PERM_RW)
        memory.load_image(vaddr, seg.data)
        memory.protect(base, end - base,
                       PERM_RX if seg.flags & PF_X else PERM_RW)
    stack_top = SLOT.usable_end
    memory.map_region(stack_top - 0x8000, 0x8000, PERM_RW)

    machine = Machine(memory, model=model, engine=engine)
    machine.cpu.pc = SLOT.base + elf.entry
    machine.cpu.sp = stack_top
    machine.cpu.regs[21] = SLOT.base
    return machine


def run_elf_in_slot(elf: ElfImage, fuel: int = RUN_FUEL,
                    buf_size: int = 4096) -> Tuple[List[int], bytes]:
    """Run an image bare-machine in a sandbox slot; return observable state.

    The program must halt via ``brk #0``.  Returns ``(x0..x7, data buffer)``.
    """
    machine = slot_machine(elf)
    try:
        machine.run(fuel=fuel)
    except BrkTrap:
        pass
    else:
        raise OutOfFuel("program did not halt")

    return (
        [machine.cpu.regs[i] for i in range(8)],
        machine.memory.read(SLOT.base + DATA_OFFSET, buf_size),
    )


# -- oracle 1: completeness ---------------------------------------------------


def check_completeness(source: str) -> List[Finding]:
    """Rewriter output must verify at every level (with its own policy)."""
    findings: List[Finding] = []
    for label, options, policy in LEVELS:
        try:
            elf = rewrite_to_elf(source, options)
        except RewriteError as exc:
            findings.append(Finding("completeness", label,
                                    f"rewriter rejected input: {exc}"))
            continue
        result = verify_elf(elf, policy)
        if not result.ok:
            first = "; ".join(str(v) for v in result.violations[:3])
            findings.append(Finding(
                "completeness", label,
                f"{len(result.violations)} violation(s): {first}"))
    return findings


# -- oracle 2: semantics preservation ----------------------------------------


def check_semantics(source: str, fuel: int = RUN_FUEL) -> List[Finding]:
    """Native and rewritten runs must agree on registers and data buffer."""
    findings: List[Finding] = []
    try:
        native = run_elf_in_slot(assemble_to_elf(source), fuel)
    except OutOfFuel:
        return [Finding("crash", "native", "program did not halt")]
    for label, options, _policy in LEVELS:
        try:
            elf = rewrite_to_elf(source, options)
        except RewriteError:
            continue  # completeness oracle reports this
        try:
            sandboxed = run_elf_in_slot(elf, fuel)
        except OutOfFuel:
            findings.append(Finding("semantics", label,
                                    "rewritten program did not halt"))
            continue
        if sandboxed != native:
            findings.append(Finding("semantics", label,
                                    state_diff(native, sandboxed)))
    return findings


def state_diff(native, sandboxed) -> str:
    """First observable divergence, deterministically formatted."""
    nregs, nbuf = native
    sregs, sbuf = sandboxed
    for i, (a, b) in enumerate(zip(nregs, sregs)):
        if a != b:
            return f"x{i}: native={a:#x} rewritten={b:#x}"
    for off, (a, b) in enumerate(zip(nbuf, sbuf)):
        if a != b:
            return f"buffer[{off:#x}]: native={a:#x} rewritten={b:#x}"
    return "states differ"


# -- oracle 3: soundness ------------------------------------------------------


def soundness_probe(elf: ElfImage, policy: Optional[VerifierPolicy] = None,
                    budget: int = PROBE_BUDGET,
                    ) -> Tuple[bool, List[Finding]]:
    """Check one (possibly adversarial) image against the verifier's promise.

    Returns ``(accepted, findings)``.  If the verifier rejects the image
    there is nothing to check (``(False, [])``).  If it accepts, the image
    runs under a fresh :class:`Runtime` with a :class:`ContainmentAuditor`
    attached and a writable decoy page mapped in the *neighbouring* slot —
    a landing zone that turns a silent escape into a recorded write — and
    every audited effect outside the sandbox becomes a soundness finding.
    """
    result = verify_elf(elf, policy)
    if not result.ok:
        return False, []

    runtime = Runtime(first_slot=1)
    auditor = ContainmentAuditor(runtime)
    # Decoy page one slot above: adjacent-slot escapes (e.g. a computed
    # address just past the 4GiB boundary) hit mapped memory instead of
    # faulting, so only the auditor can catch them.
    decoy = SandboxLayout.for_slot(2)
    runtime.memory.map_region(decoy.base + 0x10000, runtime.memory.page_size,
                              PERM_RW)

    # The verifier already accepted the image above; spawn trusts it so the
    # probe exercises exactly what was verified.
    proc = runtime.spawn(elf, verify=False)
    outcome = "exited"
    try:
        runtime.run_until_exit(proc, max_instructions=budget)
    except Deadlock:
        outcome = "deadlocked"
    except RuntimeError_:
        outcome = "budget-exhausted"
    auditor.audit_after_fault(proc.pid)

    findings = [
        Finding("soundness", "-", f"[{outcome}] {v.line()}")
        for v in auditor.violations
    ]
    # The auditor's register walk skips zombies, but the probed process is
    # usually dead by now (brk/segv terminate it) — its *saved* registers
    # still witness any invariant break, so check them here.  x21 is never
    # legally written; sp may legitimately drift into the guard regions.
    lo, hi = proc.layout.base, proc.layout.end
    x21 = proc.registers["regs"][21]
    if x21 != lo:
        findings.append(Finding(
            "soundness", "-",
            f"[{outcome}] register: pid={proc.pid} x21 = {x21:#x}, "
            f"expected slot base {lo:#x}"))
    sp = proc.registers["sp"]
    if not lo - GUARD_SIZE <= sp <= hi + GUARD_SIZE:
        findings.append(Finding(
            "soundness", "-",
            f"[{outcome}] register: pid={proc.pid} sp = {sp:#x} outside "
            f"slot [{lo:#x}, {hi:#x}] and its guard regions"))
    return True, findings


# -- oracle 4: checkpoint transparency ----------------------------------------


def _observed_run(elf: ElfImage, stdin: bytes, timeslice: int):
    """A fresh fully-observed runtime with ``elf`` spawned, not yet run."""
    runtime = Runtime(model=None, timeslice=timeslice)
    tracer = Tracer(record=True)
    tracer.attach(runtime)
    hub = MetricsHub().attach(tracer, runtime)
    bases = track_slot_bases(runtime, tracer)
    proc = runtime.spawn(elf)
    if stdin:
        proc.fds[0].buffer.extend(stdin)
    return runtime, tracer, hub, bases, proc


def _final_state(runtime: Runtime, root) -> dict:
    """Everything position-independent a finished job left behind."""
    procs = {}
    for proc in job_processes(runtime, root):
        procs[proc.pid - root.pid] = (
            str(proc.state),
            proc.exit_code,
            proc.instructions,
            canonical_registers(proc.registers, proc.layout),
            memory_digest(runtime.memory, proc.layout),
        )
    return procs


def check_checkpoint(elf: ElfImage, points: Tuple[int, ...]
                     = CHECKPOINT_POINTS, budget: int = CHECKPOINT_BUDGET,
                     stdin: bytes = b"", timeslice: int = 50,
                     ) -> List[Finding]:
    """Checkpoint/restore at each point must be observationally invisible.

    For every interruption point: run a fresh sandbox for that many
    instructions, capture a :class:`~repro.checkpoint.Checkpoint`,
    round-trip it through bytes, restore into a *fresh* runtime, and run
    to completion.  The split run must match the uninterrupted reference
    byte-for-byte on exit code, stdout, per-process instruction counts,
    canonical registers, normalized memory digests, metrics state, and
    the full normalized event trace (checkpoint-phase events rebased by
    the consumed cycle/instruction counters).  Points past the program's
    natural exit are skipped — there is nothing left to interrupt.
    """
    runtime, tracer, hub, bases, proc = _observed_run(elf, stdin, timeslice)
    if not runtime.run_bounded(proc, budget):
        return [Finding("checkpoint", "-",
                        f"reference run did not halt in {budget}")]
    reference = {
        "stdout": runtime.stdout_of(proc),
        "events": normalize_events(tracer.events, bases, pid_base=proc.pid),
        "metrics": hub.state_dict(pid_base=proc.pid),
        "state": _final_state(runtime, proc),
    }

    findings: List[Finding] = []
    for point in points:
        rt1, tr1, hub1, b1, p1 = _observed_run(elf, stdin, timeslice)
        if rt1.run_bounded(p1, point):
            continue  # program finished before the interruption point
        ckpt = capture_job(
            rt1, p1, hub1,
            consumed_instructions=rt1.machine.instret,
            consumed_cycles=rt1.machine.cycles)
        blob = ckpt.to_bytes()
        ckpt2 = Checkpoint.from_bytes(blob)
        if ckpt2.digest() != ckpt.digest():
            findings.append(Finding(
                "checkpoint", f"@{point}",
                "serialization round trip changed the digest"))
            continue
        phase1 = normalize_events(tr1.events, b1, pid_base=p1.pid)

        rt2 = Runtime(model=None, timeslice=timeslice)
        tr2 = Tracer(record=True)
        tr2.attach(rt2)
        hub2 = MetricsHub().attach(tr2, rt2)
        b2 = track_slot_bases(rt2, tr2)
        p2 = restore_job(rt2, ckpt2, hub2)
        if not rt2.run_bounded(p2, budget):
            findings.append(Finding("checkpoint", f"@{point}",
                                    "resumed run did not halt"))
            continue
        phase2 = normalize_events(
            tr2.events, b2, ts_base=-ckpt2.consumed_cycles,
            pid_base=p2.pid, instret_base=-ckpt2.consumed_instructions)

        resumed_stdout = rt2.stdout_of(p2)
        if resumed_stdout != reference["stdout"]:
            findings.append(Finding(
                "checkpoint", f"@{point}",
                f"stdout diverged: ref={reference['stdout']!r} "
                f"resumed={resumed_stdout!r}"))
        state = _final_state(rt2, p2)
        if state != reference["state"]:
            for off in sorted(set(reference["state"]) | set(state)):
                if reference["state"].get(off) != state.get(off):
                    findings.append(Finding(
                        "checkpoint", f"@{point}",
                        f"process +{off} final state diverged"))
                    break
        if hub2.state_dict(pid_base=p2.pid) != reference["metrics"]:
            findings.append(Finding("checkpoint", f"@{point}",
                                    "metrics state diverged"))
        combined = phase1 + phase2
        if combined != reference["events"]:
            detail = "trace diverged"
            for a, b in zip(reference["events"], combined):
                if a != b:
                    detail = (f"trace diverged: ref={a!r} resumed={b!r}")
                    break
            else:
                detail = (f"trace length {len(reference['events'])} != "
                          f"{len(combined)}")
            findings.append(Finding("checkpoint", f"@{point}", detail))
    return findings


# -- oracle 5: speculation transparency ---------------------------------------


def _speculation_observables(elf: ElfImage, speculation, model,
                             fuel: int) -> dict:
    """Every architectural observable of one bare-machine stepping run."""
    machine = slot_machine(
        elf, engine=EngineConfig(kind="stepping", speculation=speculation),
        model=model)
    try:
        machine.run(fuel=fuel)
    except BrkTrap:
        pass
    else:
        raise OutOfFuel("program did not halt")
    obs = {
        "cpu": machine.cpu.snapshot(),
        "exclusive": machine.cpu.exclusive_addr,
        "buffer": machine.memory.read(SLOT.base + DATA_OFFSET, 4096),
        "instret": machine.instret,
        "cycles": machine.cycles,
    }
    for gauge in ("tlb", "l1", "l2"):
        unit = getattr(machine, gauge)
        obs[gauge] = (unit.hits, unit.misses) if unit is not None else None
    return obs


def _speculation_runtime_run(elf: ElfImage, engine: EngineConfig,
                             budget: int, timeslice: int) -> dict:
    """One observed runtime-level run (stdout, trace, metrics, state).

    The metrics hub attaches event-only (no runtime): a per-step probe
    would — correctly — be rejected in combination with speculation.
    """
    runtime = Runtime(model=None, timeslice=timeslice, engine=engine)
    tracer = Tracer(record=True)
    tracer.attach(runtime)
    hub = MetricsHub().attach(tracer)
    bases = track_slot_bases(runtime, tracer)
    proc = runtime.spawn(elf)
    halted = runtime.run_bounded(proc, budget)
    return {
        "halted": halted,
        "stdout": runtime.stdout_of(proc),
        "events": normalize_events(tracer.events, bases, pid_base=proc.pid),
        "metrics": hub.state_dict(pid_base=proc.pid),
        "state": _final_state(runtime, proc),
    }


def check_speculation(elf: ElfImage, seed: int = 0, fuel: int = RUN_FUEL,
                      budget: int = CHECKPOINT_BUDGET, timeslice: int = 50,
                      ) -> List[Finding]:
    """Bounded speculation with rollback must be architecturally invisible.

    Runs ``elf`` twice on the stepping engine — plain, and with
    ``EngineConfig(speculation=...)`` under predictor seed ``seed`` — and
    requires bit-identical observables at two levels:

    * **bare machine**, uncosted and under the Apple-M1 cost model: the
      full register file and flags, data buffer, retired instruction
      count, cycle total, and the TLB/L1/L2 hit and miss counters (the
      speculative engine probes the gauges for its observer but must
      roll every transient mutation back);
    * **runtime**: exit state, stdout, the metrics-hub state, and the
      full normalized event trace.

    Any divergence means transient state escaped a squash — a real
    isolation bug, reported as a ``speculation`` finding.
    """
    findings: List[Finding] = []
    spec = SpeculationConfig(seed=seed)
    for label, model in (("bare", None), ("bare+model", APPLE_M1)):
        try:
            base = _speculation_observables(elf, None, model, fuel)
        except OutOfFuel:
            return [Finding("speculation", label,
                            "baseline run did not halt")]
        try:
            speculated = _speculation_observables(elf, spec, model, fuel)
        except OutOfFuel:
            findings.append(Finding("speculation", label,
                                    "speculative run did not halt"))
            continue
        for key, value in base.items():
            if speculated[key] != value:
                findings.append(Finding(
                    "speculation", label,
                    f"{key} diverged under speculation (seed={seed})"))
                break

    reference = _speculation_runtime_run(
        elf, EngineConfig(kind="stepping"), budget, timeslice)
    observed = _speculation_runtime_run(
        elf, EngineConfig(kind="stepping", speculation=spec),
        budget, timeslice)
    for key, value in reference.items():
        if observed[key] != value:
            findings.append(Finding(
                "speculation", "runtime",
                f"{key} diverged under speculation (seed={seed})"))
            break
    return findings

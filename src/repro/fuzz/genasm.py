"""Seeded generators of well-formed ARM64 assembly programs.

Programs are built from a library of *fragments* — short instruction
sequences that each leave the program in a canonical state (buffer pointer
restored, stack pointer balanced, no reserved registers touched) — so any
sequence of fragments is a valid rewriter input whose native and rewritten
executions must agree on the observed state (``x0``-``x7`` plus the data
buffer).

The generator draws from any :class:`random.Random`-compatible source, so
the same code path serves both the seeded CLI campaign (``random.Random``)
and Hypothesis property tests (``st.randoms(use_true_random=False)``,
which gives shrinking for free).

Fragment coverage, per the paper's Table 1 and §4:

* loads/stores in every addressing mode (immediate scaled/unscaled,
  pre/post-index writeback, register offset, extended register offset,
  pairs, exclusives, acquire/release);
* indirect branches (``br``/``blr`` through work registers and ``x30``);
* sp manipulation (frame push/pop, ``mov sp, xN`` save/restore, sp-based
  pair writeback);
* x30 manipulation (calls, stack save/restore of the link register,
  address materialization into ``x30``);
* control flow (conditional/compare/test branches, bounded loops).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

__all__ = ["GenConfig", "GeneratedProgram", "AsmGenerator", "BUF_SIZE"]

#: Size of the data buffer all generated memory traffic stays inside.
BUF_SIZE = 4096

#: Observed work registers (compared between native and rewritten runs).
WORK = [f"x{i}" for i in range(8)]

#: Scratch registers (never part of the observed state).
ADDR = "x9"    # address materialization (adr targets)
BUF = "x10"    # buffer pointer (restored after every fragment)
IDX = "x11"    # bounded index for register-offset addressing
LOOP = "x12"   # loop counter
SPS = "x13"    # stack-pointer save slot
STATUS = "x15"  # store-exclusive status

#: Valid logical (bitmask) immediates for and/orr/eor.
LOGICAL_IMMS = (
    0x1, 0x3, 0x7, 0xF, 0xFF, 0xF0, 0x3F0, 0xFF00, 0xFFFF,
    0x7FFFFFFF, 0xFFFFFFFF00000000, 0x5555555555555555,
)

#: Masks keeping a byte index inside the buffer for each access width.
_BYTE_MASK = 0xFFF       # any byte
_HALF_MASK = 0xFFE       # 2-aligned, < 4096
_WORD_MASK = 0xFFC       # 4-aligned
_DWORD_MASK = 0xFF8      # 8-aligned

_CONDS = ("eq", "ne", "lt", "ge", "gt", "le", "hi", "ls", "hs", "lo")


@dataclass(frozen=True)
class GenConfig:
    """Knobs for one generation campaign."""

    #: Number of top-level fragments per program (drawn uniformly in range).
    min_fragments: int = 3
    max_fragments: int = 12
    #: Emit LL/SC and acquire/release fragments (must be off when fuzzing
    #: the §7.1 ``allow_exclusives=False`` hardening policy).
    exclusives: bool = True
    #: Emit bounded loops.
    loops: bool = True
    #: Emit direct/indirect calls to generated leaf functions.
    calls: bool = True

    def with_(self, **kwargs) -> "GenConfig":
        return replace(self, **kwargs)


@dataclass
class GeneratedProgram:
    """One generated program, kept fragment-addressable for shrinking."""

    fragments: List[List[str]]
    leaves: List[List[str]] = field(default_factory=list)

    @property
    def source(self) -> str:
        lines = [".text", ".globl _start", "_start:"]
        for i in range(8):
            lines.append(f"    movz x{i}, #{(i * 0x1234 + 7) & 0xFFFF}")
        lines += [
            f"    adrp {BUF}, buffer",
            f"    add {BUF}, {BUF}, :lo12:buffer",
            f"    mov {IDX}, #0",
            f"    mov {STATUS}, #0",
        ]
        for fragment in self.fragments:
            lines.extend(f"    {line}" for line in fragment)
        lines.append("    brk #0")
        for leaf in self.leaves:
            lines.extend(leaf)
        lines += [".data", ".balign 16", "buffer:", f"    .skip {BUF_SIZE}"]
        return "\n".join(lines) + "\n"

    def instruction_estimate(self) -> int:
        return sum(len(f) for f in self.fragments) + sum(
            len(l) for l in self.leaves
        )

    def with_fragments(self, keep: Sequence[int]) -> "GeneratedProgram":
        """A copy containing only the fragments at ``keep`` (for shrinking)."""
        return GeneratedProgram(
            fragments=[self.fragments[i] for i in keep],
            leaves=list(self.leaves),
        )


class AsmGenerator:
    """Draws well-formed programs from an ``random.Random``-like source."""

    def __init__(self, config: Optional[GenConfig] = None):
        self.config = config or GenConfig()

    # -- public API ----------------------------------------------------------

    def generate(self, rng) -> GeneratedProgram:
        self._label = 0
        config = self.config
        leaves = []
        if config.calls:
            leaves = [self._leaf(rng, i) for i in range(2)]
        count = rng.randint(config.min_fragments, config.max_fragments)
        kinds = self._kinds(rng)
        fragments = [self._fragment(rng, rng.choice(kinds), len(leaves))
                     for _ in range(count)]
        return GeneratedProgram(fragments=fragments, leaves=leaves)

    # -- helpers -------------------------------------------------------------

    def _kinds(self, rng) -> List[str]:
        kinds = [
            # Weighted pool: plain ALU twice, everything else once.
            "alu", "alu",
            "load_imm", "store_imm", "pair", "unscaled", "byte_half",
            "pre_post", "reg_offset", "ext_offset",
            "sp_frame", "sp_mov", "sp_pair",
            "cond_skip", "cb_skip", "tb_skip",
            "jump_indirect", "jump_x30",
        ]
        if self.config.exclusives:
            kinds += ["exclusive", "acqrel"]
        if self.config.loops:
            kinds += ["loop"]
        if self.config.calls:
            kinds += ["call", "call_indirect", "call_saved_lr"]
        return kinds

    def _next_label(self, stem: str) -> str:
        self._label += 1
        return f"L{stem}_{self._label}"

    def _reg(self, rng) -> str:
        return rng.choice(WORK)

    def _reg_pair(self, rng):
        a = rng.choice(WORK)
        b = rng.choice([r for r in WORK if r != a])
        return a, b

    def _off(self, rng, mask: int, step: int) -> int:
        return rng.randrange(0, (mask + 1) // step) * step

    # -- straight-line fragments (safe inside loops) --------------------------

    def _alu(self, rng) -> List[str]:
        a, b, c = self._reg(rng), self._reg(rng), self._reg(rng)
        pick = rng.randrange(8)
        if pick == 0:
            return [f"add {a}, {b}, #{rng.randrange(4096)}"]
        if pick == 1:
            return [f"sub {a}, {b}, #{rng.randrange(4096)}"]
        if pick == 2:
            op = rng.choice(["and", "orr", "eor"])
            return [f"{op} {a}, {b}, #{rng.choice(LOGICAL_IMMS)}"]
        if pick == 3:
            op = rng.choice(["add", "sub", "and", "orr", "eor", "mul"])
            return [f"{op} {a}, {b}, {c}"]
        if pick == 4:
            op = rng.choice(["add", "sub"])
            kind = rng.choice(["lsl", "lsr", "asr"])
            return [f"{op} {a}, {b}, {c}, {kind} #{rng.randrange(4)}"]
        if pick == 5:
            return [f"movz {a}, #{rng.randrange(1 << 16)}"]
        if pick == 6:
            op = rng.choice(["lsl", "lsr", "asr"])
            return [f"{op} {a}, {b}, #{rng.randrange(64)}"]
        cond = rng.choice(_CONDS)
        return [f"cmp {b}, {c}", f"csel {a}, {b}, {c}, {cond}"]

    def _load_imm(self, rng) -> List[str]:
        return [f"ldr {self._reg(rng)}, "
                f"[{BUF}, #{self._off(rng, _DWORD_MASK, 8)}]"]

    def _store_imm(self, rng) -> List[str]:
        return [f"str {self._reg(rng)}, "
                f"[{BUF}, #{self._off(rng, _DWORD_MASK, 8)}]"]

    def _pair(self, rng) -> List[str]:
        a, b = self._reg_pair(rng)
        off = rng.randrange(0, 504 // 8) * 8
        if rng.randrange(2):
            return [f"ldp {a}, {b}, [{BUF}, #{off}]"]
        return [f"stp {a}, {b}, [{BUF}, #{off}]"]

    def _unscaled(self, rng) -> List[str]:
        # Centre the pointer so signed imm9 offsets stay inside the buffer.
        # Only negative offsets: a non-negative multiple of the access size
        # has a canonical *scaled* encoding, and the decoder rejects the
        # unscaled form for it.
        reg = self._reg(rng)
        off = -8 * rng.randrange(1, 32)
        op = rng.choice(["ldur", "stur"])
        return [
            f"add {BUF}, {BUF}, #256",
            f"{op} {reg}, [{BUF}, #{off}]",
            f"sub {BUF}, {BUF}, #256",
        ]

    def _byte_half(self, rng) -> List[str]:
        reg = self._reg(rng)
        w = f"w{reg[1:]}"
        pick = rng.randrange(6)
        if pick == 0:
            return [f"ldrb {w}, [{BUF}, #{self._off(rng, _BYTE_MASK, 1)}]"]
        if pick == 1:
            return [f"strb {w}, [{BUF}, #{self._off(rng, _BYTE_MASK, 1)}]"]
        if pick == 2:
            return [f"ldrh {w}, [{BUF}, #{self._off(rng, _HALF_MASK, 2)}]"]
        if pick == 3:
            return [f"strh {w}, [{BUF}, #{self._off(rng, _HALF_MASK, 2)}]"]
        if pick == 4:
            return [f"ldrsb {reg}, [{BUF}, #{self._off(rng, _BYTE_MASK, 1)}]"]
        return [f"ldrsw {reg}, [{BUF}, #{self._off(rng, _WORD_MASK, 4)}]"]

    def _pre_post(self, rng) -> List[str]:
        reg = self._reg(rng)
        imm = rng.randrange(1, 32) * 8
        pick = rng.randrange(4)
        if pick == 0:
            return [f"ldr {reg}, [{BUF}, #{imm}]!",
                    f"sub {BUF}, {BUF}, #{imm}"]
        if pick == 1:
            return [f"str {reg}, [{BUF}, #{imm}]!",
                    f"sub {BUF}, {BUF}, #{imm}"]
        if pick == 2:
            return [f"ldr {reg}, [{BUF}], #{imm}",
                    f"sub {BUF}, {BUF}, #{imm}"]
        return [f"str {reg}, [{BUF}], #{imm}",
                f"sub {BUF}, {BUF}, #{imm}"]

    def _reg_offset(self, rng) -> List[str]:
        a, b = self._reg_pair(rng)
        op = rng.choice(["ldr", "str"])
        if rng.randrange(2):
            return [f"and {IDX}, {a}, #0xFF8",
                    f"{op} {b}, [{BUF}, {IDX}]"]
        return [f"and {IDX}, {a}, #0x1FF",
                f"{op} {b}, [{BUF}, {IDX}, lsl #3]"]

    def _ext_offset(self, rng) -> List[str]:
        a, b = self._reg_pair(rng)
        widx = f"w{IDX[1:]}"
        wa = f"w{a[1:]}"
        op = rng.choice(["ldr", "str"])
        if rng.randrange(2):
            return [f"and {widx}, {wa}, #0xFF8",
                    f"{op} {b}, [{BUF}, {widx}, uxtw]"]
        return [f"and {widx}, {wa}, #0x1FF",
                f"{op} {b}, [{BUF}, {widx}, uxtw #3]"]

    def _exclusive(self, rng) -> List[str]:
        a, b = self._reg_pair(rng)
        ws = f"w{STATUS[1:]}"
        off = self._off(rng, _DWORD_MASK, 8)
        return [
            f"add {BUF}, {BUF}, #{off}" if off else f"mov {IDX}, {IDX}",
            f"ldxr {a}, [{BUF}]",
            f"stxr {ws}, {b}, [{BUF}]",
            f"sub {BUF}, {BUF}, #{off}" if off else f"mov {IDX}, {IDX}",
        ]

    def _acqrel(self, rng) -> List[str]:
        a, b = self._reg_pair(rng)
        return [f"ldar {a}, [{BUF}]", f"stlr {b}, [{BUF}]"]

    def _sp_frame(self, rng) -> List[str]:
        a, b = self._reg_pair(rng)
        size = rng.randrange(1, 31) * 16
        slot = rng.randrange(0, size // 8) * 8
        return [
            f"sub sp, sp, #{size}",
            f"str {a}, [sp, #{slot}]",
            f"ldr {b}, [sp, #{slot}]",
            f"add sp, sp, #{size}",
        ]

    def _sp_mov(self, rng) -> List[str]:
        a, b = self._reg_pair(rng)
        return [
            f"mov {SPS}, sp",
            "sub sp, sp, #48",
            f"str {a}, [sp, #16]",
            f"ldr {b}, [sp, #16]",
            f"mov sp, {SPS}",
        ]

    def _sp_pair(self, rng) -> List[str]:
        a, b = self._reg_pair(rng)
        return [
            f"stp {a}, {b}, [sp, #-32]!",
            f"ldp {a}, {b}, [sp], #32",
        ]

    # -- control flow ----------------------------------------------------------

    def _cond_skip(self, rng, nleaves: int) -> List[str]:
        a, b = self._reg_pair(rng)
        label = self._next_label("skip")
        body = self._alu(rng)
        return ([f"cmp {a}, {b}", f"b.{rng.choice(_CONDS)} {label}"]
                + body + [f"{label}:"])

    def _cb_skip(self, rng, nleaves: int) -> List[str]:
        reg = self._reg(rng)
        label = self._next_label("cb")
        op = rng.choice(["cbz", "cbnz"])
        return [f"{op} {reg}, {label}"] + self._alu(rng) + [f"{label}:"]

    def _tb_skip(self, rng, nleaves: int) -> List[str]:
        reg = self._reg(rng)
        label = self._next_label("tb")
        op = rng.choice(["tbz", "tbnz"])
        bit = rng.randrange(0, 64)
        return [f"{op} {reg}, #{bit}, {label}"] + self._alu(rng) + [f"{label}:"]

    def _loop(self, rng, nleaves: int) -> List[str]:
        label = self._next_label("loop")
        count = rng.randrange(2, 6)
        body: List[str] = []
        for _ in range(rng.randrange(1, 4)):
            body.extend(self._straight(rng))
        return ([f"mov {LOOP}, #{count}", f"{label}:"] + body
                + [f"subs {LOOP}, {LOOP}, #1", f"b.ne {label}"])

    def _jump_indirect(self, rng, nleaves: int) -> List[str]:
        label = self._next_label("jmp")
        return ([f"adr {ADDR}, {label}", f"br {ADDR}"]
                + self._alu(rng)  # skipped over by the branch
                + [f"{label}:"])

    def _jump_x30(self, rng, nleaves: int) -> List[str]:
        label = self._next_label("lr")
        branch = "ret" if rng.randrange(2) else "br x30"
        return [f"adr x30, {label}", branch, f"{label}:"]

    def _call(self, rng, nleaves: int) -> List[str]:
        return [f"bl leaf{rng.randrange(nleaves)}"]

    def _call_indirect(self, rng, nleaves: int) -> List[str]:
        return [f"adr {ADDR}, leaf{rng.randrange(nleaves)}",
                f"blr {ADDR}"]

    def _call_saved_lr(self, rng, nleaves: int) -> List[str]:
        return [
            "str x30, [sp, #-16]!",
            f"bl leaf{rng.randrange(nleaves)}",
            "ldr x30, [sp], #16",
        ]

    # -- assembly of the pieces -------------------------------------------------

    _STRAIGHT = ("alu", "load_imm", "store_imm", "pair", "unscaled",
                 "byte_half", "pre_post", "reg_offset", "ext_offset",
                 "sp_frame", "sp_pair")

    def _straight(self, rng) -> List[str]:
        kind = rng.choice(self._STRAIGHT)
        return getattr(self, f"_{kind}")(rng)

    def _fragment(self, rng, kind: str, nleaves: int) -> List[str]:
        if kind in self._STRAIGHT or kind in ("sp_mov", "exclusive",
                                              "acqrel"):
            return getattr(self, f"_{kind}")(rng)
        return getattr(self, f"_{kind}")(rng, nleaves)

    def _leaf(self, rng, index: int) -> List[str]:
        lines = [f"leaf{index}:"]
        for _ in range(rng.randrange(1, 4)):
            lines.extend(f"    {line}" for line in self._alu(rng))
        lines.append("    ret")
        return lines

"""Seeded mutation engine: corrupt verified machine code.

Mutants model what a malicious (or broken) toolchain could hand the
verifier: the input is the *text segment of a verified binary*, and each
mutation perturbs it while keeping it a plausible instruction stream.

Supported operators, all deterministic under one ``random.Random``:

* ``bitflip``  — flip one bit of one instruction word;
* ``guarddel`` — replace a guard (``add xN, x21, wM, uxtw``) with a ``nop``
  or with an unguarded ``mov xN, xM``, so the guarded register loses its
  sandbox base;
* ``regsub``   — rewrite one 5-bit register field (Rd/Rn/Rm) to a reserved
  or otherwise interesting register index;
* ``splice``   — copy or swap instruction words within the segment,
  tearing guards away from the accesses they protect.

Mutations serialize to ``(op, *int args)`` tuples so a corpus entry can be
replayed byte-for-byte without re-running the planner.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..arm64.decoder import decode_word
from ..arm64.operands import Extended
from ..arm64.registers import Reg

__all__ = ["Mutation", "MutationEngine", "apply_mutations", "find_guards"]

OPS = ("bitflip", "guarddel", "regsub", "splice")

#: ``nop``.
_NOP = 0xD503201F
#: ``orr xD, xzr, xM`` == ``mov xD, xM``: base 0xAA0003E0 | Rm<<16 | Rd.
_MOV_BASE = 0xAA0003E0

#: Register indices a ``regsub`` prefers: the five reserved registers, the
#: link register, and the stack-adjacent x29 (plus 0 as a bland control).
_INTERESTING_REGS = (18, 21, 22, 23, 24, 30, 29, 0)

#: 5-bit register field positions: Rd/Rt, Rn, Rm.
_REG_FIELDS = (0, 5, 16)


@dataclass(frozen=True)
class Mutation:
    """One mutation, replayable from its serialized form."""

    op: str
    args: Tuple[int, ...]

    def serialize(self) -> List[int]:
        return [OPS.index(self.op), *self.args]

    @classmethod
    def deserialize(cls, raw: Sequence[int]) -> "Mutation":
        return cls(OPS[raw[0]], tuple(raw[1:]))


def _words(text: bytes) -> List[int]:
    return list(struct.unpack(f"<{len(text) // 4}I", text[: len(text) & ~3]))


def _pack(words: Sequence[int]) -> bytes:
    return struct.pack(f"<{len(words)}I", *words)


def find_guards(text: bytes, base: int = 0) -> List[Tuple[int, int, int]]:
    """``(word_index, dest_index, src_index)`` of every Table-3 guard."""
    guards = []
    for i, word in enumerate(_words(text)):
        inst = decode_word(word, base + 4 * i)
        if inst is None or inst.mnemonic != "add" or len(inst.operands) != 3:
            continue
        rd, rn, ext = inst.operands
        if not (isinstance(rd, Reg) and rd.is_gpr and not rd.is_sp):
            continue
        if not (isinstance(rn, Reg) and rn.is_gpr and rn.index == 21):
            continue
        if isinstance(ext, Extended) and ext.kind == "uxtw" \
                and not ext.amount:
            guards.append((i, rd.index, ext.reg.index))
    return guards


def apply_mutations(text: bytes, mutations: Sequence[Mutation]) -> bytes:
    """Apply serialized mutations to a text segment (pure, deterministic)."""
    words = _words(text)
    for m in mutations:
        if m.op == "bitflip":
            index, bit = m.args
            words[index % len(words)] ^= 1 << (bit % 32)
        elif m.op == "guarddel":
            index, to_nop, src = m.args
            rd = words[index % len(words)] & 0x1F
            if to_nop:
                words[index % len(words)] = _NOP
            else:
                words[index % len(words)] = (
                    _MOV_BASE | ((src % 31) << 16) | rd
                )
        elif m.op == "regsub":
            index, shift, new = m.args
            i = index % len(words)
            # Mask to 32 bits: serialized mutations replayed from a corpus
            # file may carry any shift, and the word must stay packable.
            words[i] = ((words[i] & ~(0x1F << shift))
                        | ((new & 0x1F) << shift)) & 0xFFFFFFFF
        elif m.op == "splice":
            dst, src, swap = m.args
            dst %= len(words)
            src %= len(words)
            if swap:
                words[dst], words[src] = words[src], words[dst]
            else:
                words[dst] = words[src]
        else:
            raise ValueError(f"unknown mutation op {m.op!r}")
    return _pack(words)


class MutationEngine:
    """Plans deterministic mutation batches against one text segment."""

    def __init__(self, rng):
        self.rng = rng

    def plan(self, text: bytes, count: int = 1) -> List[Mutation]:
        """Draw ``count`` mutations for ``text`` (at least one)."""
        words = _words(text)
        if not words:
            return []
        guards = find_guards(text)
        out: List[Mutation] = []
        for _ in range(max(1, count)):
            op = self.rng.choice(OPS)
            if op == "guarddel" and not guards:
                op = "bitflip"
            if op == "bitflip":
                out.append(Mutation("bitflip", (
                    self.rng.randrange(len(words)), self.rng.randrange(32),
                )))
            elif op == "guarddel":
                index, _rd, src = guards[self.rng.randrange(len(guards))]
                out.append(Mutation("guarddel", (
                    index, self.rng.randrange(2), src,
                )))
            elif op == "regsub":
                out.append(Mutation("regsub", (
                    self.rng.randrange(len(words)),
                    self.rng.choice(_REG_FIELDS),
                    self.rng.choice(_INTERESTING_REGS),
                )))
            else:
                out.append(Mutation("splice", (
                    self.rng.randrange(len(words)),
                    self.rng.randrange(len(words)),
                    self.rng.randrange(2),
                )))
        return out

"""The budgeted fuzz campaign behind ``python -m repro.tools fuzz``.

One campaign is a pure function of its seed: every random draw flows from
a single ``random.Random(seed)``, every log line is free of timestamps and
absolute paths, so two runs with the same seed and budget produce
byte-identical logs (an acceptance criterion, checked in CI).

Each iteration of the budget:

1. generate one well-formed program (:mod:`~repro.fuzz.genasm`);
2. run the **completeness** and **semantics** oracles across all four
   rewrite levels against one shared native execution;
3. corrupt the verified O1 and store-only rewrites with the mutation
   engine and feed each mutant to the **soundness** probe;
4. run the **speculation** oracle on the verified O1 rewrite under a
   seeded predictor configuration — the bounded-speculation engine mode
   must be architecturally invisible;
5. (optional, ``checkpoint_points > 0``) interrupt the verified O1
   rewrite at seeded points and check the **checkpoint** oracle —
   serialize/restore/resume must be observationally invisible.

Failures are shrunk (:mod:`~repro.fuzz.shrink`) and, when a corpus
directory is configured, persisted for deterministic replay.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..core import RewriteError, VerifierPolicy, verify_elf
from ..elf import ElfImage
from ..emulator import OutOfFuel
from .corpus import CorpusEntry, save_entry
from .differential import (
    LEVELS,
    Finding,
    assemble_to_elf,
    check_checkpoint,
    check_completeness,
    check_semantics,
    check_speculation,
    mutant_elf,
    rewrite_to_elf,
    run_elf_in_slot,
    soundness_probe,
    state_diff,
)
from .genasm import AsmGenerator, GenConfig, GeneratedProgram
from .mutate import MutationEngine, Mutation, apply_mutations
from .shrink import shrink_mutations, shrink_program

__all__ = ["CampaignStats", "FuzzCampaign"]

#: Instruction budget for one mutant probe (smaller than the default:
#: campaigns run thousands of probes, and accepted mutants that loop
#: forever should burn bounded time).
CAMPAIGN_PROBE_BUDGET = 20_000


@dataclass
class CampaignStats:
    """Counters for one campaign, summarized in the final log line."""

    programs: int = 0
    rewrites: int = 0
    runs: int = 0
    mutants: int = 0
    mutants_accepted: int = 0
    spec_checks: int = 0
    findings: int = 0

    def summary(self) -> str:
        return (f"programs={self.programs} rewrites={self.rewrites} "
                f"runs={self.runs} mutants={self.mutants} "
                f"mutants-accepted={self.mutants_accepted} "
                f"spec-checks={self.spec_checks} "
                f"findings={self.findings}")


class FuzzCampaign:
    """A seeded, budgeted fuzz run over the three oracles."""

    #: Rewrites used as mutation bases: the zero-instruction-guard level
    #: (richest guard surface) and the store-only variant (whose laxer
    #: policy historically hides verifier gaps).
    MUTANT_BASES = ("O1", "O2-noloads")

    def __init__(self, seed: int, budget: int,
                 mutants_per_program: int = 4,
                 config: Optional[GenConfig] = None,
                 corpus_dir: Optional[Path] = None,
                 probe_budget: int = CAMPAIGN_PROBE_BUDGET,
                 checkpoint_points: int = 0):
        self.seed = seed
        self.budget = budget
        self.mutants_per_program = mutants_per_program
        self.checkpoint_points = checkpoint_points
        self.rng = random.Random(seed)
        self.generator = AsmGenerator(config)
        self.engine = MutationEngine(self.rng)
        self.corpus_dir = Path(corpus_dir) if corpus_dir else None
        self.probe_budget = probe_budget
        self.stats = CampaignStats()
        self.findings: List[Finding] = []
        self.lines: List[str] = []

    # -- logging -------------------------------------------------------------

    def log(self, message: str) -> None:
        self.lines.append(message)

    # -- the campaign loop ---------------------------------------------------

    def run(self) -> List[Finding]:
        self.log(f"fuzz seed={self.seed} budget={self.budget} "
                 f"mutants-per-program={self.mutants_per_program}")
        for iteration in range(self.budget):
            program = self.generator.generate(self.rng)
            self.stats.programs += 1
            findings, bases = self._examine(program)
            if findings:
                self._report_program(iteration, program, findings)
            mutant_findings = self._mutants(iteration, bases)
            spec_findings = self._speculation(bases)
            line = (f"iter {iteration:04d} frags="
                    f"{len(program.fragments)} "
                    f"est={program.instruction_estimate()} "
                    f"findings={len(findings)} "
                    f"mutant-findings={len(mutant_findings)} "
                    f"spec-findings={len(spec_findings)}")
            if self.checkpoint_points:
                ckpt_findings = self._checkpoints(bases)
                line += f" ckpt-findings={len(ckpt_findings)}"
                self.findings.extend(ckpt_findings)
            self.log(line)
            self.findings.extend(findings)
            self.findings.extend(mutant_findings)
            self.findings.extend(spec_findings)
        self.stats.findings = len(self.findings)
        self.log(f"done {self.stats.summary()}")
        return self.findings

    # -- oracle evaluation ----------------------------------------------------

    def _examine(self, program: GeneratedProgram,
                 ) -> Tuple[List[Finding],
                            Dict[str, Tuple[ElfImage, VerifierPolicy]]]:
        """Completeness + semantics for one program; returns the verified
        rewrites keyed by level label (the mutation bases)."""
        source = program.source
        findings: List[Finding] = []
        bases: Dict[str, Tuple[ElfImage, VerifierPolicy]] = {}
        try:
            native = run_elf_in_slot(assemble_to_elf(source))
            self.stats.runs += 1
        except OutOfFuel:
            return ([Finding("crash", "native",
                             "generated program did not halt")], bases)
        for label, options, policy in LEVELS:
            try:
                elf = rewrite_to_elf(source, options)
            except RewriteError as exc:
                findings.append(Finding("completeness", label,
                                        f"rewriter rejected input: {exc}"))
                continue
            self.stats.rewrites += 1
            result = verify_elf(elf, policy)
            if result.ok:
                bases[label] = (elf, policy)
            else:
                first = "; ".join(str(v) for v in result.violations[:3])
                findings.append(Finding(
                    "completeness", label,
                    f"{len(result.violations)} violation(s): {first}"))
            try:
                state = run_elf_in_slot(elf)
                self.stats.runs += 1
            except OutOfFuel:
                findings.append(Finding("semantics", label,
                                        "rewritten program did not halt"))
                continue
            if state != native:
                findings.append(Finding("semantics", label,
                                        state_diff(native, state)))
        return findings, bases

    def _mutants(self, iteration: int,
                 bases: Dict[str, Tuple[ElfImage, VerifierPolicy]],
                 ) -> List[Finding]:
        out: List[Finding] = []
        for index in range(self.mutants_per_program):
            label = self.MUTANT_BASES[
                self.rng.randrange(len(self.MUTANT_BASES))]
            count = self.rng.randint(1, 3)
            if label not in bases:
                continue  # rewrite failed; completeness already reported
            elf, policy = bases[label]
            text = bytes(elf.text.data)
            plan = self.engine.plan(text, count)
            if not plan:
                continue
            accepted, probe = self._probe(elf, text, plan, policy)
            self.stats.mutants += 1
            if accepted:
                self.stats.mutants_accepted += 1
            if probe:
                self._report_mutant(iteration, index, label,
                                    elf, text, plan, policy, probe)
                out.extend(probe)
        return out

    def _probe(self, elf: ElfImage, text: bytes, plan: List[Mutation],
               policy: VerifierPolicy) -> Tuple[bool, List[Finding]]:
        mutated = apply_mutations(text, plan)
        return soundness_probe(mutant_elf(elf, mutated), policy,
                               budget=self.probe_budget)

    def _speculation(self, bases: Dict[str, Tuple[ElfImage,
                                                  VerifierPolicy]],
                     ) -> List[Finding]:
        """Speculation-transparency oracle on the verified O1 rewrite.

        The predictor seed is drawn from the campaign RNG — drawn
        unconditionally so the stream stays aligned even when the O1
        rewrite failed (completeness already reported that).
        """
        seed = self.rng.randrange(1 << 16)
        if "O1" not in bases:
            return []
        findings = check_speculation(bases["O1"][0], seed=seed)
        self.stats.spec_checks += 1
        for finding in findings:
            self.log(finding.line())
        return findings

    def _checkpoints(self, bases: Dict[str, Tuple[ElfImage,
                                                  VerifierPolicy]],
                     ) -> List[Finding]:
        """Checkpoint-transparency oracle on the verified O1 rewrite.

        Interruption points are drawn from the campaign RNG, so the same
        seed probes the same split points; programs shorter than a point
        skip it inside the oracle.
        """
        if "O1" not in bases:
            return []
        points = tuple(sorted(
            self.rng.randrange(20, 2400)
            for _ in range(self.checkpoint_points)))
        findings = check_checkpoint(bases["O1"][0], points=points)
        for finding in findings:
            self.log(finding.line())
        return findings

    # -- failure reporting and shrinking --------------------------------------

    def _report_program(self, iteration: int, program: GeneratedProgram,
                        findings: List[Finding]) -> None:
        for finding in findings:
            self.log(finding.line())
        oracles = {f.oracle for f in findings}

        def still_fails(candidate: GeneratedProgram) -> bool:
            got = check_completeness(candidate.source)
            if not ({f.oracle for f in got} & oracles):
                got += check_semantics(candidate.source)
            return bool({f.oracle for f in got} & oracles)

        shrunk = shrink_program(program, still_fails)
        self.log(f"shrunk iter {iteration:04d}: "
                 f"{len(program.fragments)} -> {len(shrunk.fragments)} "
                 f"fragments")
        if self.corpus_dir is not None:
            entry = CorpusEntry(
                name=f"fuzz-s{self.seed}-i{iteration:04d}",
                kind="program", expect="pass",
                description=("shrunk by fuzz campaign; oracles: "
                             + ", ".join(sorted(oracles))),
                source=shrunk.source,
            )
            save_entry(entry, self.corpus_dir)
            self.log(f"saved corpus entry {entry.name}")

    def _report_mutant(self, iteration: int, index: int, label: str,
                       elf: ElfImage, text: bytes, plan: List[Mutation],
                       policy: VerifierPolicy,
                       findings: List[Finding]) -> None:
        for finding in findings:
            self.log(finding.line())

        def still_fails(candidate: List[Mutation]) -> bool:
            accepted, got = self._probe(elf, text, candidate, policy)
            return accepted and bool(got)

        shrunk = shrink_mutations(plan, still_fails)
        self.log(f"shrunk mutant iter {iteration:04d} m{index}: "
                 f"{len(plan)} -> {len(shrunk)} mutation(s) "
                 f"[{' '.join(m.op for m in shrunk)}]")
        if self.corpus_dir is not None:
            overrides: Dict[str, object] = {}
            if not policy.sandbox_loads:
                overrides["sandbox_loads"] = False
            entry = CorpusEntry(
                name=f"fuzz-s{self.seed}-i{iteration:04d}-m{index}",
                kind="machine", expect="reject",
                description=(f"escaped mutant of a verified {label} "
                             f"rewrite; shrunk by fuzz campaign"),
                text_hex=apply_mutations(text, shrunk).hex(),
                policy=overrides,
            )
            save_entry(entry, self.corpus_dir)
            self.log(f"saved corpus entry {entry.name}")

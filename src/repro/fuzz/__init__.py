"""Property-based fuzzing for the rewriter/verifier/emulator triangle.

The paper's security argument rests on two dual obligations:

* **completeness** — everything the (untrusted) rewriter emits must be
  accepted by the (trusted) verifier, at every optimization level (§5.1);
* **soundness** — everything the verifier accepts must stay inside its
  sandbox when executed, no matter how adversarial the bytes are (§5.2);

plus the reproduction's own third leg:

* **semantics preservation** — rewriting at O0/O1/O2 must not change what
  a program computes.

This package turns all three into continuously fuzzed properties:

* :mod:`~repro.fuzz.genasm` — seeded generators of well-formed ARM64
  assembly spanning loads/stores/indirect branches/sp/x30 manipulation;
* :mod:`~repro.fuzz.mutate` — a seeded mutation engine that corrupts
  *verified machine code* to manufacture adversarial binaries;
* :mod:`~repro.fuzz.differential` — the three differential oracles;
* :mod:`~repro.fuzz.shrink` — greedy minimization of failing cases;
* :mod:`~repro.fuzz.corpus` — persistence and deterministic replay of
  shrunk failures under ``tests/corpus/``;
* :mod:`~repro.fuzz.campaign` — the budgeted, seeded campaign behind
  ``python -m repro.tools fuzz``.

Everything is deterministic: one seed produces one byte-identical log.
"""

from .campaign import CampaignStats, FuzzCampaign
from .corpus import (
    CorpusEntry,
    entry_from_words,
    load_corpus,
    policy_dict,
    replay_corpus,
    save_entry,
)
from .shrink import shrink_mutations, shrink_program, shrink_words
from .differential import (
    CHECKPOINT_POINTS,
    Finding,
    LEVELS,
    check_checkpoint,
    check_completeness,
    check_semantics,
    check_speculation,
    rewrite_to_elf,
    run_elf_in_slot,
    soundness_probe,
)
from .genasm import AsmGenerator, GenConfig, GeneratedProgram
from .mutate import Mutation, MutationEngine, apply_mutations

__all__ = [
    "AsmGenerator",
    "CHECKPOINT_POINTS",
    "CampaignStats",
    "CorpusEntry",
    "Finding",
    "check_checkpoint",
    "FuzzCampaign",
    "GenConfig",
    "GeneratedProgram",
    "LEVELS",
    "Mutation",
    "MutationEngine",
    "apply_mutations",
    "check_completeness",
    "check_semantics",
    "check_speculation",
    "entry_from_words",
    "load_corpus",
    "policy_dict",
    "replay_corpus",
    "rewrite_to_elf",
    "run_elf_in_slot",
    "save_entry",
    "shrink_mutations",
    "shrink_program",
    "shrink_words",
    "soundness_probe",
]

"""Unified engine configuration: one object selects and tunes the engine.

Every surface that used to take an ad-hoc ``engine="superblock"`` string
kwarg (:class:`~repro.runtime.runtime.Runtime`,
:class:`~repro.cluster.cluster.Cluster`, the serving gateway and its
tenant policies, the CLI) now accepts a single frozen
:class:`EngineConfig` value carrying the engine kind plus the superblock
engine's tuning knobs:

* ``kind`` — ``"superblock"`` (translated blocks, the default) or
  ``"stepping"`` (the per-instruction reference interpreter);
* ``fuel`` — scheduler timeslice override in instructions (``None``
  keeps the owning surface's default);
* ``block_cache_cap`` — maximum number of cached superblocks before the
  translation cache is flushed (``None`` = unbounded);
* ``chaining`` — link each block to its observed successor so hot loops
  dispatch without a cache lookup (DESIGN.md §15);
* ``batch_abi`` — whether :data:`RuntimeCall.BATCH` is serviced
  (disabled, it returns ``-ENOSYS`` to the guest).

Passing a bare string still works for one release and coerces to
``EngineConfig(kind=...)`` with a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass
from typing import Optional

from .errors import ConfigError

__all__ = ["EngineConfig", "ENGINE_KINDS"]

ENGINE_KINDS = ("superblock", "stepping")


@dataclass(frozen=True)
class EngineConfig:
    """Validated, immutable engine selection + tuning (see module docs)."""

    kind: str = "superblock"
    fuel: Optional[int] = None
    block_cache_cap: Optional[int] = None
    chaining: bool = True
    batch_abi: bool = True

    def __post_init__(self):
        if self.kind not in ENGINE_KINDS:
            raise ConfigError(
                f"unknown engine {self.kind!r} (expected one of "
                f"{', '.join(ENGINE_KINDS)})")
        if self.fuel is not None and (
                not isinstance(self.fuel, int) or self.fuel < 1):
            raise ConfigError(f"fuel must be a positive int, got {self.fuel!r}")
        if self.block_cache_cap is not None and (
                not isinstance(self.block_cache_cap, int)
                or self.block_cache_cap < 1):
            raise ConfigError(
                f"block_cache_cap must be a positive int, got "
                f"{self.block_cache_cap!r}")

    @classmethod
    def coerce(cls, value, default: Optional["EngineConfig"] = None,
               stacklevel: int = 3) -> "EngineConfig":
        """Accept an :class:`EngineConfig`, a kind string, or ``None``.

        ``None`` resolves to ``default`` (or a default-constructed
        config).  A bare string is the pre-PR-9 kwarg form: it still
        works for one release but emits a :class:`DeprecationWarning`.
        """
        if value is None:
            return default if default is not None else cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            warnings.warn(
                f"passing engine={value!r} as a string is deprecated; "
                f"pass repro.EngineConfig(kind={value!r}) instead",
                DeprecationWarning,
                stacklevel=stacklevel,
            )
            return cls(kind=value)
        raise ConfigError(
            f"engine must be an EngineConfig (or, deprecated, a kind "
            f"string); got {value!r}")

    def resolve_timeslice(self, default: int) -> int:
        """The scheduler timeslice this config implies."""
        return self.fuel if self.fuel is not None else default

    # -- serialization (cluster config dicts, checkpoint round-trips) -------

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "EngineConfig":
        if not isinstance(data, dict):
            raise ConfigError(f"engine config dict expected, got {data!r}")
        unknown = set(data) - {
            "kind", "fuel", "block_cache_cap", "chaining", "batch_abi"}
        if unknown:
            raise ConfigError(
                f"unknown engine config keys: {sorted(unknown)}")
        return cls(**data)

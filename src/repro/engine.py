"""Unified engine configuration: one object selects and tunes the engine.

Every surface that used to take an ad-hoc ``engine="superblock"`` string
kwarg (:class:`~repro.runtime.runtime.Runtime`,
:class:`~repro.cluster.cluster.Cluster`, the serving gateway and its
tenant policies, the CLI) now accepts a single frozen
:class:`EngineConfig` value carrying the engine kind plus the superblock
engine's tuning knobs:

* ``kind`` — ``"superblock"`` (translated blocks, the default) or
  ``"stepping"`` (the per-instruction reference interpreter);
* ``fuel`` — scheduler timeslice override in instructions (``None``
  keeps the owning surface's default);
* ``block_cache_cap`` — maximum number of cached superblocks before the
  translation cache is flushed (``None`` = unbounded);
* ``chaining`` — link each block to its observed successor so hot loops
  dispatch without a cache lookup (DESIGN.md §15);
* ``batch_abi`` — whether :data:`RuntimeCall.BATCH` is serviced
  (disabled, it returns ``-ENOSYS`` to the guest).

Passing a bare string still works for one release and coerces to
``EngineConfig(kind=...)`` with a :class:`DeprecationWarning`.

PR 10 adds ``speculation`` — an optional nested
:class:`SpeculationConfig` that turns on the bounded-speculation
emulator mode (DESIGN.md §16).  ``None`` (the default) keeps both
engines bit-identical to their pre-speculation behaviour.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass
from typing import Optional

from .errors import ConfigError

__all__ = ["EngineConfig", "SpeculationConfig", "ENGINE_KINDS"]

ENGINE_KINDS = ("superblock", "stepping")


@dataclass(frozen=True)
class SpeculationConfig:
    """Tuning for the bounded-speculation emulator mode (DESIGN.md §16).

    * ``window`` — maximum transient instructions executed past an
      unresolved mispredicted branch before a forced squash;
    * ``seed`` — seeds the pattern-history table and return-stack
      contents so speculative runs are reproducible;
    * ``pht_entries`` — pattern-history-table size (power of two);
    * ``rsb_depth`` — return-stack-buffer depth.
    """

    window: int = 24
    seed: int = 0
    pht_entries: int = 256
    rsb_depth: int = 8

    def __post_init__(self):
        if not isinstance(self.window, int) or self.window < 1:
            raise ConfigError(
                f"speculation window must be a positive int, got "
                f"{self.window!r}")
        if not isinstance(self.seed, int) or self.seed < 0:
            raise ConfigError(
                f"speculation seed must be a non-negative int, got "
                f"{self.seed!r}")
        if (not isinstance(self.pht_entries, int) or self.pht_entries < 1
                or self.pht_entries & (self.pht_entries - 1)):
            raise ConfigError(
                f"pht_entries must be a power of two, got "
                f"{self.pht_entries!r}")
        if not isinstance(self.rsb_depth, int) or self.rsb_depth < 1:
            raise ConfigError(
                f"rsb_depth must be a positive int, got {self.rsb_depth!r}")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SpeculationConfig":
        if not isinstance(data, dict):
            raise ConfigError(
                f"speculation config dict expected, got {data!r}")
        unknown = set(data) - {"window", "seed", "pht_entries", "rsb_depth"}
        if unknown:
            raise ConfigError(
                f"unknown speculation config keys: {sorted(unknown)}")
        return cls(**data)


@dataclass(frozen=True)
class EngineConfig:
    """Validated, immutable engine selection + tuning (see module docs)."""

    kind: str = "superblock"
    fuel: Optional[int] = None
    block_cache_cap: Optional[int] = None
    chaining: bool = True
    batch_abi: bool = True
    speculation: Optional[SpeculationConfig] = None

    def __post_init__(self):
        if self.kind not in ENGINE_KINDS:
            raise ConfigError(
                f"unknown engine {self.kind!r} (expected one of "
                f"{', '.join(ENGINE_KINDS)})")
        if self.fuel is not None and (
                not isinstance(self.fuel, int) or self.fuel < 1):
            raise ConfigError(f"fuel must be a positive int, got {self.fuel!r}")
        if self.block_cache_cap is not None and (
                not isinstance(self.block_cache_cap, int)
                or self.block_cache_cap < 1):
            raise ConfigError(
                f"block_cache_cap must be a positive int, got "
                f"{self.block_cache_cap!r}")
        spec = self.speculation
        if spec is not None and not isinstance(spec, SpeculationConfig):
            if spec is True:
                spec = SpeculationConfig()
            elif isinstance(spec, dict):
                spec = SpeculationConfig.from_dict(spec)
            else:
                raise ConfigError(
                    f"speculation must be a SpeculationConfig, a config "
                    f"dict, True, or None; got {spec!r}")
            object.__setattr__(self, "speculation", spec)

    @classmethod
    def coerce(cls, value, default: Optional["EngineConfig"] = None,
               stacklevel: int = 3) -> "EngineConfig":
        """Accept an :class:`EngineConfig`, a dict, a kind string, or
        ``None``.

        ``None`` resolves to ``default`` (or a default-constructed
        config).  A dict goes through :meth:`from_dict` — the form policy
        files and cluster job specs carry.  A bare string is the pre-PR-9
        kwarg form: it still works for one release but emits a
        :class:`DeprecationWarning`.
        """
        if value is None:
            return default if default is not None else cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, dict):
            return cls.from_dict(value)
        if isinstance(value, str):
            warnings.warn(
                f"passing engine={value!r} as a string is deprecated; "
                f"pass repro.EngineConfig(kind={value!r}) instead",
                DeprecationWarning,
                stacklevel=stacklevel,
            )
            return cls(kind=value)
        raise ConfigError(
            f"engine must be an EngineConfig (or, deprecated, a kind "
            f"string); got {value!r}")

    def resolve_timeslice(self, default: int) -> int:
        """The scheduler timeslice this config implies."""
        return self.fuel if self.fuel is not None else default

    # -- serialization (cluster config dicts, checkpoint round-trips) -------

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "EngineConfig":
        if not isinstance(data, dict):
            raise ConfigError(f"engine config dict expected, got {data!r}")
        unknown = set(data) - {
            "kind", "fuel", "block_cache_cap", "chaining", "batch_abi",
            "speculation"}
        if unknown:
            raise ConfigError(
                f"unknown engine config keys: {sorted(unknown)}")
        return cls(**data)

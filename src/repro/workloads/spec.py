"""The 14 SPEC CPU2017 stand-in benchmarks (DESIGN.md §2 substitution).

SPEC itself is not redistributable, so each benchmark is a synthetic kernel
composition whose *profile* — memory-op density, addressing-mode mix,
hoistable-run share, pointer-chase depth, FP/SIMD share, branchiness,
working-set size — reflects the published character of the original
program.  Since SFI overhead is a function of exactly this mix interacting
with guard costs, the profiles preserve the paper's per-benchmark overhead
*shape* (who is expensive, who is free) without the original sources.

The same 14 names as the paper's Figure 3 are used, and the paper's
7-benchmark WebAssembly-compatible subset (Figure 4) is exported as
``WASM_SUBSET``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..runtime.table import RuntimeCall, table_offset
from .kernels import KERNELS, Kernel

__all__ = ["BenchmarkProfile", "SPEC_BENCHMARKS", "WASM_SUBSET",
           "build_benchmark", "benchmark_names"]


@dataclass(frozen=True)
class BenchmarkProfile:
    """Kernel mix and memory behaviour of one stand-in benchmark."""

    name: str
    #: kernel name -> share of dynamic instructions.
    mix: Dict[str, float]
    #: Working set in bytes (power of two; drives TLB behaviour, Fig. 5).
    working_set: int
    description: str = ""

    def __post_init__(self):
        total = sum(self.mix.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"{self.name}: mix sums to {total}")
        if self.working_set & (self.working_set - 1):
            raise ValueError(f"{self.name}: working set not a power of two")


KiB = 1024
MiB = 1024 * KiB

#: The 14 C/C++ SPECrate 2017 benchmarks the paper supports (§6).
SPEC_BENCHMARKS: Dict[str, BenchmarkProfile] = {
    p.name: p
    for p in (
        BenchmarkProfile(
            "502.gcc",
            {"bytes": 0.30, "calls": 0.25, "btree": 0.20, "stack": 0.15,
             "stream_int": 0.10},
            8 * MiB,
            "compiler: byte scanning, dispatch, branchy IR walks",
        ),
        BenchmarkProfile(
            "505.mcf",
            {"chase": 0.50, "random": 0.30, "stream_int": 0.20},
            16 * MiB,
            "network simplex: pointer chasing over a large graph",
        ),
        BenchmarkProfile(
            "508.namd",
            {"stream_fp": 0.45, "fma": 0.45, "stream_int": 0.10},
            2 * MiB,
            "molecular dynamics: dense FP with regular access",
        ),
        BenchmarkProfile(
            "510.parest",
            {"fma": 0.50, "stream_fp": 0.30, "btree": 0.10, "stack": 0.10},
            8 * MiB,
            "finite elements: sparse-matrix FP plus index juggling",
        ),
        BenchmarkProfile(
            "511.povray",
            {"fma": 0.40, "btree": 0.20, "calls": 0.20, "stack": 0.20},
            1 * MiB,
            "ray tracing: FP with heavy call traffic and branching",
        ),
        BenchmarkProfile(
            "519.lbm",
            {"stream_fp": 0.80, "stream_int": 0.20},
            16 * MiB,
            "lattice Boltzmann: pure FP streaming, bandwidth bound",
        ),
        BenchmarkProfile(
            "520.omnetpp",
            {"chase": 0.35, "calls": 0.25, "btree": 0.20, "random": 0.20},
            16 * MiB,
            "discrete event simulation: pointer-rich C++ with dispatch",
        ),
        BenchmarkProfile(
            "523.xalancbmk",
            {"btree": 0.30, "calls": 0.30, "bytes": 0.20, "random": 0.20},
            8 * MiB,
            "XSLT: tree walks, virtual calls, string scanning",
        ),
        BenchmarkProfile(
            "525.x264",
            {"simd": 0.50, "stream_int": 0.25, "bytes": 0.15, "stack": 0.10},
            4 * MiB,
            "video encoding: SIMD pixel kernels and byte handling",
        ),
        BenchmarkProfile(
            "531.deepsjeng",
            {"btree": 0.55, "bytes": 0.25, "stack": 0.10, "random": 0.10},
            4 * MiB,
            "chess search: branchy integer code, indexed tables",
        ),
        BenchmarkProfile(
            "538.imagick",
            {"simd": 0.45, "fma": 0.30, "stream_int": 0.25},
            8 * MiB,
            "image processing: SIMD plus FP convolution",
        ),
        BenchmarkProfile(
            "541.leela",
            {"btree": 0.50, "calls": 0.30, "bytes": 0.10, "stack": 0.10},
            2 * MiB,
            "Go engine: the paper's worst case — unhoistable indexed "
            "loads in branchy search (17% on M1)",
        ),
        BenchmarkProfile(
            "544.nab",
            {"fma": 0.50, "stream_fp": 0.30, "random": 0.20},
            4 * MiB,
            "molecular modelling: FP with scattered neighbour lookups",
        ),
        BenchmarkProfile(
            "557.xz",
            {"bytes": 0.50, "btree": 0.30, "random": 0.05, "stream_int": 0.15},
            8 * MiB,
            "compression: byte matching, range coding, big dictionaries",
        ),
    )
}

#: Figure 4's WebAssembly-compatible subset (WASI limitations, §6.2).
WASM_SUBSET: Tuple[str, ...] = (
    "505.mcf", "508.namd", "519.lbm", "525.x264", "531.deepsjeng",
    "544.nab", "557.xz",
)

#: Arena region map.  Kernels write only inside their own regions so the
#: pointer-chase chain is never clobbered:
#:   [0x0000, 0x0800)   per-kernel scratch result slots
#:   [0x0800, 0x1000)   indirect-call function-pointer table
#:   [0x1000, 0x1100)   byte lookup table
#:   [STREAM_OFFSET, +) streaming/SIMD read-write region (320B stride)
#:   [ws/2, ws)         pointer-chase ring, nodes spread over half the
#:                      working set so big-footprint benchmarks (mcf)
#:                      really take TLB and cache misses per hop
_STREAM_OFFSET = 64 * KiB
_CHAIN_NODES = 512  # kept small so arena init stays cheap
_STREAM_STRIDE = 320
_OUTER_ITERS = 4


def _chain_geometry(ws: int):
    """(base offset, per-node stride) for the pointer-chase ring."""
    base = ws // 2
    stride = max(64, (ws // 2) // _CHAIN_NODES)
    stride = 1 << (stride.bit_length() - 1)  # power of two for lsl
    stride = min(stride, 16 * KiB)
    return base, stride


def benchmark_names() -> List[str]:
    return sorted(SPEC_BENCHMARKS)


def _init_chain(nodes: int, base_offset: int, stride: int) -> str:
    """Build a pointer ring over ``nodes`` cells spaced ``stride`` bytes
    apart (next[i] = chain_base + stride*((i+97) mod n))."""
    hop = 97  # odd => coprime with the power-of-two node count
    shift = stride.bit_length() - 1
    base_mov = f"""
    movz x6, #{(base_offset >> 16) & 0xFFFF}, lsl #16
    add x6, x20, x6
""" if base_offset >= (1 << 16) else f"""
    add x6, x20, #{base_offset}
"""
    return f"""
    // init: pointer-chase ring in the upper half of the arena
{base_mov}    mov x3, #0
init_chain_loop:
    lsl x4, x3, #{shift}
    add x4, x6, x4
    add x5, x3, #{hop}
    and x5, x5, #{nodes - 1}
    lsl x5, x5, #{shift}
    add x5, x6, x5
    str x5, [x4]
    add x3, x3, #1
    cmp x3, #{nodes}
    b.ne init_chain_loop
"""


def _init_table() -> str:
    """Fill the indirect-call table and the byte lookup table."""
    return """
    // init: function-pointer table at arena+2048
    adr x4, kern_calls_fn_a
    str x4, [x20, #2048]
    adr x4, kern_calls_fn_b
    str x4, [x20, #2056]
    // init: byte lookup table at arena+4096
    mov x3, #0
init_table_loop:
    add x4, x20, #4096
    strb w3, [x4, x3]
    add x3, x3, #1
    cmp x3, #256
    b.ne init_table_loop
"""


def build_benchmark(name: str, target_instructions: int = 40_000) -> str:
    """Emit the assembly for one stand-in benchmark.

    ``target_instructions`` is the approximate dynamic instruction count of
    the native run (the paper runs full SPEC; we scale to the emulator).
    """
    profile = SPEC_BENCHMARKS[name]
    used: List[Kernel] = [KERNELS[k] for k in profile.mix]
    ws = profile.working_set
    # btree works a hot (cache-resident) region, like a game tree's upper
    # levels; fma a mid-size array; random scatters over the full set.
    # The hot regions are sized to warm up within the scaled-down run.
    btree_mask = min(ws, 8 * KiB) // 8 - 1
    fma_mask = min(ws, 32 * KiB) // 8 - 1
    byte_mask = ws - 1
    chain_base, chain_stride = _chain_geometry(ws)

    header = ".text\n.globl _start\n_start:\n"
    init = """
    adrp x20, arena
    add x20, x20, :lo12:arena
"""
    if any(k.needs_chain for k in used):
        init += _init_chain(_CHAIN_NODES, chain_base, chain_stride)
    if any(k.needs_table for k in used):
        init += _init_table()

    # Per-call iteration counts from the mix weights.
    calls = []
    for kernel in used:
        weight = profile.mix[kernel.name]
        iters = int(
            target_instructions * weight
            / kernel.insts_per_iter / _OUTER_ITERS
        )
        iters = max(iters, 4)
        if kernel.name in ("stream_int", "stream_fp", "simd"):
            iters = min(
                iters, (ws // 2 - _STREAM_OFFSET) // _STREAM_STRIDE - 2
            )
        if kernel.name == "bytes":
            iters = min(iters, ws // 2 - 8192)
        calls.append((kernel, iters))

    body = f"""
    mov x26, #{_OUTER_ITERS}
outer_loop:
"""
    for kernel, iters in calls:
        setup = ""
        if kernel.name in ("btree", "fma"):
            index_mask = btree_mask if kernel.name == "btree" else fma_mask
            setup = f"    movz x5, #{index_mask & 0xFFFF}\n"
            if index_mask > 0xFFFF:
                setup += f"    movk x5, #{(index_mask >> 16) & 0xFFFF}, lsl #16\n"
        elif kernel.name == "random":
            setup = f"    movz x5, #{byte_mask & 0xFFFF}\n"
            if byte_mask > 0xFFFF:
                setup += f"    movk x5, #{(byte_mask >> 16) & 0xFFFF}, lsl #16\n"
        body += setup
        if kernel.name == "chase":
            if chain_base >= (1 << 16):
                body += (f"    movz x0, #{(chain_base >> 16) & 0xFFFF},"
                         f" lsl #16\n    add x0, x20, x0\n")
            else:
                body += f"    add x0, x20, #{chain_base}\n"
        elif kernel.name in ("stream_int", "stream_fp", "simd"):
            body += f"    add x0, x20, #{_STREAM_OFFSET}\n"
        else:
            body += "    mov x0, x20\n"
        body += f"""    movz x1, #{iters & 0xFFFF}
"""
        if iters > 0xFFFF:
            body += f"    movk x1, #{(iters >> 16) & 0xFFFF}, lsl #16\n"
        body += f"    bl {kernel.label}\n"
    body += """
    subs x26, x26, #1
    b.ne outer_loop
    mov x0, #0
"""
    exit_seq = (
        f"    ldr x30, [x21, #{table_offset(RuntimeCall.EXIT)}]\n"
        f"    blr x30\n"
    )
    kernels_text = "\n".join(k.text for k in used)
    data = f"""
.bss
.balign 64
arena:
    .skip 64
"""
    return header + init + body + exit_seq + kernels_text + data


def arena_bss_size(name: str) -> int:
    """Extra .bss bytes needed beyond the 64-byte arena marker."""
    return SPEC_BENCHMARKS[name].working_set

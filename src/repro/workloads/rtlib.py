"""Assembly runtime-call library: the "instrumented libc" shim (§5.1).

Generated programs call the runtime using the trampoline-free sequence of
§4.4.  As in the paper's implementation, x30 is conservatively saved and
restored around the call (the rewriter adds the x30 guard after the
restore).

Arguments go in x0-x5 and the result comes back in x0, so these sequences
drop in wherever a syscall would be.
"""

from __future__ import annotations

from ..runtime.table import RuntimeCall, table_offset

__all__ = ["rtcall", "rt_exit", "prologue", "RuntimeCall"]


def rtcall(call: int, save_reg: str = "x9") -> str:
    """The runtime-call sequence (paper §4.4), saving x30 in ``save_reg``."""
    offset = table_offset(call)
    return (
        f"\tmov {save_reg}, x30\n"
        f"\tldr x30, [x21, #{offset}]\n"
        f"\tblr x30\n"
        f"\tmov x30, {save_reg}\n"
    )


def rt_exit(code_reg: str = "x0") -> str:
    """Terminate the process with the status in ``code_reg`` (no return)."""
    lines = ""
    if code_reg != "x0":
        lines += f"\tmov x0, {code_reg}\n"
    offset = table_offset(RuntimeCall.EXIT)
    return lines + (
        f"\tldr x30, [x21, #{offset}]\n"
        f"\tblr x30\n"
    )


def prologue(name: str = "_start") -> str:
    return f".text\n.globl {name}\n{name}:\n"

"""Assembly runtime-call library: the "instrumented libc" shim (§5.1).

Generated programs call the runtime using the trampoline-free sequence of
§4.4.  As in the paper's implementation, x30 is conservatively saved and
restored around the call (the rewriter adds the x30 guard after the
restore).

Arguments go in x0-x5 and the result comes back in x0, so these sequences
drop in wherever a syscall would be.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from ..runtime.table import BATCH_RECORD_SIZE, RuntimeCall, table_offset

__all__ = ["rtcall", "rt_exit", "prologue", "busy_program", "mov_imm",
           "batch_block", "RuntimeCall"]


def rtcall(call: int, save_reg: str = "x9") -> str:
    """The runtime-call sequence (paper §4.4), saving x30 in ``save_reg``."""
    offset = table_offset(call)
    return (
        f"\tmov {save_reg}, x30\n"
        f"\tldr x30, [x21, #{offset}]\n"
        f"\tblr x30\n"
        f"\tmov x30, {save_reg}\n"
    )


def rt_exit(code_reg: str = "x0") -> str:
    """Terminate the process with the status in ``code_reg`` (no return)."""
    lines = ""
    if code_reg != "x0":
        lines += f"\tmov x0, {code_reg}\n"
    offset = table_offset(RuntimeCall.EXIT)
    return lines + (
        f"\tldr x30, [x21, #{offset}]\n"
        f"\tblr x30\n"
    )


def prologue(name: str = "_start") -> str:
    return f".text\n.globl {name}\n{name}:\n"


def mov_imm(reg: str, value: int) -> str:
    """movz/movk sequence materializing a 64-bit immediate in ``reg``."""
    value &= (1 << 64) - 1
    lines = [f"\tmovz {reg}, #{value & 0xFFFF}\n"]
    for shift in (16, 32, 48):
        part = (value >> shift) & 0xFFFF
        if part:
            lines.append(f"\tmovk {reg}, #{part}, lsl #{shift}\n")
    return "".join(lines)


def batch_block(records: Iterable[Tuple[int, Sequence[int]]],
                buf_reg: str = "x19", scratch: str = "x10",
                save_reg: str = "x9") -> str:
    """Emit a ``RuntimeCall.BATCH`` submission of ``records``.

    ``records`` is a sequence of ``(call, args)`` pairs (up to six integer
    arguments each).  ``buf_reg`` must already hold a pointer to writable
    guest memory with room for ``len(records) * BATCH_RECORD_SIZE`` bytes;
    the emitted code fills in the 64-byte records — eight little-endian
    u64 words ``[call, a0..a5, result]`` — then issues one batch call.
    The kernel writes each record's result word in place and returns the
    record count in x0.
    """
    asm = ""
    count = 0
    for call, args in records:
        args = list(args)
        assert len(args) <= 6, f"batch record takes at most 6 args: {args}"
        words = [int(call)] + args + [0] * (6 - len(args)) + [0]
        for j, word in enumerate(words):
            offset = count * BATCH_RECORD_SIZE + j * 8
            asm += mov_imm(scratch, word)
            asm += f"\tstr {scratch}, [{buf_reg}, #{offset}]\n"
        count += 1
    asm += f"\tmov x0, {buf_reg}\n"
    asm += mov_imm("x1", count)
    asm += rtcall(RuntimeCall.BATCH, save_reg=save_reg)
    return asm


def busy_program(value: int = 0, target_instructions: int = 10_000) -> str:
    """A self-contained spin loop retiring ~``target_instructions`` and
    exiting with ``value`` — the synthetic job body used by the cluster
    CLI, ``benchmarks/bench_scaling.py``, and the throughput example."""
    iters = max(1, target_instructions // 2)  # 2-instruction loop body
    lo = iters & 0xFFFF
    hi = (iters >> 16) & 0xFFFF
    body = prologue()
    body += f"\tmovz x1, #{lo}\n"
    if hi:
        body += f"\tmovk x1, #{hi}, lsl #16\n"
    body += "spin:\n"
    body += "\tsub x1, x1, #1\n"
    body += "\tcbnz x1, spin\n"
    body += f"\tmovz x0, #{value & 0xFFFF}\n"
    return body + rt_exit()

"""Assembly runtime-call library: the "instrumented libc" shim (§5.1).

Generated programs call the runtime using the trampoline-free sequence of
§4.4.  As in the paper's implementation, x30 is conservatively saved and
restored around the call (the rewriter adds the x30 guard after the
restore).

Arguments go in x0-x5 and the result comes back in x0, so these sequences
drop in wherever a syscall would be.
"""

from __future__ import annotations

from ..runtime.table import RuntimeCall, table_offset

__all__ = ["rtcall", "rt_exit", "prologue", "busy_program", "RuntimeCall"]


def rtcall(call: int, save_reg: str = "x9") -> str:
    """The runtime-call sequence (paper §4.4), saving x30 in ``save_reg``."""
    offset = table_offset(call)
    return (
        f"\tmov {save_reg}, x30\n"
        f"\tldr x30, [x21, #{offset}]\n"
        f"\tblr x30\n"
        f"\tmov x30, {save_reg}\n"
    )


def rt_exit(code_reg: str = "x0") -> str:
    """Terminate the process with the status in ``code_reg`` (no return)."""
    lines = ""
    if code_reg != "x0":
        lines += f"\tmov x0, {code_reg}\n"
    offset = table_offset(RuntimeCall.EXIT)
    return lines + (
        f"\tldr x30, [x21, #{offset}]\n"
        f"\tblr x30\n"
    )


def prologue(name: str = "_start") -> str:
    return f".text\n.globl {name}\n{name}:\n"


def busy_program(value: int = 0, target_instructions: int = 10_000) -> str:
    """A self-contained spin loop retiring ~``target_instructions`` and
    exiting with ``value`` — the synthetic job body used by the cluster
    CLI, ``benchmarks/bench_scaling.py``, and the throughput example."""
    iters = max(1, target_instructions // 2)  # 2-instruction loop body
    lo = iters & 0xFFFF
    hi = (iters >> 16) & 0xFFFF
    body = prologue()
    body += f"\tmovz x1, #{lo}\n"
    if hi:
        body += f"\tmovk x1, #{hi}, lsl #16\n"
    body += "spin:\n"
    body += "\tsub x1, x1, #1\n"
    body += "\tcbnz x1, spin\n"
    body += f"\tmovz x0, #{value & 0xFFFF}\n"
    return body + rt_exit()

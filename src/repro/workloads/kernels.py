"""Assembly kernel emitters: the building blocks of the SPEC stand-ins.

Each kernel is a leaf function written the way Clang emits code — real
prologues, realistic addressing-mode mixes — so the LFI rewriter sees the
same patterns the paper's toolchain saw.  Calling convention:

* ``x0`` — arena base (a large .bss buffer)
* ``x1`` — inner iteration count
* kernels clobber only ``x0``-``x17`` and ``v0``-``v7``; ``x19``-``x28``
  belong to the driver (and x18/x21-x24 are LFI-reserved, never used).

Every emitter returns ``(label, asm_text, insts_per_iter)`` where
``insts_per_iter`` is the approximate dynamic instruction count of one
inner iteration, used by the builder to translate profile weights into
iteration counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

__all__ = ["Kernel", "KERNELS", "ARENA_ALIGN"]

ARENA_ALIGN = 64


@dataclass(frozen=True)
class Kernel:
    """One emitted kernel: entry label, code, and per-iteration cost."""

    name: str
    label: str
    text: str
    insts_per_iter: float
    #: True if the kernel walks the whole arena (needs the chase ring).
    needs_chain: bool = False
    needs_table: bool = False


def _kern_stream_int() -> Kernel:
    """Sequential integer streaming: runs of same-base accesses.

    The bread and butter of redundant guard elimination (§4.3): four loads
    and two stores off one base register per iteration.
    """
    text = """
kern_stream_int:
    mov x2, x0
kern_stream_int_loop:
    ldr x3, [x2]
    ldr x4, [x2, #8]
    ldr x5, [x2, #16]
    ldr x6, [x2, #24]
    add x3, x3, x4
    add x5, x5, x6
    add x3, x3, x5
    str x3, [x2, #32]
    str x5, [x2, #40]
    add x2, x2, #320
    subs x1, x1, #1
    b.ne kern_stream_int_loop
    ret
"""
    return Kernel("stream_int", "kern_stream_int", text, 12.0)


def _kern_stream_fp() -> Kernel:
    """Streaming floating point (lbm/namd style): loads, fmadd chain,
    stores — memory-bandwidth-shaped, highly hoistable."""
    text = """
kern_stream_fp:
    mov x2, x0
kern_stream_fp_loop:
    ldr d0, [x2]
    ldr d1, [x2, #8]
    ldr d2, [x2, #16]
    ldr d3, [x2, #24]
    fmadd d4, d0, d1, d2
    fmadd d5, d1, d2, d3
    fadd d6, d4, d5
    str d6, [x2, #32]
    str d4, [x2, #40]
    ldr d0, [x2, #320]
    ldr d1, [x2, #328]
    ldr d2, [x2, #336]
    ldr d3, [x2, #344]
    fmadd d4, d0, d1, d2
    fmadd d5, d1, d2, d3
    fadd d6, d4, d5
    str d6, [x2, #352]
    str d4, [x2, #360]
    add x2, x2, #640
    subs x1, x1, #1
    b.ne kern_stream_fp_loop
    ret
"""
    return Kernel("stream_fp", "kern_stream_fp", text, 21.0)


def _kern_chase() -> Kernel:
    """Pointer chasing (mcf/omnetpp): a dependent-load chain.

    Every iteration is ``ldr x2, [x2]`` — the case where the O0 two-cycle
    guard sits directly on the critical path and the O1 zero-instruction
    guard costs nothing (§4.1).
    """
    text = """
kern_chase:
    ldr x2, [x0]
kern_chase_loop:
    ldr x2, [x2]
    ldr x3, [x2, #8]
    add x4, x4, x3
    subs x1, x1, #1
    b.ne kern_chase_loop
    str x4, [x0, #8]
    ret
"""
    return Kernel("chase", "kern_chase", text, 5.0, needs_chain=True)


def _kern_btree() -> Kernel:
    """Branchy tree search (deepsjeng/leela): register-offset loads whose
    index depends on the loaded data, plus unpredictable branches.

    Register-offset addressing always costs one extra instruction under
    LFI (Table 3), and nothing is hoistable — this is why leela is the
    paper's worst case (17% on M1).
    """
    text = """
kern_btree:
    movz x2, #12345              // search state
    mov x6, #0
kern_btree_loop:
    lsr x4, x2, #3
    and x4, x4, x5               // x5 = index mask (set by the driver)
    ldr x7, [x0, x4, lsl #3]
    and x8, x7, x5               // child index comes from the loaded node
    ldr x9, [x0, x8, lsl #3]
    eor x2, x2, x9               // search state depends on both loads
    add x2, x2, #2531
    cmp x7, x4
    b.hi kern_btree_right
    add x6, x6, x9
    b kern_btree_next
kern_btree_right:
    eor x6, x6, x9
kern_btree_next:
    subs x1, x1, #1
    b.ne kern_btree_loop
    str x6, [x0]
    ret
"""
    return Kernel("btree", "kern_btree", text, 13.0)


def _kern_bytes() -> Kernel:
    """Byte scanning with a lookup table (xz/gcc): post-index byte loads,
    table lookups, compare-and-branch."""
    text = """
kern_bytes:
    mov x2, x0
    add x3, x0, #4096            // lookup table region
    mov x6, #0
kern_bytes_loop:
    ldrb w4, [x2], #1
    and x4, x4, #0xff
    ldrb w5, [x3, x4]
    add x6, x6, x5
    cmp w5, #128
    b.hi kern_bytes_skip
    eor x6, x6, x4
kern_bytes_skip:
    subs x1, x1, #1
    b.ne kern_bytes_loop
    str x6, [x0, #16]
    ret
"""
    return Kernel("bytes", "kern_bytes", text, 9.5)


def _kern_simd() -> Kernel:
    """SIMD pixel kernel (x264/imagick): 128-bit vector loads, vector
    arithmetic, vector stores — SIMD shares the integer address path, so
    guards apply identically (§2)."""
    text = """
kern_simd:
    mov x2, x0
kern_simd_loop:
    ldr q0, [x2]
    ldr q1, [x2, #16]
    ldr q2, [x2, #32]
    add v3.4s, v0.4s, v1.4s
    mul v4.4s, v1.4s, v2.4s
    eor v5.16b, v3.16b, v4.16b
    str q5, [x2, #48]
    add x2, x2, #320
    subs x1, x1, #1
    b.ne kern_simd_loop
    ret
"""
    return Kernel("simd", "kern_simd", text, 10.0)


def _kern_fma() -> Kernel:
    """Dense FP compute (namd/parest/nab): register-offset indexed loads
    feeding a fused-multiply-add reduction."""
    text = """
kern_fma:
    mov x2, #0
    fmov d4, #1.0
    fmov d5, #0.5
kern_fma_loop:
    and x3, x2, x5               // x5 = index mask
    ldr d0, [x0, x3, lsl #3]
    add x4, x3, #8
    and x4, x4, x5
    ldr d1, [x0, x4, lsl #3]
    fmadd d4, d0, d5, d4
    fmadd d5, d1, d4, d5
    fadd d6, d4, d5
    add x2, x2, #3
    subs x1, x1, #1
    b.ne kern_fma_loop
    str d6, [x0, #24]
    ret
"""
    return Kernel("fma", "kern_fma", text, 11.5)


def _kern_calls() -> Kernel:
    """Indirect-call-heavy code (gcc/omnetpp/xalancbmk): dispatch through
    a function-pointer table.  Each call is an indirect branch (guarded by
    LFI; type-checked at greater cost by Wasm, §6.2)."""
    text = """
kern_calls:
    mov x15, x30
    add x3, x0, #2048            // fn pointer table (filled by init)
    mov x6, #0
kern_calls_loop:
    and x4, x1, #1
    ldr x5, [x3, x4, lsl #3]
    mov x0, x6
    blr x5
    mov x6, x0
    subs x1, x1, #1
    b.ne kern_calls_loop
    mov x30, x15
    ret

kern_calls_fn_a:
    stp x29, x30, [sp, #-16]!
    mov x29, sp
    add x0, x0, #3
    ldp x29, x30, [sp], #16
    ret

kern_calls_fn_b:
    stp x29, x30, [sp, #-16]!
    mov x29, sp
    eor x0, x0, #0xff
    add x0, x0, #1
    ldp x29, x30, [sp], #16
    ret
"""
    return Kernel("calls", "kern_calls", text, 16.0, needs_table=True)


def _kern_stack() -> Kernel:
    """Stack-heavy leaf code (function-call-dense C++): sp-relative spills
    and reloads.  Free under LFI thanks to the sp invariants (§4.2)."""
    text = """
kern_stack:
    sub sp, sp, #96
kern_stack_loop:
    str x2, [sp]
    str x3, [sp, #8]
    str x4, [sp, #16]
    stp x5, x6, [sp, #24]
    ldr x2, [sp, #8]
    ldr x3, [sp, #16]
    ldp x5, x6, [sp, #24]
    add x2, x2, x3
    add x5, x5, x6
    subs x1, x1, #1
    b.ne kern_stack_loop
    add sp, sp, #96
    ret
"""
    return Kernel("stack", "kern_stack", text, 12.0)


def _kern_random() -> Kernel:
    """Scattered access over a large working set (mcf/omnetpp/xalancbmk):
    LCG-indexed loads that stress the TLB (Figure 5's KVM mechanism)."""
    text = """
kern_random:
    movz x2, #777
    mov x6, #0
kern_random_loop:
    movz x3, #0x41c6, lsl #16
    movk x3, #0x4e6d
    mul x2, x2, x3
    add x2, x2, #2531
    lsr x4, x2, #13
    and x4, x4, x5               // x5 = byte mask (8-aligned)
    and x4, x4, #0xfffffffffffffff8
    ldr x7, [x0, x4]
    add x6, x6, x7
    subs x1, x1, #1
    b.ne kern_random_loop
    str x6, [x0, #32]
    ret
"""
    return Kernel("random", "kern_random", text, 11.0)


_BUILDERS: Tuple[Callable[[], Kernel], ...] = (
    _kern_stream_int,
    _kern_stream_fp,
    _kern_chase,
    _kern_btree,
    _kern_bytes,
    _kern_simd,
    _kern_fma,
    _kern_calls,
    _kern_stack,
    _kern_random,
)

KERNELS: Dict[str, Kernel] = {k.name: k for k in (b() for b in _BUILDERS)}

"""Workloads: SPEC CPU2017 stand-in generators and the runtime-call shim."""

from .kernels import KERNELS, Kernel
from .rtlib import prologue, rt_exit, rtcall
from .spec import (
    BenchmarkProfile,
    SPEC_BENCHMARKS,
    WASM_SUBSET,
    arena_bss_size,
    benchmark_names,
    build_benchmark,
)

__all__ = [
    "KERNELS",
    "Kernel",
    "prologue",
    "rt_exit",
    "rtcall",
    "BenchmarkProfile",
    "SPEC_BENCHMARKS",
    "WASM_SUBSET",
    "arena_bss_size",
    "benchmark_names",
    "build_benchmark",
]

"""Spectre attack gallery workloads (DESIGN.md §16).

Two canonical transient-execution attacks, expressed as sandbox programs
that pass the verifier and the semantics oracle at every optimization
level — architecturally they are benign, and that is the point: the leak
lives entirely on mispredicted paths the emulator's speculative mode
(:class:`~repro.emulator.speculation.SpeculativeEngine`) makes visible.

* **Spectre-PHT** (bounds-check bypass, variant 1): a bounds check
  ``cmp w1, w6; b.hs skip`` guards an array read.  Twenty-four in-bounds
  training trials bias the pattern history table toward *fall-through*;
  the twenty-fifth trial presents an out-of-bounds index, the branch
  mispredicts, and the transient window reads ``array1[16]`` — the secret
  byte — then touches ``probe + secret*64``.
* **Spectre-RSB** (return-stack underflow, variant 5): ``bl diverge``
  pushes the gadget site onto the return-stack buffer, but ``diverge``
  overwrites ``x30`` and returns elsewhere.  The RSB predicts the stale
  entry, so the architecturally-dead gadget (read secret, touch probe)
  runs transiently.

Leakage is judged *differentially*: run the same attack twice with two
different secret bytes and count positions where the transient access
traces disagree (:func:`repro.obs.speculation.differential_leakage`).
Unhardened (O0/O1/O2) both attacks leak; under the hardened rewrites
(``O2_FENCE``, ``O2_MASK``) the traces collapse to secret-independence
and the leakage is exactly zero.  :mod:`examples.attack_gallery`,
``tests/test_speculation.py``, and ``benchmarks/bench_spectre_ablations``
all measure through this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..engine import EngineConfig, SpeculationConfig
from ..obs.speculation import SpeculationLog, differential_leakage

__all__ = [
    "ATTACKS",
    "DEFAULT_SECRETS",
    "PROBE_OFFSET",
    "PROBE_SIZE",
    "PROBE_STRIDE",
    "AttackResult",
    "attack_source",
    "measure_attack",
    "recover_secret",
    "recover_secrets",
    "run_attack",
]

#: Two secrets whose transient footprints must differ for a leak to count.
DEFAULT_SECRETS: Tuple[int, int] = (0x2A, 0x77)

#: Layout of the attack data section: ``array1`` (16 bytes) at offset 0,
#: the secret byte at offset 16, and the probe array cache-line-aligned
#: at offset 64.  ``.balign 64`` in the sources pins these.
SECRET_OFFSET = 16
PROBE_OFFSET = 64
PROBE_STRIDE = 64
PROBE_SIZE = 16384

#: Fuel for one attack run (architectural retirements only; transient
#: work is free).  The attacks retire a few hundred instructions.
ATTACK_FUEL = 200_000

_DATA_SECTION = """\
.data
.balign 64
array1:
    .byte 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1
secret:
    .byte {secret}
.balign 64
probe:
    .skip {probe_size}
"""

#: Spectre-PHT: train the bounds check not-taken with in-bounds indices,
#: then present index 16 (= the secret's offset past array1's end).
_PHT_SOURCE = """\
.text
_start:
    adrp x3, array1
    add  x3, x3, :lo12:array1
    adrp x8, probe
    add  x8, x8, :lo12:probe
    movz w0, #0
    movz w6, #16
    movz w7, #24
trial:
    cmp  w0, w7
    csel w1, w6, wzr, eq
    cmp  w1, w6
    b.hs skip
    add  x4, x3, w1, uxtw
    ldrb w2, [x4]
    lsl  w2, w2, #6
    add  x5, x8, w2, uxtw
    ldrb w10, [x5]
skip:
    add  w0, w0, #1
    cmp  w0, #25
    b.ne trial
    movz x0, #0
    brk  #0
""" + _DATA_SECTION

#: Spectre-RSB: ``bl`` pushes the gadget site, ``diverge`` retargets the
#: return, the stale RSB entry runs the dead gadget transiently.
_RSB_SOURCE = """\
.text
_start:
    adrp x3, secret
    add  x3, x3, :lo12:secret
    adrp x8, probe
    add  x8, x8, :lo12:probe
    bl   diverge
gadget:
    ldrb w2, [x3]
    lsl  w2, w2, #6
    add  x5, x8, w2, uxtw
    ldrb w10, [x5]
resume:
    movz x0, #0
    brk  #0
diverge:
    adr  x9, resume
    mov  x30, x9
    ret
""" + _DATA_SECTION


def _pht_source(secret: int) -> str:
    return _PHT_SOURCE.format(secret=secret, probe_size=PROBE_SIZE)


def _rsb_source(secret: int) -> str:
    return _RSB_SOURCE.format(secret=secret, probe_size=PROBE_SIZE)


#: Attack name -> source builder (secret byte -> assembly text).
ATTACKS: Dict[str, Callable[[int], str]] = {
    "pht": _pht_source,
    "rsb": _rsb_source,
}


def attack_source(name: str, secret: int) -> str:
    """Assembly text of attack ``name`` with ``secret`` baked into .data."""
    if name not in ATTACKS:
        raise ValueError(f"unknown attack {name!r}; "
                         f"have {sorted(ATTACKS)}")
    if not 0 <= secret <= 0xFF:
        raise ValueError(f"secret must be one byte, got {secret:#x}")
    return ATTACKS[name](secret)


@dataclass(frozen=True)
class AttackResult:
    """One differential leakage measurement."""

    name: str
    level: str  # rewrite options label, or "native"
    secrets: Tuple[int, int]
    #: Positional trace differences between the two runs (0 = no leak).
    leakage: int
    logs: Tuple[SpeculationLog, SpeculationLog]
    #: Secret byte inferred from each run's *diverging* probe footprint
    #: (:func:`recover_secrets`; ``None`` when the traces never diverge
    #: on a probe line — the hardened outcome).
    recovered: Tuple[Optional[int], Optional[int]]

    def line(self) -> str:
        rec = "/".join("-" if r is None else f"{r:#04x}"
                       for r in self.recovered)
        return (f"{self.name:<4} {self.level:<10} leakage={self.leakage:<3} "
                f"recovered={rec} windows={len(self.logs[0].windows)}")


def run_attack(source: str, options=None,
               speculation: Optional[SpeculationConfig] = None,
               fuel: int = ATTACK_FUEL, model=None) -> SpeculationLog:
    """Assemble (and optionally rewrite) ``source``; run it bare-machine
    in the differential slot under the speculative engine; return the log.
    """
    # Imported lazily: workloads must not pull the fuzz package (and its
    # runtime/checkpoint closure) at import time.
    from ..fuzz.differential import (
        SLOT,
        assemble_to_elf,
        rewrite_to_elf,
    )
    from ..elf import PF_X
    from ..emulator import BrkTrap, Machine
    from ..memory import PERM_RW, PERM_RX, PagedMemory

    spec = speculation or SpeculationConfig()
    if options is None:
        elf = assemble_to_elf(source)
    else:
        elf = rewrite_to_elf(source, options)

    memory = PagedMemory()
    page = memory.page_size
    for seg in elf.segments:
        vaddr = SLOT.base + seg.vaddr
        base = vaddr & ~(page - 1)
        end = (vaddr + max(seg.memsz, 1) + page - 1) & ~(page - 1)
        memory.map_region(base, end - base, PERM_RW)
        memory.load_image(vaddr, seg.data)
        memory.protect(base, end - base,
                       PERM_RX if seg.flags & PF_X else PERM_RW)
    stack_top = SLOT.usable_end
    memory.map_region(stack_top - 0x8000, 0x8000, PERM_RW)

    machine = Machine(
        memory, model=model,
        engine=EngineConfig(kind="stepping", speculation=spec))
    machine.cpu.pc = SLOT.base + elf.entry
    machine.cpu.sp = stack_top
    machine.cpu.regs[21] = SLOT.base
    try:
        machine.run(fuel=fuel)
    except BrkTrap:
        pass
    else:
        raise RuntimeError("attack program did not halt")
    return machine.speculation_log


def _decode_probe(address: int) -> Optional[int]:
    """Probe-line index of ``address``, or None if outside the probe."""
    from ..fuzz.differential import DATA_OFFSET, SLOT

    off = address - (SLOT.base + DATA_OFFSET + PROBE_OFFSET)
    if 0 <= off < PROBE_SIZE and off % PROBE_STRIDE == 0:
        return off // PROBE_STRIDE
    return None


def recover_secret(log: SpeculationLog) -> Optional[int]:
    """Infer the secret byte from one run's transient probe footprint.

    Scans the log for a transient access landing stride-aligned inside
    the probe array; its line index *is* the leaked byte.  Returns
    ``None`` when no such access exists.  Single-run recovery is naive:
    adversarial predictor seeds can open extra transient windows whose
    benign training touches shadow the secret — prefer
    :func:`recover_secrets`, which diffs two runs instead.
    """
    for window in log.windows:
        for access in window.accesses:
            line = _decode_probe(access.address)
            if line is not None:
                return line
    return None


def recover_secrets(
    log_a: SpeculationLog, log_b: SpeculationLog,
) -> Tuple[Optional[int], Optional[int]]:
    """Differential recovery: decode the first *diverging* probe access.

    Seed-dependent mispredict windows (loop-exit overshoot, cold-counter
    training noise) touch the probe at the training line in *both* runs,
    so positionally-identical accesses carry no secret and are skipped;
    the first position where the traces disagree is, by construction,
    secret-dependent.  Returns ``(None, None)`` when the traces match —
    the hardened outcome: zero divergence means nothing to decode.
    """
    trace_a, trace_b = log_a.access_trace(), log_b.access_trace()
    rec_a: Optional[int] = None
    rec_b: Optional[int] = None
    for i in range(max(len(trace_a), len(trace_b))):
        a = trace_a[i] if i < len(trace_a) else None
        b = trace_b[i] if i < len(trace_b) else None
        if a == b:
            continue
        if rec_a is None and a is not None:
            rec_a = _decode_probe(a[0])
        if rec_b is None and b is not None:
            rec_b = _decode_probe(b[0])
        if rec_a is not None and rec_b is not None:
            break
    return rec_a, rec_b


def measure_attack(name: str, options=None,
                   speculation: Optional[SpeculationConfig] = None,
                   secrets: Tuple[int, int] = DEFAULT_SECRETS,
                   fuel: int = ATTACK_FUEL, model=None) -> AttackResult:
    """Run attack ``name`` twice (one secret each) and diff the traces."""
    spec = speculation or SpeculationConfig()
    logs = tuple(
        run_attack(attack_source(name, secret), options=options,
                   speculation=spec, fuel=fuel, model=model)
        for secret in secrets
    )
    return AttackResult(
        name=name,
        level=options.label if options is not None else "native",
        secrets=tuple(secrets),
        leakage=differential_leakage(logs[0], logs[1]),
        logs=logs,
        recovered=recover_secrets(logs[0], logs[1]),
    )

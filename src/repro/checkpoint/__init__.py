"""Checkpoint/restore for running jobs (DESIGN.md §12).

Deterministic full-process snapshots: capture a job mid-execution at a
scheduling-slice boundary, serialize it position-independently, and
restore it — in the same runtime, another worker, or another machine —
such that continued execution is byte-identical to the uninterrupted
run.  The cluster layers crash recovery, live migration, and elastic
rebalancing on top of this one primitive.
"""

from .capture import (
    CheckpointSession,
    canonical_registers,
    capture_job,
    job_processes,
    memory_digest,
    normalize_events,
    rebase_registers,
    restore_job,
    track_slot_bases,
)
from .state import CHECKPOINT_VERSION, Checkpoint, FdImage, PipeImage, ProcImage

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointSession",
    "FdImage",
    "PipeImage",
    "ProcImage",
    "canonical_registers",
    "capture_job",
    "job_processes",
    "memory_digest",
    "normalize_events",
    "rebase_registers",
    "restore_job",
    "track_slot_bases",
]

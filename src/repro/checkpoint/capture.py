"""Capture and restore running jobs (checkpoint/restore, DESIGN.md §12).

:func:`capture_job` walks a job — the root sandbox plus every live fork
descendant — and produces a position-independent :class:`Checkpoint`;
:func:`restore_job` rebuilds the job in any runtime, in fresh slots, with
the original absolute pids.  The contract both lean on:

* captures happen only **between scheduling slices** (``Runtime.run_bounded``
  pauses there), so no process is mid-slice and the saved registers are
  the complete CPU state;
* under the deterministic cost model (``model=None``) a restored job's
  continued execution is byte-identical — registers, memory, metrics,
  trace — to the uninterrupted run.  The differential oracle in
  :mod:`repro.fuzz` checks exactly this.

:class:`CheckpointSession` adds the incremental part: it marks captured
pages copy-on-write, so the next capture detects clean pages by storage
identity and reuses their bytes — O(dirty pages) per checkpoint, the same
memfd trick that makes fork and warm spawn cheap.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, List, Optional, Tuple

from ..errors import CheckpointError, VfsError as _VfsError
from ..memory.layout import GUARD_SIZE, SANDBOX_SIZE, SandboxLayout
from ..memory.pages import PERM_RW, PagedMemory
from ..obs.events import (
    ContextSwitch,
    FaultEvent,
    InstSample,
    ProcessEvent,
    RuntimeCallSpan,
)
from ..runtime.process import Process, ProcessState, StdStream
from ..runtime.runtime import ResourceQuota, Runtime
from ..runtime.vfs import FileHandle, Pipe, PipeEnd, _File
from .state import CHECKPOINT_VERSION, Checkpoint, FdImage, PipeImage, ProcImage

__all__ = [
    "capture_job",
    "restore_job",
    "CheckpointSession",
    "job_processes",
    "canonical_registers",
    "rebase_registers",
    "memory_digest",
    "normalize_events",
    "track_slot_bases",
]


# -- register canonicalization ---------------------------------------------

def _window(layout: SandboxLayout) -> Tuple[int, int]:
    """The guard-extended address window a register may legally point at."""
    return layout.base - GUARD_SIZE, layout.end + GUARD_SIZE


def canonical_registers(registers: dict, layout: SandboxLayout) -> dict:
    """Encode saved registers position-independently.

    Any value inside the guard-extended slot window becomes a
    ``("ptr", offset)`` tag.  Fork only rebases the ABI-designated address
    registers, but a checkpoint can land mid-guard-sequence with an
    absolute pointer in *any* scratch register, so every register gets the
    treatment.  Values outside the window (immediates, 32-bit offsets,
    other sandboxes' data smuggled through pipes as plain ints) pass
    through bit-for-bit.
    """
    lo, hi = _window(layout)

    def encode(value: int):
        if lo <= value < hi:
            return ("ptr", value - layout.base)
        return value

    return {
        "regs": [encode(v) for v in registers["regs"]],
        "sp": encode(registers["sp"]),
        "pc": encode(registers["pc"]),
        "nzcv": registers["nzcv"],
        "vregs": list(registers["vregs"]),
    }


def rebase_registers(canonical: dict, layout: SandboxLayout) -> dict:
    """Invert :func:`canonical_registers` onto a (possibly new) slot."""

    def decode(value):
        if isinstance(value, tuple):
            return layout.base + value[1]
        return value

    return {
        "regs": [decode(v) for v in canonical["regs"]],
        "sp": decode(canonical["sp"]),
        "pc": decode(canonical["pc"]),
        "nzcv": canonical["nzcv"],
        "vregs": list(canonical["vregs"]),
    }


# -- job membership --------------------------------------------------------

def job_processes(runtime: Runtime, root: Process) -> List[Process]:
    """The root plus every live transitive descendant, pid-sorted.

    Reaped children are skipped (they survive only as pid entries in their
    parent's ``children`` list, which the capture keeps so ``wait``
    semantics replay exactly).
    """
    seen: Dict[int, Process] = {}
    stack = [root]
    while stack:
        proc = stack.pop()
        if proc.pid in seen:
            continue
        seen[proc.pid] = proc
        for child_pid in proc.children:
            child = runtime.processes.get(child_pid)
            if child is not None:
                stack.append(child)
    return [seen[pid] for pid in sorted(seen)]


# -- capture ---------------------------------------------------------------

def capture_job(
    runtime: Runtime,
    root: Process,
    hub=None,
    *,
    consumed_instructions: int = 0,
    consumed_cycles: float = 0.0,
    fault_kinds=(),
    _page_cache: Optional[Tuple[dict, dict]] = None,
) -> Checkpoint:
    """Snapshot ``root``'s job into a :class:`Checkpoint`.

    Must be called between scheduling slices (no process ``RUNNING``).
    ``hub`` is the job's :class:`~repro.obs.metrics.MetricsHub`, captured
    so a restored job's metrics report matches the uninterrupted run.
    ``_page_cache`` is :class:`CheckpointSession`'s incremental state.
    """
    procs = job_processes(runtime, root)
    for proc in procs:
        if proc.state == ProcessState.RUNNING:
            raise CheckpointError(
                f"pid {proc.pid} is mid-slice; capture only at slice "
                f"boundaries (use run_bounded)"
            )

    memory = runtime.memory
    ps = memory.page_size
    ordinal = {proc.pid: i for i, proc in enumerate(procs)}

    # Object tables: open-file descriptions are shared across fd tables
    # after fork, and that sharing is semantic (a shared FileHandle has
    # one cursor).  Deduplicate by identity; ids are assigned in
    # pid-then-fd order so two captures of the same state agree.
    objects: Dict[int, FdImage] = {}
    object_ids: Dict[int, int] = {}
    pipes: Dict[int, PipeImage] = {}
    pipe_ids: Dict[int, int] = {}

    def pipe_id(pipe: Pipe) -> int:
        pid = pipe_ids.get(id(pipe))
        if pid is None:
            pid = pipe_ids[id(pipe)] = len(pipe_ids)
            pipes[pid] = PipeImage(
                buffer=bytes(pipe.buffer),
                read_open=pipe.read_open,
                write_open=pipe.write_open,
            )
        return pid

    def object_id(obj) -> int:
        oid = object_ids.get(id(obj))
        if oid is not None:
            return oid
        oid = object_ids[id(obj)] = len(object_ids)
        if isinstance(obj, StdStream):
            state = obj.state()
            objects[oid] = FdImage(kind="std", readable=state["readable"],
                                   buffer=state["buffer"],
                                   read_pos=state["read_pos"])
        elif isinstance(obj, PipeEnd):
            objects[oid] = FdImage(kind="pipe", pipe_id=pipe_id(obj.pipe),
                                   reading=obj.reading, refs=obj.refs)
        elif isinstance(obj, FileHandle):
            linked = True
            try:
                linked = runtime.vfs._walk(obj.path) is obj._node
            except _VfsError:
                linked = False
            objects[oid] = FdImage(
                kind="file", path=obj.path, offset=obj.offset,
                accmode=obj.accmode, append=obj.append, linked=linked,
                data=None if linked else bytes(obj._node.data),
            )
        else:
            raise CheckpointError(f"unknown fd object {type(obj).__name__}")
        return oid

    pages: Dict[Tuple[int, int], bytes] = {}
    dirty = 0
    refs = cached = None
    if _page_cache is not None:
        refs, cached = _page_cache

    images: List[ProcImage] = []
    for proc in procs:
        base, end = proc.layout.base, proc.layout.end
        slot_ord = ordinal[proc.pid]
        base_page = base // ps

        regions: List[Tuple[int, int, int]] = []
        for rbase, rsize, rperms in memory.mapped_regions():
            lo = max(rbase, base)
            hi = min(rbase + rsize, end)
            if lo >= hi:
                continue
            regions.append((lo - base, hi - lo, rperms))
            for page in range(lo // ps, hi // ps):
                key = (slot_ord, page - base_page)
                buf = memory._pages[page]
                if refs is not None and refs.get(key) is buf:
                    data = cached[key]
                else:
                    data = bytes(buf)
                    dirty += 1
                if refs is not None:
                    refs[key] = buf
                    cached[key] = data
                    # Mark the page COW: a guest write now copies the
                    # storage out, so next capture's identity check sees
                    # a different bytearray exactly for dirtied pages.
                    memory._cow.add(page)
                pages[key] = data

        block_pipe = (pipe_id(proc.block_pipe)
                      if proc.block_pipe is not None else None)
        cursor = runtime._mmap_cursors.get(proc.pid)
        quota = runtime.quotas.get(proc.pid)
        images.append(ProcImage(
            pid_off=proc.pid - root.pid,
            slot_ord=slot_ord,
            parent_off=(proc.parent - root.pid
                        if proc.parent is not None else None),
            state=proc.state,
            exit_code=proc.exit_code,
            registers=canonical_registers(proc.registers, proc.layout),
            brk_off=proc.brk - base,
            heap_off=proc.heap_start - base,
            fds={fd: object_id(obj)
                 for fd, obj in sorted(proc.fds.items())},
            children=[pid - root.pid for pid in proc.children],
            block_reason=proc.block_reason,
            block_pipe=block_pipe,
            pending_call=runtime._pending_call.get(proc.pid),
            instructions=proc.instructions,
            guard_map={pc - base: klass
                       for pc, klass in proc.guard_map.items()},
            step_mode=proc.step_mode,
            mmap_cursor_off=(cursor - base if cursor is not None else None),
            quota=((quota.max_mapped_pages, quota.max_fds,
                    quota.max_instructions) if quota is not None else None),
            regions=regions,
        ))

    if refs is not None:
        for key in [k for k in refs if k not in pages]:
            del refs[key]
            cached.pop(key, None)

    pids = {proc.pid for proc in procs}
    sched = runtime.scheduler.capture_order(pids)
    sched = {
        "active": [pid - root.pid for pid in sched["active"]],
        "expired": [pid - root.pid for pid in sched["expired"]],
        "picked": {pid - root.pid: delta
                   for pid, delta in sched["picked"].items()},
    }

    return Checkpoint(
        version=CHECKPOINT_VERSION,
        root_pid=root.pid,
        procs=images,
        objects=objects,
        pipes=pipes,
        pages=pages,
        page_size=ps,
        sched=sched,
        vfs=runtime.vfs.state_dict(),
        metrics=(hub.state_dict(pid_base=root.pid)
                 if hub is not None else None),
        consumed_instructions=consumed_instructions,
        consumed_cycles=consumed_cycles,
        fault_kinds=list(fault_kinds),
        stats={"dirty_pages": dirty if _page_cache is not None else len(pages),
               "total_pages": len(pages)},
    )


# -- restore ---------------------------------------------------------------

def restore_job(runtime: Runtime, ckpt: Checkpoint, hub=None) -> Process:
    """Rebuild a checkpointed job in ``runtime``; returns the root process.

    Slots are freshly allocated (slot numbers never need to match — all
    addresses in the image are offsets), but **absolute pids are
    preserved**: the guest has already observed them via ``fork`` return
    values and ``getpid``, in registers and memory the restore carries
    over verbatim.  The destination's pid counter jumps past the job's
    range; a pid collision (something live already holds one of the
    job's pids) is an error.
    """
    if ckpt.page_size != runtime.memory.page_size:
        raise CheckpointError(
            f"page size mismatch: checkpoint {ckpt.page_size}, "
            f"runtime {runtime.memory.page_size}"
        )
    root_pid = ckpt.root_pid
    targets = [root_pid + img.pid_off for img in ckpt.procs]
    for pid in targets:
        if pid in runtime.processes:
            raise CheckpointError(f"pid {pid} already exists in this runtime")
    runtime._next_pid = max(runtime._next_pid, max(targets) + 1)

    runtime.vfs.load_state(ckpt.vfs)

    pipe_map: Dict[int, Pipe] = {}
    for pid, image in ckpt.pipes.items():
        pipe = Pipe()
        pipe.buffer.extend(image.buffer)
        pipe.read_open = image.read_open
        pipe.write_open = image.write_open
        pipe_map[pid] = pipe

    object_map: Dict[int, object] = {}
    for oid, image in ckpt.objects.items():
        if image.kind == "std":
            object_map[oid] = StdStream.from_state(
                {"buffer": image.buffer, "readable": image.readable,
                 "read_pos": image.read_pos})
        elif image.kind == "pipe":
            end = PipeEnd(pipe_map[image.pipe_id], reading=image.reading)
            end.refs = image.refs
            object_map[oid] = end
        elif image.kind == "file":
            if image.linked:
                node = runtime.vfs._walk(image.path)
            else:
                node = _File(bytearray(image.data or b""))
            handle = FileHandle(node, image.accmode, append=image.append,
                                path=image.path)
            handle.offset = image.offset
            object_map[oid] = handle
        else:
            raise CheckpointError(f"unknown fd image kind {image.kind!r}")

    memory = runtime.memory
    ps = ckpt.page_size
    restored: Dict[int, Process] = {}  # pid offset -> Process
    for img in ckpt.procs:
        layout = runtime.allocate_slot()
        base = layout.base
        for off, size, perms in img.regions:
            memory.map_region(base + off, size, PERM_RW)
        for (slot_ord, page_off), data in ckpt.pages.items():
            if slot_ord != img.slot_ord:
                continue
            memory.load_image(base + page_off * ps, data)
        for off, size, perms in img.regions:
            memory.protect(base + off, size, perms)

        pid = root_pid + img.pid_off
        proc = Process(
            pid=pid,
            layout=layout,
            registers=rebase_registers(img.registers, layout),
            parent=(root_pid + img.parent_off
                    if img.parent_off is not None else None),
            state=img.state,
            exit_code=img.exit_code,
            brk=base + img.brk_off,
            heap_start=base + img.heap_off,
            children=[root_pid + off for off in img.children],
            block_reason=img.block_reason,
            block_pipe=(pipe_map[img.block_pipe]
                        if img.block_pipe is not None else None),
            instructions=img.instructions,
            guard_map={base + off: klass
                       for off, klass in img.guard_map.items()},
            step_mode=img.step_mode,
        )
        proc.fds = {fd: object_map[oid] for fd, oid in img.fds.items()}
        runtime.processes[pid] = proc
        if img.pending_call is not None:
            runtime._pending_call[pid] = img.pending_call
        if img.mmap_cursor_off is not None:
            runtime._mmap_cursors[pid] = base + img.mmap_cursor_off
        if img.quota is not None:
            runtime.quotas[pid] = ResourceQuota(*img.quota)
        restored[img.pid_off] = proc

    runtime.scheduler.restore_order(ckpt.sched, restored)
    if hub is not None and ckpt.metrics is not None:
        hub.load_state(ckpt.metrics, pid_base=root_pid)
    return restored[0]


# -- incremental sessions --------------------------------------------------

class CheckpointSession:
    """Periodic checkpointing of one job, O(dirty pages) per capture.

    The session remembers, per page, the storage object and bytes of the
    last capture.  :func:`capture_job` marks captured pages copy-on-write,
    so a guest write replaces the storage object — the next capture
    detects clean pages by identity (``refs[key] is buf``) and reuses the
    previous bytes without touching the page contents.
    """

    def __init__(self, runtime: Runtime, root: Process, hub=None):
        self.runtime = runtime
        self.root = root
        self.hub = hub
        self.seq = 0
        self._page_refs: dict = {}
        self._page_bytes: dict = {}

    def capture(self, *, consumed_instructions: int = 0,
                consumed_cycles: float = 0.0,
                fault_kinds=()) -> Checkpoint:
        ckpt = capture_job(
            self.runtime, self.root, self.hub,
            consumed_instructions=consumed_instructions,
            consumed_cycles=consumed_cycles,
            fault_kinds=fault_kinds,
            _page_cache=(self._page_refs, self._page_bytes),
        )
        self.seq += 1
        ckpt.stats["seq"] = self.seq
        return ckpt


# -- differential-oracle helpers -------------------------------------------

def memory_digest(memory: PagedMemory, layout: SandboxLayout) -> str:
    """Position-independent content hash of one sandbox slot.

    Guests legitimately spill absolute pointers (the x21 base, guard
    results) to their stacks, so raw bytes differ between slots holding
    the same logical state.  Each aligned 64-bit word that points into the
    slot's own guard-extended window is therefore hashed as an offset tag;
    everything else is hashed verbatim.  Two slots with the same logical
    contents digest identically wherever they live.
    """
    sha = hashlib.sha256()
    lo, hi = layout.base, layout.end
    wlo, whi = _window(layout)
    ps = memory.page_size
    for page in sorted(memory._pages):
        addr = page * ps
        if not lo <= addr < hi:
            continue
        buf = memory._pages[page]
        sha.update(struct.pack("<QQ", addr - lo, memory._perms[page]))
        for word, in struct.iter_unpack("<Q", buf):
            if wlo <= word < whi:
                sha.update(b"P")
                sha.update(struct.pack("<q", word - lo))
            else:
                sha.update(struct.pack("<Q", word))
    return sha.hexdigest()


def track_slot_bases(runtime: Runtime, tracer, bases: Optional[dict] = None,
                     ) -> dict:
    """Record each traced pid's slot base as events arrive.

    Needed by :func:`normalize_events`: by the time a trace is compared
    the processes may be reaped, so the pid→base mapping is collected
    live (the runtime registers a process before emitting its first
    event).
    """
    if bases is None:
        bases = {}

    def on_event(event) -> None:
        if event.pid not in bases:
            proc = runtime.processes.get(event.pid)
            if proc is not None:
                bases[event.pid] = proc.layout.base
    tracer.subscribe(on_event)
    return bases


def normalize_events(events, bases: dict, ts_base: float = 0.0,
                     pid_base: int = 0, instret_base: int = 0) -> list:
    """Project a trace onto slot/pid/time-independent tuples.

    Timestamps are rebased by ``ts_base`` (a resumed run's clock starts
    where the checkpoint left off, an uninterrupted run's at the job
    start), pids by ``pid_base``, pcs and in-window call results by the
    emitting process's slot base.  Two runs of the same job — whether
    straight through or checkpoint/restored across runtimes — normalize
    to equal lists.
    """
    out = []
    for event in events:
        pid = event.pid - pid_base
        ts = event.ts - ts_base
        base = bases.get(event.pid)
        if isinstance(event, ContextSwitch):
            out.append(("cs", ts, pid, event.dur, event.instructions,
                        event.reason))
        elif isinstance(event, RuntimeCallSpan):
            result = event.result
            if (result is not None and base is not None
                    and base - GUARD_SIZE <= result
                    < base + SANDBOX_SIZE + GUARD_SIZE):
                result = ("ptr", result - base)
            out.append(("call", ts, pid, event.call, event.dur, result,
                        event.blocked, event.injected))
        elif isinstance(event, FaultEvent):
            out.append(("fault", ts, pid, event.kind,
                        event.pc - (base or 0)))
        elif isinstance(event, ProcessEvent):
            parent = (event.parent - pid_base
                      if event.parent is not None else None)
            out.append(("proc", ts, pid, event.kind, event.detail, parent,
                        event.exit_code))
        elif isinstance(event, InstSample):
            out.append(("inst", pid, event.pc - (base or 0), event.klass,
                        event.guard, event.instret - instret_base))
        else:
            out.append((type(event).__name__, ts, pid))
    return out

"""Checkpoint format: the serializable image of a running job (§12).

A :class:`Checkpoint` is a complete, position-independent snapshot of one
job — the root sandbox plus every live fork descendant.  Everything that
could differ between slots or workers is stored *relative*:

* pids as offsets from the job root (gaps from reaped children kept, so a
  restored runtime reproduces the original pid arithmetic);
* slot contents as per-process ``(offset, size, perms)`` regions plus a
  page map keyed ``(slot_ordinal, page_offset)``;
* registers in canonical form: any value inside the process's
  guard-extended slot window becomes a ``("ptr", offset)`` tag, rebased
  onto whatever slot the restore lands in (fork only rebases the ABI
  registers, but a checkpoint can land mid-guard-sequence with absolute
  pointers in scratch registers — every register gets the treatment);
* fd descriptions in an object table (fork shares descriptions between
  tables, and the sharing itself is part of the semantics), pipes once
  with their buffered bytes and end states.

Two checkpoints of the same logical state taken in different runtimes are
byte-identical (:meth:`Checkpoint.digest` agrees) — that is the property
the differential oracle leans on.
"""

from __future__ import annotations

import hashlib
import pickle
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import CheckpointError

__all__ = ["Checkpoint", "ProcImage", "FdImage", "PipeImage",
           "CHECKPOINT_VERSION"]

CHECKPOINT_VERSION = 1


@dataclass
class FdImage:
    """One open-file description (shared across fd tables after fork)."""

    kind: str  # "std" | "file" | "pipe"
    # std stream
    readable: bool = False
    buffer: bytes = b""
    read_pos: int = 0
    # vfs file
    path: str = ""
    offset: int = 0
    accmode: int = 0
    append: bool = False
    #: False when the handle's file was unlinked while open (the data
    #: then lives only in the description); ``data`` holds the bytes.
    linked: bool = True
    data: Optional[bytes] = None
    # pipe end
    pipe_id: int = -1
    reading: bool = False
    refs: int = 0


@dataclass
class PipeImage:
    """One pipe: buffered bytes plus which directions are still open."""

    buffer: bytes
    read_open: bool
    write_open: bool


@dataclass
class ProcImage:
    """One process of the job, everything slot- and pid-relative."""

    pid_off: int
    slot_ord: int
    parent_off: Optional[int]
    state: str
    exit_code: Optional[int]
    registers: dict  # canonical form: in-slot values as ("ptr", offset)
    brk_off: int
    heap_off: int
    fds: Dict[int, int]  # fd -> object-table id
    children: List[int]  # pid offsets (reaped children included)
    block_reason: Optional[str]
    block_pipe: Optional[int]
    pending_call: Optional[int]
    instructions: int
    guard_map: Dict[int, str]  # pc offset -> guard class
    step_mode: bool
    mmap_cursor_off: Optional[int]
    quota: Optional[Tuple]  # (max_mapped_pages, max_fds, max_instructions)
    regions: List[Tuple[int, int, int]]  # (offset, size, perms)


@dataclass
class Checkpoint:
    """A complete deterministic snapshot of one job's execution state."""

    version: int
    #: Absolute pid of the job root.  Restore *preserves* absolute pids
    #: (the destination's process table is empty between jobs and the pid
    #: counter only jumps forward) because the guest has already observed
    #: them — fork return values and ``getpid`` results live on in
    #: registers and memory, and renumbering would diverge from the
    #: uninterrupted run.
    root_pid: int
    procs: List[ProcImage]
    objects: Dict[int, FdImage]
    pipes: Dict[int, PipeImage]
    #: (slot_ordinal, page_offset) -> page bytes.  An incremental capture
    #: reuses the previous checkpoint's bytes objects for clean pages, so
    #: building this map costs O(dirty pages).
    pages: Dict[Tuple[int, int], bytes]
    page_size: int
    sched: dict  # Scheduler.capture_order, pids as offsets
    vfs: dict
    metrics: Optional[dict]
    #: Instructions/cycles the job had consumed when captured; resume
    #: re-anchors its counters so totals match the uninterrupted run.
    consumed_instructions: int = 0
    consumed_cycles: float = 0.0
    fault_kinds: List[str] = field(default_factory=list)
    #: Capture diagnostics (dirty/total page counts, sequence number).
    #: Excluded from the digest: two captures of the same state taken
    #: with different histories legitimately differ here.
    stats: Dict[str, int] = field(default_factory=dict)

    # -- serialization -------------------------------------------------------

    def _canonical(self) -> dict:
        return {
            "version": self.version,
            "root_pid": self.root_pid,
            "procs": [vars(img) for img in self.procs],
            "objects": {oid: vars(obj)
                        for oid, obj in sorted(self.objects.items())},
            "pipes": {pid: vars(img)
                      for pid, img in sorted(self.pipes.items())},
            "pages": {key: self.pages[key] for key in sorted(self.pages)},
            "page_size": self.page_size,
            "sched": self.sched,
            "vfs": self.vfs,
            "metrics": self.metrics,
            "consumed_instructions": self.consumed_instructions,
            "consumed_cycles": self.consumed_cycles,
            "fault_kinds": list(self.fault_kinds),
        }

    def to_bytes(self) -> bytes:
        """Stable wire format (canonical key order, protocol pinned).

        Strings are interned first: the pickler memoizes by object
        identity, so equal-but-distinct strings (e.g. a dict key that
        went through a previous serialization round trip) would change
        the memo layout and break byte-stability of equal checkpoints.
        """
        return pickle.dumps(_intern(self._canonical()), protocol=4)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Checkpoint":
        raw = pickle.loads(data)
        if raw["version"] != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {raw['version']}")
        return cls(
            version=raw["version"],
            root_pid=raw["root_pid"],
            procs=[ProcImage(**img) for img in raw["procs"]],
            objects={oid: FdImage(**obj)
                     for oid, obj in raw["objects"].items()},
            pipes={pid: PipeImage(**img)
                   for pid, img in raw["pipes"].items()},
            pages=dict(raw["pages"]),
            page_size=raw["page_size"],
            sched=raw["sched"],
            vfs=raw["vfs"],
            metrics=raw["metrics"],
            consumed_instructions=raw["consumed_instructions"],
            consumed_cycles=raw["consumed_cycles"],
            fault_kinds=list(raw["fault_kinds"]),
        )

    def digest(self) -> str:
        """Content hash of the canonical form (position-independent)."""
        return hashlib.sha256(self.to_bytes()).hexdigest()

    @property
    def dirty_pages(self) -> int:
        return self.stats.get("dirty_pages", len(self.pages))

    @property
    def total_pages(self) -> int:
        return self.stats.get("total_pages", len(self.pages))


def _intern(obj):
    """Recursively intern strings so pickling is identity-deterministic."""
    if isinstance(obj, str):
        return sys.intern(obj)
    if isinstance(obj, dict):
        return {_intern(key): _intern(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [_intern(item) for item in obj]
    if isinstance(obj, tuple):
        return tuple(_intern(item) for item in obj)
    return obj

"""End-to-end toolchain driver: the ``lfi-clang`` equivalent (paper §5.1).

``compile_lfi`` plays the role of the paper's compiler wrapper: it takes
GNU assembly text (what Clang would emit with ``-ffixed-reg`` flags),
passes it through the LFI rewriter, assembles it to genuine machine code,
and packages an ELF executable linked at sandbox offsets.  ``compile_native``
skips the rewriter — the unsandboxed baseline.

Assembly programs use the runtime-call sequences from
:mod:`repro.workloads.rtlib` to talk to the runtime.
"""

from __future__ import annotations

from typing import Optional

from .arm64.assembler import AssembledImage, assemble
from .arm64.parser import parse_assembly
from .core.options import O2, RewriteOptions
from .core.rewriter import RewriteResult, rewrite_program
from .elf.builder import build_elf
from .elf.format import ElfImage

__all__ = ["CompileOutput", "compile_lfi", "compile_native"]


class CompileOutput:
    """The products of one compilation: ELF image plus build metadata."""

    def __init__(self, elf: ElfImage, image: AssembledImage,
                 rewrite: Optional[RewriteResult] = None):
        self.elf = elf
        self.image = image
        self.rewrite = rewrite

    @property
    def text_size(self) -> int:
        return len(self.image.text.data)

    @property
    def binary_size(self) -> int:
        from .elf.format import write_elf

        return len(write_elf(self.elf))


def compile_lfi(asm_text: str, options: RewriteOptions = O2,
                bss_size: int = 0) -> CompileOutput:
    """Assembly text -> rewritten, verified-ready sandbox executable."""
    program = parse_assembly(asm_text)
    rewritten = rewrite_program(program, options)
    image = assemble(rewritten.program)
    return CompileOutput(build_elf(image, bss_size=bss_size), image, rewritten)


def compile_native(asm_text: str, bss_size: int = 0) -> CompileOutput:
    """Assembly text -> unsandboxed executable (the baseline)."""
    image = assemble(parse_assembly(asm_text))
    return CompileOutput(build_elf(image, bss_size=bss_size), image)

"""Sandbox supervision, resource quotas, and fault injection (§5.3).

The paper's multi-tenant claim is that one host process safely runs many
mutually untrusted sandboxes.  This package makes that claim *testable*:

* :mod:`supervisor` keeps the host loop alive across sandbox faults,
  enforces per-sandbox quotas, and applies restart policies;
* :mod:`faultinject` deterministically corrupts sandboxes mid-run;
* :mod:`audit` checks that every fault stayed inside the victim's slot.
"""

from .audit import ContainmentAuditor
from .faultinject import FaultInjector, PlannedFault
from .supervisor import (
    Incident,
    NEVER,
    ON_FAILURE,
    RestartPolicy,
    Supervisor,
    WorkerSupervisor,
)

__all__ = [
    "ContainmentAuditor",
    "FaultInjector",
    "PlannedFault",
    "Incident",
    "NEVER",
    "ON_FAILURE",
    "RestartPolicy",
    "Supervisor",
    "WorkerSupervisor",
]

"""Sandbox supervision: restart policies, quotas, and a watchdog (§5.3).

The bare :class:`~repro.runtime.Runtime` records a ``ProcessFault`` and
kills the offending sandbox, but a ``Deadlock`` or host-level error still
tears down the whole run loop, and nothing ever restarts a dead tenant.
The :class:`Supervisor` closes that gap:

* sandboxes are *submitted* under a :class:`RestartPolicy` (``never``, or
  ``on-failure`` with exponential backoff and a max-restart cap) and an
  optional :class:`~repro.runtime.ResourceQuota`;
* the supervisor drives the runtime in *rounds*; a ``Deadlock`` no longer
  crashes the host — the blocked sandboxes are terminated individually and
  recorded, and everything else keeps running;
* a watchdog demotes sandboxes that fault repeatedly (no further
  restarts) and kills sandboxes that exceed their quotas;
* every event becomes a structured :class:`Incident`, and the incident
  log is fully deterministic for a deterministic workload.

Dead sandboxes' slots are unmapped (``reclaim``), so a long supervision
run does not leak host memory — a production-scale necessity the seed
runtime ignored.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..elf.format import ElfImage, read_elf
from ..obs.events import SupervisorEvent
from ..runtime.process import Process, ProcessState
from ..errors import Deadlock, RuntimeError_
from ..runtime.runtime import ResourceQuota, Runtime

__all__ = ["RestartPolicy", "NEVER", "ON_FAILURE", "Incident", "Supervisor",
           "WorkerSupervisor"]


@dataclass(frozen=True)
class RestartPolicy:
    """When and how a dead sandbox is restarted.

    ``on-failure`` restarts a *faulted* sandbox (never a clean exit) after
    an exponential backoff measured in supervision rounds:
    ``backoff_base * backoff_factor ** restarts_so_far``.
    """

    mode: str = "never"  # "never" | "on-failure"
    max_restarts: int = 3
    backoff_base: int = 1
    backoff_factor: int = 2

    def __post_init__(self):
        if self.mode not in ("never", "on-failure"):
            raise ValueError(f"unknown restart mode {self.mode!r}")


NEVER = RestartPolicy()
ON_FAILURE = RestartPolicy(mode="on-failure")


@dataclass
class Incident:
    """One structured entry in the supervision log."""

    seq: int
    round: int
    kind: str  # segv|sigill|badcall|quota|deadlock|restart|demote|kill|...
    name: str
    pid: int
    detail: str
    pc: int = 0

    def line(self) -> str:
        return (f"#{self.seq:04d} r{self.round:03d} {self.kind:<9} "
                f"{self.name:<12} pid={self.pid} pc={self.pc:#x} "
                f"{self.detail}")


class _Managed:
    """Book-keeping for one supervised sandbox across restarts."""

    __slots__ = ("name", "elf", "policy", "quota", "proc", "restarts",
                 "fault_count", "demoted", "done", "due_round", "generation")

    def __init__(self, name: str, elf: ElfImage,
                 policy: RestartPolicy, quota: Optional[ResourceQuota]):
        self.name = name
        self.elf = elf
        self.policy = policy
        self.quota = quota
        self.proc: Optional[Process] = None
        self.restarts = 0
        self.fault_count = 0
        self.demoted = False
        self.done = False
        self.due_round: Optional[int] = None
        self.generation = 0


class Supervisor:
    """Runs sandboxes under restart policies, quotas, and a watchdog."""

    def __init__(self, runtime: Runtime, watchdog_fault_limit: int = 5,
                 reclaim: bool = True, auditor=None):
        self.runtime = runtime
        #: Total faults (across restarts) after which a sandbox is demoted.
        self.watchdog_fault_limit = watchdog_fault_limit
        self.reclaim = reclaim
        self.auditor = auditor
        self.incidents: List[Incident] = []
        self._managed: Dict[str, _Managed] = {}
        self._by_pid: Dict[int, _Managed] = {}
        self._round = 0
        self._seq = 0
        self._fault_cursor = 0
        #: pids terminated by the deadlock breaker this round.
        self._deadlocked: Dict[int, str] = {}

    # -- submission ----------------------------------------------------------

    def submit(self, name: str, image, policy: RestartPolicy = NEVER,
               quota: Optional[ResourceQuota] = None,
               verify: bool = True) -> Process:
        """Spawn ``image`` as a supervised sandbox called ``name``."""
        existing = self._managed.get(name)
        if existing is not None and not existing.done:
            raise ValueError(f"sandbox {name!r} is still supervised")
        if isinstance(image, (bytes, bytearray)):
            image = read_elf(bytes(image))
        sb = _Managed(name, image, policy, quota)
        self._managed[name] = sb
        return self._spawn(sb, verify=verify)

    def revive(self, name: str) -> Process:
        """Start a new generation of a finished sandbox (chaos harnesses)."""
        sb = self._managed[name]
        if not sb.done:
            raise ValueError(f"sandbox {name!r} is still running")
        sb.generation += 1
        sb.restarts = 0
        sb.fault_count = 0
        sb.demoted = False
        sb.done = False
        # The image was verified at submit time and is immutable host-side.
        return self._spawn(sb, verify=False)

    def _spawn(self, sb: _Managed, verify: bool) -> Process:
        proc = self.runtime.spawn(sb.elf, verify=verify)
        if sb.quota is not None:
            self.runtime.set_quota(proc, sb.quota)
        sb.proc = proc
        self._by_pid[proc.pid] = sb
        return proc

    # -- incident log --------------------------------------------------------

    def _incident(self, kind: str, name: str, pid: int, detail: str,
                  pc: int = 0) -> Incident:
        incident = Incident(self._seq, self._round, kind, name, pid,
                            detail, pc)
        self._seq += 1
        self.incidents.append(incident)
        self.runtime._emit(SupervisorEvent(
            ts=self.runtime.machine.cycles, pid=pid, kind=kind, name=name,
            detail=detail,
        ))
        return incident

    def incident_log(self) -> List[str]:
        return [i.line() for i in self.incidents]

    def status(self) -> Dict[str, dict]:
        return {
            name: {
                "pid": sb.proc.pid if sb.proc else None,
                "exit_code": sb.proc.exit_code if sb.proc else None,
                "restarts": sb.restarts,
                "faults": sb.fault_count,
                "demoted": sb.demoted,
                "done": sb.done,
                "generation": sb.generation,
            }
            for name, sb in self._managed.items()
        }

    # -- supervision loop ----------------------------------------------------

    def run(self, max_rounds: int = 10_000) -> None:
        """Drive the runtime until every supervised sandbox is finished.

        Unlike ``Runtime.run``, this never raises on sandbox misbehaviour:
        deadlocks, faults, and quota violations become per-sandbox
        incidents and the host loop survives.
        """
        for _ in range(max_rounds):
            self._launch_due()
            if all(sb.done for sb in self._managed.values()):
                return
            try:
                self.runtime.run()
            except Deadlock:
                self._break_deadlock()
            except RuntimeError_ as exc:
                self._incident("host", "-", 0, f"host loop error: {exc}")
                self._collect()
                return
            self._collect()
            self._round += 1
        self._incident("host", "-", 0,
                       f"supervision budget of {max_rounds} rounds exhausted")

    def _launch_due(self) -> None:
        for sb in self._managed.values():
            if sb.due_round is not None and sb.due_round <= self._round:
                sb.due_round = None
                sb.restarts += 1
                proc = self._spawn(sb, verify=False)
                self._incident(
                    "restart", sb.name, proc.pid,
                    f"restart #{sb.restarts} (gen {sb.generation}) "
                    f"after backoff",
                )

    def _break_deadlock(self) -> None:
        """Convert an all-blocked host crash into per-sandbox failures."""
        blocked = [p for p in self.runtime.processes.values()
                   if p.state == ProcessState.BLOCKED]
        for proc in blocked:
            if proc.state != ProcessState.BLOCKED:
                continue  # woken by a sibling's termination above
            sb = self._by_pid.get(proc.pid)
            name = sb.name if sb is not None else f"pid{proc.pid}"
            self._incident("deadlock", name, proc.pid,
                           f"blocked forever on {proc.block_reason!r}; "
                           f"terminated by supervisor",
                           pc=proc.registers.get("pc", 0))
            self._deadlocked[proc.pid] = name
            self.runtime.terminate(proc, 128 + 6)

    def _collect(self) -> None:
        """Record new faults and apply restart/watchdog decisions."""
        faulted: Dict[int, str] = {}
        new = self.runtime.faults[self._fault_cursor:]
        self._fault_cursor = len(self.runtime.faults)
        for fault in new:
            sb = self._by_pid.get(fault.pid)
            name = sb.name if sb is not None else f"pid{fault.pid}"
            self._incident(fault.kind, name, fault.pid, fault.detail,
                           pc=fault.pc)
            faulted[fault.pid] = fault.kind
            if self.auditor is not None:
                self.auditor.audit_after_fault(fault.pid)
        faulted.update({pid: "deadlock" for pid in self._deadlocked})
        self._deadlocked.clear()

        for sb in self._managed.values():
            proc = sb.proc
            if proc is None or sb.done or sb.due_round is not None:
                continue
            if proc.state != ProcessState.ZOMBIE:
                continue
            kind = faulted.get(proc.pid)
            if self.reclaim:
                self._reclaim(proc)
            if kind is None:
                sb.done = True  # clean exit
                continue
            sb.fault_count += 1
            if kind == "quota":
                self._incident("kill", sb.name, proc.pid,
                               "quota exceeded; watchdog kill, no restart")
                sb.done = True
            elif (sb.policy.mode == "on-failure"
                  and sb.fault_count >= self.watchdog_fault_limit
                  and not sb.demoted):
                sb.demoted = True
                sb.done = True
                self._incident(
                    "demote", sb.name, proc.pid,
                    f"{sb.fault_count} faults >= watchdog limit "
                    f"{self.watchdog_fault_limit}; no further restarts")
            elif (sb.policy.mode == "on-failure"
                  and sb.restarts < sb.policy.max_restarts):
                delay = (sb.policy.backoff_base
                         * sb.policy.backoff_factor ** sb.restarts)
                sb.due_round = self._round + delay
            else:
                if sb.policy.mode == "on-failure":
                    self._incident(
                        "gave-up", sb.name, proc.pid,
                        f"max restarts ({sb.policy.max_restarts}) reached")
                sb.done = True

    def _reclaim(self, proc: Process) -> None:
        """Unmap a dead sandbox's slot so long runs stay bounded."""
        self.runtime.reclaim(proc)


class WorkerSupervisor:
    """Restart decisions for cluster worker *OS processes* (DESIGN.md §11).

    The sandbox :class:`Supervisor` restarts misbehaving sandboxes inside
    one runtime; this class applies the same :class:`RestartPolicy` /
    :class:`Incident` vocabulary one level up, to the worker processes of
    a :class:`repro.cluster.Cluster`.  It only *decides* — the cluster
    front-end owns process lifecycle and job re-dispatch — so the policy
    logic stays testable without multiprocessing.
    """

    def __init__(self, policy: RestartPolicy = ON_FAILURE, *,
                 backoff_unit: float = 0.05, max_backoff: float = 2.0,
                 jitter_frac: float = 0.25, seed: int = 0):
        self.policy = policy
        #: Wall-clock seconds per unit of the policy's (round-denominated)
        #: exponential backoff, with a hard cap and bounded jitter.
        self.backoff_unit = backoff_unit
        self.max_backoff = max_backoff
        self.jitter_frac = jitter_frac
        self._rng = random.Random(seed)
        self.incidents: List[Incident] = []
        self._restarts: Dict[int, int] = {}
        self._seq = 0

    def restarts(self, worker_id: int) -> int:
        return self._restarts.get(worker_id, 0)

    def next_backoff(self, worker_id: int) -> float:
        """Seconds to wait before relaunching ``worker_id``.

        Exponential in the worker's restart count (the policy's base and
        factor, scaled by :attr:`backoff_unit`), capped at
        :attr:`max_backoff`, then stretched by a bounded jitter in
        ``[0, jitter_frac]`` so a correlated crash of many workers does
        not produce a synchronized relaunch stampede.  Seeded, so a chaos
        run's restart timeline replays.
        """
        exponent = max(0, self.restarts(worker_id) - 1)
        delay = min(
            self.max_backoff,
            self.backoff_unit * self.policy.backoff_base
            * self.policy.backoff_factor ** exponent,
        )
        return delay * (1.0 + self._rng.random() * self.jitter_frac)

    @property
    def total_restarts(self) -> int:
        return sum(self._restarts.values())

    def _incident(self, kind: str, worker_id: int, pid: int,
                  detail: str) -> Incident:
        incident = Incident(self._seq, self.restarts(worker_id), kind,
                            f"worker-{worker_id}", pid, detail)
        self._seq += 1
        self.incidents.append(incident)
        return incident

    def worker_crashed(self, worker_id: int, pid: int, exitcode,
                       in_flight: int) -> bool:
        """Record a crash; True when the worker should be restarted."""
        self._incident("worker-crash", worker_id, pid,
                       f"exitcode={exitcode} with {in_flight} job(s) "
                       f"in flight")
        if self.policy.mode != "on-failure":
            return False
        if self.restarts(worker_id) >= self.policy.max_restarts:
            self._incident(
                "gave-up", worker_id, pid,
                f"max restarts ({self.policy.max_restarts}) reached")
            return False
        self._restarts[worker_id] = self.restarts(worker_id) + 1
        self._incident("worker-restart", worker_id, pid,
                       f"restart #{self.restarts(worker_id)}")
        return True

    def incident_log(self) -> List[str]:
        return [i.line() for i in self.incidents]

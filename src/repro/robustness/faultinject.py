"""Deterministic, seeded fault injection for sandboxes.

Related verification work (Sotoudeh & Yedidia) validates SFI systems by
*attacking* them; this module is the runtime-side equivalent.  A
:class:`FaultInjector` draws a plan from a seeded PRNG and delivers it
through two small hook points:

* ``Machine.run_hooks`` — fired at the top of every scheduling slice; used
  to flip bits in loaded text, corrupt guard sequences post-verification,
  and force trap storms on whichever sandbox is about to run;
* ``Runtime.call_hooks`` — consulted before runtime-call dispatch; used to
  inject transient EINTR/ENOMEM-style errors into ``HANDLERS`` results.

Both are multi-subscriber registries (:mod:`repro.hooks`), so the injector
composes with the obs tracer on the same run.

Everything is deterministic: the same seed against the same workload
produces the same delivery log, byte for byte.  Containment is *not*
assumed — the :class:`~repro.robustness.audit.ContainmentAuditor` checks
it after every delivery.
"""

from __future__ import annotations

import errno
import random
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from collections import deque

from ..arm64.decoder import decode_word
from ..arm64.operands import Extended
from ..arm64.registers import Reg
from ..emulator.machine import Machine, MemTrap
from ..memory.pages import MemoryFault, PERM_X
from ..runtime.process import Process
from ..runtime.runtime import Runtime
from ..runtime.table import RuntimeCall

__all__ = ["PlannedFault", "FaultInjector", "KINDS"]

KINDS = ("bitflip", "guard", "callerr", "trapstorm")

#: Transient errnos used by ``callerr`` injections.
_TRANSIENT_ERRNOS = (errno.EINTR, errno.ENOMEM, errno.EAGAIN)

#: ``movz xN, #0`` — overwrites a guard so its output is a raw (unbased)
#: offset; the next access through it must hit unmapped memory and trap.
_MOVZ_ZERO = 0xD2800000


@dataclass(frozen=True)
class PlannedFault:
    """One scheduled injection: fire ``gap`` slices after the previous."""

    index: int
    kind: str
    gap: int
    param: int


class FaultInjector:
    """Seeded fault injector wired into the machine and runtime hooks."""

    def __init__(self, runtime: Runtime, seed: int = 0):
        self.runtime = runtime
        self.seed = seed
        self.rng = random.Random(seed)
        #: Delivery log: ``(seq, kind, pid, detail)`` — deterministic.
        self.delivered: List[Tuple[int, str, int, str]] = []
        self._plan: Deque[PlannedFault] = deque()
        self._slice = 0
        self._next_at: Optional[int] = None
        #: pid -> errno for a one-shot transient runtime-call error.
        self._call_errs: Dict[int, int] = {}
        #: Remaining forced traps delivered to whatever runs next.
        self._storm = 0
        runtime.machine.run_hooks.add(self._on_slice)
        runtime.call_hooks.add(self._on_call)

    # -- planning ------------------------------------------------------------

    def plan(self, count: int, kinds: Tuple[str, ...] = KINDS,
             max_gap: int = 6) -> List[PlannedFault]:
        """Draw a deterministic plan of ``count`` injections."""
        out = []
        for i in range(count):
            out.append(PlannedFault(
                index=i,
                kind=self.rng.choice(kinds),
                gap=self.rng.randrange(1, max_gap + 1),
                param=self.rng.getrandbits(16),
            ))
        return out

    def arm(self, plan: List[PlannedFault]) -> None:
        """Queue a plan for delivery; extends any already-armed plan."""
        self._plan.extend(plan)
        if self._next_at is None and self._plan:
            self._next_at = self._slice + self._plan[0].gap

    @property
    def pending(self) -> int:
        return len(self._plan)

    @property
    def delivered_count(self) -> int:
        return len(self.delivered)

    def delivery_log(self) -> List[str]:
        return [f"#{seq:04d} {kind:<9} pid={pid} {detail}"
                for seq, kind, pid, detail in self.delivered]

    # -- hooks ---------------------------------------------------------------

    def _on_slice(self, machine: Machine, fuel: Optional[int]) -> None:
        self._slice += 1
        victim = self.runtime._current
        if victim is None:
            return
        if self._storm > 0:
            self._storm -= 1
            self._record("trapstorm", victim.pid,
                         f"forced trap ({self._storm} left in storm)")
            raise MemTrap(machine.cpu.pc, MemoryFault(
                "unmapped", 0, "read", "injected trap storm"))
        if self._next_at is None or self._slice < self._next_at:
            return
        planned = self._plan.popleft()
        self._next_at = (self._slice + self._plan[0].gap
                         if self._plan else None)
        self._fire(planned, victim)

    def _on_call(self, proc: Process, call: int) -> Optional[int]:
        err = self._call_errs.get(proc.pid)
        if err is None or call == RuntimeCall.EXIT:
            return None
        del self._call_errs[proc.pid]
        self._record("callerr", proc.pid,
                     f"call {RuntimeCall.NAMES.get(call, call)} -> "
                     f"-{errno.errorcode.get(err, err)}")
        return -err

    # -- delivery ------------------------------------------------------------

    def _record(self, kind: str, pid: int, detail: str) -> None:
        self.delivered.append((len(self.delivered), kind, pid, detail))

    def _fire(self, planned: PlannedFault, victim: Process) -> None:
        if planned.kind == "bitflip":
            self._fire_bitflip(victim, planned.param)
        elif planned.kind == "guard":
            self._fire_guard(victim, planned.param)
        elif planned.kind == "callerr":
            err = _TRANSIENT_ERRNOS[planned.param % len(_TRANSIENT_ERRNOS)]
            self._call_errs[victim.pid] = err
            self._record("callerr-arm", victim.pid,
                         f"next call returns -{errno.errorcode[err]}")
        elif planned.kind == "trapstorm":
            self._storm = 1 + planned.param % 3
            self._record("trapstorm-arm", victim.pid,
                         f"storm of {self._storm} forced traps")
        else:
            raise ValueError(f"unknown fault kind {planned.kind!r}")

    def _text_regions(self, victim: Process) -> List[Tuple[int, int]]:
        lo, hi = victim.layout.base, victim.layout.end
        return [
            (base, size)
            for base, size, perms in self.runtime.memory.mapped_regions()
            if perms & PERM_X and base >= lo and base + size <= hi
        ]

    def _fire_bitflip(self, victim: Process, param: int) -> None:
        regions = self._text_regions(victim)
        if not regions:
            self._record("bitflip", victim.pid, "no text mapped; skipped")
            return
        base, size = regions[param % len(regions)]
        word_addr = base + 4 * (self.rng.randrange(size // 4))
        bit = self.rng.randrange(32)
        memory = self.runtime.memory
        word = int.from_bytes(memory._raw_read(word_addr, 4), "little")
        flipped = word ^ (1 << bit)
        # load_image bypasses the R/X permission (simulating a hardware
        # upset) and breaks any COW sharing so siblings stay pristine.
        memory.load_image(word_addr, flipped.to_bytes(4, "little"))
        self.runtime.machine.invalidate_code(word_addr, 4)
        self._record("bitflip", victim.pid,
                     f"text[{word_addr:#x}] bit {bit}: "
                     f"{word:#010x} -> {flipped:#010x}")

    def _fire_guard(self, victim: Process, param: int) -> None:
        """Corrupt a verified guard sequence (defense-in-depth check).

        The guard ``add xN, x21, wM, uxtw`` is replaced with
        ``movz xN, #0`` so the guarded pointer loses its sandbox base; the
        next dereference lands in unmapped low memory and must trap rather
        than escape.
        """
        guards = []
        memory = self.runtime.memory
        for base, size in self._text_regions(victim):
            for addr in range(base, base + size, 4):
                word = int.from_bytes(memory._raw_read(addr, 4), "little")
                inst = decode_word(word, addr)
                if inst is None or inst.base != "add":
                    continue
                if len(inst.operands) != 3:
                    continue
                rn = inst.operands[1]
                ext = inst.operands[2]
                if (isinstance(rn, Reg) and rn.index == 21
                        and isinstance(ext, Extended)
                        and ext.kind == "uxtw"):
                    guards.append((addr, word, inst.operands[0]))
        if not guards:
            return self._fire_bitflip(victim, param)
        addr, word, rd = guards[param % len(guards)]
        corrupted = _MOVZ_ZERO | rd.index
        memory.load_image(addr, corrupted.to_bytes(4, "little"))
        self.runtime.machine.invalidate_code(addr, 4)
        self._record("guard", victim.pid,
                     f"guard at {addr:#x} ({word:#010x}) -> "
                     f"movz x{rd.index}, #0")

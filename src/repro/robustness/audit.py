"""Containment auditing: prove that faults stay inside the victim (§5.3).

The auditor checks the paper's core isolation claim *under adversity*:

* a write observer on :class:`~repro.memory.pages.PagedMemory` attributes
  every store executed by sandbox code to the sandbox that issued it — a
  store outside the issuer's own 4GiB slot is a containment violation,
  recorded immediately;
* after every injected fault, :meth:`audit_after_fault` walks
  ``PagedMemory.mapped_regions()`` (no mapping may straddle a slot
  boundary) and the saved register state of every live process (the
  sandbox base register x21 and the stack pointer must still point into
  the owner's slot);
* :meth:`slot_digest` fingerprints a slot's memory so tests can assert a
  bystander's pages were untouched while a neighbour was being corrupted.

Host-side writes (loaders, runtime-call result delivery) are exempt: only
stores issued while the machine executes guest code are attributed.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List

from ..memory.layout import SANDBOX_SIZE, SandboxLayout
from ..runtime.process import ProcessState
from ..runtime.runtime import Runtime
from ..runtime.table import RUNTIME_REGION_BASE

__all__ = ["Violation", "ContainmentAuditor"]


@dataclass(frozen=True)
class Violation:
    """One detected breach of sandbox containment."""

    kind: str  # "write-escape" | "mapping" | "register"
    pid: int
    detail: str

    def line(self) -> str:
        return f"{self.kind}: pid={self.pid} {self.detail}"


class ContainmentAuditor:
    """Watches a runtime for any effect escaping a sandbox's 4GiB slot."""

    def __init__(self, runtime: Runtime):
        self.runtime = runtime
        self.violations: List[Violation] = []
        self.audits = 0
        runtime.memory.write_observer = self._on_write

    # -- continuous write attribution ---------------------------------------

    def _on_write(self, address: int, size: int) -> None:
        if not self.runtime._in_guest:
            return  # host-side write (runtime-call results, loader)
        proc = self.runtime._current
        if proc is None:
            return
        lo, hi = proc.layout.base, proc.layout.end
        if address < lo or address + size > hi:
            self.violations.append(Violation(
                "write-escape", proc.pid,
                f"store to [{address:#x}, {address + size:#x}) outside "
                f"slot [{lo:#x}, {hi:#x})"))

    # -- post-fault walks ----------------------------------------------------

    def audit_after_fault(self, victim_pid: int) -> List[Violation]:
        """Walk memory mappings and register state after an injected fault.

        Returns the new violations found (also appended to
        :attr:`violations`).
        """
        self.audits += 1
        found: List[Violation] = []

        for base, size, _perms in self.runtime.memory.mapped_regions():
            if base >= RUNTIME_REGION_BASE:
                continue  # the runtime's dedicated region
            if base // SANDBOX_SIZE != (base + size - 1) // SANDBOX_SIZE:
                found.append(Violation(
                    "mapping", victim_pid,
                    f"mapped region [{base:#x}, {base + size:#x}) "
                    f"straddles a slot boundary"))

        for proc in self.runtime.processes.values():
            if proc.state == ProcessState.ZOMBIE:
                continue
            regs = proc.registers
            lo, hi = proc.layout.base, proc.layout.end
            x21 = regs["regs"][21]
            if x21 != lo:
                found.append(Violation(
                    "register", proc.pid,
                    f"x21 = {x21:#x}, expected slot base {lo:#x}"))
            sp = regs["sp"]
            if not lo <= sp <= hi:
                found.append(Violation(
                    "register", proc.pid,
                    f"sp = {sp:#x} outside slot [{lo:#x}, {hi:#x}]"))

        self.violations.extend(found)
        return found

    # -- fingerprints --------------------------------------------------------

    def slot_digest(self, layout: SandboxLayout) -> int:
        """CRC over all mapped pages in a slot (bystander-unperturbed
        assertions while the bystander is descheduled)."""
        memory = self.runtime.memory
        ps = memory.page_size
        lo, hi = layout.base, layout.end
        digest = 0
        for page in sorted(memory._pages):
            addr = page * ps
            if lo <= addr < hi:
                digest = zlib.crc32(memory._pages[page], digest)
                digest = zlib.crc32(addr.to_bytes(8, "little"), digest)
        return digest

    def assert_clean(self) -> None:
        if self.violations:
            lines = "\n".join(v.line() for v in self.violations)
            raise AssertionError(f"containment violations:\n{lines}")

"""Multi-subscriber hook registries (the obs subsystem's wiring layer).

PR 1 added two single-slot hook attributes that the fault injector
claimed for itself.  The obs tracer needs the same attachment points,
and a single slot means the second subscriber silently clobbers the
first.  :class:`HookRegistry` is the replacement: an ordered list of
callables invoked in subscription order.  The single-slot aliases were
deprecated in PR 3 and are now gone; ``Machine.run_hooks`` and
``Runtime.call_hooks`` are the only hook API (DESIGN.md §10).

Two dispatch styles cover both hook points:

* *notify* (default): every subscriber runs; return values are ignored.
  Exceptions propagate — the fault injector raises ``Trap`` from inside
  ``run_hooks`` on purpose.
* *first-result* (``first_result=True``): subscribers run in order until
  one returns a non-``None`` value, which becomes the call's result —
  the short-circuit contract runtime-call injection relies on.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

__all__ = ["HookRegistry"]


class HookRegistry:
    """An ordered, multi-subscriber hook point."""

    __slots__ = ("_subscribers", "first_result")

    def __init__(self, first_result: bool = False):
        self._subscribers: List[Callable] = []
        self.first_result = first_result

    def add(self, fn: Callable) -> Callable:
        """Subscribe ``fn`` (idempotent); returns ``fn`` for decorator use."""
        if fn not in self._subscribers:
            self._subscribers.append(fn)
        return fn

    def remove(self, fn: Callable) -> None:
        """Unsubscribe ``fn``; missing subscribers are ignored."""
        try:
            self._subscribers.remove(fn)
        except ValueError:
            pass

    def clear(self) -> None:
        self._subscribers.clear()

    def __contains__(self, fn: Callable) -> bool:
        return fn in self._subscribers

    def __len__(self) -> int:
        return len(self._subscribers)

    def __bool__(self) -> bool:
        return bool(self._subscribers)

    def __call__(self, *args: Any) -> Optional[Any]:
        """Invoke subscribers in order.

        With ``first_result=True`` the first non-``None`` return value
        short-circuits the remaining subscribers and is returned.
        """
        for fn in list(self._subscribers):
            result = fn(*args)
            if self.first_result and result is not None:
                return result
        return None

"""The serving gateway: admission control + routing in virtual time.

:class:`Gateway` turns the batch cluster into an always-on service.  It
is a deterministic discrete-event simulation: one virtual second is
:data:`CLOCK_HZ` emulated instructions (lanes run ``model=None``
runtimes, so cycles == instructions), every event — arrival, chunk
boundary, finish, reload, crash, restart, resize — carries a virtual
timestamp, and the whole schedule replays byte-identically under a
fixed seed.  The state machine per request (DESIGN.md §14):

    offered ──► rejected(unknown-tenant | throttled | queue-full)
       │
       ▼
    queued ──► rejected(deadline)                 [shed at dispatch]
       │
       ▼
    running ◄──► queued (yield: crash / drain / migrate, resumes
       │                 from its checkpoint, keeps original pids)
       ▼
    finished(ok | deadlock | budget | quota-tripped)

Admission is **bounded by construction**: a tenant's token bucket caps
its admission rate, ``queue_limit`` caps its waiting depth, and
everything beyond is shed with a typed reason — the gateway never
queues unboundedly.  Policy hot-reload goes through the monotonic
token protocol of :class:`~repro.serve.policy.PolicyStore`; the new
`ResourceQuota` is applied to running guests at their next chunk
boundary without restarting them (same pid, same slot — the benchmark
proves it).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..cluster.worker import DEFAULT_JOB_BUDGET, derive_worker_seed
from ..engine import EngineConfig
from ..errors import ConfigError, Overloaded, ServeError, StalePolicy
from ..obs.metrics import MetricsHub
from ..robustness.faultinject import FaultInjector
from ..robustness.supervisor import WorkerSupervisor
from .lane import Lane
from .policy import PolicyStore, TenantPolicy

__all__ = ["Gateway", "ServeResult", "Autoscale", "CLOCK_HZ",
           "LATENCY_BUCKETS_S"]

#: Virtual clock: emulated instructions per virtual second.
CLOCK_HZ = 1_000_000.0

#: Request-latency histogram bounds, in virtual seconds.
LATENCY_BUCKETS_S = (0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.25, 1.0)


@dataclass(frozen=True)
class Autoscale:
    """Load-driven lane elasticity (both directions, deterministic).

    A lane is added when the total queued depth exceeds ``queue_high``
    (up to ``max_lanes``); an idle lane is retired when the queue is
    empty at a finish (down to ``min_lanes``).
    """

    min_lanes: int = 1
    max_lanes: int = 4
    queue_high: int = 6


@dataclass
class _Request:
    request_id: int
    tenant: str
    program: bytes
    stdin: bytes
    arrival_s: float
    priority: int = 0
    deadline_s: Optional[float] = None
    record_trace: bool = False
    attempts: int = 0
    started: bool = False
    start_s: float = -1.0
    checkpoint: object = None      # latest Checkpoint (live object)
    resume: Optional[bytes] = None  # serialized checkpoint for re-dispatch
    pid: int = -1
    slot: int = -1
    policy_version_applied: int = -1
    migrate_to: Optional[int] = None


@dataclass
class ServeResult:
    """Terminal record of one request (completed or shed)."""

    request_id: int
    tenant: str
    status: str                 # "ok" | "rejected"
    reason: str = ""            # rejection reason, "" when ok
    exit_code: int = 0
    stdout: str = ""
    stderr: str = ""
    faults: Tuple[str, ...] = ()
    arrival_s: float = 0.0
    finish_s: float = 0.0
    latency_s: float = 0.0
    lane: int = -1
    pid: int = -1
    slot: int = -1
    instructions: int = 0
    attempts: int = 0
    warm: bool = False
    run_status: str = ""        # worker diag status: ok/deadlock/budget
    trace: Optional[list] = None

    def deterministic_key(self) -> tuple:
        return (self.request_id, self.tenant, self.status, self.reason,
                self.exit_code, self.stdout, self.stderr,
                tuple(self.faults), round(self.latency_s, 9),
                self.pid, self.slot, self.instructions, self.attempts)


class Gateway:
    """Always-on admission + routing front-end over in-process lanes."""

    def __init__(self, policies: Dict[str, TenantPolicy], *,
                 lanes: int = 2,
                 hz: float = CLOCK_HZ,
                 checkpoint_interval: int = 2000,
                 budget: int = DEFAULT_JOB_BUDGET,
                 timeslice: Optional[int] = None,
                 engine=None,
                 autoscale: Optional[Autoscale] = None,
                 chaos: Optional[Dict[int, int]] = None,
                 chaos_faults: Optional[Dict[int, int]] = None,
                 seed: int = 0,
                 on_result: Optional[Callable] = None):
        if lanes < 1:
            raise ServeError(f"need at least one lane, got {lanes}")
        self.hz = float(hz)
        self.interval = checkpoint_interval
        self.budget = budget
        # run_bounded pauses only between scheduler slices, so the lane
        # timeslice must not exceed the chunk interval or boundaries
        # (the hot-reload application points) degrade to slice cadence.
        # EngineConfig.fuel is the same knob by another name; a conflict
        # between the two is a configuration error, never silently
        # clamped to one or the other.
        config = EngineConfig.coerce(engine)
        pinned = (timeslice if timeslice is not None
                  else max(1, checkpoint_interval))
        if config.fuel is not None:
            if timeslice is not None and config.fuel != timeslice:
                raise ConfigError(
                    f"EngineConfig.fuel={config.fuel} conflicts with "
                    f"timeslice={timeslice}; pass one or make them agree")
            if config.fuel > max(1, checkpoint_interval):
                raise ConfigError(
                    f"EngineConfig.fuel={config.fuel} exceeds the "
                    f"checkpoint interval ({checkpoint_interval}): chunk "
                    f"boundaries would degrade to slice cadence and "
                    f"policy hot-reload would stall; lower fuel or raise "
                    f"the interval")
            pinned = config.fuel
        self.engine_config = config
        self.timeslice = pinned
        self.store = PolicyStore()
        for tenant in sorted(policies):
            self._check_tenant_engine(tenant, policies[tenant])
            self.store.add(tenant, policies[tenant])
        self.autoscale = autoscale
        self.chaos = dict(chaos or {})
        self.chaos_faults = dict(chaos_faults or {})
        self.seed = seed
        self.on_result = on_result
        self.now = 0.0
        self.hub = MetricsHub()
        self.supervisor = WorkerSupervisor(seed=seed)
        self.log: List[str] = []
        self.results: List[ServeResult] = []
        self.results_by_id: Dict[int, ServeResult] = {}
        self.lanes: Dict[int, Lane] = {}
        self._next_lane = 0
        self._next_request = 0
        self._events: list = []     # (time, seq, kind, data)
        self._seq = 0
        self._queues: Dict[int, deque] = {}      # priority -> waiting FIFO
        self._queued_per_tenant: Dict[str, int] = {}
        self._buckets: Dict[str, list] = {}      # tenant -> [tokens, last_t]
        self.peak_queued = 0                     # bounded-queue evidence
        self._injectors: List[FaultInjector] = []  # keep hooks alive
        for _ in range(lanes):
            self._add_lane()

    # -- public API ----------------------------------------------------------

    def offer(self, tenant: str, program: bytes, *, stdin: bytes = b"",
              at: Optional[float] = None,
              record_trace: bool = False) -> int:
        """Offer one request; returns its id.

        With ``at`` set, the arrival is scheduled at that virtual time
        and any rejection lands in the results as a shed record.  With
        ``at=None`` the request is admitted *now*, synchronously, and a
        shed raises the typed :class:`Overloaded` instead.
        """
        req = _Request(self._next_request, tenant, program, bytes(stdin),
                       self.now if at is None else float(at),
                       record_trace=record_trace)
        self._next_request += 1
        if at is None:
            self._on_arrival(req, self.now)
            done = self.results_by_id.get(req.request_id)
            if done is not None and done.status == "rejected":
                raise Overloaded(done.reason, tenant, req.request_id)
            return req.request_id
        if at < self.now:
            raise ServeError(
                f"cannot schedule an arrival in the past "
                f"(at={at:.6f} < now={self.now:.6f})")
        self._push(req.arrival_s, "arrival", {"request": req})
        return req.request_id

    def reload(self, tenant: str, policy: TenantPolicy, token: int,
               at: Optional[float] = None) -> None:
        """Hot-reload ``tenant``'s policy under monotonic ``token``.

        Immediate reloads raise :class:`StalePolicy` on a stale token;
        scheduled ones record the refusal deterministically (log line +
        ``serve.reloads_stale`` counter) since there is no caller left
        to raise to.  Running guests pick the new quota up at their next
        chunk boundary — no restart, same pid and slot.
        """
        self._check_tenant_engine(tenant, policy)
        if at is None:
            self._do_reload(tenant, policy, token, self.now, raise_stale=True)
            return
        if at < self.now:
            raise ServeError(
                f"cannot schedule a reload in the past "
                f"(at={at:.6f} < now={self.now:.6f})")
        self._push(float(at), "reload",
                   {"tenant": tenant, "policy": policy, "token": token})

    def _check_tenant_engine(self, tenant: str,
                             policy: TenantPolicy) -> None:
        """Reject a tenant engine pin that conflicts with the lane fleet.

        Validation is static (no virtual-time dependence), so it raises
        at registration/scheduling time, before any event is queued.
        """
        pin = policy.engine
        if pin is None:
            return
        if pin.kind != self.engine_config.kind:
            raise ConfigError(
                f"tenant {tenant!r} pins engine kind {pin.kind!r} but the "
                f"gateway's lanes run {self.engine_config.kind!r}")
        if pin.fuel is not None and pin.fuel != self.timeslice:
            raise ConfigError(
                f"tenant {tenant!r} pins EngineConfig.fuel={pin.fuel} but "
                f"the gateway's lane timeslice is pinned to "
                f"{self.timeslice}; fuel conflicts are never silently "
                f"clamped")

    def resize(self, lanes: int, at: Optional[float] = None) -> None:
        """Grow or drain the lane fleet to ``lanes`` (elasticity)."""
        if lanes < 1:
            raise ServeError(f"need at least one lane, got {lanes}")
        if at is None:
            self._do_resize(lanes, self.now)
            return
        self._push(float(at), "resize", {"n": lanes})

    def migrate(self, request_id: int, to_lane: Optional[int] = None,
                at: Optional[float] = None) -> None:
        """Yield a running request at its next boundary and re-dispatch.

        ``to_lane`` pins the destination; None means any idle lane (the
        request resumes from its checkpoint, keeping its original pids).
        """
        self._push(self.now if at is None else float(at), "migrate",
                   {"request_id": request_id, "to_lane": to_lane})

    def run(self, until: float):
        """Advance virtual time to ``until``, processing due events."""
        while self._events and self._events[0][0] <= until:
            t, _seq, kind, data = heapq.heappop(self._events)
            self.now = max(self.now, t)
            self._handle(kind, data, self.now)
        self.now = max(self.now, until)
        return self

    def drain(self) -> List[ServeResult]:
        """Run until every queued and running request reaches a terminal
        state; returns all results in completion order."""
        while self._events:
            t, _seq, kind, data = heapq.heappop(self._events)
            self.now = max(self.now, t)
            self._handle(kind, data, self.now)
        return self.results

    def queued_depth(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def live_lanes(self) -> List[int]:
        return sorted(self.lanes)

    def report(self) -> str:
        """Deterministic ops snapshot (MetricsHub text format)."""
        self.hub.host_gauge("serve.lanes").set(len(self.lanes))
        self.hub.host_gauge("serve.queued").set(self.queued_depth())
        return self.hub.snapshot()

    # -- event plumbing ------------------------------------------------------

    def _push(self, t: float, kind: str, data: dict) -> None:
        heapq.heappush(self._events, (t, self._seq, kind, data))
        self._seq += 1

    def _handle(self, kind: str, data: dict, t: float) -> None:
        if kind == "arrival":
            self._on_arrival(data["request"], t)
        elif kind == "boundary":
            self._on_boundary(data["lane"], data["generation"], t)
        elif kind == "finish":
            self._on_finish(data["lane"], data["generation"],
                            data["payload"], t)
        elif kind == "reload":
            self._do_reload(data["tenant"], data["policy"], data["token"],
                            t, raise_stale=False)
        elif kind == "restart":
            self._on_restart(data["lane"], data["generation"], t)
        elif kind == "resize":
            self._do_resize(data["n"], t)
        elif kind == "migrate":
            self._on_migrate(data["request_id"], data["to_lane"], t)

    def _log(self, t: float, verb: str, **kv) -> None:
        parts = [f"t={t:.6f}", verb]
        parts += [f"{k}={v}" for k, v in kv.items()]
        self.log.append(" ".join(parts))

    def _count(self, name: str, amount: int = 1, **labels) -> None:
        if labels:
            inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
            name = f"{name}[{inner}]"
        self.hub.host_counter(name).inc(amount)

    # -- lanes ---------------------------------------------------------------

    def _add_lane(self) -> Lane:
        lane_id = self._next_lane
        self._next_lane += 1
        lane = self._make_lane(lane_id, generation=0)
        if lane_id in self.chaos:
            lane.crash_after = self.chaos[lane_id]
        return lane

    def _make_lane(self, lane_id: int, generation: int) -> Lane:
        lane = Lane(lane_id, generation, timeslice=self.timeslice,
                    engine=self.engine_config)
        self.lanes[lane_id] = lane
        count = self.chaos_faults.get(lane_id)
        if count:
            injector = FaultInjector(
                lane.runtime,
                seed=derive_worker_seed(self.seed, lane_id, generation))
            injector.arm(injector.plan(count))
            self._injectors.append(injector)
        return lane

    def _lane_idle(self, lane: Lane) -> bool:
        return (lane.gen is None and lane.request is None
                and not lane.draining)

    # -- admission -----------------------------------------------------------

    def _on_arrival(self, req: _Request, t: float) -> None:
        self._count("serve.offered", tenant=req.tenant)
        policy = self.store.get(req.tenant)
        if policy is None:
            self._reject(req, "unknown-tenant", t)
            return
        bucket = self._buckets.get(req.tenant)
        if bucket is None:
            bucket = self._buckets[req.tenant] = [policy.burst, t]
        else:
            bucket[0] = min(policy.burst,
                            bucket[0] + (t - bucket[1]) * policy.rate)
            bucket[1] = t
        if bucket[0] < 1.0:
            self._reject(req, "throttled", t)
            return
        queued = self._queued_per_tenant.get(req.tenant, 0)
        if queued >= policy.queue_limit:
            self._reject(req, "queue-full", t)
            return
        bucket[0] -= 1.0
        req.priority = policy.priority
        req.deadline_s = policy.deadline_s
        self._enqueue(req, front=False)
        self._count("serve.admitted", tenant=req.tenant)
        self._log(t, "admit", tenant=req.tenant, req=req.request_id,
                  prio=req.priority)
        self._dispatch(t)

    def _enqueue(self, req: _Request, front: bool) -> None:
        queue = self._queues.get(req.priority)
        if queue is None:
            queue = self._queues[req.priority] = deque()
        if front:
            queue.appendleft(req)
        else:
            queue.append(req)
        self._queued_per_tenant[req.tenant] = \
            self._queued_per_tenant.get(req.tenant, 0) + 1
        self.peak_queued = max(self.peak_queued, self.queued_depth())

    def _dequeue(self, req: _Request) -> None:
        self._queued_per_tenant[req.tenant] -= 1

    def _reject(self, req: _Request, reason: str, t: float) -> None:
        self._count("serve.rejected", tenant=req.tenant, reason=reason)
        self._log(t, "reject", tenant=req.tenant, req=req.request_id,
                  reason=reason)
        self._finish_result(ServeResult(
            request_id=req.request_id, tenant=req.tenant,
            status="rejected", reason=reason, arrival_s=req.arrival_s,
            finish_s=t, latency_s=t - req.arrival_s,
            attempts=req.attempts))

    def _finish_result(self, result: ServeResult) -> None:
        self.results.append(result)
        self.results_by_id[result.request_id] = result
        if self.on_result is not None:
            self.on_result(result)

    # -- dispatch ------------------------------------------------------------

    def _dispatch(self, t: float) -> None:
        progress = True
        while progress:
            progress = False
            for lane_id in sorted(self.lanes):
                lane = self.lanes[lane_id]
                if not self._lane_idle(lane):
                    continue
                req = self._pick(lane, t)
                if req is not None:
                    self._start(lane, req, t)
                    progress = True
        self._maybe_scale_up(t)

    def _pick(self, lane: Lane, t: float) -> Optional[_Request]:
        """Next dispatchable request for ``lane``: highest priority class
        first, FIFO within it, shedding expired never-started waiters."""
        for priority in sorted(self._queues):
            queue = self._queues[priority]
            skipped = []
            picked = None
            while queue:
                req = queue.popleft()
                if (not req.started and req.deadline_s is not None
                        and t - req.arrival_s > req.deadline_s):
                    self._dequeue(req)
                    self._reject(req, "deadline", t)
                    continue
                if (req.migrate_to is not None and req.migrate_to >= 0
                        and req.migrate_to != lane.lane_id):
                    skipped.append(req)  # pinned to another lane
                    continue
                picked = req
                break
            for req in reversed(skipped):
                queue.appendleft(req)
            if picked is not None:
                self._dequeue(picked)
                return picked
        return None

    def _start(self, lane: Lane, req: _Request, t: float) -> None:
        policy = self.store.get(req.tenant)
        req.attempts += 1
        if req.migrate_to is not None:
            req.migrate_to = None
            self._count("serve.migrations", tenant=req.tenant)
        job = {"job_id": req.request_id, "program": req.program}
        if req.stdin:
            job["stdin"] = req.stdin
        if req.resume is not None:
            job["resume"] = req.resume
        elif policy.quota:
            job["quota"] = dict(policy.quota)
        begin = lane.begin(job, budget=self.budget,
                           checkpoint_interval=self.interval,
                           record_trace=req.record_trace)
        req.pid = begin["pid"]
        req.slot = begin["slot_base"]
        if not req.started:
            req.started = True
            req.start_s = t
        lane.request = req
        req.policy_version_applied = self.store.version(req.tenant)
        self._log(t, "start", tenant=req.tenant, req=req.request_id,
                  lane=lane.lane_id, pid=req.pid, slot=hex(req.slot),
                  attempt=req.attempts)
        # The first chunk always (re)applies the tenant's *current*
        # quota: a resumed job must not keep the budget its checkpoint
        # carried if a reload happened while it was parked.
        quota = dict(policy.quota) if policy.quota else None
        self._advance(lane, t, {"quota": quota})

    # -- execution ----------------------------------------------------------

    def _advance(self, lane: Lane, t: float, cmd: Optional[dict]) -> None:
        req = lane.request
        info, delta = lane.step(cmd)
        dt = delta / self.hz
        kind = info["kind"]
        if kind == "chunk":
            req.checkpoint = info["checkpoint"]
            self._push(t + dt, "boundary",
                       {"lane": lane.lane_id, "generation": lane.generation})
        elif kind == "result":
            self._push(t + dt, "finish",
                       {"lane": lane.lane_id, "generation": lane.generation,
                        "payload": info})
        else:  # yield payload: stopped at the boundary we are already at
            self._on_yield(lane, req, info, t)

    def _on_boundary(self, lane_id: int, generation: int, t: float) -> None:
        lane = self.lanes.get(lane_id)
        if lane is None or lane.generation != generation:
            return  # event from a lane generation that has since crashed
        req = lane.request
        if (lane.crash_after is not None
                and lane.started >= lane.crash_after):
            self._crash(lane, t)
            return
        if lane.draining or req.migrate_to is not None:
            self._advance(lane, t, {"stop": True})
            return
        version = self.store.version(req.tenant)
        cmd: dict = {}
        if version != req.policy_version_applied:
            policy = self.store.get(req.tenant)
            req.policy_version_applied = version
            cmd = {"quota": dict(policy.quota) if policy.quota else None}
            self._count("serve.policy_applied", tenant=req.tenant)
            self._log(t, "apply-policy", tenant=req.tenant,
                      req=req.request_id, lane=lane.lane_id, pid=req.pid,
                      slot=hex(req.slot), version=version)
        self._advance(lane, t, cmd)

    def _on_yield(self, lane: Lane, req: _Request, payload: dict,
                  t: float) -> None:
        self._count("serve.yields", tenant=req.tenant)
        self._log(t, "yield", tenant=req.tenant, req=req.request_id,
                  lane=lane.lane_id, executed=lane.exec_base)
        req.resume = payload["checkpoint"]
        lane.request = None
        if lane.draining:
            del self.lanes[lane.lane_id]
            self._log(t, "retire", lane=lane.lane_id)
        self._enqueue(req, front=True)
        self._dispatch(t)

    def _crash(self, lane: Lane, t: float) -> None:
        req = lane.request
        lane.crash_after = None
        in_flight = [req.request_id] if req is not None else []
        lane.abandon()
        del self.lanes[lane.lane_id]
        self._count("serve.crashes")
        self._log(t, "crash", lane=lane.lane_id,
                  req=req.request_id if req else -1)
        restart = self.supervisor.worker_crashed(
            lane.lane_id, pid=0, exitcode=17, in_flight=in_flight)
        if req is not None:
            # Resume from the last captured boundary; first attempt may
            # crash before any checkpoint exists — rerun from scratch.
            req.resume = (req.checkpoint.to_bytes()
                          if req.checkpoint is not None else None)
            self._enqueue(req, front=True)
        if restart:
            backoff = self.supervisor.next_backoff(lane.lane_id)
            self._push(t + backoff, "restart",
                       {"lane": lane.lane_id,
                        "generation": lane.generation + 1})
        self._dispatch(t)

    def _on_restart(self, lane_id: int, generation: int, t: float) -> None:
        self._make_lane(lane_id, generation)
        self._count("serve.restarts")
        self._log(t, "restart", lane=lane_id, generation=generation)
        self._dispatch(t)

    def _on_finish(self, lane_id: int, generation: int, payload: dict,
                   t: float) -> None:
        lane = self.lanes.get(lane_id)
        if lane is None or lane.generation != generation:
            return
        req = lane.request
        lane.request = None
        diag = payload["diag"]
        latency = t - req.arrival_s
        result = ServeResult(
            request_id=req.request_id, tenant=req.tenant, status="ok",
            exit_code=payload["exit_code"], stdout=payload["stdout"],
            stderr=payload["stderr"], faults=tuple(payload["faults"]),
            arrival_s=req.arrival_s, finish_s=t, latency_s=latency,
            lane=lane.lane_id, pid=req.pid, slot=req.slot,
            instructions=int(diag["instructions"]), attempts=req.attempts,
            warm=diag["warm"], run_status=diag["status"],
            trace=payload.get("trace"))
        self._count("serve.completed", tenant=req.tenant)
        self._count("serve.completed_instructions",
                    amount=result.instructions, tenant=req.tenant)
        if result.warm:
            self._count("serve.warm_hits")
        self.hub.host_histogram(
            f"serve.latency_s[tenant={req.tenant}]",
            bounds=LATENCY_BUCKETS_S).observe(latency)
        self._log(t, "finish", tenant=req.tenant, req=req.request_id,
                  lane=lane.lane_id, exit=result.exit_code,
                  latency=f"{latency:.6f}", status=result.run_status)
        self._finish_result(result)
        if lane.draining:
            del self.lanes[lane.lane_id]
            self._log(t, "retire", lane=lane.lane_id)
        self._maybe_scale_down(t)
        self._dispatch(t)

    # -- control plane -------------------------------------------------------

    def _do_reload(self, tenant: str, policy: TenantPolicy, token: int,
                   t: float, raise_stale: bool) -> None:
        try:
            version = self.store.reload(tenant, policy, token)
        except StalePolicy:
            self._count("serve.reloads_stale", tenant=tenant)
            self._log(t, "reload-stale", tenant=tenant, token=token,
                      version=self.store.version(tenant))
            if raise_stale:
                raise
            return
        self._count("serve.reloads", tenant=tenant)
        self._log(t, "reload", tenant=tenant, version=version,
                  prio=policy.priority)

    def _do_resize(self, n: int, t: float) -> None:
        live = sorted(self.lanes)
        if n > len(live):
            grow = n - len(live)
            for _ in range(grow):
                lane = self._add_lane()
                self._log(t, "scale", direction="up", lane=lane.lane_id,
                          lanes=len(self.lanes))
            self._count("serve.scale_ups", amount=grow)
            self._dispatch(t)
            return
        for lane_id in reversed(live[n:]):
            lane = self.lanes[lane_id]
            if self._lane_idle(lane):
                del self.lanes[lane_id]
                self._log(t, "retire", lane=lane_id)
            else:
                lane.draining = True
                self._log(t, "scale", direction="drain", lane=lane_id)
            self._count("serve.scale_downs")

    def _on_migrate(self, request_id: int, to_lane: Optional[int],
                    t: float) -> None:
        for lane in self.lanes.values():
            if lane.request is not None \
                    and lane.request.request_id == request_id:
                lane.request.migrate_to = \
                    to_lane if to_lane is not None else -2
                self._log(t, "migrate-request", req=request_id,
                          to=to_lane if to_lane is not None else "any")
                return
        self._log(t, "migrate-miss", req=request_id)

    def _maybe_scale_up(self, t: float) -> None:
        scale = self.autoscale
        if scale is None:
            return
        if (self.queued_depth() > scale.queue_high
                and len(self.lanes) < scale.max_lanes):
            lane = self._add_lane()
            self._count("serve.scale_ups")
            self._log(t, "scale", direction="up", lane=lane.lane_id,
                      lanes=len(self.lanes))
            self._dispatch(t)

    def _maybe_scale_down(self, t: float) -> None:
        scale = self.autoscale
        if scale is None:
            return
        if self.queued_depth() or len(self.lanes) <= scale.min_lanes:
            return
        idle = [i for i in sorted(self.lanes, reverse=True)
                if self._lane_idle(self.lanes[i])]
        if idle:
            del self.lanes[idle[0]]
            self._count("serve.scale_downs")
            self._log(t, "scale", direction="down", lane=idle[0],
                      lanes=len(self.lanes))

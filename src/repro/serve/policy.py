"""Per-tenant serving policy and the versioned policy store.

A :class:`TenantPolicy` is the whole admission contract for one tenant:
its priority class, token-bucket rate limit, bounded queue depth, and
the :class:`~repro.runtime.runtime.ResourceQuota` budget its guests run
under.  Policies are immutable values; changing one goes through
:meth:`PolicyStore.reload`, which is guarded by a **monotonic version
token** — a reload whose token is not strictly greater than the
tenant's current version is rejected with
:class:`~repro.errors.StalePolicy`.  That makes concurrent control
planes safe by construction: whichever reload carries the higher token
wins, and a delayed duplicate of an older reload is refused
deterministically rather than silently reverting the newer policy.

The store only records *what* the policy is; applying it to running
guests (at the next chunk boundary, without restarting them) is the
gateway's job (DESIGN.md §14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..engine import EngineConfig
from ..errors import ServeError, StalePolicy

__all__ = ["TenantPolicy", "PolicyStore"]


@dataclass(frozen=True)
class TenantPolicy:
    """Immutable admission + budget contract for one tenant.

    ``priority`` is the class index — **lower runs first** (0 = gold).
    ``rate``/``burst`` parameterize the token bucket in requests per
    virtual second; ``queue_limit`` bounds how many admitted requests may
    wait (beyond that the gateway sheds with ``queue-full``).
    ``deadline_s`` sheds a request still waiting that long after
    arrival; ``sla_s`` is the latency target reported against (never
    enforced).  ``quota`` holds
    :class:`~repro.runtime.runtime.ResourceQuota` kwargs applied to the
    tenant's guests (None = unbudgeted).  ``engine`` optionally pins the
    :class:`~repro.engine.EngineConfig` the tenant's guests require; the
    gateway validates it against its own lane configuration at
    registration/reload time (a ``fuel`` that conflicts with the pinned
    lane timeslice is a typed :class:`~repro.errors.ConfigError`, never
    silently clamped).
    """

    priority: int = 1
    rate: float = 50.0
    burst: float = 8.0
    queue_limit: int = 8
    deadline_s: Optional[float] = None
    sla_s: Optional[float] = None
    quota: Optional[dict] = None
    engine: Optional[EngineConfig] = None

    def __post_init__(self):
        if self.engine is not None and not isinstance(self.engine,
                                                      EngineConfig):
            object.__setattr__(self, "engine",
                               EngineConfig.coerce(self.engine))
        if self.priority < 0:
            raise ServeError(f"priority must be >= 0, got {self.priority}")
        if self.rate <= 0:
            raise ServeError(f"rate must be > 0, got {self.rate}")
        if self.burst < 1:
            raise ServeError(f"burst must be >= 1, got {self.burst}")
        if self.queue_limit < 1:
            raise ServeError(
                f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ServeError(
                f"deadline_s must be > 0, got {self.deadline_s}")
        if self.quota is not None:
            allowed = {"max_mapped_pages", "max_fds", "max_instructions"}
            unknown = set(self.quota) - allowed
            if unknown:
                raise ServeError(
                    f"unknown quota keys {sorted(unknown)}; "
                    f"allowed: {sorted(allowed)}")


@dataclass
class _TenantEntry:
    policy: TenantPolicy
    version: int = 0


@dataclass
class PolicyStore:
    """Versioned tenant -> policy map with monotonic-token reloads."""

    _entries: Dict[str, _TenantEntry] = field(default_factory=dict)

    def add(self, tenant: str, policy: TenantPolicy) -> None:
        """Register a new tenant at version 0 (initial deploy)."""
        if tenant in self._entries:
            raise ServeError(f"tenant {tenant!r} already registered")
        self._entries[tenant] = _TenantEntry(policy)

    def get(self, tenant: str) -> Optional[TenantPolicy]:
        entry = self._entries.get(tenant)
        return entry.policy if entry is not None else None

    def version(self, tenant: str) -> int:
        return self._entries[tenant].version

    def tenants(self) -> Tuple[str, ...]:
        return tuple(sorted(self._entries))

    def reload(self, tenant: str, policy: TenantPolicy, token: int) -> int:
        """Replace ``tenant``'s policy iff ``token`` advances its version.

        Returns the new version (== ``token``).  Raises
        :class:`StalePolicy` when ``token <= current`` — the caller's
        view of the world predates a reload that already won.
        """
        entry = self._entries.get(tenant)
        if entry is None:
            raise ServeError(f"unknown tenant {tenant!r}")
        if token <= entry.version:
            raise StalePolicy(tenant, token, entry.version)
        entry.policy = policy
        entry.version = token
        return token

"""Asyncio facade: the always-on daemon face of the gateway.

:class:`AsyncGateway` puts the deterministic virtual-time core behind an
``asyncio`` API for embedders that want a long-lived service object:
``await submit(...)`` resolves to the request's :class:`ServeResult`
(or raises the typed :class:`~repro.errors.Overloaded` when admission
sheds it), ``reload``/``resize`` are the live control plane, and a
background pump advances the core as wall time passes.

Wall time maps to virtual time through ``time_scale`` (virtual seconds
per wall second).  The *schedule* — who was admitted, shed, when each
chunk ran — is computed entirely in virtual time by the core, so two
daemons given the same offers at the same virtual timestamps behave
identically even though their wall clocks differ; only responsiveness
(how often the pump wakes) is wall-clock dependent.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional

from ..errors import Overloaded
from .gateway import Gateway, ServeResult
from .policy import TenantPolicy

__all__ = ["AsyncGateway"]


class AsyncGateway:
    """Asyncio wrapper: submit jobs, await results, reload policy live."""

    def __init__(self, policies: Dict[str, TenantPolicy], *,
                 time_scale: float = 50.0,
                 tick_s: float = 0.005,
                 **gateway_kwargs):
        self.core = Gateway(policies, on_result=self._on_result,
                            **gateway_kwargs)
        self.time_scale = time_scale
        self.tick_s = tick_s
        self._futures: Dict[int, asyncio.Future] = {}
        self._pump_task: Optional[asyncio.Task] = None
        self._wall0: Optional[float] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "AsyncGateway":
        loop = asyncio.get_running_loop()
        self._wall0 = loop.time()
        self._pump_task = loop.create_task(self._pump())
        return self

    async def stop(self) -> None:
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
            self._pump_task = None
        self.core.drain()

    async def __aenter__(self) -> "AsyncGateway":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    def _vnow(self) -> float:
        loop = asyncio.get_running_loop()
        return (loop.time() - self._wall0) * self.time_scale

    async def _pump(self) -> None:
        while True:
            self.core.run(self._vnow())
            await asyncio.sleep(self.tick_s)

    # -- request path --------------------------------------------------------

    async def submit(self, tenant: str, program: bytes, *,
                     stdin: bytes = b"") -> ServeResult:
        """Submit one request; resolves when it finishes.

        Raises :class:`Overloaded` (typed, with ``.reason``) when
        admission sheds it — immediately for admission-time sheds,
        at dispatch time for deadline sheds.
        """
        if self._pump_task is None:
            raise RuntimeError("AsyncGateway not started")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self.core.run(self._vnow())
        request_id = self.core.offer(tenant, program, stdin=stdin)
        done = self.core.results_by_id.get(request_id)
        if done is not None:
            return done
        self._futures[request_id] = future
        return await future

    def _on_result(self, result: ServeResult) -> None:
        future = self._futures.pop(result.request_id, None)
        if future is None or future.done():
            return
        if result.status == "rejected":
            future.set_exception(
                Overloaded(result.reason, result.tenant,
                           result.request_id))
        else:
            future.set_result(result)

    # -- control plane -------------------------------------------------------

    def reload(self, tenant: str, policy: TenantPolicy,
               token: int) -> None:
        self.core.run(self._vnow())
        self.core.reload(tenant, policy, token)

    def resize(self, lanes: int) -> None:
        self.core.run(self._vnow())
        self.core.resize(lanes)

    def report(self) -> str:
        return self.core.report()

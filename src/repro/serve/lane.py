"""Execution lanes: the gateway's in-process stand-in for workers.

A :class:`Lane` owns a private superblock :class:`Runtime` (``model=None``
so cycles == instructions — the gateway's virtual clock) plus a
:class:`WarmPool`, exactly like one cluster worker, and drives jobs
through :func:`repro.cluster.worker.execute_job_steps` one
checkpoint-interval chunk at a time.  Running lanes *in process* instead
of behind OS pipes is what makes the serving schedule a deterministic
discrete-event simulation: the gateway interleaves chunk boundaries from
many lanes in virtual time, applies policy between chunks, and the whole
run replays byte-identically under a seed (DESIGN.md §14).

A lane crash (chaos drill) is modeled the way a worker crash is: the
generator is abandoned mid-job and the entire runtime discarded — no
cleanup runs, just like ``os._exit`` in a worker — and the supervisor
spawns a successor lane with the next generation number.
"""

from __future__ import annotations

from typing import Optional

from ..cluster.snapshot import WarmPool
from ..cluster.worker import DEFAULT_JOB_BUDGET, execute_job_steps
from ..engine import EngineConfig
from ..runtime.runtime import Runtime

__all__ = ["Lane"]


class Lane:
    """One serving lane: a private runtime + warm pool + active job."""

    def __init__(self, lane_id: int, generation: int = 0,
                 timeslice: int = 50_000,
                 engine: Optional[EngineConfig] = None):
        self.lane_id = lane_id
        self.generation = generation
        self.runtime = Runtime(model=None,
                               engine=EngineConfig.coerce(engine),
                               timeslice=timeslice)
        self.pool = WarmPool(self.runtime)
        self.gen = None               # active execute_job_steps generator
        self.request = None           # active ServeRequest
        self.exec_base = 0            # executed count at last boundary
        self.draining = False         # retire once the active job yields
        self.started = 0              # jobs started (chaos fuse input)
        self.crash_after: Optional[int] = None  # crash at the n-th start's
        #                                         first boundary (chaos)

    @property
    def idle(self) -> bool:
        return (self.gen is None and self.request is None
                and not self.draining)

    def begin(self, job: dict, budget: int = DEFAULT_JOB_BUDGET,
              checkpoint_interval: Optional[int] = None,
              record_trace: bool = False) -> dict:
        """Start ``job``; returns the ``begin`` info (pid, slot, executed)."""
        assert self.gen is None, "lane already busy"
        self.gen = execute_job_steps(
            self.runtime, self.pool, job, budget=budget,
            checkpoint_interval=checkpoint_interval,
            record_trace=record_trace)
        self.started += 1
        info = next(self.gen)
        self.exec_base = info["executed"]
        return info

    def step(self, cmd: Optional[dict]):
        """Run one chunk; returns ``(info, delta)`` or ``(payload, delta)``.

        ``delta`` is the virtual instructions the chunk consumed.  When
        the generator finishes, the final payload (``kind`` ``result`` or
        ``yield``) is returned and the lane goes idle.
        """
        try:
            info = self.gen.send(cmd)
        except StopIteration as stop:
            payload = stop.value
            self.gen = None
            if payload["kind"] == "yield":
                return payload, 0  # stop consumed no further instructions
            delta = int(payload["diag"]["instructions"]) - self.exec_base
            return payload, delta
        delta = info["executed"] - self.exec_base
        self.exec_base = info["executed"]
        return info, delta

    def abandon(self) -> None:
        """Model a lane crash: drop the job and runtime without cleanup."""
        if self.gen is not None:
            self.gen.close()
            self.gen = None
        self.request = None
        self.runtime = None
        self.pool = None

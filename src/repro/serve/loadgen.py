"""Seeded open-loop load generation against a :class:`Gateway`.

Open-loop means arrivals are drawn from the offered-traffic process —
per-tenant Poisson streams at fixed rates — *independently* of how the
gateway is coping, which is what exposes overload behaviour: a closed
loop would politely slow its offers down exactly when we want to watch
the gateway shed.  All randomness is hash-derived from one seed per
tenant, so the merged arrival schedule (and therefore the whole serving
run) is byte-identical across invocations.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from ..elf.format import write_elf
from ..errors import ServeError
from ..toolchain import compile_lfi
from ..workloads.rtlib import busy_program
from .gateway import Gateway, ServeResult
from .policy import TenantPolicy

__all__ = ["TenantLoad", "build_arrivals", "build_images", "run_loadgen",
           "percentile", "render_report", "demo_policies", "demo_loads",
           "load_config"]


@dataclass(frozen=True)
class TenantLoad:
    """One tenant's offered-traffic process."""

    tenant: str
    rate: float                    # offered requests / virtual second
    target_instructions: int = 4000
    value: int = 0                 # busy-program exit code (id marker)

    def __post_init__(self):
        if self.rate <= 0:
            raise ServeError(f"load rate must be > 0, got {self.rate}")
        if self.target_instructions < 100:
            raise ServeError("target_instructions must be >= 100")


def _tenant_seed(seed: int, tenant: str) -> int:
    digest = hashlib.sha256(f"{seed}:{tenant}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def build_arrivals(loads: Iterable[TenantLoad], duration: float,
                   seed: int) -> List[Tuple[float, TenantLoad]]:
    """Merged per-tenant Poisson arrival schedule over ``[0, duration)``."""
    merged: List[Tuple[float, str, TenantLoad]] = []
    for load in loads:
        rng = random.Random(_tenant_seed(seed, load.tenant))
        t = rng.expovariate(load.rate)
        while t < duration:
            merged.append((t, load.tenant, load))
            t += rng.expovariate(load.rate)
    merged.sort(key=lambda item: (item[0], item[1]))
    return [(t, load) for t, _tenant, load in merged]


def build_images(loads: Iterable[TenantLoad]) -> Dict[Tuple[int, int],
                                                      bytes]:
    """Compile each distinct (value, target) busy image exactly once."""
    images: Dict[Tuple[int, int], bytes] = {}
    for load in loads:
        key = (load.value, load.target_instructions)
        if key not in images:
            images[key] = write_elf(compile_lfi(
                busy_program(load.value, load.target_instructions)).elf)
    return images


def run_loadgen(gateway: Gateway, loads: List[TenantLoad],
                duration: float, seed: int) -> List[ServeResult]:
    """Offer the seeded schedule, run the window, drain, return results."""
    images = build_images(loads)
    for t, load in build_arrivals(loads, duration, seed):
        gateway.offer(load.tenant,
                      images[(load.value, load.target_instructions)],
                      at=t)
    gateway.run(duration)
    return gateway.drain()


def percentile(values: List[float], pct: float) -> float:
    """Exact (nearest-rank) percentile of ``values``; 0.0 when empty."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * pct // 100))  # ceil
    return ordered[int(rank) - 1]


def render_report(results: List[ServeResult],
                  policies: Dict[str, TenantPolicy]) -> str:
    """Deterministic per-tenant serving report (diffable text)."""
    lines = ["tenant prio offered ok rejected p50_s p99_s sla verdict"]
    by_tenant: Dict[str, List[ServeResult]] = {}
    for result in results:
        by_tenant.setdefault(result.tenant, []).append(result)
    for tenant in sorted(by_tenant):
        bucket = by_tenant[tenant]
        ok = [r for r in bucket if r.status == "ok"]
        rejected = len(bucket) - len(ok)
        latencies = [r.latency_s for r in ok]
        p50 = percentile(latencies, 50)
        p99 = percentile(latencies, 99)
        policy = policies.get(tenant)
        sla = policy.sla_s if policy is not None else None
        if sla is None:
            verdict = "-"
        else:
            verdict = "ok" if (not ok or p99 <= sla) else "MISS"
        lines.append(
            f"{tenant} {policy.priority if policy else '?'} {len(bucket)} "
            f"{len(ok)} {rejected} {p50:.6f} {p99:.6f} "
            f"{f'{sla:.3f}' if sla is not None else '-'} {verdict}")
    return "\n".join(lines) + "\n"


def demo_policies() -> Dict[str, TenantPolicy]:
    """8 tenants, 3 priority classes; ``bronze-3`` will misbehave."""
    policies = {
        "gold-1": TenantPolicy(priority=0, rate=40.0, burst=8.0,
                               queue_limit=16, sla_s=0.05,
                               quota={"max_instructions": 50_000}),
        "gold-2": TenantPolicy(priority=0, rate=40.0, burst=8.0,
                               queue_limit=16, sla_s=0.05,
                               quota={"max_instructions": 50_000}),
        "silver-1": TenantPolicy(priority=1, rate=30.0, burst=6.0,
                                 queue_limit=12, sla_s=0.15),
        "silver-2": TenantPolicy(priority=1, rate=30.0, burst=6.0,
                                 queue_limit=12, sla_s=0.15),
        "silver-3": TenantPolicy(priority=1, rate=30.0, burst=6.0,
                                 queue_limit=12, sla_s=0.15),
        "bronze-1": TenantPolicy(priority=2, rate=20.0, burst=4.0,
                                 queue_limit=8, deadline_s=0.5),
        "bronze-2": TenantPolicy(priority=2, rate=20.0, burst=4.0,
                                 queue_limit=8, deadline_s=0.5),
        # The misbehaving tenant: its *policy* allows 20 req/s but its
        # *offered* load (demo_loads) runs an order of magnitude hotter,
        # so the token bucket throttles it while the others keep SLA.
        "bronze-3": TenantPolicy(priority=2, rate=20.0, burst=4.0,
                                 queue_limit=8, deadline_s=0.5),
    }
    return policies


def demo_loads() -> List[TenantLoad]:
    return [
        TenantLoad("gold-1", rate=25.0, target_instructions=3000, value=1),
        TenantLoad("gold-2", rate=25.0, target_instructions=3000, value=2),
        TenantLoad("silver-1", rate=20.0, target_instructions=4000,
                   value=3),
        TenantLoad("silver-2", rate=20.0, target_instructions=4000,
                   value=4),
        TenantLoad("silver-3", rate=20.0, target_instructions=4000,
                   value=5),
        TenantLoad("bronze-1", rate=12.0, target_instructions=5000,
                   value=6),
        TenantLoad("bronze-2", rate=12.0, target_instructions=5000,
                   value=7),
        # ~8x its admitted rate: the open loop keeps offering anyway.
        TenantLoad("bronze-3", rate=150.0, target_instructions=5000,
                   value=8),
    ]


_TENANT_KEYS = {"priority", "rate", "burst", "queue_limit", "deadline_ms",
                "sla_ms", "quota", "load"}
_LOAD_KEYS = {"rate", "instructions", "value"}
_TOP_KEYS = {"lanes", "duration_s", "checkpoint_interval", "tenants"}


def load_config(config: dict):
    """Parse a serve config dict into gateway kwargs, policies, loads.

    Shape (times in the config are milliseconds for human ergonomics,
    converted to virtual seconds here)::

        {"lanes": 4, "duration_s": 2.0, "checkpoint_interval": 2000,
         "tenants": {"gold-1": {"priority": 0, "rate": 40, "burst": 8,
                                "queue_limit": 16, "sla_ms": 50,
                                "deadline_ms": 500,
                                "quota": {"max_instructions": 50000},
                                "load": {"rate": 25,
                                         "instructions": 3000,
                                         "value": 1}}}}
    """
    if not isinstance(config, dict):
        raise ServeError("config must be a JSON object")
    unknown = set(config) - _TOP_KEYS
    if unknown:
        raise ServeError(f"unknown config keys {sorted(unknown)}; "
                         f"allowed: {sorted(_TOP_KEYS)}")
    tenants = config.get("tenants")
    if not isinstance(tenants, dict) or not tenants:
        raise ServeError("config needs a non-empty 'tenants' table")
    policies: Dict[str, TenantPolicy] = {}
    loads: List[TenantLoad] = []
    for index, tenant in enumerate(sorted(tenants)):
        spec = tenants[tenant]
        if not isinstance(spec, dict):
            raise ServeError(f"tenant {tenant!r} spec must be a table")
        unknown = set(spec) - _TENANT_KEYS
        if unknown:
            raise ServeError(
                f"tenant {tenant!r}: unknown keys {sorted(unknown)}; "
                f"allowed: {sorted(_TENANT_KEYS)}")
        kwargs = {key: spec[key]
                  for key in ("priority", "rate", "burst", "queue_limit",
                              "quota") if key in spec}
        if "deadline_ms" in spec:
            kwargs["deadline_s"] = spec["deadline_ms"] / 1000.0
        if "sla_ms" in spec:
            kwargs["sla_s"] = spec["sla_ms"] / 1000.0
        policies[tenant] = TenantPolicy(**kwargs)
        load = spec.get("load")
        if load is not None:
            unknown = set(load) - _LOAD_KEYS
            if unknown:
                raise ServeError(
                    f"tenant {tenant!r} load: unknown keys "
                    f"{sorted(unknown)}; allowed: {sorted(_LOAD_KEYS)}")
            if "rate" not in load:
                raise ServeError(f"tenant {tenant!r} load needs a rate")
            loads.append(TenantLoad(
                tenant, rate=load["rate"],
                target_instructions=load.get("instructions", 4000),
                value=load.get("value", index + 1)))
    gateway_kwargs = {"lanes": config.get("lanes", 2)}
    if "checkpoint_interval" in config:
        gateway_kwargs["checkpoint_interval"] = \
            config["checkpoint_interval"]
    duration = float(config.get("duration_s", 1.0))
    if duration <= 0:
        raise ServeError(f"duration_s must be > 0, got {duration}")
    return gateway_kwargs, policies, loads, duration

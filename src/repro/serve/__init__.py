"""repro.serve — always-on serving gateway over the cluster runtime.

The batch cluster answers "run these N jobs"; this package answers
"stay up and keep answering": admission control with bounded queues and
typed shedding, priority routing with per-tenant token buckets and
deadlines, token-guarded policy hot-reload applied to running guests,
crash recovery through checkpoints, and Prometheus-ready metrics
(DESIGN.md §14).
"""

from ..errors import Overloaded, ServeError, StalePolicy
from .daemon import AsyncGateway
from .gateway import (
    CLOCK_HZ,
    LATENCY_BUCKETS_S,
    Autoscale,
    Gateway,
    ServeResult,
)
from .loadgen import (
    TenantLoad,
    build_arrivals,
    demo_loads,
    demo_policies,
    load_config,
    percentile,
    render_report,
    run_loadgen,
)
from .policy import PolicyStore, TenantPolicy

__all__ = [
    "AsyncGateway",
    "Autoscale",
    "CLOCK_HZ",
    "Gateway",
    "LATENCY_BUCKETS_S",
    "Overloaded",
    "PolicyStore",
    "ServeError",
    "ServeResult",
    "StalePolicy",
    "TenantLoad",
    "TenantPolicy",
    "build_arrivals",
    "demo_loads",
    "demo_policies",
    "load_config",
    "percentile",
    "render_report",
    "run_loadgen",
]

"""Deterministic prover reports and the counterexample → corpus bridge.

A :class:`ClassReport` summarizes one ``(instruction class, policy)``
run: how much of the space was checked, how the verifier classified it,
and every obligation failure as a :class:`Counterexample`.  Reports
render to stable text and JSON (no timestamps, no ordering dependence on
dict iteration) so CI can diff them.

The bridge turns a counterexample into a replayable
:class:`~repro.fuzz.corpus.CorpusEntry`: the violating word plus its
accepting context, ddmin-shrunk with the prover itself as the oracle, so
every hole the prover finds becomes a pinned regression test
automatically (ISSUE 7 satellite a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Counterexample", "ClassReport", "render_reports",
           "counterexample_entry"]


@dataclass(frozen=True)
class Counterexample:
    """One verifier-accepted word (or field interval) that failed an
    abstract obligation."""

    klass: str
    policy: str
    context: str
    word: int          # representative concrete word
    reason: str
    count: int = 1     # how many concrete words the record covers
    disasm: str = ""
    #: Shape word and symbolic-field interval when found symbolically.
    shape: Optional[int] = None
    field: str = ""
    flo: Optional[int] = None
    fhi: Optional[int] = None

    def line(self) -> str:
        where = f" {self.field} in [{self.flo}, {self.fhi}]" \
            if self.shape is not None and self.flo != self.fhi else ""
        dis = f" ({self.disasm})" if self.disasm else ""
        return (f"CX {self.klass}/{self.policy} [{self.context}] "
                f"{self.word:#010x}{dis}{where} x{self.count}: "
                f"{self.reason}")

    def covers(self, word: int, sym_lo: int = 0) -> bool:
        """Does this record cover the given concrete word?

        ``sym_lo`` is the bit position of the class's symbolic field
        (needed to test interval membership for symbolic records).
        """
        if self.shape is None or self.flo is None or self.fhi is None:
            return word == self.word
        if word == self.word:
            return True
        # The shape has the symbolic field's bits zero, so clearing the
        # field from the word must reproduce the shape and the field
        # value must fall inside the record's interval.
        mask = _field_mask_for(self.flo, self.fhi)
        fval = (word >> sym_lo) & mask
        return ((word & ~(mask << sym_lo)) == self.shape
                and self.flo <= fval <= self.fhi)

    def to_dict(self) -> dict:
        return {
            "class": self.klass, "policy": self.policy,
            "context": self.context, "word": self.word,
            "reason": self.reason, "count": self.count,
            "disasm": self.disasm, "shape": self.shape,
            "field": self.field, "flo": self.flo, "fhi": self.fhi,
        }


def _field_mask_for(flo: int, fhi: int) -> int:
    """Smallest all-ones mask covering values flo..fhi."""
    mask = 1
    while mask <= fhi:
        mask = (mask << 1) | 1
    return mask


@dataclass
class ClassReport:
    """The outcome of proving one instruction class under one policy."""

    klass: str
    policy: str
    mode: str
    space: int
    checked: int = 0
    undecodable: int = 0
    rejected: int = 0
    accepted: int = 0
    splits: int = 0
    concretized: int = 0
    truncated: bool = False
    accepted_by_context: Dict[str, int] = field(default_factory=dict)
    counterexamples: List[Counterexample] = field(default_factory=list)
    counterexample_words: int = 0
    cross_checks: int = 0
    mismatches: List[str] = field(default_factory=list)
    probes: int = 0
    probe_issues: List[str] = field(default_factory=list)

    #: Cap on *recorded* counterexamples; the word count keeps counting.
    MAX_RECORDED = 64

    def add(self, cx: Counterexample) -> None:
        self.counterexample_words += cx.count
        if len(self.counterexamples) < self.MAX_RECORDED:
            self.counterexamples.append(cx)

    @property
    def ok(self) -> bool:
        return (not self.counterexample_words and not self.mismatches
                and not self.probe_issues)

    def finds(self, word: int, sym_lo: int = 0) -> bool:
        """Is the given concrete word covered by a counterexample?"""
        return any(cx.covers(word, sym_lo) for cx in self.counterexamples)

    def lines(self) -> List[str]:
        status = "OK" if self.ok else "FAIL"
        head = (f"{status} {self.klass} [{self.policy}] mode={self.mode} "
                f"space={self.space} checked={self.checked} "
                f"undecodable={self.undecodable} rejected={self.rejected} "
                f"accepted={self.accepted} splits={self.splits} "
                f"concretized={self.concretized}")
        if self.truncated:
            head += " TRUNCATED"
        out = [head]
        for name in sorted(self.accepted_by_context):
            out.append(f"  accepted[{name}] = "
                       f"{self.accepted_by_context[name]}")
        if self.cross_checks:
            out.append(f"  cross-checks: {self.cross_checks}, "
                       f"mismatches: {len(self.mismatches)}")
        if self.probes:
            out.append(f"  emulator probes: {self.probes}, "
                       f"issues: {len(self.probe_issues)}")
        for cx in self.counterexamples:
            out.append("  " + cx.line())
        if self.counterexample_words > 0:
            out.append(f"  counterexample words: "
                       f"{self.counterexample_words}")
        for m in self.mismatches:
            out.append("  MISMATCH " + m)
        for p in self.probe_issues:
            out.append("  PROBE " + p)
        return out

    def to_dict(self) -> dict:
        return {
            "class": self.klass, "policy": self.policy, "mode": self.mode,
            "space": self.space, "checked": self.checked,
            "undecodable": self.undecodable, "rejected": self.rejected,
            "accepted": self.accepted, "splits": self.splits,
            "concretized": self.concretized, "truncated": self.truncated,
            "accepted_by_context": dict(sorted(
                self.accepted_by_context.items())),
            "counterexamples": [cx.to_dict()
                                for cx in self.counterexamples],
            "counterexample_words": self.counterexample_words,
            "cross_checks": self.cross_checks,
            "mismatches": list(self.mismatches),
            "probes": self.probes,
            "probe_issues": list(self.probe_issues),
            "ok": self.ok,
        }


def render_reports(reports: List[ClassReport]) -> str:
    out: List[str] = []
    for rep in reports:
        out.extend(rep.lines())
    total_cx = sum(r.counterexample_words for r in reports)
    bad = [r for r in reports if not r.ok]
    out.append(f"proved {len(reports) - len(bad)}/{len(reports)} "
               f"class-policy runs, {total_cx} counterexample word(s)")
    return "\n".join(out) + "\n"


def counterexample_entry(cx: Counterexample, policy,
                         name: Optional[str] = None, shrink: bool = True):
    """Turn a counterexample into a replayable, ddmin-shrunk corpus entry.

    The violating word plus its accepting context's tail words form the
    initial program; :func:`repro.fuzz.shrink.shrink_words` then drops
    every word not needed to keep the prover's ``violating`` predicate
    true (the verifier must still accept the whole sequence, so context
    words that acceptance depends on survive shrinking).
    """
    from ..fuzz.corpus import entry_from_words
    from ..fuzz.shrink import shrink_words
    from .symexec import context_words, violating

    words = [cx.word] + context_words(cx.context)
    if shrink:
        words = shrink_words(words, lambda ws: violating(ws, policy))
    return entry_from_words(
        name or f"prove-{cx.klass}-{cx.word:08x}",
        words,
        policy=policy,
        description=(f"prover counterexample [{cx.context}]: {cx.reason}"),
        expect="reject",
        source="prove",
    )

"""Exhaustive per-class verifier proofs (DESIGN.md §13).

``repro.prove`` upgrades ``repro.fuzz``'s sampled coverage to
per-instruction-class proofs: enumerate every encodable word of a class,
and for each word the verifier accepts, symbolically execute it over the
emulator's semantics to show it cannot move a reserved register out of
its invariant region nor issue an uncontained access.
"""

from .absdomain import (
    AbsVal,
    CONTAIN_HI,
    CONTAIN_LO,
    Concretize,
    NeedSplit,
    SymInt,
    SymWord,
    initial_state,
    invariant_failures,
    mem_effects,
    transfer,
)
from .enumerate import (
    CLASSES,
    Field,
    InstructionClass,
    class_by_name,
    default_classes,
    nightly_classes,
)
from .report import (
    ClassReport,
    Counterexample,
    counterexample_entry,
    render_reports,
)
from .symexec import (
    CONTEXTS,
    WeakenedVerifier,
    analyze_word,
    check_obligations,
    context_words,
    probe_word,
    prove_class,
    violating,
)

__all__ = [
    "AbsVal", "CONTAIN_HI", "CONTAIN_LO", "Concretize", "NeedSplit",
    "SymInt", "SymWord", "initial_state", "invariant_failures",
    "mem_effects", "transfer",
    "CLASSES", "Field", "InstructionClass", "class_by_name",
    "default_classes", "nightly_classes",
    "ClassReport", "Counterexample", "counterexample_entry",
    "render_reports",
    "CONTEXTS", "WeakenedVerifier", "analyze_word", "check_obligations",
    "context_words", "probe_word", "prove_class", "violating",
]

"""Abstract domain for the verifier prover (DESIGN.md §13).

Two layers live here:

1. **Symbolic integers** (:class:`SymInt`, :class:`SymWord`): a single
   designated immediate field of an encoding is left symbolic while every
   other field is concrete.  A :class:`SymInt` is an *affine* function
   ``a*f + b`` of the field value ``f`` ranging over an interval
   ``[flo, fhi]`` — exactly the shape every immediate takes on its way
   through the decoder (shift, scale, sign-extend, add).  Comparisons
   answer definitively when the whole interval agrees; otherwise they
   raise :class:`NeedSplit` with the field value at which the predicate
   flips, and the driver re-runs both halves.  Operations that leave the
   affine domain raise :class:`Concretize` and the driver falls back to
   concrete enumeration of the (sub-)interval.  Because plain ``int``
   supports the same operators, the concrete and symbolic analyses share
   one code path: the real ``decode_word`` and the real ``Verifier`` run
   unmodified over symbolic words.

2. **Abstract machine state** (:class:`AbsVal`, ``initial_state`` /
   ``transfer``): per-register intervals, either *base-relative*
   (``rel=True``: value = sandbox base + [lo, hi]) or absolute.  The
   initial state is the weakest invariant the verifier maintains over the
   reserved registers; ``transfer`` mirrors the emulator's register
   semantics conservatively (anything not recognized as an
   invariant-preserving pattern becomes TOP).  Memory and branch effects
   are checked by the executor in :mod:`repro.prove.symexec`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from ..arm64.instructions import Instruction, total_access_bytes
from ..arm64.operands import Extended, Imm, Mem, POST_INDEX, ShiftedImm
from ..arm64.registers import Reg
from ..core.constants import SP_SMALL_IMM
from ..core.verifier import _is_guard, _is_sp_guard
from ..memory.layout import GUARD_SIZE, PAGE_SIZE, SANDBOX_SIZE

__all__ = [
    "NeedSplit", "Concretize", "SymInt", "SymWord",
    "AbsVal", "TOP", "ABS32", "INBOX", "BASE",
    "SP_REST_SLACK", "SP_PENDING_SLACK", "CONTAIN_LO", "CONTAIN_HI",
    "initial_state", "transfer", "mem_effects", "invariant_failures",
    "bounds",
]


class NeedSplit(Exception):
    """A symbolic predicate is ambiguous over the current field interval.

    ``points`` are field values: the driver splits ``[flo, fhi]`` into
    ``[flo, p1-1], [p1, p2-1], ..., [pn, fhi]`` and re-analyzes each.
    """

    def __init__(self, points: Tuple[int, ...]):
        super().__init__(f"split at {points}")
        self.points = tuple(points)


class Concretize(Exception):
    """The operation left the affine-interval domain; enumerate concretely."""


MASK32 = (1 << 32) - 1
MASK64 = (1 << 64) - 1


class SymInt:
    """An affine function ``a*f + b`` of a field ``f`` in ``[flo, fhi]``.

    Represents one *unknown but fixed* integer, not a set: arithmetic with
    two different SymInts is unsupported (never happens — there is only one
    symbolic field per word).  ``a`` is never 0 (that would be a constant).
    """

    __slots__ = ("a", "b", "flo", "fhi")

    def __init__(self, a: int, b: int, flo: int, fhi: int):
        if a == 0:
            raise ValueError("constant SymInt; use int")
        if flo > fhi:
            raise ValueError("empty field interval")
        self.a, self.b, self.flo, self.fhi = a, b, flo, fhi

    def at(self, f: int) -> int:
        return self.a * f + self.b

    @property
    def lo(self) -> int:
        return min(self.at(self.flo), self.at(self.fhi))

    @property
    def hi(self) -> int:
        return max(self.at(self.flo), self.at(self.fhi))

    def __repr__(self) -> str:
        return f"SymInt({self.lo}..{self.hi})"

    __str__ = __repr__

    def __format__(self, spec: str) -> str:
        return repr(self)

    # -- structure-preserving arithmetic ------------------------------------

    def _shift(self, mul: int, add: int) -> Union["SymInt", int]:
        if mul == 0:
            return add
        return SymInt(self.a * mul, self.b * mul + add, self.flo, self.fhi)

    def __add__(self, other):
        if isinstance(other, int):
            return self._shift(1, other) if other or True else self
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other):
        if isinstance(other, int):
            return SymInt(self.a, self.b - other, self.flo, self.fhi)
        return NotImplemented

    def __rsub__(self, other):
        if isinstance(other, int):
            return SymInt(-self.a, other - self.b, self.flo, self.fhi)
        return NotImplemented

    def __neg__(self):
        return SymInt(-self.a, -self.b, self.flo, self.fhi)

    def __mul__(self, other):
        if isinstance(other, int):
            return self._shift(other, 0)
        return NotImplemented

    __rmul__ = __mul__

    def __lshift__(self, k: int):
        return self._shift(1 << k, 0)

    def __rshift__(self, k: int):
        unit = 1 << k
        if self.a % unit == 0 and self.b % unit == 0:
            return SymInt(self.a // unit, self.b // unit, self.flo, self.fhi)
        raise Concretize(f"non-affine >> {k}")

    # -- comparisons --------------------------------------------------------

    def _flip_point(self, pred) -> int:
        """Smallest f where a monotone predicate differs from pred(flo)."""
        lo, hi = self.flo, self.fhi
        first = pred(lo)
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if pred(mid) == first:
                lo = mid
            else:
                hi = mid
        return hi

    def _mono_cmp(self, other: int, op) -> bool:
        p_lo = op(self.at(self.flo), other)
        p_hi = op(self.at(self.fhi), other)
        if p_lo == p_hi:
            return p_lo
        raise NeedSplit((self._flip_point(lambda f: op(self.at(f), other)),))

    def __lt__(self, other):
        if not isinstance(other, int):
            return NotImplemented
        return self._mono_cmp(other, lambda v, c: v < c)

    def __le__(self, other):
        if not isinstance(other, int):
            return NotImplemented
        return self._mono_cmp(other, lambda v, c: v <= c)

    def __gt__(self, other):
        if not isinstance(other, int):
            return NotImplemented
        return self._mono_cmp(other, lambda v, c: v > c)

    def __ge__(self, other):
        if not isinstance(other, int):
            return NotImplemented
        return self._mono_cmp(other, lambda v, c: v >= c)

    def __eq__(self, other):
        if not isinstance(other, int):
            return NotImplemented
        q, r = divmod(other - self.b, self.a)
        if r != 0 or not (self.flo <= q <= self.fhi):
            return False
        if self.flo == self.fhi:
            return True
        points = tuple(p for p in (q, q + 1) if self.flo < p <= self.fhi)
        raise NeedSplit(points)

    def __ne__(self, other):
        eq = self.__eq__(other)
        if eq is NotImplemented:
            return eq
        return not eq

    __hash__ = object.__hash__

    def __bool__(self):
        return self.__ne__(0)

    def __abs__(self):
        if self.lo >= 0:
            return self
        if self.hi <= 0:
            return -self
        raise NeedSplit((self._flip_point(lambda f: self.at(f) >= 0),))

    # -- bit operations (the decoder's field surgery) -----------------------

    def __mod__(self, m: int):
        if not isinstance(m, int) or m <= 0:
            raise Concretize("non-positive modulus")
        if m == 1:
            return 0
        if self.a % m == 0:
            return self.b % m
        if self.lo // m == self.hi // m:
            # Whole interval inside one residue window: affine.
            return self - (self.lo // m) * m
        boundary = (self.lo // m + 1) * m
        raise NeedSplit(
            (self._flip_point(lambda f: self.at(f) >= boundary),))

    def __and__(self, mask):
        if not isinstance(mask, int):
            return NotImplemented
        if mask == 0:
            return 0
        if mask & (mask + 1) == 0:  # low mask 2**k - 1
            return self % (mask + 1)
        if mask & (mask - 1) == 0:  # single bit 2**k
            k = mask.bit_length() - 1
            if self.lo >> k == self.hi >> k:
                return self.lo & mask
            boundary = ((self.lo >> k) + 1) << k
            raise NeedSplit(
                (self._flip_point(lambda f: self.at(f) >= boundary),))
        raise Concretize(f"non-affine & {mask:#x}")

    __rand__ = __and__


def bounds(value: Union[int, SymInt]) -> Tuple[int, int]:
    """Inclusive (lo, hi) hull of a concrete or symbolic value."""
    if isinstance(value, SymInt):
        return value.lo, value.hi
    return value, value


class _PartialAnd:
    """``word & mask`` where the mask clips part of the symbolic field.

    Only comparison against a constant is supported: if the concrete bits
    under the mask already disagree, the answer is definitely False —
    which is how every spurious decoder signature test resolves.  A
    comparison that genuinely depends on the clipped field bits falls back
    to concrete enumeration.
    """

    __slots__ = ("conc", "overlap", "mask")

    def __init__(self, conc: int, overlap: int, mask: int):
        self.conc, self.overlap, self.mask = conc, overlap, mask

    def __eq__(self, other):
        if not isinstance(other, int):
            return NotImplemented
        fixed = self.mask & ~self.overlap
        if (self.conc & fixed) != (other & fixed):
            return False
        raise Concretize("comparison depends on partially-masked field")

    def __ne__(self, other):
        eq = self.__eq__(other)
        if eq is NotImplemented:
            return eq
        return not eq

    __hash__ = object.__hash__


class SymWord:
    """A 32-bit instruction word with one symbolic bit field.

    ``template`` has the field bits zeroed; ``sym`` gives the field value
    (always with ``a == 1, b == 0`` at construction).  Implements exactly
    the operations ``decode_word`` performs on a word — ``>>``, ``&``,
    ``==`` — so the real decoder runs unmodified.
    """

    __slots__ = ("template", "fld_lo", "fld_width", "sym")

    def __init__(self, template: int, fld_lo: int, fld_width: int,
                 sym: SymInt):
        self.template = template & ~(((1 << fld_width) - 1) << fld_lo)
        self.fld_lo, self.fld_width, self.sym = fld_lo, fld_width, sym

    @property
    def field_mask(self) -> int:
        return ((1 << self.fld_width) - 1) << self.fld_lo

    def substitute(self, f: int) -> int:
        return self.template | ((f & ((1 << self.fld_width) - 1))
                                << self.fld_lo)

    def __repr__(self) -> str:
        return (f"SymWord({self.template:#010x}, "
                f"field@{self.fld_lo}+{self.fld_width})")

    def __and__(self, mask):
        if not isinstance(mask, int):
            return NotImplemented
        fm = self.field_mask
        overlap = mask & fm
        conc = self.template & mask
        if overlap == 0:
            return conc
        if overlap == fm:
            if mask & 0xFFFFFFFF == 0xFFFFFFFF:
                return self  # decode_word's `word &= 0xFFFFFFFF`
            return (self.sym << self.fld_lo) + conc
        return _PartialAnd(conc, overlap, mask)

    __rand__ = __and__

    def __rshift__(self, k: int):
        if not isinstance(k, int):
            return NotImplemented
        if k == 0:
            return self
        if k >= self.fld_lo + self.fld_width:
            return self.template >> k
        if k <= self.fld_lo:
            return SymWord(self.template >> k, self.fld_lo - k,
                           self.fld_width, self.sym)
        # The shift lands inside the field: the surviving symbolic bits
        # are the field value's bits >= m.  When those are constant over
        # the interval the result is fully concrete (the template's own
        # bits inside the field are zero by construction); otherwise
        # split at the next block boundary and retry per block.
        m = k - self.fld_lo
        s = self.sym
        if s.a == 1:
            lo_block = s.at(s.flo) >> m
            hi_block = s.at(s.fhi) >> m
            if lo_block == hi_block:
                return (self.template >> k) | lo_block
            # First f where the block index changes:
            boundary = ((lo_block + 1) << m) - s.b
            raise NeedSplit((boundary,))
        raise Concretize("shift lands inside the symbolic field")

    def __eq__(self, other):
        if not isinstance(other, int):
            return NotImplemented
        fm = self.field_mask
        if (self.template & ~fm & 0xFFFFFFFF) != (other & ~fm & 0xFFFFFFFF):
            return False
        return self.sym == ((other >> self.fld_lo)
                            & ((1 << self.fld_width) - 1))

    def __ne__(self, other):
        eq = self.__eq__(other)
        if eq is NotImplemented:
            return eq
        return not eq

    __hash__ = object.__hash__


# ---------------------------------------------------------------------------
# Abstract register state
# ---------------------------------------------------------------------------

SymOrInt = Union[int, SymInt]


class AbsVal:
    """A register's abstract value: an interval, base-relative or absolute.

    ``rel=True`` means the value is sandbox_base + [lo, hi]; ``rel=False``
    means the value is in [lo, hi] with no relation to the base.  Bounds
    are inclusive and may be symbolic (a SymInt of the word's immediate
    field), in which case comparisons on them split precisely.
    """

    __slots__ = ("rel", "lo", "hi")

    def __init__(self, rel: bool, lo: SymOrInt, hi: SymOrInt):
        self.rel, self.lo, self.hi = rel, lo, hi

    def shifted(self, delta: SymOrInt) -> "AbsVal":
        return AbsVal(self.rel, self.lo + delta, self.hi + delta)

    def __repr__(self) -> str:
        tag = "base+" if self.rel else ""
        return f"AbsVal({tag}[{self.lo}, {self.hi}])"


TOP = AbsVal(False, 0, MASK64)
ABS32 = AbsVal(False, 0, MASK32)
#: A valid sandbox address: base + [0, 2^32).
INBOX = AbsVal(True, 0, SANDBOX_SIZE - 1)
#: Exactly the sandbox base (x21).
BASE = AbsVal(True, 0, 0)

#: sp at an instruction-boundary "rest" point: the trapping access that
#: closes every arithmetic window has |displacement| < SP_SMALL_IMM, so a
#: successful access at sp+d pins sp within SP_SMALL_IMM-1 of the
#: *readable* region (DESIGN.md §13).  The readable region is the mapped
#: sandbox plus the neighbour's read-only runtime-call table page — a
#: load can complete there, so the high side of both hulls carries an
#: extra PAGE_SIZE.
SP_REST_SLACK = SP_SMALL_IMM - 1
#: sp between an accepted sp arithmetic and its trapping access: one more
#: small immediate of drift on top of the rest slack.
SP_PENDING_SLACK = 2 * (SP_SMALL_IMM - 1)

#: Memory containment region, relative to the sandbox base.  Below base:
#: the previous slot's high guard (GUARD_SIZE, unmapped — traps).  Above
#: base + 4GiB: the next slot's runtime-call table page (read-only — a
#: store traps; a load is the documented table-read carve-out) followed by
#: its low guard.  Anything inside [CONTAIN_LO, CONTAIN_HI) either stays
#: in this sandbox or faults; both are contained.
CONTAIN_LO = -GUARD_SIZE
CONTAIN_HI = SANDBOX_SIZE + PAGE_SIZE + GUARD_SIZE


def _sp_rest() -> AbsVal:
    return AbsVal(True, -SP_REST_SLACK,
                  SANDBOX_SIZE + PAGE_SIZE - 1 + SP_REST_SLACK)


def _sp_pending() -> AbsVal:
    return AbsVal(True, -SP_PENDING_SLACK,
                  SANDBOX_SIZE + PAGE_SIZE - 1 + SP_PENDING_SLACK)


def initial_state() -> dict:
    """Weakest verified-program state ahead of an arbitrary instruction.

    Keys are GPR indices 0..30 plus ``"sp"``.  sp uses the *pending* hull
    (an accepted instruction may execute between an sp arithmetic and its
    re-establishing access); the transfer function narrows to the rest
    hull where the verifier guarantees it.
    """
    state = {i: TOP for i in range(31)}
    state[18] = INBOX
    state[21] = BASE
    state[22] = ABS32
    state[23] = INBOX
    state[24] = INBOX
    state[30] = INBOX
    state["sp"] = _sp_pending()
    return state


def _key(reg: Reg):
    return "sp" if reg.is_sp else reg.index


def _read(state: dict, reg: Reg) -> AbsVal:
    """A source register's abstract value (xzr/wzr read as constant 0)."""
    if reg.is_zero:
        return AbsVal(False, 0, 0)
    return state[_key(reg)]


def _imm_of(operand) -> Optional[SymOrInt]:
    if isinstance(operand, Imm):
        return operand.value
    if isinstance(operand, ShiftedImm):
        return operand.value << operand.shift
    return None


def transfer(inst: Instruction, state: dict) -> dict:
    """Abstract one instruction's register effects (memory is separate).

    Conservative: every destination becomes TOP unless the instruction is
    a recognized invariant-preserving pattern.  Soundness needs only that
    the result *over*-approximates the emulator's semantics.
    """
    defs = [r for r in inst.defs() if not r.is_vector and not r.is_zero]
    if not defs:
        return state
    out = dict(state)
    m = inst.mnemonic
    mem = inst.mem
    for reg in defs:
        key = _key(reg)
        if mem is not None and mem.writes_back and reg is mem.base:
            imm = mem.imm_value
            base_val = state[key]
            if reg.is_sp:
                # Trap-before-writeback (emulator: the access faults before
                # the base is updated): a completed access pins the written
                # value within the readable region ± the immediate.
                lo_i, hi_i = bounds(imm)
                out[key] = AbsVal(True, min(0, lo_i),
                                  SANDBOX_SIZE + PAGE_SIZE - 1 + max(0, hi_i))
            else:
                out[key] = base_val.shifted(imm)
            continue
        if m == "ldr" and reg.index == 30 and not reg.is_sp \
                and reg.bits == 64 and mem is not None \
                and not mem.writes_back \
                and mem.base.index == 21 and not mem.base.is_sp \
                and (mem.offset is None or isinstance(mem.offset, Imm)):
            # Runtime-call load: the verifier only accepts `ldr x30,
            # [x21, #imm]` when the next instruction is `blr x30` and the
            # immediate indexes the read-only call table, whose entries
            # the host populates with trusted in-sandbox/runtime targets
            # (axiom A3, DESIGN.md §13).
            out[key] = INBOX
            continue
        if reg.bits == 32:
            out[key] = ABS32
            continue
        if _is_sp_guard(inst) and reg.is_sp:
            out[key] = INBOX
            continue
        if _is_guard(inst, reg.index):
            out[key] = INBOX
            continue
        if inst.is_call and reg.index == 30 and not reg.is_sp:
            # bl/blr write pc+4; code lives below the keep-out, so the
            # link value is always a valid sandbox address.
            out[key] = INBOX
            continue
        if m in ("add", "sub") and len(inst.operands) == 3:
            rd, rn, src = inst.operands
            imm = _imm_of(src)
            if imm is not None and isinstance(rn, Reg) and not rn.is_vector:
                src_val = _read(state, rn)
                if rn.is_sp:
                    # The verifier rejects sp arithmetic inside a pending
                    # window, so the source is at a rest point.
                    src_val = _sp_rest()
                out[key] = src_val.shifted(imm if m == "add" else -imm)
                continue
        if m == "mov" and len(inst.operands) == 2:
            src = inst.operands[1]
            if isinstance(src, Reg) and not src.is_vector \
                    and src.bits == 64:
                out[key] = _read(state, src)
                continue
        out[key] = TOP
    return out


def mem_effects(inst: Instruction, state: dict) -> List[tuple]:
    """(is_load, is_store, AbsVal address-interval incl. width) tuples."""
    mem = inst.mem
    if mem is None:
        return []
    base_val = state[_key(mem.base)]
    width = total_access_bytes(inst)
    offset = mem.offset
    if mem.mode == POST_INDEX or offset is None:
        lo_off, hi_off = 0, 0
    elif isinstance(offset, Imm):
        lo_off = hi_off = offset.value
    elif (isinstance(offset, Extended) and offset.kind == "uxtw"
          and not offset.amount and offset.reg.bits == 32):
        lo_off, hi_off = 0, MASK32
    else:
        # Arbitrary register offset: address unrelated to the base.
        return [(inst.is_load, inst.is_store, TOP.shifted(0), width)]
    addr = AbsVal(base_val.rel, base_val.lo + lo_off,
                  base_val.hi + hi_off + width - 1)
    return [(inst.is_load, inst.is_store, addr, width)]


#: (state key, required AbsVal) for every reserved-register invariant.
_INVARIANTS = (
    (21, BASE, "x21 (sandbox base)"),
    (18, INBOX, "x18 (guard scratch)"),
    (23, INBOX, "x23 (hoist)"),
    (24, INBOX, "x24 (hoist)"),
    (22, ABS32, "x22 (32-bit invariant)"),
    (30, INBOX, "x30 (link)"),
    ("sp", None, "sp"),
)


def _within(val: AbsVal, req: AbsVal) -> bool:
    """val ⊆ req?  May raise NeedSplit on a symbolic boundary."""
    if val.rel != req.rel:
        # An absolute interval can never be proven inside a base-relative
        # one (the base is arbitrary), except the trivial empty cases.
        return False
    return bool((val.lo >= req.lo) and (val.hi <= req.hi))


def invariant_failures(state: dict, sp_req: Optional[AbsVal] = None
                       ) -> List[str]:
    """Which reserved-register invariants the post-state fails to uphold.

    ``sp_req`` selects the sp hull to check against: the *pending* hull by
    default (an arbitrary program point), or the *rest* hull when the
    analyzed sequence touched sp — a sequence that modifies or re-pins sp
    must restore the rest invariant for the induction to close
    (DESIGN.md §13).
    """
    failures = []
    for key, req, name in _INVARIANTS:
        if req is None:
            req = sp_req if sp_req is not None else _sp_pending()
        val = state[key]
        if not _within(val, req):
            failures.append(f"{name} leaves its invariant region: {val!r}")
    return failures

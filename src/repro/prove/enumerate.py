"""Instruction-class enumeration over the decoder's encodable space.

Each :class:`InstructionClass` names one encoding template from
``arm64/decoder.py``: a set of pinned bits (bits the class decoder
requires structurally — anything outside the template is a different
class or undecodable) plus free fields enumerated exhaustively.  One
field per class may be designated *symbolic* (``sym``): the driver then
enumerates only the concrete "shapes" (the product of the other fields)
and runs the decoder/verifier once per shape with the symbolic field as
an affine interval, splitting on demand (DESIGN.md §13).

Words inside a class space that the decoder rejects (undecodable
sub-encodings, non-canonical forms) are *counted and skipped* — the
verifier rejects undecodable words by construction, so they discharge
trivially.  The registry's class spaces are pairwise disjoint (distinct
pinned signature bits), and their union is exactly the per-class spaces
the round-trip property suite samples.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

from .absdomain import SymInt, SymWord

__all__ = ["Field", "InstructionClass", "CLASSES", "class_by_name",
           "default_classes", "nightly_classes"]


@dataclass(frozen=True)
class Field:
    """One free bit field of an encoding template."""

    name: str
    lo: int      # lowest bit position
    width: int
    #: Explicit value list; None means the full 0..2**width-1 range.
    values: Optional[Tuple[int, ...]] = None

    def domain(self) -> Sequence[int]:
        if self.values is not None:
            return self.values
        return range(1 << self.width)

    @property
    def mask(self) -> int:
        return ((1 << self.width) - 1) << self.lo


@dataclass(frozen=True)
class InstructionClass:
    """One encoding template plus its free fields."""

    name: str
    description: str
    template: int
    fields: Tuple[Field, ...]
    #: Name of the field to treat symbolically in shape mode, or None for
    #: concrete-only classes (no immediate worth abstracting).
    sym: Optional[str] = None
    #: Part of the default `repro.tools prove` run (fast classes); the
    #: rest are covered by the nightly CI matrix.
    default: bool = True

    def __post_init__(self):
        covered = 0
        for f in self.fields:
            if covered & f.mask:
                raise ValueError(f"{self.name}: overlapping field {f.name}")
            if self.template & f.mask:
                raise ValueError(
                    f"{self.name}: template sets bits of field {f.name}")
            covered |= f.mask
        if self.sym is not None and self.sym_field is None:
            raise ValueError(f"{self.name}: unknown sym field {self.sym}")

    @property
    def sym_field(self) -> Optional[Field]:
        for f in self.fields:
            if f.name == self.sym:
                return f
        return None

    def shape_fields(self) -> Tuple[Field, ...]:
        return tuple(f for f in self.fields if f.name != self.sym)

    def space(self) -> int:
        """Total number of words in the class space."""
        n = 1
        for f in self.fields:
            n *= len(f.domain())
        return n

    def shape_count(self) -> int:
        n = 1
        for f in self.shape_fields():
            n *= len(f.domain())
        return n

    def shapes(self) -> Iterator[int]:
        """All shape words (symbolic field bits zero)."""
        fields = self.shape_fields()
        for combo in itertools.product(*(f.domain() for f in fields)):
            word = self.template
            for f, v in zip(fields, combo):
                word |= v << f.lo
            yield word

    def words(self) -> Iterator[int]:
        """The full concrete class space."""
        for combo in itertools.product(*(f.domain() for f in self.fields)):
            word = self.template
            for f, v in zip(self.fields, combo):
                word |= v << f.lo
            yield word

    def sym_word(self, shape: int, flo: int, fhi: int) -> SymWord:
        """A symbolic word for one shape over a field sub-interval."""
        f = self.sym_field
        if f is None:
            raise ValueError(f"{self.name} has no symbolic field")
        if flo == fhi:
            raise ValueError("degenerate interval; use a concrete word")
        return SymWord(shape, f.lo, f.width, SymInt(1, 0, flo, fhi))

    def contains(self, word: int) -> bool:
        """Is this word inside the class space (template + field values)?"""
        free = 0
        for f in self.fields:
            free |= f.mask
            if f.values is not None and ((word & f.mask) >> f.lo) \
                    not in f.values:
                return False
        return (word & ~free & 0xFFFFFFFF) == self.template


_R5 = None  # full 5-bit register field shorthand (values=None)

CLASSES: Tuple[InstructionClass, ...] = (
    InstructionClass(
        name="branch-reg",
        description="br/blr/ret indirect branches (the branch-target "
                    "invariant class)",
        template=0xD61F0000,
        fields=(
            Field("opc", 21, 4),
            Field("rn", 5, 5),
        ),
    ),
    InstructionClass(
        name="ldst-post",
        description="post-index loads/stores, imm9 writeback (the class "
                    "that hid the PR-2 store-only writeback hole)",
        template=0x38000400,
        fields=(
            Field("size", 30, 2),
            Field("v", 26, 1),
            Field("opc", 22, 2),
            Field("imm9", 12, 9),
            Field("rn", 5, 5),
            Field("rt", 0, 5),
        ),
        sym="imm9",
    ),
    InstructionClass(
        name="ldst-pre",
        description="pre-index loads/stores, imm9 writeback",
        template=0x38000C00,
        fields=(
            Field("size", 30, 2),
            Field("v", 26, 1),
            Field("opc", 22, 2),
            Field("imm9", 12, 9),
            Field("rn", 5, 5),
            Field("rt", 0, 5),
        ),
        sym="imm9",
    ),
    InstructionClass(
        name="ldst-unsigned",
        description="unsigned scaled-offset loads/stores (imm12)",
        template=0x39000000,
        fields=(
            Field("size", 30, 2),
            Field("v", 26, 1),
            Field("opc", 22, 2),
            Field("imm12", 10, 12),
            Field("rn", 5, 5),
            Field("rt", 0, 5),
        ),
        sym="imm12",
    ),
    InstructionClass(
        name="addsub-imm",
        description="add/sub immediate (covers reserved-register writes "
                    "and the sp small-arithmetic rule)",
        template=0x11000000,
        fields=(
            Field("sf", 31, 1),
            Field("op", 30, 1),
            Field("S", 29, 1),
            Field("sh", 22, 1),
            Field("imm12", 10, 12),
            Field("rn", 5, 5),
            Field("rd", 0, 5),
        ),
        sym="imm12",
    ),
    InstructionClass(
        name="movewide",
        description="movz/movn/movk wide moves (imm16)",
        template=0x12800000,
        fields=(
            Field("sf", 31, 1),
            Field("opc", 29, 2),
            Field("hw", 21, 2),
            Field("imm16", 5, 16),
            Field("rd", 0, 5),
        ),
        sym="imm16",
    ),
    InstructionClass(
        name="branch-imm",
        description="b/bl direct branches (imm26; contained by the "
                    "code keep-out, DESIGN.md §13)",
        template=0x14000000,
        fields=(
            Field("op", 31, 1),
            Field("imm26", 0, 26),
        ),
        sym="imm26",
    ),
    InstructionClass(
        name="branch-cond",
        description="b.cond conditional branches (imm19)",
        template=0x54000000,
        fields=(
            Field("imm19", 5, 19),
            Field("cond", 0, 4),
        ),
        sym="imm19",
    ),
    InstructionClass(
        name="cb",
        description="cbz/cbnz compare-and-branch (imm19)",
        template=0x34000000,
        fields=(
            Field("sf", 31, 1),
            Field("op", 24, 1),
            Field("imm19", 5, 19),
            Field("rt", 0, 5),
        ),
        sym="imm19",
    ),
    InstructionClass(
        name="tb",
        description="tbz/tbnz test-bit-and-branch (imm14)",
        template=0x36000000,
        fields=(
            Field("b5", 31, 1),
            Field("op", 24, 1),
            Field("b40", 19, 5),
            Field("imm14", 5, 14),
            Field("rt", 0, 5),
        ),
        sym="imm14",
    ),
    InstructionClass(
        name="ldst-unscaled",
        description="ldur/stur unscaled-offset loads/stores (imm9; "
                    "canonicality is immediate-dependent)",
        template=0x38000000,
        fields=(
            Field("size", 30, 2),
            Field("v", 26, 1),
            Field("opc", 22, 2),
            Field("imm9", 12, 9),
            Field("rn", 5, 5),
            Field("rt", 0, 5),
        ),
        sym="imm9",
        default=False,
    ),
    InstructionClass(
        name="logical-reg0",
        description="unshifted register logical ops incl. the mov alias "
                    "(the mov-then-guard x30 pattern)",
        template=0x0A000000,
        fields=(
            Field("sf", 31, 1),
            Field("opc", 29, 2),
            Field("N", 21, 1),
            Field("rm", 16, 5),
            Field("rn", 5, 5),
            Field("rd", 0, 5),
        ),
        default=False,
    ),
    InstructionClass(
        name="addsub-ext",
        description="add/sub extended-register (the guard instruction's "
                    "own class)",
        template=0x0B200000,
        fields=(
            Field("sf", 31, 1),
            Field("op", 30, 1),
            Field("S", 29, 1),
            Field("rm", 16, 5),
            Field("option", 13, 3),
            Field("imm3", 10, 3),
            Field("rn", 5, 5),
            Field("rd", 0, 5),
        ),
        default=False,
    ),
    InstructionClass(
        name="ldst-regoffset",
        description="register-offset loads/stores incl. the "
                    "zero-instruction guard addressing mode",
        template=0x38200800,
        fields=(
            Field("size", 30, 2),
            Field("v", 26, 1),
            Field("opc", 22, 2),
            Field("rm", 16, 5),
            Field("option", 13, 3),
            Field("S", 12, 1),
            Field("rn", 5, 5),
            Field("rt", 0, 5),
        ),
        default=False,
    ),
    InstructionClass(
        name="ldst-pair",
        description="ldp/stp register pairs (imm7, all index modes)",
        template=0x28000000,
        fields=(
            Field("opc", 30, 2),
            Field("v", 26, 1),
            Field("mode", 23, 2),
            Field("load", 22, 1),
            Field("imm7", 15, 7),
            Field("rt2", 10, 5),
            Field("rn", 5, 5),
            Field("rt", 0, 5),
        ),
        sym="imm7",
        default=False,
    ),
    InstructionClass(
        name="exclusive",
        description="load/store exclusive and acquire/release "
                    "(rt2 pinned to 31 as the decoder requires)",
        template=0x08007C00,
        fields=(
            Field("size", 30, 2),
            Field("o2", 23, 1),
            Field("L", 22, 1),
            Field("rs", 16, 5),
            Field("o0", 15, 1),
            Field("rn", 5, 5),
            Field("rt", 0, 5),
        ),
        default=False,
    ),
)


def class_by_name(name: str) -> InstructionClass:
    for cls in CLASSES:
        if cls.name == name:
            return cls
    known = ", ".join(c.name for c in CLASSES)
    raise KeyError(f"unknown instruction class {name!r} (known: {known})")


def default_classes() -> Tuple[InstructionClass, ...]:
    return tuple(c for c in CLASSES if c.default)


def nightly_classes() -> Tuple[InstructionClass, ...]:
    return tuple(c for c in CLASSES if not c.default)

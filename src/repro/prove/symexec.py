"""Bounded symbolic execution of verifier-accepted words (DESIGN.md §13).

For every word in an instruction class the driver asks two questions:

1. *Acceptance*: does the :class:`~repro.core.verifier.Verifier` accept
   the word in **any** of a fixed set of continuation contexts?  The
   verifier's per-instruction rules consult at most the next one or two
   instructions (a guard, a ``blr``, or an sp re-establishing access), so
   a small context set covers every way a word can appear in an accepted
   program.
2. *Obligation*: for **each** accepting context, run the abstract
   transfer function over the word plus its context starting from the
   weakest verified-program state and check that (a) indirect branch
   targets stay in the sandbox, (b) every memory effect stays inside the
   containment region, and (c) the reserved-register invariants hold at
   the end of the sequence.

A word that is accepted but fails an obligation is a *counterexample*:
either a verifier soundness bug or a prover/emulator disagreement.  The
symbolic field of a class is threaded through the real decoder as an
affine interval and split on demand, so one analysis covers thousands of
immediates at once; ``cross_check`` and ``probe`` re-validate sampled
results against fully concrete analysis and against the stepping
emulator respectively.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..arm64.decoder import decode_word
from ..arm64.operands import Imm, OFFSET
from ..arm64.registers import Reg
from ..core.constants import SP_SMALL_IMM
from ..core.guards import sp_guard_pair, x30_guard
from ..core.verifier import Verifier, VerifierPolicy
from ..memory.layout import PAGE_SIZE, SANDBOX_SIZE
from .absdomain import (
    AbsVal,
    CONTAIN_HI,
    CONTAIN_LO,
    Concretize,
    NeedSplit,
    TOP,
    _sp_rest,
    bounds,
    initial_state,
    invariant_failures,
    mem_effects,
    transfer,
)
from .enumerate import InstructionClass
from .report import ClassReport, Counterexample

__all__ = ["CONTEXTS", "context_words", "analyze_word", "check_obligations",
           "prove_class", "violating", "probe_word", "WeakenedVerifier"]

# Context tail instructions, by encoded word (decoded lazily below):
#:  str x0, [sp]        — the d=0 sp re-establishing access
_STR_SP0 = 0xF90003E0
#:  str x0, [sp, #2000] — a large-displacement re-establishing access;
#:  before the SP_SMALL_IMM closing-access bound this was accepted and
#:  let sp drift past the guard band over many windows (DESIGN.md §13)
_STR_SP_FAR = 0xF903EBE0
#:  blr x30             — the runtime-call tail
_BLR_X30 = 0xD63F03C0

_CONTEXT_CACHE: Optional[Tuple[Tuple[str, tuple], ...]] = None


def _build_contexts() -> Tuple[Tuple[str, tuple], ...]:
    return (
        ("solo", ()),
        ("x30-guard", (x30_guard(),)),
        ("sp-guard", tuple(sp_guard_pair())),
        ("sp-close", (decode_word(_STR_SP0),)),
        ("sp-close-far", (decode_word(_STR_SP_FAR),)),
        ("runtime-call", (decode_word(_BLR_X30),)),
        ("x30-guard+sp-guard", (x30_guard(),) + tuple(sp_guard_pair())),
    )


def contexts() -> Tuple[Tuple[str, tuple], ...]:
    """The fixed ``(name, tail-instructions)`` continuation contexts."""
    global _CONTEXT_CACHE
    if _CONTEXT_CACHE is None:
        _CONTEXT_CACHE = _build_contexts()
    return _CONTEXT_CACHE


CONTEXTS = tuple(name for name, _ in _build_contexts())

#: Proper sub-contexts of each context (tails that are prefixes/subsets).
#: Obligations are only checked for *minimal* accepting contexts: if a
#: word is already accepted with less lookahead, the larger context's
#: extra tail is unrelated subsequent code whose execution is covered by
#: its own per-word proof (the program-point induction, DESIGN.md §13).
_SUB_CONTEXTS: Dict[str, Tuple[str, ...]] = {
    "solo": (),
    "x30-guard": ("solo",),
    "sp-guard": ("solo",),
    "sp-close": ("solo",),
    "sp-close-far": ("solo",),
    "runtime-call": ("solo",),
    "x30-guard+sp-guard": ("solo", "x30-guard", "sp-guard"),
}


def context_words(name: str) -> List[int]:
    """Encoded words of a context's tail (for the corpus bridge)."""
    from ..arm64.encoder import encode_instruction

    for ctx_name, tail in contexts():
        if ctx_name == name:
            return [encode_instruction(inst) for inst in tail]
    raise KeyError(f"unknown context {name!r}")


# ---------------------------------------------------------------------------
# Obligations


def _imax(a, b):
    """max() that works when one side is a SymInt (comparison may split)."""
    if a <= b:
        return b
    return a


def _imin(a, b):
    if a <= b:
        return a
    return b


def _sp_def_or_wide_access(inst) -> bool:
    """Does this word only ever execute at an sp *rest* point?

    The verifier forbids sp writes and sp accesses inside an arithmetic
    window (the window scan stops at both), except for the small closing
    access itself.  So a word that defines sp, or accesses sp with a
    displacement too large to be a closer, can only sit at a rest point —
    its precondition is the rest hull, not the pending hull.
    """
    mem = inst.mem
    if mem is not None and mem.base.is_sp:
        if mem.writes_back:
            return True
        off = mem.offset
        if off is None:
            return False
        if isinstance(off, Imm):
            # May raise NeedSplit on a symbolic displacement straddling
            # the bound; the driver splits the interval and retries.
            return not bool(abs(mem.imm_value) < SP_SMALL_IMM)
        return True
    for reg in inst.defs():
        if reg.is_sp:
            return True
    return False


def _refine_sp(inst, state: dict) -> bool:
    """Intersect sp with what a *completed* sp-relative access implies.

    Trap-before-writeback: if the access at ``sp + d`` completed, then
    ``sp + d`` (through ``sp + d + width - 1``) was readable/writable, so
    sp itself lies within the readable region shifted by ``-d``.  Stores
    pin to the mapped sandbox; loads may also land in the neighbour's
    read-only table page.  Returns True if a refinement was applied.
    """
    mem = inst.mem
    if mem is None or not mem.base.is_sp or mem.writes_back:
        return False
    off = mem.offset
    if off is not None and not isinstance(off, Imm):
        return False
    d = mem.imm_value if (mem.mode == OFFSET and off is not None) else 0
    hi_mapped = (SANDBOX_SIZE - 1 if inst.is_store
                 else SANDBOX_SIZE + PAGE_SIZE - 1)
    old = state["sp"]
    if old.rel:
        state["sp"] = AbsVal(True, _imax(old.lo, 0 - d),
                             _imin(old.hi, hi_mapped - d))
    else:
        state["sp"] = AbsVal(True, 0 - d, hi_mapped - d)
    return True


def check_obligations(stream: List, policy: VerifierPolicy) -> List[str]:
    """Prove one accepted instruction sequence upholds the invariants.

    Returns human-readable violation strings (empty = proved).  May raise
    :class:`NeedSplit`/:class:`Concretize` when the word is symbolic and
    the answer depends on the immediate — the driver splits and retries.
    """
    state = initial_state()
    sp_touched = False
    if stream and _sp_def_or_wide_access(stream[0]):
        # The word under test can only execute at a rest point.
        state["sp"] = _sp_rest()
        sp_touched = True
    violations: List[str] = []
    for inst in stream:
        if inst.is_indirect_branch and inst.operands:
            target = inst.operands[0]
            if isinstance(target, Reg) and not target.is_sp:
                val = state[target.index]
                ok = bool(val.rel and (val.lo >= 0)
                          and (val.hi <= SANDBOX_SIZE - 1))
                if not ok:
                    violations.append(
                        f"branch target {target} may leave the sandbox: "
                        f"{val!r} ({inst})")
        for is_load, is_store, addr, width in mem_effects(inst, state):
            if is_load and not is_store and not policy.sandbox_loads:
                # store-only mode: load addresses are the documented
                # carve-out A4 (DESIGN.md §13) — confidentiality, not
                # integrity, so no containment obligation.
                pass
            elif not addr.rel:
                violations.append(
                    f"access address unprovable (not base-relative): "
                    f"{inst} at {addr!r}")
            elif not bool((addr.lo >= CONTAIN_LO)
                          and (addr.hi <= CONTAIN_HI - 1)):
                violations.append(
                    f"access may escape containment: {inst} at {addr!r}")
        state = transfer(inst, state)
        if any(r.is_sp for r in inst.defs()):
            sp_touched = True
        if _refine_sp(inst, state):
            sp_touched = True
    sp_req = _sp_rest() if sp_touched else None
    violations.extend(invariant_failures(state, sp_req=sp_req))
    return violations


# ---------------------------------------------------------------------------
# Per-word verdicts

#: Markers of rejection reasons that depend on the *following*
#: instructions — the only reasons a continuation context can cure.
#: Everything else is a property of the instruction itself and rejects
#: identically in every context (a big fast-path: one solo check
#: classifies the word).
_CONTEXT_SENSITIVE_MARKERS = (
    "without a following",
    "unsafe sp modification",
    "x30 modified by something other",
)


def _context_sensitive(reason: str) -> bool:
    return any(marker in reason for marker in _CONTEXT_SENSITIVE_MARKERS)


@dataclass(frozen=True)
class Verdict:
    """Outcome of analyzing one (possibly symbolic) word."""

    decoded: bool
    accepted: bool
    #: Names of every context in which the verifier accepts the word.
    contexts: Tuple[str, ...] = ()
    #: (context name, violation string) for every failed obligation.
    violations: Tuple[Tuple[str, str], ...] = ()


def analyze_word(word, verifier: Verifier) -> Verdict:
    """Classify one word: undecodable, rejected, proved, or violating.

    ``word`` may be a concrete int or a :class:`SymWord`; symbolic
    analysis raises :class:`NeedSplit`/:class:`Concretize` when the
    answer depends on the symbolic field.
    """
    inst = decode_word(word)
    if inst is None:
        return Verdict(False, False)
    solo_reasons = verifier.check_instruction(inst, [inst], 0)
    if not solo_reasons:
        # Solo acceptance is the unique minimal context: every other
        # context only adds lookahead, which never revokes acceptance.
        violations = tuple(
            ("solo", v) for v in check_obligations([inst], verifier.policy))
        return Verdict(True, True, ("solo",), violations)
    if not any(_context_sensitive(r) for r in solo_reasons):
        # No continuation can cure these reasons — rejected everywhere.
        return Verdict(True, False)
    accepted: List[str] = []
    streams: Dict[str, List] = {}
    for name, tail in contexts():
        if not tail:
            continue  # solo already checked
        stream = [inst] + list(tail)
        if verifier.check_instruction(inst, stream, 0):
            continue
        accepted.append(name)
        streams[name] = stream
    violations = []
    for name in accepted:
        if any(sub in streams for sub in _SUB_CONTEXTS[name]):
            continue  # not minimal: covered with less lookahead
        for v in check_obligations(streams[name], verifier.policy):
            violations.append((name, v))
    return Verdict(True, bool(accepted), tuple(accepted), tuple(violations))


def violating(words: Iterable[int], policy: VerifierPolicy,
              verifier: Optional[Verifier] = None) -> bool:
    """ddmin predicate: is this concrete word sequence a counterexample?

    True iff the verifier accepts every instruction of the sequence *as a
    whole program* and the abstract obligations fail on it.  Used by the
    counterexample bridge so the shrinker never reduces past the point
    where the verifier starts rejecting.
    """
    words = list(words)
    insts = [decode_word(w) for w in words]
    if any(i is None for i in insts):
        return False
    verifier = verifier or Verifier(policy)
    for i, inst in enumerate(insts):
        if verifier.check_instruction(inst, insts, i):
            return False
    return bool(check_obligations(insts, verifier.policy))


# ---------------------------------------------------------------------------
# The interval driver


@dataclass
class _Tally:
    """Mutable counters threaded through one class run."""

    report: ClassReport
    reservoir: List[int] = field(default_factory=list)

    def record(self, verdict: Verdict, count: int, rep_word: int,
               cls: InstructionClass, shape: Optional[int] = None,
               flo: Optional[int] = None, fhi: Optional[int] = None) -> None:
        rep = self.report
        rep.checked += count
        if not verdict.decoded:
            rep.undecodable += count
            return
        if not verdict.accepted:
            rep.rejected += count
            return
        rep.accepted += count
        for name in verdict.contexts:
            rep.accepted_by_context[name] = \
                rep.accepted_by_context.get(name, 0) + count
        if len(self.reservoir) < 4096:
            self.reservoir.append(rep_word)
        for ctx, reason in verdict.violations:
            inst = decode_word(rep_word)
            fname = cls.sym_field.name if (cls.sym_field is not None
                                           and shape is not None) else ""
            rep.add(Counterexample(
                klass=cls.name, policy=rep.policy, context=ctx,
                word=rep_word, count=count, reason=reason,
                disasm=str(inst) if inst is not None else "",
                shape=shape, field=fname, flo=flo, fhi=fhi))


def _analyze_interval(cls: InstructionClass, shape: int, flo: int, fhi: int,
                      verifier: Verifier, tally: _Tally,
                      segments: Optional[List[tuple]] = None) -> None:
    """Resolve one shape over a symbolic-field interval, splitting on
    demand.  Appends ``(flo, fhi, accepted, n_violations)`` records to
    ``segments`` when provided (for cross-checking)."""
    stack = [(flo, fhi)]
    fld = cls.sym_field
    while stack:
        lo, hi = stack.pop()
        if lo > hi:
            continue
        if lo == hi:
            word = shape | (lo << fld.lo)
            v = analyze_word(word, verifier)
            tally.record(v, 1, word, cls, shape=shape, flo=lo, fhi=hi)
            if segments is not None:
                segments.append((lo, hi, v.accepted, len(v.violations)))
            continue
        sym = cls.sym_word(shape, lo, hi)
        try:
            v = analyze_word(sym, verifier)
        except NeedSplit as exc:
            split_done = False
            for p in sorted(set(exc.points)):
                if lo < p <= hi:
                    stack.append((lo, p - 1))
                    stack.append((p, hi))
                    split_done = True
                    break
            if not split_done:
                # Defensive: split point outside the interval — bisect.
                mid = (lo + hi) // 2
                stack.append((lo, mid))
                stack.append((mid + 1, hi))
            tally.report.splits += 1
            continue
        except Concretize:
            tally.report.concretized += 1
            for f in range(lo, hi + 1):
                word = shape | (f << fld.lo)
                cv = analyze_word(word, verifier)
                tally.record(cv, 1, word, cls, shape=shape, flo=f, fhi=f)
                if segments is not None:
                    segments.append((f, f, cv.accepted, len(cv.violations)))
            continue
        count = hi - lo + 1
        rep_word = shape | (lo << fld.lo)
        tally.record(v, count, rep_word, cls, shape=shape, flo=lo, fhi=hi)
        if segments is not None:
            segments.append((lo, hi, v.accepted, len(v.violations)))


def prove_class(cls: InstructionClass,
                policy: Optional[VerifierPolicy] = None,
                verifier: Optional[Verifier] = None,
                mode: str = "auto",
                limit: Optional[int] = None,
                cross_check: int = 0,
                probe: int = 0,
                seed: int = 0) -> ClassReport:
    """Exhaustively check one instruction class under one policy.

    ``mode``: ``"words"`` enumerates every concrete word, ``"shapes"``
    enumerates concrete shapes with the class's symbolic field as an
    interval, ``"auto"`` picks shapes when the class has a symbolic field
    and a non-trivial space.  ``limit`` truncates the enumeration (the
    report is marked partial).  ``cross_check`` re-analyzes that many
    seeded sample shapes concretely and compares; ``probe`` single-steps
    that many accepted words on the real emulator and checks the concrete
    effects against the abstract hulls.
    """
    if verifier is None:
        verifier = Verifier(policy or VerifierPolicy())
    policy = verifier.policy
    if mode == "auto":
        mode = "shapes" if (cls.sym is not None and cls.space() > 4096) \
            else "words"
    if mode == "shapes" and cls.sym is None:
        mode = "words"
    report = ClassReport(klass=cls.name, policy=policy.label(), mode=mode,
                         space=cls.space())
    tally = _Tally(report)
    rng = random.Random(seed)

    if mode == "words":
        for n, word in enumerate(cls.words()):
            if limit is not None and n >= limit:
                report.truncated = True
                break
            v = analyze_word(word, verifier)
            tally.record(v, 1, word, cls)
    else:
        fld = cls.sym_field
        fhi = (1 << fld.width) - 1 if fld.values is None \
            else max(fld.values)
        flo = 0 if fld.values is None else min(fld.values)
        sample: set = set()
        if cross_check:
            total = cls.shape_count()
            sample = set(rng.sample(range(total),
                                    min(cross_check, total)))
        for n, shape in enumerate(cls.shapes()):
            if limit is not None and n >= limit:
                report.truncated = True
                break
            segments: Optional[List[tuple]] = [] if n in sample else None
            _analyze_interval(cls, shape, flo, fhi, verifier, tally,
                              segments)
            if segments is not None:
                _cross_check_shape(cls, shape, segments, verifier, report,
                                   rng)

    if probe and tally.reservoir:
        picks = rng.sample(tally.reservoir,
                           min(probe, len(tally.reservoir)))
        for word in sorted(picks):
            report.probes += 1
            report.probe_issues.extend(probe_word(word, rng.getrandbits(32)))
    return report


def _cross_check_shape(cls: InstructionClass, shape: int,
                       segments: List[tuple], verifier: Verifier,
                       report: ClassReport, rng: random.Random) -> None:
    """Spot-check symbolic segment verdicts against concrete analysis."""
    fld = cls.sym_field
    for lo, hi, accepted, n_viol in segments:
        picks = {lo, hi, rng.randint(lo, hi)}
        for f in sorted(picks):
            word = shape | (f << fld.lo)
            v = analyze_word(word, verifier)
            report.cross_checks += 1
            if v.accepted != accepted or bool(v.violations) != bool(n_viol):
                report.mismatches.append(
                    f"{cls.name} shape {shape:#010x} {fld.name}={f}: "
                    f"symbolic said accepted={accepted}/violations={n_viol}"
                    f", concrete says accepted={v.accepted}/"
                    f"violations={len(v.violations)}")


# ---------------------------------------------------------------------------
# Emulator differential probe


def probe_word(word: int, seed: int = 0) -> List[str]:
    """Single-step one accepted word on the stepping emulator and check
    the concrete effects against the abstract post-state.

    Two checks: a trapping instruction must leave every register
    unchanged (the trap-before-writeback property the sp hulls rely on),
    and a completed instruction must leave each reserved register inside
    its abstract post-hull.  Returns human-readable issue strings.
    """
    from ..emulator.machine import Machine, Trap
    from ..engine import EngineConfig
    from ..memory import PERM_RW, PERM_RX, PagedMemory, SandboxLayout
    from ..memory.pages import MemoryFault

    inst = decode_word(word)
    if inst is None:
        return []
    layout = SandboxLayout.for_slot(1)
    memory = PagedMemory()
    code = layout.base + 0x40000
    memory.map_region(code, PAGE_SIZE, PERM_RW)
    memory.write_u32(code, word)
    memory.protect(code, PAGE_SIZE, PERM_RX)
    data = layout.base + 0x2000_0000
    memory.map_region(data, 4 * PAGE_SIZE, PERM_RW)
    machine = Machine(memory, engine=EngineConfig(kind="stepping"))
    rng = random.Random(seed)
    base = layout.base
    cpu = machine.cpu
    for i in range(31):
        cpu.regs[i] = rng.getrandbits(64)
    cpu.regs[21] = base
    for idx in (18, 23, 24):
        cpu.regs[idx] = base + rng.choice(
            (0, data - base, SANDBOX_SIZE - 16))
    cpu.regs[22] = rng.choice((0, (1 << 32) - 1, data - base))
    cpu.regs[30] = base + rng.choice((0x40000, data - base))
    cpu.sp = base + rng.choice((data - base + 512, data - base + 2048))
    cpu.pc = code
    pre = cpu.clone()
    trapped = False
    try:
        machine.step()
    except (Trap, MemoryFault):
        trapped = True
    issues: List[str] = []
    if trapped:
        for i in range(31):
            if cpu.regs[i] != pre.regs[i]:
                issues.append(
                    f"{word:#010x} ({inst}): trap left x{i} modified "
                    f"({pre.regs[i]:#x} -> {cpu.regs[i]:#x})")
        if cpu.sp != pre.sp:
            issues.append(
                f"{word:#010x} ({inst}): trap left sp modified "
                f"({pre.sp:#x} -> {cpu.sp:#x})")
        return issues
    post = transfer(inst, initial_state())
    for key in (18, 21, 22, 23, 24, 30, "sp"):
        cur = cpu.sp if key == "sp" else cpu.regs[key]
        prev = pre.sp if key == "sp" else pre.regs[key]
        if cur == prev:
            continue
        hull = post[key]
        if hull is TOP or (not hull.rel and bounds(hull.lo)[0] == 0
                           and bounds(hull.hi)[1] == (1 << 64) - 1):
            continue
        if hull.rel:
            delta = (cur - base) % (1 << 64)
            if delta >= 1 << 63:
                delta -= 1 << 64
            lo = bounds(hull.lo)[0]
            hi = bounds(hull.hi)[1]
            ok = lo <= delta <= hi
            shown = f"base{delta:+#x}"
        else:
            lo = bounds(hull.lo)[0]
            hi = bounds(hull.hi)[1]
            ok = lo <= cur <= hi
            shown = f"{cur:#x}"
        if not ok:
            name = f"x{key}" if key != "sp" else "sp"
            issues.append(
                f"{word:#010x} ({inst}): {name} = {shown} outside "
                f"abstract hull {hull!r}")
    return issues


# ---------------------------------------------------------------------------
# Non-vacuity


class WeakenedVerifier(Verifier):
    """A deliberately unsound verifier for the prover's self-test.

    Drops every violation whose reason starts with ``reason_prefix`` —
    by default the PR-2 writeback-through-reserved-base check, restoring
    the exact store-only hole that differential fuzzing found.  The
    prover must produce counterexamples against this verifier or it is
    vacuous (ISSUE 7 acceptance criterion).
    """

    def __init__(self, policy: Optional[VerifierPolicy] = None,
                 reason_prefix: str = "writeback would modify reserved"):
        super().__init__(policy)
        self.reason_prefix = reason_prefix

    def _check(self, inst, stream, i):
        for reason in super()._check(inst, stream, i):
            if not reason.startswith(self.reason_prefix):
                yield reason

"""Consolidated exception hierarchy for the repro package.

Every error raised by the package derives from :class:`ReproError`, so
embedders can catch one base class at the sandbox boundary.  Errors that
previously subclassed a builtin (``ValueError``, ``OSError``) keep that
builtin first in their MRO, so existing ``except ValueError`` /
``except OSError`` call sites continue to work.

The classes used to be defined ad hoc in the modules that raise them
(``repro.core.verifier``, ``repro.runtime.loader``, ...).  Importing
them from those old locations still works for one release but emits a
:class:`DeprecationWarning`; import from :mod:`repro.errors` (or the
package roots, which re-export the common ones) instead.
"""

from __future__ import annotations

import errno as _errno
import warnings as _warnings

__all__ = [
    "ReproError",
    "ConfigError",
    "VerificationError",
    "GuardError",
    "RewriteError",
    "ElfError",
    "LoadError",
    "RuntimeError_",
    "Deadlock",
    "ClusterError",
    "CheckpointError",
    "ServeError",
    "Overloaded",
    "StalePolicy",
    "VfsError",
]


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigError(ValueError, ReproError):
    """An engine or gateway configuration is invalid or conflicting.

    Raised by :class:`repro.engine.EngineConfig` validation and by
    surfaces that refuse a config instead of silently clamping it (the
    gateway's timeslice/checkpoint-interval pinning).
    """


class VerificationError(ReproError):
    """Raised when a binary fails verification and was required to pass."""


class GuardError(ValueError, ReproError):
    """Raised when an access cannot be made safe (malformed input)."""


class RewriteError(ValueError, ReproError):
    """The input assembly cannot be sandboxed."""


class ElfError(ValueError, ReproError):
    """Raised for malformed ELF input."""


class LoadError(ReproError):
    """Raised when an image cannot be loaded into a sandbox slot."""


class RuntimeError_(ReproError):
    """Generic runtime failure."""


class Deadlock(RuntimeError_):
    """All processes are blocked and none can make progress."""


class ClusterError(RuntimeError_):
    """A sharded cluster run cannot complete (worker restarts exhausted)."""


class CheckpointError(RuntimeError_):
    """A checkpoint cannot be taken or restored."""


class ServeError(RuntimeError_):
    """The serving gateway cannot accept or complete a request."""


class Overloaded(ServeError):
    """Typed admission rejection: the gateway shed this request.

    ``reason`` is one of the gateway's rejection reasons
    (``"throttled"``, ``"queue-full"``, ``"deadline"``,
    ``"unknown-tenant"``) so callers can react per cause instead of
    parsing message text.
    """

    def __init__(self, reason: str, tenant: str = "",
                 request_id: int = -1):
        super().__init__(
            f"request rejected ({reason})"
            + (f" for tenant {tenant!r}" if tenant else ""))
        self.reason = reason
        self.tenant = tenant
        self.request_id = request_id


class StalePolicy(ServeError):
    """A policy hot-reload carried a non-monotonic version token."""

    def __init__(self, tenant: str, token: int, current: int):
        super().__init__(
            f"stale policy reload for tenant {tenant!r}: "
            f"token {token} <= current version {current}")
        self.tenant = tenant
        self.token = token
        self.current = current


class VfsError(OSError, ReproError):
    """A filesystem error carrying a Unix errno."""

    def __init__(self, err: int, path: str = ""):
        super().__init__(err, _errno.errorcode.get(err, str(err)), path)
        self.err = err


def deprecated_reexport(module_name: str, exports: dict):
    """Module ``__getattr__`` factory for the one-release import shims.

    The old defining modules install this so ``from repro.core.verifier
    import VerificationError`` keeps resolving — with a warning — while
    the canonical home is :mod:`repro.errors`.
    """

    def __getattr__(name: str):
        target = exports.get(name)
        if target is None:
            raise AttributeError(
                f"module {module_name!r} has no attribute {name!r}"
            )
        _warnings.warn(
            f"importing {name} from {module_name} is deprecated; "
            f"use repro.errors.{name}",
            DeprecationWarning,
            stacklevel=2,
        )
        return target

    return __getattr__

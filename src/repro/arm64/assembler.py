"""Two-pass assembler: Program -> raw section bytes + symbol table.

Pass 1 lays out sections and assigns every label an address; pass 2 encodes
instructions (resolving label references) and serializes data directives.

Sandbox binaries are assembled with section addresses that are *offsets
within the 4GiB sandbox region* — all code is position-independent at the
region granularity (direct branches and adr/adrp are PC-relative), which is
what makes the paper's single-address-space ``fork`` possible (§5.3): the
loader can map the same image at any 4GiB-aligned base.
"""

from __future__ import annotations

import re
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .encoder import EncodeError, encode_instruction
from .instructions import Instruction
from .program import DATA_DIRECTIVES, Directive, LabelDef, Program

__all__ = ["AssembleError", "AssembledImage", "Section", "assemble"]

DEFAULT_LAYOUT = {
    ".text": 0x0004_0000,
    ".rodata": 0x1000_0000,
    ".data": 0x2000_0000,
    ".bss": 0x3000_0000,
}


class AssembleError(ValueError):
    """Raised for layout or encoding failures."""


@dataclass
class Section:
    """One output section: a base address and its bytes."""

    name: str
    base: int
    data: bytearray = field(default_factory=bytearray)

    @property
    def end(self) -> int:
        return self.base + len(self.data)


@dataclass
class AssembledImage:
    """The result of assembling a program."""

    sections: Dict[str, Section]
    symbols: Dict[str, int]
    entry: int
    #: Guard provenance: address of each rewriter-inserted guard
    #: instruction -> its guard class (see ``repro.core.guards``).
    #: Addresses are sandbox offsets, like everything else in the image.
    provenance: Dict[int, str] = field(default_factory=dict)

    @property
    def text(self) -> Section:
        return self.sections[".text"]

    def section_or_none(self, name: str) -> Optional[Section]:
        section = self.sections.get(name)
        if section is not None and section.data:
            return section
        return None


_IGNORED_DIRECTIVES = {
    ".globl", ".global", ".type", ".size", ".file", ".ident", ".arch",
    ".cpu", ".local", ".weak", ".hidden", ".cfi_startproc", ".cfi_endproc",
    ".cfi_def_cfa_offset", ".cfi_offset", ".cfi_restore", ".addrsig",
    ".addrsig_sym",
}

_STRING_RE = re.compile(r'^"(.*)"$', re.DOTALL)


def _canonical_section(directive: Directive, current: str) -> Optional[str]:
    if directive.name in (".text", ".data", ".bss", ".rodata"):
        return directive.name
    if directive.name == ".section" and directive.args:
        name = directive.args[0].strip()
        if not name.startswith("."):
            name = f".{name}"
        # Collapse .rodata.str1.1 style names.
        for known in (".text", ".rodata", ".data", ".bss"):
            if name == known or name.startswith(known + "."):
                return known
        return ".data"
    return None


def _item_size(item, current_align: int) -> int:
    """Size in bytes contributed by one item (alignment handled separately)."""
    if isinstance(item, Instruction):
        return 4
    if isinstance(item, Directive):
        if item.name in DATA_DIRECTIVES:
            return DATA_DIRECTIVES[item.name] * max(1, len(item.args))
        if item.name in (".skip", ".space", ".zero"):
            return int(item.args[0], 0)
        if item.name in (".ascii", ".asciz", ".string"):
            return sum(
                _string_length(arg) + (item.name != ".ascii")
                for arg in item.args
            )
    return 0


def _string_length(arg: str) -> int:
    match = _STRING_RE.match(arg.strip())
    if not match:
        raise AssembleError(f"bad string literal: {arg!r}")
    return len(_unescape(match.group(1)))


def _unescape(text: str) -> bytes:
    return text.encode("utf-8").decode("unicode_escape").encode("latin-1")


def _alignment_of(item) -> Optional[int]:
    """Alignment in bytes requested by an .align/.p2align/.balign directive."""
    if not isinstance(item, Directive):
        return None
    if item.name in (".align", ".p2align"):
        return 1 << int(item.args[0], 0)
    if item.name == ".balign":
        return int(item.args[0], 0)
    return None


def assemble(
    program: Program,
    layout: Optional[Dict[str, int]] = None,
    entry_symbol: str = "_start",
) -> AssembledImage:
    """Assemble ``program``; section bases come from ``layout``."""
    bases = dict(DEFAULT_LAYOUT)
    if layout:
        bases.update(layout)

    # Pass 1: layout.
    cursors: Dict[str, int] = {}
    symbols: Dict[str, int] = {}
    placed: List[Tuple[object, str, int]] = []  # (item, section, address)
    current = ".text"
    for item in program.items:
        if isinstance(item, Directive):
            switched = _canonical_section(item, current)
            if switched is not None:
                current = switched
                cursors.setdefault(current, bases.get(current, 0))
                continue
            if item.name in _IGNORED_DIRECTIVES:
                continue
        cursor = cursors.setdefault(current, bases.get(current, 0))
        align = _alignment_of(item)
        if align is not None:
            if align & (align - 1):
                raise AssembleError(f"alignment {align} not a power of two")
            pad = (-cursor) % align
            cursors[current] = cursor + pad
            placed.append((item, current, cursors[current]))
            continue
        if isinstance(item, LabelDef):
            if item.name in symbols:
                raise AssembleError(f"duplicate label {item.name!r}")
            symbols[item.name] = cursor
            continue
        placed.append((item, current, cursor))
        cursors[current] = cursor + _item_size(item, 0)

    # Pass 2: emission.
    sections: Dict[str, Section] = {
        name: Section(name, bases.get(name, 0)) for name in cursors
    }
    provenance: Dict[int, str] = {}
    for item, section_name, address in placed:
        section = sections[section_name]
        pad = address - section.end
        if pad < 0:
            raise AssembleError("layout regression (internal error)")
        filler = b"\x00" * pad
        if isinstance(item, Instruction) or (
            section_name == ".text" and pad and pad % 4 == 0
        ):
            if section_name == ".text" and pad % 4 == 0:
                filler = struct.pack("<I", 0xD503201F) * (pad // 4)
        section.data.extend(filler)
        if isinstance(item, Instruction):
            try:
                word = encode_instruction(item, pc=address, symbols=symbols)
            except EncodeError as exc:
                raise AssembleError(str(exc)) from None
            section.data.extend(struct.pack("<I", word))
            if item.guard is not None:
                provenance[address] = item.guard
        elif isinstance(item, Directive):
            section.data.extend(_emit_directive(item, symbols))

    if entry_symbol in symbols:
        entry = symbols[entry_symbol]
    elif "main" in symbols:
        entry = symbols["main"]
    elif ".text" in sections:
        entry = sections[".text"].base
    else:
        raise AssembleError("no entry point and no .text section")
    return AssembledImage(sections=sections, symbols=symbols, entry=entry,
                          provenance=provenance)


def _emit_directive(item: Directive, symbols: Dict[str, int]) -> bytes:
    name = item.name
    if name in DATA_DIRECTIVES:
        size = DATA_DIRECTIVES[name]
        out = bytearray()
        fmt = {1: "<B", 2: "<H", 4: "<I", 8: "<Q"}[size]
        for arg in item.args or ("0",):
            arg = arg.strip()
            if re.match(r"^[+-]?(0[xX][0-9a-fA-F]+|\d+)$", arg):
                value = int(arg, 0)
            elif arg in symbols:
                value = symbols[arg]
            else:
                raise AssembleError(f"cannot resolve data value {arg!r}")
            out.extend(struct.pack(fmt, value & ((1 << (size * 8)) - 1)))
        return bytes(out)
    if name in (".skip", ".space", ".zero"):
        count = int(item.args[0], 0)
        value = int(item.args[1], 0) if len(item.args) > 1 else 0
        return bytes([value & 0xFF]) * count
    if name in (".ascii", ".asciz", ".string"):
        out = bytearray()
        for arg in item.args:
            match = _STRING_RE.match(arg.strip())
            if not match:
                raise AssembleError(f"bad string literal: {arg!r}")
            out.extend(_unescape(match.group(1)))
            if name != ".ascii":
                out.append(0)
        return bytes(out)
    if name in (".align", ".p2align", ".balign"):
        return b""
    raise AssembleError(f"unsupported directive {name}")

"""ARMv8.0 machine-code encoder for the supported instruction subset.

Instructions are encoded to genuine AArch64 32-bit words (little-endian in
memory).  Alias mnemonics (``mov``, ``cmp``, ``lsl``-immediate, ``cset``,
``mul``, ...) are canonicalized to their underlying encodings, exactly as a
real assembler would, so the verifier always sees real machine code.

Label operands are resolved through a ``symbols`` mapping (name -> absolute
address) supplied by the assembler's layout pass.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from . import isa
from .instructions import Instruction
from .operands import (
    CONDITION_CODES,
    Cond,
    Extended,
    FloatImm,
    Imm,
    Label,
    Mem,
    OFFSET,
    POST_INDEX,
    PRE_INDEX,
    Shifted,
    ShiftedImm,
    VecReg,
    canonical_condition,
    invert_condition,
)
from .registers import INDEX_31, LR, Reg, SP, WSP, WZR, XZR

__all__ = ["EncodeError", "encode_instruction", "encode_bitmask",
           "encode_fp8", "reencode_word"]


class EncodeError(ValueError):
    """Raised when an instruction cannot be encoded."""


def _mask(value: int, bits: int) -> int:
    return value & ((1 << bits) - 1)


def _signed_fits(value: int, bits: int) -> bool:
    return -(1 << (bits - 1)) <= value < (1 << (bits - 1))


def _check_signed(value: int, bits: int, what: str) -> int:
    if not _signed_fits(value, bits):
        raise EncodeError(f"{what} {value} does not fit in {bits} signed bits")
    return _mask(value, bits)


def _check_unsigned(value: int, bits: int, what: str) -> int:
    if not 0 <= value < (1 << bits):
        raise EncodeError(f"{what} {value} does not fit in {bits} unsigned bits")
    return value


# ---------------------------------------------------------------------------
# Bitmask immediates (logical-immediate N/immr/imms encoding)
# ---------------------------------------------------------------------------

def encode_bitmask(value: int, width: int) -> Optional[Tuple[int, int, int]]:
    """Encode ``value`` as a logical (bitmask) immediate.

    Returns (N, immr, imms) or None if the value is not encodable.  A bitmask
    immediate is a repetition of an element of size 2/4/8/16/32/64 bits, each
    element being a rotated run of ones (neither all-0 nor all-1).
    """
    value &= (1 << width) - 1
    if value == 0 or value == (1 << width) - 1:
        return None
    # Smallest element size whose repetition reproduces the value.
    element = value
    size = width
    for candidate in (2, 4, 8, 16, 32, 64):
        if candidate > width:
            break
        mask = (1 << candidate) - 1
        piece = value & mask
        repeated = 0
        for pos in range(0, width, candidate):
            repeated |= piece << pos
        if repeated == value:
            size, element = candidate, piece
            break
    mask = (1 << size) - 1
    ones = bin(element).count("1")
    run = (1 << ones) - 1
    # Find the rotation such that element == ROR(run, immr).
    for rotation in range(size):
        rotated = ((element >> rotation) | (element << (size - rotation))) & mask
        if rotated == run:
            immr = (size - rotation) % size
            n = 1 if size == 64 else 0
            imms = ((~((size << 1) - 1)) & 0x3F) | (ones - 1)
            return n, immr, imms
    return None


def decode_bitmask(n: int, immr: int, imms: int, width: int) -> Optional[int]:
    """Inverse of :func:`encode_bitmask`; None if the fields are invalid."""
    if n == 1:
        size = 64
    else:
        inverted = (~imms) & 0x3F
        if inverted == 0:
            return None
        size = 1 << (inverted.bit_length() - 1)
    if size > width:
        return None
    ones = (imms & (size - 1)) + 1
    if ones >= size:
        return None
    if immr >= size:
        return None  # non-canonical rotation
    pattern = (1 << ones) - 1
    rot = immr % size
    pattern = ((pattern >> rot) | (pattern << (size - rot))) & ((1 << size) - 1)
    result = 0
    for pos in range(0, width, size):
        result |= pattern << pos
    return result


# ---------------------------------------------------------------------------
# FP8 immediates (fmov scalar immediate)
# ---------------------------------------------------------------------------

def decode_fp8(imm8: int) -> float:
    sign = -1.0 if (imm8 >> 7) & 1 else 1.0
    exp_bits = (imm8 >> 4) & 0x7
    mantissa = imm8 & 0xF
    exp = (exp_bits ^ 0x4) - 3 if exp_bits & 0x4 else exp_bits + 1
    # Standard VFPExpandImm: exponent = UInt(NOT(b):c:d) - 3
    b = (imm8 >> 6) & 1
    cd = (imm8 >> 4) & 0x3
    exp = (((b ^ 1) << 2) | cd) - 3
    return sign * (1.0 + mantissa / 16.0) * (2.0 ** exp)


_FP8_TABLE = {decode_fp8(i): i for i in range(255, -1, -1)}


def encode_fp8(value: float) -> Optional[int]:
    """The imm8 encoding of an fmov-able float, or None."""
    return _FP8_TABLE.get(value)


# ---------------------------------------------------------------------------
# Helpers for operand fields
# ---------------------------------------------------------------------------

_EXTEND_OPTION = {
    "uxtb": 0, "uxth": 1, "uxtw": 2, "uxtx": 3,
    "sxtb": 4, "sxth": 5, "sxtw": 6, "sxtx": 7,
}
_SHIFT_TYPE = {"lsl": 0, "lsr": 1, "asr": 2, "ror": 3}


def _cond_value(name: str) -> int:
    return CONDITION_CODES.index(canonical_condition(name))


def _gpr(reg: Reg, what: str, allow_sp: bool = False, allow_zr: bool = True) -> int:
    if reg.is_sp:
        if not allow_sp:
            raise EncodeError(f"{what}: sp not allowed here")
        return INDEX_31
    if reg.is_zero:
        if not allow_zr:
            raise EncodeError(f"{what}: zr not allowed here")
        return INDEX_31
    if not reg.is_gpr:
        raise EncodeError(f"{what}: expected general register, got {reg}")
    return reg.index


def _vreg(reg, what: str) -> int:
    if isinstance(reg, VecReg):
        return reg.reg.index
    if isinstance(reg, Reg) and reg.is_vector:
        return reg.index
    raise EncodeError(f"{what}: expected SIMD&FP register, got {reg}")


class _Ctx:
    """Encoding context: pc of the instruction and the symbol table."""

    def __init__(self, pc: int, symbols: Optional[Dict[str, int]]):
        self.pc = pc
        self.symbols = symbols or {}

    def resolve(self, label: Label) -> int:
        if label.name not in self.symbols:
            raise EncodeError(f"undefined symbol: {label.name}")
        return self.symbols[label.name] + label.addend

    def target_value(self, op, what: str) -> int:
        """Absolute target address from a Label or Imm operand."""
        if isinstance(op, Label):
            return self.resolve(op)
        if isinstance(op, Imm) and op.reloc is None:
            return op.value
        raise EncodeError(f"{what}: expected label or address, got {op}")

    def imm_value(self, op: Imm) -> int:
        if op.reloc == "lo12":
            if op.symbol is None or op.symbol not in self.symbols:
                raise EncodeError(f"undefined :lo12: symbol {op.symbol!r}")
            return (self.symbols[op.symbol] + op.value) & 0xFFF
        return op.value


# ---------------------------------------------------------------------------
# Encoders by class
# ---------------------------------------------------------------------------

def _enc_addsub_imm(sf: int, op: int, s: int, rd: int, rn: int, imm: int) -> int:
    sh = 0
    if imm & 0xFFF == 0 and imm != 0 and imm <= 0xFFF000:
        sh, imm = 1, imm >> 12
    _check_unsigned(imm, 12, "add/sub immediate")
    return (
        (sf << 31) | (op << 30) | (s << 29) | (0b100010 << 23) | (sh << 22)
        | (imm << 10) | (rn << 5) | rd
    )


def _enc_addsub_shifted(
    sf: int, op: int, s: int, rd: int, rn: int, rm: int, shift: int, amount: int
) -> int:
    _check_unsigned(amount, 6, "shift amount")
    return (
        (sf << 31) | (op << 30) | (s << 29) | (0b01011 << 24) | (shift << 22)
        | (rm << 16) | (amount << 10) | (rn << 5) | rd
    )


def _enc_addsub_extended(
    sf: int, op: int, s: int, rd: int, rn: int, rm: int, option: int, amount: int
) -> int:
    _check_unsigned(amount, 3, "extend shift")
    return (
        (sf << 31) | (op << 30) | (s << 29) | (0b01011001 << 21)
        | (rm << 16) | (option << 13) | (amount << 10) | (rn << 5) | rd
    )


def _enc_logical_shifted(
    sf: int, opc: int, n: int, rd: int, rn: int, rm: int, shift: int, amount: int
) -> int:
    _check_unsigned(amount, 6, "shift amount")
    return (
        (sf << 31) | (opc << 29) | (0b01010 << 24) | (shift << 22) | (n << 21)
        | (rm << 16) | (amount << 10) | (rn << 5) | rd
    )


def _enc_logical_imm(sf: int, opc: int, rd: int, rn: int, value: int) -> int:
    width = 64 if sf else 32
    fields = encode_bitmask(value, width)
    if fields is None:
        raise EncodeError(f"value {value:#x} is not a valid bitmask immediate")
    n, immr, imms = fields
    if sf == 0 and n == 1:
        raise EncodeError("64-bit bitmask immediate with 32-bit register")
    return (
        (sf << 31) | (opc << 29) | (0b100100 << 23) | (n << 22) | (immr << 16)
        | (imms << 10) | (rn << 5) | rd
    )


def _enc_movewide(sf: int, opc: int, rd: int, imm16: int, hw: int) -> int:
    _check_unsigned(imm16, 16, "move-wide immediate")
    if hw % 16 != 0 or hw // 16 > (3 if sf else 1):
        raise EncodeError(f"bad move-wide shift {hw}")
    return (
        (sf << 31) | (opc << 29) | (0b100101 << 23) | ((hw // 16) << 21)
        | (imm16 << 5) | rd
    )


def _enc_bitfield(sf: int, opc: int, rd: int, rn: int, immr: int, imms: int) -> int:
    n = sf
    return (
        (sf << 31) | (opc << 29) | (0b100110 << 23) | (n << 22) | (immr << 16)
        | (imms << 10) | (rn << 5) | rd
    )


def _enc_dp2(sf: int, rd: int, rn: int, rm: int, opcode: int) -> int:
    return (
        (sf << 31) | (0b0011010110 << 21) | (rm << 16) | (opcode << 10)
        | (rn << 5) | rd
    )


def _enc_dp3(
    sf: int, op31: int, o0: int, rd: int, rn: int, rm: int, ra: int
) -> int:
    return (
        (sf << 31) | (0b0011011 << 24) | (op31 << 21) | (rm << 16) | (o0 << 15)
        | (ra << 10) | (rn << 5) | rd
    )


def _enc_dp1(sf: int, rd: int, rn: int, opcode: int) -> int:
    return (
        (sf << 31) | (0b1011010110 << 21) | (opcode << 10) | (rn << 5) | rd
    )


def _enc_condsel(
    sf: int, op: int, op2: int, rd: int, rn: int, rm: int, cond: int
) -> int:
    return (
        (sf << 31) | (op << 30) | (0b011010100 << 21) | (rm << 16)
        | (cond << 12) | (op2 << 10) | (rn << 5) | rd
    )


def _enc_ldst_unsigned(
    size: int, v: int, opc: int, rt: int, rn: int, imm12: int
) -> int:
    _check_unsigned(imm12, 12, "ldr/str offset")
    return (
        (size << 30) | (0b111 << 27) | (v << 26) | (0b01 << 24) | (opc << 22)
        | (imm12 << 10) | (rn << 5) | rt
    )


def _enc_ldst_regoffset(
    size: int, v: int, opc: int, rt: int, rn: int, rm: int, option: int, s: int
) -> int:
    return (
        (size << 30) | (0b111 << 27) | (v << 26) | (opc << 22) | (1 << 21)
        | (rm << 16) | (option << 13) | (s << 12) | (0b10 << 10) | (rn << 5) | rt
    )


def _enc_ldst_imm9(
    size: int, v: int, opc: int, rt: int, rn: int, imm9: int, mode_bits: int
) -> int:
    imm9 = _check_signed(imm9, 9, "ldr/str pre/post offset")
    return (
        (size << 30) | (0b111 << 27) | (v << 26) | (opc << 22) | (imm9 << 12)
        | (mode_bits << 10) | (rn << 5) | rt
    )


def _enc_ldst_pair(
    opc: int, v: int, mode: int, load: int, rt: int, rt2: int, rn: int, imm7: int
) -> int:
    imm7 = _check_signed(imm7, 7, "ldp/stp offset")
    return (
        (opc << 30) | (0b101 << 27) | (v << 26) | (mode << 23) | (load << 22)
        | (imm7 << 15) | (rt2 << 10) | (rn << 5) | rt
    )


def _enc_exclusive(
    size: int, o2: int, load: int, o1: int, rs: int, o0: int, rt2: int,
    rn: int, rt: int,
) -> int:
    return (
        (size << 30) | (0b001000 << 24) | (o2 << 23) | (load << 22) | (o1 << 21)
        | (rs << 16) | (o0 << 15) | (rt2 << 10) | (rn << 5) | rt
    )


# ---------------------------------------------------------------------------
# Mnemonic dispatch
# ---------------------------------------------------------------------------

def encode_instruction(
    inst: Instruction, pc: int = 0, symbols: Optional[Dict[str, int]] = None
) -> int:
    """Encode one instruction to its 32-bit ARMv8 word."""
    ctx = _Ctx(pc, symbols)
    m = inst.mnemonic
    ops = inst.operands
    try:
        if m.startswith("b.") or m in ("b", "bl"):
            return _encode_branch(m, ops, ctx)
        if m in ("br", "blr", "ret"):
            return _encode_branch_reg(m, ops)
        if m in ("cbz", "cbnz"):
            return _encode_cb(m, ops, ctx)
        if m in ("tbz", "tbnz"):
            return _encode_tb(m, ops, ctx)
        if m in ("adr", "adrp"):
            return _encode_adr(m, ops, ctx)
        if isa.is_memory(m):
            return _encode_memory(m, ops, ctx)
        if m in isa.WIDE_MOVES:
            return _encode_movewide(m, ops)
        if m == "mov":
            return _encode_mov(ops)
        if m in ("movk_alias",):
            raise EncodeError("unreachable")
        if m in isa.FP or m in isa.SIMD_ONLY or _is_vector_inst(inst):
            return _encode_fp_simd(m, ops, ctx)
        if m in isa.DATA_PROCESSING:
            return _encode_dataproc(m, ops, ctx)
        if m in isa.SYSTEM:
            return _encode_system(m, ops)
    except EncodeError as exc:
        raise EncodeError(f"{inst}: {exc}") from None
    raise EncodeError(f"unsupported mnemonic: {inst}")


def _is_vector_inst(inst: Instruction) -> bool:
    return any(isinstance(op, VecReg) for op in inst.operands)


def _sf_of(reg: Reg) -> int:
    return 1 if reg.bits == 64 else 0


def _encode_branch(m: str, ops, ctx: _Ctx) -> int:
    if m in ("b", "bl"):
        target = ctx.target_value(ops[0], m)
        offset = target - ctx.pc
        if offset % 4:
            raise EncodeError("misaligned branch target")
        imm26 = _check_signed(offset // 4, 26, "branch offset")
        op = 1 if m == "bl" else 0
        return (op << 31) | (0b00101 << 26) | imm26
    cond = _cond_value(isa.branch_condition(m))
    target = ctx.target_value(ops[0], m)
    offset = target - ctx.pc
    if offset % 4:
        raise EncodeError("misaligned branch target")
    imm19 = _check_signed(offset // 4, 19, "branch offset")
    return (0b01010100 << 24) | (imm19 << 5) | cond


def _encode_branch_reg(m: str, ops) -> int:
    opc = {"br": 0b0000, "blr": 0b0001, "ret": 0b0010}[m]
    if ops:
        rn = _gpr(ops[0], m)
    elif m == "ret":
        rn = LR.index
    else:
        raise EncodeError(f"{m} needs a register")
    return (0b1101011 << 25) | (opc << 21) | (0b11111 << 16) | (rn << 5)


def _encode_cb(m: str, ops, ctx: _Ctx) -> int:
    rt = ops[0]
    sf = _sf_of(rt)
    target = ctx.target_value(ops[1], m)
    offset = target - ctx.pc
    imm19 = _check_signed(offset // 4, 19, "branch offset")
    op = 1 if m == "cbnz" else 0
    return (
        (sf << 31) | (0b011010 << 25) | (op << 24) | (imm19 << 5)
        | _gpr(rt, m)
    )


def _encode_tb(m: str, ops, ctx: _Ctx) -> int:
    rt, bit, label = ops
    if not isinstance(bit, Imm):
        raise EncodeError("tbz/tbnz bit must be immediate")
    bitpos = _check_unsigned(bit.value, 6, "bit position")
    target = ctx.target_value(label, m)
    offset = target - ctx.pc
    imm14 = _check_signed(offset // 4, 14, "branch offset")
    op = 1 if m == "tbnz" else 0
    b5 = (bitpos >> 5) & 1
    b40 = bitpos & 0x1F
    return (
        (b5 << 31) | (0b011011 << 25) | (op << 24) | (b40 << 19) | (imm14 << 5)
        | _gpr(rt, m)
    )


def _encode_adr(m: str, ops, ctx: _Ctx) -> int:
    rd = _gpr(ops[0], m)
    target = ctx.target_value(ops[1], m)
    if m == "adrp":
        delta = (target >> 12) - (ctx.pc >> 12)
        imm = _check_signed(delta, 21, "adrp page offset")
        op = 1
    else:
        imm = _check_signed(target - ctx.pc, 21, "adr offset")
        op = 0
    immlo = imm & 0x3
    immhi = (imm >> 2) & 0x7FFFF
    return (op << 31) | (immlo << 29) | (0b10000 << 24) | (immhi << 5) | rd


def _encode_movewide(m: str, ops) -> int:
    rd = ops[0]
    sf = _sf_of(rd)
    opc = {"movn": 0b00, "movz": 0b10, "movk": 0b11}[m]
    imm_op = ops[1]
    if isinstance(imm_op, ShiftedImm):
        return _enc_movewide(sf, opc, _gpr(rd, m), imm_op.value, imm_op.shift)
    if isinstance(imm_op, Imm):
        return _enc_movewide(sf, opc, _gpr(rd, m), imm_op.value, 0)
    raise EncodeError(f"{m} needs an immediate")


def _encode_mov(ops) -> int:
    rd, src = ops
    sf = _sf_of(rd)
    if isinstance(src, Reg):
        if rd.is_sp or src.is_sp:
            # mov to/from sp is an alias of add #0.
            return _enc_addsub_imm(
                sf, 0, 0, _gpr(rd, "mov", allow_sp=True),
                _gpr(src, "mov", allow_sp=True), 0,
            )
        return _enc_logical_shifted(
            sf, 0b01, 0, _gpr(rd, "mov"), INDEX_31, _gpr(src, "mov"), 0, 0
        )
    if isinstance(src, ShiftedImm):
        return _enc_movewide(sf, 0b10, _gpr(rd, "mov"), src.value, src.shift)
    if isinstance(src, Imm):
        value = src.value
        width = 64 if sf else 32
        uvalue = value & ((1 << width) - 1)
        # movz with a shift?
        for hw in range(0, width // 16):
            if uvalue & ~(0xFFFF << (hw * 16)) == 0:
                return _enc_movewide(
                    sf, 0b10, _gpr(rd, "mov"), (uvalue >> (hw * 16)) & 0xFFFF,
                    hw * 16,
                )
        inv = (~uvalue) & ((1 << width) - 1)
        for hw in range(0, width // 16):
            if inv & ~(0xFFFF << (hw * 16)) == 0:
                return _enc_movewide(
                    sf, 0b00, _gpr(rd, "mov"), (inv >> (hw * 16)) & 0xFFFF,
                    hw * 16,
                )
        if encode_bitmask(uvalue, width) is not None:
            return _enc_logical_imm(sf, 0b01, _gpr(rd, "mov"), INDEX_31, uvalue)
        raise EncodeError(
            f"mov immediate {value:#x} not encodable; use movz/movk"
        )
    raise EncodeError(f"bad mov operands: {ops}")


_ADDSUB = {"add": (0, 0), "adds": (0, 1), "sub": (1, 0), "subs": (1, 1)}
_LOGICAL = {
    "and": (0b00, 0), "bic": (0b00, 1),
    "orr": (0b01, 0), "orn": (0b01, 1),
    "eor": (0b10, 0), "eon": (0b10, 1),
    "ands": (0b11, 0), "bics": (0b11, 1),
}


def _encode_dataproc(m: str, ops, ctx: _Ctx) -> int:
    # Aliases that reduce to other data-processing instructions.
    if m == "cmp":
        return _encode_dataproc("subs", (_zr_like(ops[0]),) + tuple(ops), ctx)
    if m == "cmn":
        return _encode_dataproc("adds", (_zr_like(ops[0]),) + tuple(ops), ctx)
    if m == "tst":
        return _encode_dataproc("ands", (_zr_like(ops[0]),) + tuple(ops), ctx)
    if m in ("neg", "negs"):
        real = "sub" if m == "neg" else "subs"
        return _encode_dataproc(
            real, (ops[0], _zr_like(ops[0]), ops[1]) + tuple(ops[2:]), ctx
        )
    if m == "mvn":
        return _encode_dataproc(
            "orn", (ops[0], _zr_like(ops[0]), ops[1]) + tuple(ops[2:]), ctx
        )
    if m in _ADDSUB:
        return _encode_addsub(m, ops, ctx)
    if m in _LOGICAL:
        return _encode_logical(m, ops, ctx)
    if m in ("lsl", "lsr", "asr", "ror"):
        return _encode_shift_alias(m, ops)
    if m in ("ubfm", "sbfm", "bfm", "ubfx", "sbfx", "bfi", "bfxil",
             "sxtb", "sxth", "sxtw", "uxtb", "uxth"):
        return _encode_bitfield_family(m, ops)
    if m in isa.MULDIV:
        return _encode_muldiv(m, ops)
    if m in isa.CONDOPS:
        return _encode_condops(m, ops)
    if m in ("clz", "rbit", "rev", "rev16", "rev32"):
        return _encode_dp1_family(m, ops)
    raise EncodeError(f"unsupported data-processing mnemonic {m}")


def _zr_like(reg: Reg) -> Reg:
    return XZR if reg.bits == 64 else WZR


def _encode_addsub(m: str, ops, ctx: _Ctx) -> int:
    op, s = _ADDSUB[m]
    rd, rn = ops[0], ops[1]
    sf = _sf_of(rd)
    src = ops[2] if len(ops) > 2 else None
    rd_idx = _gpr(rd, m, allow_sp=(s == 0))
    rn_idx = _gpr(rn, m, allow_sp=True)
    if isinstance(src, Imm):
        value = ctx.imm_value(src)
        if value < 0:
            op ^= 1
            value = -value
        return _enc_addsub_imm(sf, op, s, rd_idx, rn_idx, value)
    if isinstance(src, Reg):
        if rd.is_sp or rn.is_sp or (src.bits != rd.bits):
            # Register add involving sp uses the extended form (lsl #0/uxtw).
            option = 0b011 if sf else 0b010
            if src.bits == 32 and rd.bits == 64:
                option = 0b010  # uxtw
            return _enc_addsub_extended(
                sf, op, s, rd_idx, rn_idx, _gpr(src, m), option, 0
            )
        return _enc_addsub_shifted(
            sf, op, s, rd_idx, _gpr(rn, m), _gpr(src, m), 0, 0
        )
    if isinstance(src, Shifted):
        if rn.is_sp or rd.is_sp:
            if src.kind != "lsl" or src.amount > 4:
                raise EncodeError("sp add/sub requires lsl #0-4")
            option = 0b011
            return _enc_addsub_extended(
                sf, op, s, rd_idx, rn_idx, _gpr(src.reg, m), option, src.amount
            )
        return _enc_addsub_shifted(
            sf, op, s, rd_idx, _gpr(rn, m), _gpr(src.reg, m),
            _SHIFT_TYPE[src.kind], src.amount,
        )
    if isinstance(src, Extended):
        option = _EXTEND_OPTION[src.kind]
        return _enc_addsub_extended(
            sf, op, s, rd_idx, rn_idx, _gpr(src.reg, m), option,
            src.amount or 0,
        )
    raise EncodeError(f"bad add/sub operands")


def _encode_logical(m: str, ops, ctx: _Ctx) -> int:
    opc, n = _LOGICAL[m]
    rd, rn = ops[0], ops[1]
    sf = _sf_of(rd)
    src = ops[2]
    allow_sp_rd = m in ("and", "orr", "eor") and rd.is_sp
    if isinstance(src, Imm):
        if n:
            raise EncodeError(f"{m} has no immediate form")
        return _enc_logical_imm(
            sf, opc, _gpr(rd, m, allow_sp=True), _gpr(rn, m), src.value
        )
    if isinstance(src, Reg):
        return _enc_logical_shifted(
            sf, opc, n, _gpr(rd, m), _gpr(rn, m), _gpr(src, m), 0, 0
        )
    if isinstance(src, Shifted):
        return _enc_logical_shifted(
            sf, opc, n, _gpr(rd, m), _gpr(rn, m), _gpr(src.reg, m),
            _SHIFT_TYPE[src.kind], src.amount,
        )
    raise EncodeError(f"bad logical operands")


def _encode_shift_alias(m: str, ops) -> int:
    rd, rn, src = ops
    sf = _sf_of(rd)
    width = 64 if sf else 32
    if isinstance(src, Imm):
        shift = src.value % width
        if m == "lsl":
            return _enc_bitfield(
                sf, 0b10, _gpr(rd, m), _gpr(rn, m),
                (width - shift) % width, width - 1 - shift,
            )
        if m == "lsr":
            return _enc_bitfield(
                sf, 0b10, _gpr(rd, m), _gpr(rn, m), shift, width - 1
            )
        if m == "asr":
            return _enc_bitfield(
                sf, 0b00, _gpr(rd, m), _gpr(rn, m), shift, width - 1
            )
        if m == "ror":
            # ROR immediate is an alias of EXTR Rd, Rn, Rn, #shift.
            n = sf
            return (
                (sf << 31) | (0b00100111 << 23) | (n << 22)
                | (_gpr(rn, m) << 16) | (shift << 10) | (_gpr(rn, m) << 5)
                | _gpr(rd, m)
            )
    if isinstance(src, Reg):
        opcode = {"lsl": 0b001000, "lsr": 0b001001, "asr": 0b001010,
                  "ror": 0b001011}[m]
        return _enc_dp2(sf, _gpr(rd, m), _gpr(rn, m), _gpr(src, m), opcode)
    raise EncodeError(f"bad shift operands")


def _encode_bitfield_family(m: str, ops) -> int:
    rd = ops[0]
    sf = _sf_of(rd)
    width = 64 if sf else 32
    if m in ("sxtb", "sxth", "sxtw"):
        rn = ops[1]
        imms = {"sxtb": 7, "sxth": 15, "sxtw": 31}[m]
        return _enc_bitfield(sf, 0b00, _gpr(rd, m), _gpr(rn, m), 0, imms)
    if m in ("uxtb", "uxth"):
        rn = ops[1]
        imms = {"uxtb": 7, "uxth": 15}[m]
        return _enc_bitfield(0, 0b10, _gpr(rd, m), _gpr(rn, m), 0, imms)
    rn = ops[1]
    opc = {"sbfm": 0b00, "sbfx": 0b00, "bfm": 0b01, "bfi": 0b01,
           "bfxil": 0b01, "ubfm": 0b10, "ubfx": 0b10}[m]
    a, b = ops[2].value, ops[3].value
    if m in ("ubfm", "sbfm", "bfm"):
        immr, imms = a, b
    elif m in ("ubfx", "sbfx", "bfxil"):
        immr, imms = a, a + b - 1
    else:  # bfi
        immr, imms = (width - a) % width, b - 1
    return _enc_bitfield(sf, opc, _gpr(rd, m), _gpr(rn, m), immr, imms)


def _encode_muldiv(m: str, ops) -> int:
    rd = ops[0]
    sf = _sf_of(rd)
    g = lambda i: _gpr(ops[i], m)
    if m == "mul":
        return _enc_dp3(sf, 0b000, 0, g(0), g(1), g(2), INDEX_31)
    if m == "mneg":
        return _enc_dp3(sf, 0b000, 1, g(0), g(1), g(2), INDEX_31)
    if m == "madd":
        return _enc_dp3(sf, 0b000, 0, g(0), g(1), g(2), g(3))
    if m == "msub":
        return _enc_dp3(sf, 0b000, 1, g(0), g(1), g(2), g(3))
    if m == "smull":
        return _enc_dp3(1, 0b001, 0, g(0), g(1), g(2), INDEX_31)
    if m == "umull":
        return _enc_dp3(1, 0b101, 0, g(0), g(1), g(2), INDEX_31)
    if m == "smulh":
        return _enc_dp3(1, 0b010, 0, g(0), g(1), g(2), INDEX_31)
    if m == "umulh":
        return _enc_dp3(1, 0b110, 0, g(0), g(1), g(2), INDEX_31)
    if m == "sdiv":
        return _enc_dp2(sf, g(0), g(1), g(2), 0b000011)
    if m == "udiv":
        return _enc_dp2(sf, g(0), g(1), g(2), 0b000010)
    raise EncodeError(f"unsupported mul/div {m}")


def _encode_condops(m: str, ops) -> int:
    rd = ops[0]
    sf = _sf_of(rd)
    g = lambda op: _gpr(op, m)
    if m in ("csel", "csinc", "csinv", "csneg"):
        cond = _cond_value(ops[3].name)
        op, op2 = {"csel": (0, 0b00), "csinc": (0, 0b01), "csinv": (1, 0b00),
                   "csneg": (1, 0b01)}[m]
        return _enc_condsel(sf, op, op2, g(ops[0]), g(ops[1]), g(ops[2]), cond)
    if m == "cset":
        cond = _cond_value(invert_condition(ops[1].name))
        return _enc_condsel(sf, 0, 0b01, g(ops[0]), INDEX_31, INDEX_31, cond)
    if m == "csetm":
        cond = _cond_value(invert_condition(ops[1].name))
        return _enc_condsel(sf, 1, 0b00, g(ops[0]), INDEX_31, INDEX_31, cond)
    if m == "cinc":
        cond = _cond_value(invert_condition(ops[2].name))
        return _enc_condsel(sf, 0, 0b01, g(ops[0]), g(ops[1]), g(ops[1]), cond)
    if m == "cneg":
        cond = _cond_value(invert_condition(ops[2].name))
        return _enc_condsel(sf, 1, 0b01, g(ops[0]), g(ops[1]), g(ops[1]), cond)
    if m in ("ccmp", "ccmn"):
        rn, src, nzcv, cond = ops
        op = 1 if m == "ccmp" else 0
        base = (
            (sf_bit(rn) << 31) | (op << 30) | (1 << 29) | (0b11010010 << 21)
            | (_cond_value(cond.name) << 12) | (_gpr(rn, m) << 5)
            | (nzcv.value & 0xF)
        )
        if isinstance(src, Imm):
            return base | (_check_unsigned(src.value, 5, "ccmp imm") << 16) | (1 << 11)
        return base | (_gpr(src, m) << 16)
    raise EncodeError(f"unsupported conditional op {m}")


def sf_bit(reg: Reg) -> int:
    return 1 if reg.bits == 64 else 0


def _encode_dp1_family(m: str, ops) -> int:
    rd, rn = ops
    sf = _sf_of(rd)
    if m == "rbit":
        opcode = 0b000000
    elif m == "rev16":
        opcode = 0b000001
    elif m == "rev32":
        opcode = 0b000010
    elif m == "rev":
        opcode = 0b000011 if sf else 0b000010
    elif m == "clz":
        opcode = 0b000100
    else:
        raise EncodeError(f"unsupported {m}")
    return _enc_dp1(sf, _gpr(rd, m), _gpr(rn, m), opcode)


# ---------------------------------------------------------------------------
# Memory
# ---------------------------------------------------------------------------

_SIZE_OPC_INT = {
    # mnemonic -> fn(reg_bits) -> (size, opc)
    "ldr": lambda bits: (0b11, 0b01) if bits == 64 else (0b10, 0b01),
    "str": lambda bits: (0b11, 0b00) if bits == 64 else (0b10, 0b00),
    "ldrb": lambda bits: (0b00, 0b01),
    "strb": lambda bits: (0b00, 0b00),
    "ldrh": lambda bits: (0b01, 0b01),
    "strh": lambda bits: (0b01, 0b00),
    "ldrsb": lambda bits: (0b00, 0b10 if bits == 64 else 0b11),
    "ldrsh": lambda bits: (0b01, 0b10 if bits == 64 else 0b11),
    "ldrsw": lambda bits: (0b10, 0b10),
    "ldur": lambda bits: (0b11, 0b01) if bits == 64 else (0b10, 0b01),
    "stur": lambda bits: (0b11, 0b00) if bits == 64 else (0b10, 0b00),
}

_FP_SIZE_OPC = {
    # reg bits -> (size, opc_load, opc_store)
    8: (0b00, 0b01, 0b00),
    16: (0b01, 0b01, 0b00),
    32: (0b10, 0b01, 0b00),
    64: (0b11, 0b01, 0b00),
    128: (0b00, 0b11, 0b10),
}


def _mem_scale(m: str, rt: Reg) -> int:
    """log2 of the access size, used to scale unsigned immediates."""
    if m in ("ldrb", "strb", "ldrsb"):
        return 0
    if m in ("ldrh", "strh", "ldrsh"):
        return 1
    if m == "ldrsw":
        return 2
    return {8: 0, 16: 1, 32: 2, 64: 3, 128: 4}[rt.bits]


def _encode_memory(m: str, ops, ctx: _Ctx) -> int:
    if m in isa.PAIR_MEMORY:
        return _encode_pair(m, ops, ctx)
    if m in isa.EXCLUSIVE_MEMORY or m in ("ldar", "stlr"):
        return _encode_exclusive_family(m, ops)
    rt = ops[0]
    mem = ops[1]
    if not isinstance(mem, Mem):
        raise EncodeError(f"{m}: expected memory operand")
    is_fp = rt.is_vector
    if is_fp:
        size, opc_l, opc_s = _FP_SIZE_OPC[rt.bits]
        opc = opc_l if isa.is_load(m) else opc_s
        v = 1
    else:
        size, opc = _SIZE_OPC_INT[m](rt.bits)
        v = 0
    rt_idx = rt.index if is_fp else _gpr(rt, m)
    rn = _gpr(mem.base, m, allow_sp=True)
    scale = _mem_scale(m, rt)

    if m in isa.UNSCALED_MEMORY:
        if mem.mode != OFFSET or mem.has_register_offset:
            raise EncodeError(f"{m} only supports [base, #imm9]")
        return _enc_ldst_imm9(size, v, opc, rt_idx, rn, mem.imm_value, 0b00)

    if mem.mode == POST_INDEX:
        return _enc_ldst_imm9(size, v, opc, rt_idx, rn, mem.imm_value, 0b01)
    if mem.mode == PRE_INDEX:
        return _enc_ldst_imm9(size, v, opc, rt_idx, rn, mem.imm_value, 0b11)

    if mem.has_register_offset:
        off = mem.offset
        if isinstance(off, Reg):
            if off.bits != 64:
                raise EncodeError("register offset must be 64-bit or extended")
            return _enc_ldst_regoffset(
                size, v, opc, rt_idx, rn, _gpr(off, m), 0b011, 0
            )
        if isinstance(off, Shifted):
            if off.kind != "lsl":
                raise EncodeError("memory shift must be lsl")
            if off.amount not in (0, scale):
                raise EncodeError(
                    f"memory lsl amount must be 0 or {scale}, got {off.amount}"
                )
            s = 1 if off.amount == scale and off.amount != 0 else 0
            return _enc_ldst_regoffset(
                size, v, opc, rt_idx, rn, _gpr(off.reg, m), 0b011, s
            )
        if isinstance(off, Extended):
            option = {"uxtw": 0b010, "sxtw": 0b110, "sxtx": 0b111}.get(off.kind)
            if option is None:
                raise EncodeError(f"bad memory extend {off.kind}")
            amount = off.amount or 0
            if amount not in (0, scale):
                raise EncodeError(
                    f"memory extend amount must be 0 or {scale}, got {amount}"
                )
            s = 1 if amount == scale and amount != 0 else 0
            return _enc_ldst_regoffset(
                size, v, opc, rt_idx, rn, _gpr(off.reg, m), option, s
            )
    # Unsigned scaled immediate (or no offset).
    imm = mem.imm_value
    if isinstance(mem.offset, Imm):
        imm = ctx.imm_value(mem.offset)
    if imm >= 0 and imm % (1 << scale) == 0:
        return _enc_ldst_unsigned(size, v, opc, rt_idx, rn, imm >> scale)
    # Fall back to unscaled (ldur/stur encoding).
    return _enc_ldst_imm9(size, v, opc, rt_idx, rn, imm, 0b00)


def _encode_pair(m: str, ops, ctx: _Ctx) -> int:
    rt, rt2, mem = ops
    if not isinstance(mem, Mem):
        raise EncodeError(f"{m}: expected memory operand")
    load = 1 if m == "ldp" else 0
    if rt.is_vector:
        v = 1
        opc = {32: 0b00, 64: 0b01, 128: 0b10}[rt.bits]
        scale = {32: 2, 64: 3, 128: 4}[rt.bits]
        rt_idx, rt2_idx = rt.index, rt2.index
    else:
        v = 0
        opc = 0b10 if rt.bits == 64 else 0b00
        scale = 3 if rt.bits == 64 else 2
        rt_idx, rt2_idx = _gpr(rt, m), _gpr(rt2, m)
    mode = {OFFSET: 0b010, PRE_INDEX: 0b011, POST_INDEX: 0b001}[mem.mode]
    imm = mem.imm_value
    if imm % (1 << scale):
        raise EncodeError(f"{m} offset {imm} not a multiple of {1 << scale}")
    return _enc_ldst_pair(
        opc, v, mode, load, rt_idx, rt2_idx,
        _gpr(mem.base, m, allow_sp=True), imm >> scale,
    )


def _encode_exclusive_family(m: str, ops) -> int:
    if m in ("stxr", "stlxr"):
        rs, rt, mem = ops
        rs_idx = _gpr(rs, m)
    else:
        rt, mem = ops
        rs_idx = INDEX_31
    if not isinstance(mem, Mem) or mem.offset is not None:
        raise EncodeError(f"{m} only supports [base]")
    size = 0b11 if rt.bits == 64 else 0b10
    rn = _gpr(mem.base, m, allow_sp=True)
    rt_idx = _gpr(rt, m)
    if m == "ldxr":
        return _enc_exclusive(size, 0, 1, 0, INDEX_31, 0, INDEX_31, rn, rt_idx)
    if m == "ldaxr":
        return _enc_exclusive(size, 0, 1, 0, INDEX_31, 1, INDEX_31, rn, rt_idx)
    if m == "stxr":
        return _enc_exclusive(size, 0, 0, 0, rs_idx, 0, INDEX_31, rn, rt_idx)
    if m == "stlxr":
        return _enc_exclusive(size, 0, 0, 0, rs_idx, 1, INDEX_31, rn, rt_idx)
    if m == "ldar":
        return _enc_exclusive(size, 1, 1, 0, INDEX_31, 1, INDEX_31, rn, rt_idx)
    if m == "stlr":
        return _enc_exclusive(size, 1, 0, 0, INDEX_31, 1, INDEX_31, rn, rt_idx)
    raise EncodeError(f"unsupported exclusive {m}")


# ---------------------------------------------------------------------------
# System
# ---------------------------------------------------------------------------

_BARRIER_CRM = {"sy": 0b1111, "ish": 0b1011, "ishld": 0b1001, "ishst": 0b1010}


def _encode_system(m: str, ops) -> int:
    if m == "nop":
        return 0xD503201F
    if m == "svc":
        imm = ops[0].value if ops else 0
        return 0xD4000001 | (_check_unsigned(imm, 16, "svc") << 5)
    if m == "brk":
        imm = ops[0].value if ops else 0
        return 0xD4200000 | (_check_unsigned(imm, 16, "brk") << 5)
    if m == "hlt":
        imm = ops[0].value if ops else 0
        return 0xD4400000 | (_check_unsigned(imm, 16, "hlt") << 5)
    if m in ("dmb", "dsb", "isb"):
        crm = 0b1111
        if ops and isinstance(ops[0], Label):
            crm = _BARRIER_CRM.get(ops[0].name.lower(), 0b1111)
        op2 = {"dsb": 0b100, "dmb": 0b101, "isb": 0b110}[m]
        return 0xD5033000 | (crm << 8) | (op2 << 5) | 0b11111
    raise EncodeError(f"unsupported system instruction {m}")


# ---------------------------------------------------------------------------
# FP and SIMD
# ---------------------------------------------------------------------------

_FP_TYPE = {32: 0b00, 64: 0b01, 16: 0b11}
_FP2_OPCODE = {
    "fmul": 0b0000, "fdiv": 0b0001, "fadd": 0b0010, "fsub": 0b0011,
    "fmax": 0b0100, "fmin": 0b0101, "fnmul": 0b1000,
}
_FP1_OPCODE = {"fmov": 0b000000, "fabs": 0b000001, "fneg": 0b000010,
               "fsqrt": 0b000011}

_ARRANGEMENT = {
    # arrangement -> (Q, size)
    "8b": (0, 0b00), "16b": (1, 0b00),
    "4h": (0, 0b01), "8h": (1, 0b01),
    "2s": (0, 0b10), "4s": (1, 0b10),
    "2d": (1, 0b11), "1d": (0, 0b11),
}


def _encode_fp_simd(m: str, ops, ctx: _Ctx) -> int:
    if ops and isinstance(ops[0], VecReg):
        return _encode_vector(m, ops)
    if m in _FP2_OPCODE and len(ops) == 3:
        rd, rn, rm = ops
        t = _FP_TYPE[rd.bits]
        return (
            (0b00011110 << 24) | (t << 22) | (1 << 21) | (_vreg(rm, m) << 16)
            | (_FP2_OPCODE[m] << 12) | (0b10 << 10) | (_vreg(rn, m) << 5)
            | _vreg(rd, m)
        )
    if m in ("fmadd", "fmsub"):
        rd, rn, rm, ra = ops
        t = _FP_TYPE[rd.bits]
        o0 = 1 if m == "fmsub" else 0
        return (
            (0b00011111 << 24) | (t << 22) | (_vreg(rm, m) << 16) | (o0 << 15)
            | (_vreg(ra, m) << 10) | (_vreg(rn, m) << 5) | _vreg(rd, m)
        )
    if m in ("fabs", "fneg", "fsqrt") or (
        m == "fmov" and len(ops) == 2 and _both_fp(ops)
    ):
        rd, rn = ops
        t = _FP_TYPE[rd.bits]
        return (
            (0b00011110 << 24) | (t << 22) | (1 << 21)
            | (_FP1_OPCODE[m] << 15) | (0b10000 << 10) | (_vreg(rn, m) << 5)
            | _vreg(rd, m)
        )
    if m == "fcvt":
        rd, rn = ops
        t = _FP_TYPE[rn.bits]
        opc = {64: 0b01, 32: 0b00, 16: 0b11}[rd.bits]
        return (
            (0b00011110 << 24) | (t << 22) | (1 << 21) | (0b0001 << 17)
            | (opc << 15) | (0b10000 << 10) | (_vreg(rn, m) << 5)
            | _vreg(rd, m)
        )
    if m in ("fcmp", "fcmpe"):
        rn = ops[0]
        t = _FP_TYPE[rn.bits]
        e_bit = 1 if m == "fcmpe" else 0
        if isinstance(ops[1], (FloatImm, Imm)):
            opcode2 = (e_bit << 4) | 0b01000
            rm = 0
        else:
            opcode2 = e_bit << 4
            rm = _vreg(ops[1], m)
        return (
            (0b00011110 << 24) | (t << 22) | (1 << 21) | (rm << 16)
            | (0b001000 << 10) | (_vreg(rn, m) << 5) | opcode2
        )
    if m == "fcsel":
        rd, rn, rm, cond = ops
        t = _FP_TYPE[rd.bits]
        return (
            (0b00011110 << 24) | (t << 22) | (1 << 21) | (_vreg(rm, m) << 16)
            | (_cond_value(cond.name) << 12) | (0b11 << 10)
            | (_vreg(rn, m) << 5) | _vreg(rd, m)
        )
    if m in ("scvtf", "ucvtf"):
        rd, rn = ops
        t = _FP_TYPE[rd.bits]
        sf = 1 if rn.bits == 64 else 0
        opcode = 0b010 if m == "scvtf" else 0b011
        return (
            (sf << 31) | (0b0011110 << 24) | (t << 22) | (1 << 21)
            | (0b00 << 19) | (opcode << 16) | (_gpr(rn, m) << 5)
            | _vreg(rd, m)
        )
    if m in ("fcvtzs", "fcvtzu"):
        rd, rn = ops
        t = _FP_TYPE[rn.bits]
        sf = 1 if rd.bits == 64 else 0
        opcode = 0b000 if m == "fcvtzs" else 0b001
        return (
            (sf << 31) | (0b0011110 << 24) | (t << 22) | (1 << 21)
            | (0b11 << 19) | (opcode << 16) | (_vreg(rn, m) << 5)
            | _gpr(rd, m)
        )
    if m == "fmov":
        rd, rn = ops
        if isinstance(rn, (FloatImm, Imm)):
            value = float(rn.value)
            imm8 = encode_fp8(value)
            if imm8 is None:
                raise EncodeError(f"fmov immediate {value} not encodable")
            t = _FP_TYPE[rd.bits]
            return (
                (0b00011110 << 24) | (t << 22) | (1 << 21) | (imm8 << 13)
                | (0b100 << 10) | _vreg(rd, m)
            )
        # General-register <-> FP moves.
        if isinstance(rd, Reg) and rd.is_vector:
            sf = 1 if rn.bits == 64 else 0
            t = _FP_TYPE[rd.bits]
            opcode = 0b111
            return (
                (sf << 31) | (0b0011110 << 24) | (t << 22) | (1 << 21)
                | (0b00 << 19) | (opcode << 16) | (_gpr(rn, m) << 5)
                | _vreg(rd, m)
            )
        sf = 1 if rd.bits == 64 else 0
        t = _FP_TYPE[rn.bits]
        opcode = 0b110
        return (
            (sf << 31) | (0b0011110 << 24) | (t << 22) | (1 << 21)
            | (0b00 << 19) | (opcode << 16) | (_vreg(rn, m) << 5)
            | _gpr(rd, m)
        )
    raise EncodeError(f"unsupported FP instruction {m}")


def _both_fp(ops) -> bool:
    return all(isinstance(op, Reg) and op.is_vector for op in ops[:2])


_VEC3_INT = {
    # mnemonic -> (U, opcode), integer three-same
    "add": (0, 0b10000), "sub": (1, 0b10000), "mul": (0, 0b10011),
}
_VEC3_LOGIC = {
    # mnemonic -> (U, size, opcode)
    "and": (0, 0b00, 0b00011), "orr": (0, 0b10, 0b00011),
    "eor": (1, 0b00, 0b00011), "bic": (0, 0b01, 0b00011),
}
_VEC3_FP = {
    # mnemonic -> (U, opcode); size = 0|sz (fadd/fmul) or 1|sz (fsub)
    "fadd": (0, 0b11010, 0), "fsub": (0, 0b11010, 1), "fmul": (1, 0b11011, 0),
    "fmax": (0, 0b11110, 0), "fmin": (0, 0b11110, 1), "fdiv": (1, 0b11111, 0),
}


def _encode_vector(m: str, ops) -> int:
    rd = ops[0]
    if not isinstance(rd, VecReg):
        raise EncodeError(f"{m}: expected vector register")
    q, size = _ARRANGEMENT[rd.arrangement]
    if m == "movi":
        imm_op = ops[1]
        value = imm_op.value if isinstance(imm_op, Imm) else int(imm_op.value)
        if rd.arrangement in ("8b", "16b"):
            imm8 = _check_unsigned(value, 8, "movi immediate")
            op = 0
        elif rd.arrangement == "2d" and value == 0:
            imm8, op = 0, 1
        else:
            raise EncodeError("movi supports 8b/16b #imm8 or 2d #0 only")
        abc = (imm8 >> 5) & 0x7
        defgh = imm8 & 0x1F
        cmode = 0b1110
        return (
            (q << 30) | (op << 29) | (0b0111100000 << 19) | (abc << 16)
            | (cmode << 12) | (1 << 10) | (defgh << 5) | rd.reg.index
        )
    if m == "dup" and isinstance(ops[1], Reg) and not ops[1].is_vector:
        rn = ops[1]
        lane = rd.arrangement[-1]
        imm5 = {"b": 0b00001, "h": 0b00010, "s": 0b00100, "d": 0b01000}[lane]
        return (
            (q << 30) | (0b001110000 << 21) | (imm5 << 16) | (0b000011 << 10)
            | (_gpr(rn, m) << 5) | rd.reg.index
        )
    rn, rm = ops[1], ops[2]
    if not (isinstance(rn, VecReg) and isinstance(rm, VecReg)):
        raise EncodeError(f"{m}: expected three vector registers")
    if m in _VEC3_INT:
        u, opcode = _VEC3_INT[m]
    elif m in _VEC3_LOGIC:
        u, size, opcode = _VEC3_LOGIC[m]
    elif m in _VEC3_FP:
        u, opcode, hi = _VEC3_FP[m]
        sz = 1 if rd.lane_bits == 64 else 0
        size = (hi << 1) | sz
    else:
        raise EncodeError(f"unsupported vector instruction {m}")
    return (
        (q << 30) | (u << 29) | (0b01110 << 24) | (size << 22) | (1 << 21)
        | (rm.reg.index << 16) | (opcode << 11) | (1 << 10)
        | (rn.reg.index << 5) | rd.reg.index
    )


def reencode_word(word: int, pc: int = 0) -> Optional[int]:
    """Decode a word and encode the result back (round-trip probe).

    Returns the re-encoded word, or None when the word is undecodable.
    The enumerator in ``repro.prove`` rests on ``reencode_word(w) == w``
    holding for every decodable word of a class: it guarantees the
    decoded IR the verifier and the abstract interpreter agree on is a
    faithful, canonical reading of the encoding.
    """
    from .decoder import decode_word

    inst = decode_word(word, pc)
    if inst is None:
        return None
    return encode_instruction(inst, pc)

"""Parser for GNU-syntax ARM64 assembly text.

This is the front half of the paper's assembly-transformation pipeline
(§5.1): the rewriter consumes ``.s`` text produced by an off-the-shelf
compiler.  The parser handles labels, directives, comments, and the operand
grammar (registers, immediates, shifts/extends, all Table-1 addressing
modes, condition codes, and ``:lo12:`` relocations).
"""

from __future__ import annotations

import re
from typing import List, Optional

from .instructions import Instruction
from .operands import (
    CONDITION_ALIASES,
    CONDITION_CODES,
    EXTEND_KINDS,
    SHIFT_KINDS,
    Cond,
    Extended,
    FloatImm,
    Imm,
    Label,
    Mem,
    Operand,
    POST_INDEX,
    PRE_INDEX,
    Shifted,
    ShiftedImm,
    VecReg,
)
from .program import Directive, LabelDef, Program
from .registers import lookup_register

__all__ = ["parse_assembly", "parse_operand", "AsmSyntaxError"]


class AsmSyntaxError(ValueError):
    """Raised for malformed assembly input."""

    def __init__(self, message: str, line: Optional[int] = None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_INT_RE = re.compile(r"^[+-]?(0[xX][0-9a-fA-F]+|\d+)$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*([eE][+-]?\d+)?|\d+[eE][+-]?\d+)$")
_VECREG_RE = re.compile(r"^(v\d+)\.(8b|16b|4h|8h|2s|4s|1d|2d)$", re.IGNORECASE)
_LABEL_ADD_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)\s*\+\s*(\d+)$")
_SHIFT_RE = re.compile(r"^(lsl|lsr|asr|ror)\s+#?([\w-]+)$", re.IGNORECASE)
_EXTEND_RE = re.compile(
    r"^(uxtb|uxth|uxtw|uxtx|sxtb|sxth|sxtw|sxtx)(?:\s+#?(\d+))?$", re.IGNORECASE
)
_LO12_RE = re.compile(r"^:lo12:([A-Za-z_.$][\w.$]*)$")


def _strip_comments(line: str) -> str:
    line = re.sub(r"/\*.*?\*/", " ", line)
    for marker in ("//", "@"):
        idx = _find_outside_quotes(line, marker)
        if idx >= 0:
            line = line[:idx]
    return line.strip()


def _find_outside_quotes(line: str, marker: str) -> int:
    in_quote = False
    i = 0
    while i < len(line) - len(marker) + 1:
        c = line[i]
        if c == '"':
            in_quote = not in_quote
        elif not in_quote and line.startswith(marker, i):
            return i
        i += 1
    return -1


def _split_top_level(text: str, sep: str = ",") -> List[str]:
    """Split on ``sep`` outside brackets, braces, and quotes."""
    parts: List[str] = []
    depth = 0
    in_quote = False
    current: List[str] = []
    for c in text:
        if c == '"':
            in_quote = not in_quote
            current.append(c)
        elif in_quote:
            current.append(c)
        elif c in "[{(":
            depth += 1
            current.append(c)
        elif c in "]})":
            depth -= 1
            current.append(c)
        elif c == sep and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(c)
    tail = "".join(current).strip()
    if tail or parts:
        parts.append(tail)
    return parts


def _parse_int(text: str, line: Optional[int] = None) -> int:
    text = text.strip()
    neg = text.startswith("-")
    if neg or text.startswith("+"):
        body = text[1:]
    else:
        body = text
    try:
        value = int(body, 0)
    except ValueError:
        raise AsmSyntaxError(f"bad integer literal {text!r}", line)
    return -value if neg else value


def parse_operand(text: str, line: Optional[int] = None) -> Operand:
    """Parse one operand token (already comma-split at top level)."""
    text = text.strip()
    if not text:
        raise AsmSyntaxError("empty operand", line)

    if text.startswith("["):
        return _parse_mem(text, line)

    if text.startswith("#"):
        body = text[1:].strip()
        lo12 = _LO12_RE.match(body)
        if lo12:
            return Imm(0, reloc="lo12", symbol=lo12.group(1))
        if _FLOAT_RE.match(body):
            return FloatImm(float(body))
        return Imm(_parse_int(body, line))

    lo12 = _LO12_RE.match(text)
    if lo12:
        return Imm(0, reloc="lo12", symbol=lo12.group(1))

    vec = _VECREG_RE.match(text)
    if vec:
        reg = lookup_register(vec.group(1))
        if reg is None:
            raise AsmSyntaxError(f"unknown register {vec.group(1)!r}", line)
        return VecReg(reg, vec.group(2).lower())

    reg = lookup_register(text)
    if reg is not None:
        return reg

    if _INT_RE.match(text):
        return Imm(_parse_int(text, line))
    if _FLOAT_RE.match(text):
        return FloatImm(float(text))

    lower = text.lower()
    if lower in CONDITION_CODES or lower in CONDITION_ALIASES:
        return Cond(CONDITION_ALIASES.get(lower, lower))

    plus = _LABEL_ADD_RE.match(text)
    if plus:
        return Label(plus.group(1), int(plus.group(2)))
    if re.match(r"^[A-Za-z_.$][\w.$]*$", text):
        return Label(text)
    raise AsmSyntaxError(f"cannot parse operand {text!r}", line)


def _parse_mem(text: str, line: Optional[int]) -> Mem:
    pre_index = text.endswith("!")
    if pre_index:
        text = text[:-1].rstrip()
    if not (text.startswith("[") and text.endswith("]")):
        raise AsmSyntaxError(f"malformed memory operand {text!r}", line)
    inner = text[1:-1].strip()
    parts = _split_top_level(inner)
    if not parts or not parts[0]:
        raise AsmSyntaxError(f"empty memory operand {text!r}", line)
    base = lookup_register(parts[0])
    if base is None:
        raise AsmSyntaxError(f"bad base register {parts[0]!r}", line)

    offset = None
    if len(parts) == 2:
        offset = parse_operand(parts[1], line)
        if isinstance(offset, Label):
            raise AsmSyntaxError(f"label offset not supported: {text!r}", line)
    elif len(parts) == 3:
        reg = lookup_register(parts[1])
        if reg is None:
            raise AsmSyntaxError(f"bad offset register {parts[1]!r}", line)
        offset = _merge_modifier(reg, parts[2], line)
    elif len(parts) > 3:
        raise AsmSyntaxError(f"too many memory operand parts: {text!r}", line)

    mode = PRE_INDEX if pre_index else "offset"
    return Mem(base=base, offset=offset, mode=mode)


def _merge_modifier(reg, modifier: str, line: Optional[int]) -> Operand:
    """Fold ``lsl #3`` / ``uxtw #2`` onto the preceding register."""
    shift = _SHIFT_RE.match(modifier)
    if shift:
        kind = shift.group(1).lower()
        return Shifted(reg, kind, _parse_int(shift.group(2), line))
    extend = _EXTEND_RE.match(modifier)
    if extend:
        amount = extend.group(2)
        return Extended(
            reg, extend.group(1).lower(), int(amount) if amount else None
        )
    raise AsmSyntaxError(f"bad register modifier {modifier!r}", line)


def _parse_instruction(text: str, line: Optional[int]) -> Instruction:
    parts = text.split(None, 1)
    mnemonic = parts[0].lower()
    if len(parts) == 1:
        return Instruction(mnemonic, (), line)
    raw_ops = _split_top_level(parts[1])
    operands: List[Operand] = []
    for raw in raw_ops:
        if not raw:
            raise AsmSyntaxError(f"empty operand in {text!r}", line)
        # Shift/extend modifiers attach to the previous register operand.
        if operands and (_SHIFT_RE.match(raw) or _EXTEND_RE.match(raw)):
            prev = operands[-1]
            from .registers import Reg

            if isinstance(prev, Reg):
                operands[-1] = _merge_modifier(prev, raw, line)
                continue
            shift = _SHIFT_RE.match(raw)
            if isinstance(prev, Imm) and shift and shift.group(1).lower() == "lsl":
                operands[-1] = ShiftedImm(
                    prev.value, _parse_int(shift.group(2), line)
                )
                continue
        operands.append(parse_operand(raw, line))

    operands = _merge_post_index(mnemonic, operands)
    return Instruction(mnemonic, tuple(operands), line)


def _merge_post_index(mnemonic: str, operands: List[Operand]) -> List[Operand]:
    """Turn ``[x1], #8`` (Mem followed by Imm) into a post-index Mem."""
    from . import isa

    if not isa.is_memory(mnemonic):
        return operands
    for i, op in enumerate(operands):
        if (
            isinstance(op, Mem)
            and op.offset is None
            and op.mode == "offset"
            and i + 1 < len(operands)
            and isinstance(operands[i + 1], Imm)
        ):
            merged = Mem(base=op.base, offset=operands[i + 1], mode=POST_INDEX)
            return operands[:i] + [merged] + operands[i + 2:]
    return operands


def parse_assembly(text: str) -> Program:
    """Parse GNU-syntax assembly text into a :class:`Program`."""
    program = Program()
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip_comments(raw_line)
        while line:
            match = _LABEL_RE.match(line)
            if match:
                program.add(LabelDef(match.group(1)))
                line = line[match.end():].strip()
                continue
            # Split multiple statements on the same line.
            semi = _find_outside_quotes(line, ";")
            statement, line = (
                (line[:semi].strip(), line[semi + 1:].strip())
                if semi >= 0
                else (line, "")
            )
            if not statement:
                continue
            if statement.startswith("."):
                parts = statement.split(None, 1)
                args = (
                    tuple(_split_top_level(parts[1])) if len(parts) > 1 else ()
                )
                program.add(Directive(parts[0], args))
            else:
                program.add(_parse_instruction(statement, lineno))
    return program

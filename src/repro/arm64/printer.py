"""Emit a Program back to GNU-syntax assembly text.

``parse_assembly(print_assembly(p))`` is an identity up to whitespace, which
the test suite checks with Hypothesis round-trip properties.
"""

from __future__ import annotations

from typing import Iterable

from .instructions import Instruction
from .program import Directive, Item, LabelDef, Program

__all__ = ["print_assembly", "format_item"]


def format_item(item: Item) -> str:
    if isinstance(item, LabelDef):
        return f"{item.name}:"
    if isinstance(item, Directive):
        return f"\t{item}"
    if isinstance(item, Instruction):
        return f"\t{item}"
    raise TypeError(f"unknown program item: {item!r}")


def print_assembly(program: Program) -> str:
    """Render the program as assembly text (one item per line)."""
    return "\n".join(format_item(item) for item in program.items) + "\n"

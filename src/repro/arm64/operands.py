"""Operand model for ARM64 instructions.

Operands are the comma-separated items of a GNU-assembly instruction after
the mnemonic.  A register with a trailing shift or extend modifier (e.g.
``x2, lsl #3``) is folded into a single :class:`Shifted` / :class:`Extended`
operand, and a bracketed memory reference becomes a single :class:`Mem`
operand so the rest of the system can pattern-match on whole addressing
modes (Table 1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from .registers import Reg

SHIFT_KINDS = ("lsl", "lsr", "asr", "ror")
EXTEND_KINDS = ("uxtb", "uxth", "uxtw", "uxtx", "sxtb", "sxth", "sxtw", "sxtx")

#: Condition codes in encoding order (cond field value == list index).
CONDITION_CODES = (
    "eq", "ne", "cs", "cc", "mi", "pl", "vs", "vc",
    "hi", "ls", "ge", "lt", "gt", "le", "al", "nv",
)
CONDITION_ALIASES = {"hs": "cs", "lo": "cc"}


def canonical_condition(name: str) -> str:
    """Normalize a condition name, mapping aliases (hs/lo) to cs/cc."""
    name = name.lower()
    name = CONDITION_ALIASES.get(name, name)
    if name not in CONDITION_CODES:
        raise ValueError(f"unknown condition code: {name!r}")
    return name


def invert_condition(name: str) -> str:
    """The condition that is true exactly when ``name`` is false."""
    idx = CONDITION_CODES.index(canonical_condition(name))
    return CONDITION_CODES[idx ^ 1]


@dataclass(frozen=True)
class Imm:
    """An immediate operand (``#42``).  ``reloc`` marks ``:lo12:sym`` uses."""

    value: int
    reloc: Optional[str] = None  # None | "lo12"
    symbol: Optional[str] = None

    def __str__(self) -> str:
        if self.reloc:
            return f":{self.reloc}:{self.symbol}"
        return f"#{self.value}"


@dataclass(frozen=True)
class FloatImm:
    """A floating-point immediate operand (``#1.5`` in fmov)."""

    value: float

    def __str__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True)
class Shifted:
    """A register with a shift modifier: ``x2, lsl #3``."""

    reg: Reg
    kind: str  # lsl/lsr/asr/ror
    amount: int

    def __str__(self) -> str:
        return f"{self.reg}, {self.kind} #{self.amount}"


@dataclass(frozen=True)
class ShiftedImm:
    """An immediate with an ``lsl`` shift: ``#0x1234, lsl #16`` (movz/movk)."""

    value: int
    shift: int

    def __str__(self) -> str:
        return f"#{self.value}, lsl #{self.shift}"


@dataclass(frozen=True)
class Extended:
    """A register with an extend modifier: ``w2, uxtw #2``.

    ``amount`` is None when no explicit shift was written (plain ``uxtw``).
    """

    reg: Reg
    kind: str  # one of EXTEND_KINDS
    amount: Optional[int] = None

    def __str__(self) -> str:
        if self.amount is None:
            return f"{self.reg}, {self.kind}"
        return f"{self.reg}, {self.kind} #{self.amount}"


@dataclass(frozen=True)
class Cond:
    """A bare condition-code operand (csel/ccmp/cset final operand)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Label:
    """A symbolic code or data reference (branch target, adr/adrp page)."""

    name: str
    addend: int = 0

    def __str__(self) -> str:
        if self.addend:
            return f"{self.name}+{self.addend}"
        return self.name


@dataclass(frozen=True)
class VecReg:
    """A vector register with an arrangement specifier: ``v0.4s``."""

    reg: Reg  # always the v-view (128-bit)
    arrangement: str  # 8b, 16b, 4h, 8h, 2s, 4s, 1d, 2d

    def __str__(self) -> str:
        return f"{self.reg}.{self.arrangement}"

    @property
    def lane_bits(self) -> int:
        return {"b": 8, "h": 16, "s": 32, "d": 64}[self.arrangement[-1]]

    @property
    def lanes(self) -> int:
        return int(self.arrangement[:-1])


# Memory addressing-mode tags (paper Table 1).
OFFSET = "offset"  # [xN] / [xN, #i] / [xN, xM, lsl #i] / [xN, wM, uxtw #i]
PRE_INDEX = "pre"  # [xN, #i]!
POST_INDEX = "post"  # [xN], #i


@dataclass(frozen=True)
class Mem:
    """A memory operand covering all of the paper's Table-1 addressing modes.

    - ``[xN]``                 -> Mem(base=xN)
    - ``[xN, #i]``             -> Mem(base=xN, offset=Imm(i))
    - ``[xN, #i]!``            -> Mem(base=xN, offset=Imm(i), mode=PRE_INDEX)
    - ``[xN], #i``             -> Mem(base=xN, offset=Imm(i), mode=POST_INDEX)
    - ``[xN, xM, lsl #i]``     -> Mem(base=xN, offset=Shifted(xM, lsl, i))
    - ``[xN, wM, uxtw #i]``    -> Mem(base=xN, offset=Extended(wM, uxtw, i))
    - ``[xN, wM, sxtw #i]``    -> Mem(base=xN, offset=Extended(wM, sxtw, i))
    - ``[xN, xM]``             -> Mem(base=xN, offset=xM)
    """

    base: Reg
    offset: Union[Imm, Reg, Shifted, Extended, None] = None
    mode: str = OFFSET

    def __str__(self) -> str:
        if self.offset is None:
            return f"[{self.base}]"
        if self.mode == POST_INDEX:
            return f"[{self.base}], {self.offset}"
        inner = f"[{self.base}, {self.offset}]"
        if self.mode == PRE_INDEX:
            inner += "!"
        return inner

    @property
    def imm_value(self) -> int:
        """The immediate displacement, 0 for register-offset/none forms."""
        if isinstance(self.offset, Imm):
            return self.offset.value
        return 0

    @property
    def has_register_offset(self) -> bool:
        return isinstance(self.offset, (Reg, Shifted, Extended))

    @property
    def offset_reg(self) -> Optional[Reg]:
        """The register used as offset, if any."""
        if isinstance(self.offset, Reg):
            return self.offset
        if isinstance(self.offset, (Shifted, Extended)):
            return self.offset.reg
        return None

    @property
    def writes_back(self) -> bool:
        return self.mode in (PRE_INDEX, POST_INDEX)


Operand = Union[
    Reg, Imm, FloatImm, Shifted, ShiftedImm, Extended, Cond, Label, VecReg, Mem
]

"""The Instruction IR shared by the parser, rewriter, verifier, and emulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from . import isa
from .operands import (
    Cond,
    Extended,
    FloatImm,
    Imm,
    Label,
    Mem,
    Operand,
    Shifted,
    VecReg,
)
from .registers import Reg


@dataclass
class Instruction:
    """One assembly instruction: a mnemonic plus parsed operands.

    The mnemonic is stored lowercase and includes any condition suffix
    (``b.eq``); :attr:`base` strips the suffix.  Source location is kept for
    diagnostics when parsing user assembly.
    """

    mnemonic: str
    operands: Tuple[Operand, ...] = ()
    line: Optional[int] = None
    #: Guard provenance: the guard class (``memory``/``branch``/``sp``/
    #: ``x30``/``hoist``) when this instruction was *inserted by the
    #: rewriter* as SFI overhead, else ``None`` (application code).  The
    #: assembler turns this into an address->class map that rides along in
    #: the ELF so the obs profiler can attribute cycles (DESIGN.md §9).
    #: Excluded from equality so tagged output still compares equal to the
    #: plain instructions tests construct.
    guard: Optional[str] = field(default=None, compare=False, repr=False)

    def __str__(self) -> str:
        if not self.operands:
            return self.mnemonic
        return f"{self.mnemonic} " + ", ".join(str(op) for op in self.operands)

    def __repr__(self) -> str:
        return f"Instruction({self})"

    # -- classification ----------------------------------------------------

    @property
    def base(self) -> str:
        """Mnemonic without a condition suffix (``b.eq`` -> ``b``)."""
        if self.mnemonic.startswith("b."):
            return "b"
        return self.mnemonic

    @property
    def is_load(self) -> bool:
        return isa.is_load(self.mnemonic)

    @property
    def is_store(self) -> bool:
        return isa.is_store(self.mnemonic)

    @property
    def is_memory(self) -> bool:
        return isa.is_memory(self.mnemonic)

    @property
    def is_branch(self) -> bool:
        return isa.is_branch(self.mnemonic)

    @property
    def is_indirect_branch(self) -> bool:
        return isa.is_indirect_branch(self.mnemonic)

    @property
    def is_direct_branch(self) -> bool:
        return self.mnemonic in isa.DIRECT_BRANCHES

    @property
    def is_call(self) -> bool:
        return self.mnemonic in isa.CALLS

    @property
    def is_terminator(self) -> bool:
        """True if control never falls through (unconditional transfer)."""
        return self.mnemonic in ("b", "br", "ret")

    # -- operand accessors --------------------------------------------------

    @property
    def mem(self) -> Optional[Mem]:
        """The memory operand of a load/store, or None."""
        for op in self.operands:
            if isinstance(op, Mem):
                return op
        return None

    @property
    def transfer_regs(self) -> List[Reg]:
        """Registers moved to/from memory by a load/store (rt, and rt2)."""
        regs: List[Reg] = []
        for op in self.operands:
            if isinstance(op, Mem):
                break
            if isinstance(op, Reg):
                regs.append(op)
        return regs

    def defs(self) -> List[Reg]:
        """Architectural register destinations written by this instruction.

        Flags (NZCV) are not modeled here.  Memory is not a register.  The
        list is what the verifier needs to police reserved-register writes.
        """
        m = self.mnemonic
        out: List[Reg] = []
        if isa.is_memory(m):
            if isa.is_load(m):
                if m in ("ldxr", "ldaxr"):
                    out.extend(self.transfer_regs)
                else:
                    out.extend(self.transfer_regs)
            elif m in ("stxr", "stlxr"):
                # First operand is the 32-bit status register.
                first = self.operands[0]
                if isinstance(first, Reg):
                    out.append(first)
            mem = self.mem
            if mem is not None and mem.writes_back:
                out.append(mem.base)
            return out
        if m in ("bl", "blr"):
            from .registers import LR

            return [LR]
        if isa.is_branch(m):
            return []
        if m in isa.FLAG_ONLY:
            return []
        if m in isa.UNSAFE_SYSTEM or m in isa.SAFE_SYSTEM:
            return []
        # Data-processing / FP / SIMD: first register-like operand is dest.
        if self.operands:
            first = self.operands[0]
            if isinstance(first, Reg):
                return [first]
            if isinstance(first, VecReg):
                return [first.reg]
        return []

    def uses(self) -> List[Reg]:
        """Registers read by this instruction (approximate, conservative)."""
        m = self.mnemonic
        defs = set(self.defs())
        out: List[Reg] = []

        def add(reg: Reg) -> None:
            out.append(reg)

        for i, op in enumerate(self.operands):
            if isinstance(op, Reg):
                if i == 0 and op in defs and not isa.is_store(m):
                    # Pure destination (except stores, where rt is a source,
                    # and movk, which read-modify-writes its destination).
                    if m == "movk":
                        add(op)
                    continue
                add(op)
            elif isinstance(op, VecReg):
                if not (i == 0 and op.reg in defs):
                    add(op.reg)
            elif isinstance(op, (Shifted, Extended)):
                add(op.reg)
            elif isinstance(op, Mem):
                add(op.base)
                r = op.offset_reg
                if r is not None:
                    add(r)
        if m == "ret" and not self.operands:
            from .registers import LR

            add(LR)
        return out

    def branch_target(self) -> Optional[Label]:
        """The label of a direct branch, or None."""
        for op in self.operands:
            if isinstance(op, Label):
                return op
        return None

    def with_operands(self, *operands: Operand) -> "Instruction":
        return Instruction(self.mnemonic, tuple(operands), self.line)


def ins(mnemonic: str, *operands: Operand, line: Optional[int] = None) -> Instruction:
    """Convenience constructor used heavily by the rewriter and generators."""
    return Instruction(mnemonic.lower(), tuple(operands), line)


def access_bytes(inst: Instruction) -> int:
    """Bytes touched per transfer register by a load/store instruction."""
    m = inst.mnemonic
    if m in ("ldrb", "strb", "ldrsb"):
        return 1
    if m in ("ldrh", "strh", "ldrsh"):
        return 2
    if m == "ldrsw":
        return 4
    regs = inst.transfer_regs
    if not regs:
        raise ValueError(f"not a memory instruction: {inst}")
    return max(1, regs[0].bits // 8)


def total_access_bytes(inst: Instruction) -> int:
    """Total bytes touched by the access (both registers of a pair)."""
    per = access_bytes(inst)
    if inst.mnemonic in isa.PAIR_MEMORY:
        return per * 2
    return per

"""ARMv8.0 machine-code decoder for the supported instruction subset.

The decoder is the front half of the trusted verifier (paper §5.2): it turns
32-bit words back into :class:`Instruction` objects.  Any word it does not
recognize decodes to ``None``, which the verifier treats as an unsafe
instruction.  The decoder is deliberately *strict*: non-canonical encodings
(e.g. a shifted add immediate of zero) are rejected rather than normalized,
which keeps ``encode(decode(w)) == w`` for every accepted word — a property
the test suite checks exhaustively with Hypothesis.

Direct branch targets, adr/adrp targets, and similar PC-relative values are
decoded to absolute addresses (``Imm``) using the ``pc`` argument.
"""

from __future__ import annotations

from typing import List, Optional

from .encoder import decode_bitmask, decode_fp8
from .instructions import Instruction
from .operands import (
    CONDITION_CODES,
    Cond,
    Extended,
    FloatImm,
    Imm,
    Mem,
    OFFSET,
    POST_INDEX,
    PRE_INDEX,
    Shifted,
    ShiftedImm,
    VecReg,
)
from .registers import INDEX_31, Reg, V, gpr_or_sp, gpr_or_zr, vec

__all__ = ["decode_word", "decode_text", "decoder_names", "decoding_class"]

_EXTEND_NAMES = ["uxtb", "uxth", "uxtw", "uxtx", "sxtb", "sxth", "sxtw", "sxtx"]
_SHIFT_NAMES = ["lsl", "lsr", "asr", "ror"]


def _bits(word: int, hi: int, lo: int) -> int:
    return (word >> lo) & ((1 << (hi - lo + 1)) - 1)


def _sext(value: int, bits: int) -> int:
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


def decode_word(word: int, pc: int = 0) -> Optional[Instruction]:
    """Decode one 32-bit word, or return None if unrecognized."""
    word &= 0xFFFFFFFF
    for decoder in _DECODERS:
        inst = decoder(word, pc)
        if inst is not None:
            return inst
    return None


def decode_text(data: bytes, base: int = 0) -> List[Optional[Instruction]]:
    """Decode a text segment; entry i corresponds to address base + 4*i."""
    out: List[Optional[Instruction]] = []
    for offset in range(0, len(data) - len(data) % 4, 4):
        word = int.from_bytes(data[offset:offset + 4], "little")
        out.append(decode_word(word, base + offset))
    return out


def decoder_names() -> List[str]:
    """Encoding-group decoder names in dispatch order.

    Class-space introspection for ``repro.prove``: each name corresponds
    to one encoding template family the decoder recognizes.
    """
    return [fn.__name__.replace("_dec_", "", 1) for fn in _DECODERS]


def decoding_class(word: int) -> Optional[str]:
    """The name of the encoding group that claims this word, or None."""
    word &= 0xFFFFFFFF
    for decoder in _DECODERS:
        if decoder(word, 0) is not None:
            return decoder.__name__.replace("_dec_", "", 1)
    return None


# ---------------------------------------------------------------------------
# System
# ---------------------------------------------------------------------------

def _dec_system(word: int, pc: int) -> Optional[Instruction]:
    if word == 0xD503201F:
        return Instruction("nop")
    if word & 0xFFE0001F == 0xD4000001:
        return Instruction("svc", (Imm(_bits(word, 20, 5)),))
    if word & 0xFFE0001F == 0xD4200000:
        return Instruction("brk", (Imm(_bits(word, 20, 5)),))
    if word & 0xFFE0001F == 0xD4400000:
        return Instruction("hlt", (Imm(_bits(word, 20, 5)),))
    if word & 0xFFFFF01F == 0xD503301F:
        op2 = _bits(word, 7, 5)
        name = {0b100: "dsb", 0b101: "dmb", 0b110: "isb"}.get(op2)
        if name is None:
            return None
        crm = _bits(word, 11, 8)
        from .operands import Label

        barrier = {0b1111: "sy", 0b1011: "ish", 0b1001: "ishld",
                   0b1010: "ishst"}.get(crm)
        if barrier is None:
            return None
        return Instruction(name, (Label(barrier),))
    return None


# ---------------------------------------------------------------------------
# Branches
# ---------------------------------------------------------------------------

def _dec_branch_imm(word: int, pc: int) -> Optional[Instruction]:
    if _bits(word, 30, 26) != 0b00101:
        return None
    mnemonic = "bl" if word >> 31 else "b"
    offset = _sext(_bits(word, 25, 0), 26) * 4
    return Instruction(mnemonic, (Imm(pc + offset),))


def _dec_branch_cond(word: int, pc: int) -> Optional[Instruction]:
    if word & 0xFF000010 != 0x54000000:
        return None
    cond = CONDITION_CODES[word & 0xF]
    if cond in ("al", "nv"):
        return None
    offset = _sext(_bits(word, 23, 5), 19) * 4
    return Instruction(f"b.{cond}", (Imm(pc + offset),))


def _dec_branch_reg(word: int, pc: int) -> Optional[Instruction]:
    if word & 0xFFDFFC1F != 0xD61F0000 and word & 0xFFFFFC1F != 0xD65F0000:
        return None
    opc = _bits(word, 24, 21)
    name = {0b0000: "br", 0b0001: "blr", 0b0010: "ret"}.get(opc)
    if name is None or _bits(word, 20, 16) != 0b11111 or _bits(word, 15, 10):
        return None
    rn = gpr_or_zr(_bits(word, 9, 5))
    return Instruction(name, (rn,))


def _dec_cb(word: int, pc: int) -> Optional[Instruction]:
    if _bits(word, 30, 25) != 0b011010:
        return None
    sf = word >> 31
    mnemonic = "cbnz" if _bits(word, 24, 24) else "cbz"
    rt = gpr_or_zr(_bits(word, 4, 0), 64 if sf else 32)
    offset = _sext(_bits(word, 23, 5), 19) * 4
    return Instruction(mnemonic, (rt, Imm(pc + offset)))


def _dec_tb(word: int, pc: int) -> Optional[Instruction]:
    if _bits(word, 30, 25) != 0b011011:
        return None
    mnemonic = "tbnz" if _bits(word, 24, 24) else "tbz"
    bit = (_bits(word, 31, 31) << 5) | _bits(word, 23, 19)
    rt = gpr_or_zr(_bits(word, 4, 0), 64 if bit >= 32 else 64)
    offset = _sext(_bits(word, 18, 5), 14) * 4
    return Instruction(mnemonic, (rt, Imm(bit), Imm(pc + offset)))


# ---------------------------------------------------------------------------
# Data processing -- immediate
# ---------------------------------------------------------------------------

def _dec_adr(word: int, pc: int) -> Optional[Instruction]:
    if _bits(word, 28, 24) != 0b10000:
        return None
    rd = gpr_or_zr(_bits(word, 4, 0))
    imm = _sext((_bits(word, 23, 5) << 2) | _bits(word, 30, 29), 21)
    if word >> 31:
        target = ((pc >> 12) + imm) << 12
        return Instruction("adrp", (rd, Imm(target)))
    return Instruction("adr", (rd, Imm(pc + imm)))


def _dec_addsub_imm(word: int, pc: int) -> Optional[Instruction]:
    if _bits(word, 28, 23) != 0b100010:
        return None
    sf, op, s = word >> 31, _bits(word, 30, 30), _bits(word, 29, 29)
    sh = _bits(word, 22, 22)
    imm12 = _bits(word, 21, 10)
    if sh and imm12 == 0:
        return None  # non-canonical
    bits = 64 if sf else 32
    rn = gpr_or_sp(_bits(word, 9, 5), bits)
    rd = (gpr_or_zr if s else gpr_or_sp)(_bits(word, 4, 0), bits)
    mnemonic = ("sub" if op else "add") + ("s" if s else "")
    value = imm12 << (12 if sh else 0)
    return Instruction(mnemonic, (rd, rn, Imm(value)))


def _dec_logical_imm(word: int, pc: int) -> Optional[Instruction]:
    if _bits(word, 28, 23) != 0b100100:
        return None
    sf = word >> 31
    opc = _bits(word, 30, 29)
    n, immr, imms = _bits(word, 22, 22), _bits(word, 21, 16), _bits(word, 15, 10)
    if n and not sf:
        return None
    width = 64 if sf else 32
    value = decode_bitmask(n, immr, imms, width)
    if value is None:
        return None
    bits = width
    mnemonic = ["and", "orr", "eor", "ands"][opc]
    rn = gpr_or_zr(_bits(word, 9, 5), bits)
    rd_field = _bits(word, 4, 0)
    rd = (gpr_or_zr if opc == 0b11 else gpr_or_sp)(rd_field, bits)
    return Instruction(mnemonic, (rd, rn, Imm(value)))


def _dec_movewide(word: int, pc: int) -> Optional[Instruction]:
    if _bits(word, 28, 23) != 0b100101:
        return None
    sf = word >> 31
    opc = _bits(word, 30, 29)
    mnemonic = {0b00: "movn", 0b10: "movz", 0b11: "movk"}.get(opc)
    if mnemonic is None:
        return None
    hw = _bits(word, 22, 21)
    if not sf and hw > 1:
        return None
    imm16 = _bits(word, 20, 5)
    rd = gpr_or_zr(_bits(word, 4, 0), 64 if sf else 32)
    if hw:
        return Instruction(mnemonic, (rd, ShiftedImm(imm16, hw * 16)))
    return Instruction(mnemonic, (rd, Imm(imm16)))


def _dec_bitfield(word: int, pc: int) -> Optional[Instruction]:
    if _bits(word, 28, 23) != 0b100110:
        return None
    sf = word >> 31
    opc = _bits(word, 30, 29)
    mnemonic = {0b00: "sbfm", 0b01: "bfm", 0b10: "ubfm"}.get(opc)
    if mnemonic is None:
        return None
    n = _bits(word, 22, 22)
    if n != sf:
        return None
    bits = 64 if sf else 32
    immr, imms = _bits(word, 21, 16), _bits(word, 15, 10)
    if not sf and (immr > 31 or imms > 31):
        return None
    rd = gpr_or_zr(_bits(word, 4, 0), bits)
    rn = gpr_or_zr(_bits(word, 9, 5), bits)
    return Instruction(mnemonic, (rd, rn, Imm(immr), Imm(imms)))


def _dec_extr(word: int, pc: int) -> Optional[Instruction]:
    if _bits(word, 28, 23) != 0b100111:
        return None
    sf = word >> 31
    n = _bits(word, 22, 22)
    if n != sf or _bits(word, 21, 21):
        return None
    bits = 64 if sf else 32
    imms = _bits(word, 15, 10)
    if not sf and imms > 31:
        return None
    rd = gpr_or_zr(_bits(word, 4, 0), bits)
    rn = gpr_or_zr(_bits(word, 9, 5), bits)
    rm = gpr_or_zr(_bits(word, 20, 16), bits)
    if rn == rm:
        return Instruction("ror", (rd, rn, Imm(imms)))
    return None  # general extr not in the supported subset


# ---------------------------------------------------------------------------
# Data processing -- register
# ---------------------------------------------------------------------------

def _dec_logical_shifted(word: int, pc: int) -> Optional[Instruction]:
    if _bits(word, 28, 24) != 0b01010:
        return None
    sf = word >> 31
    opc = _bits(word, 30, 29)
    shift = _bits(word, 23, 22)
    n = _bits(word, 21, 21)
    bits = 64 if sf else 32
    amount = _bits(word, 15, 10)
    if not sf and amount > 31:
        return None
    rd = gpr_or_zr(_bits(word, 4, 0), bits)
    rn = gpr_or_zr(_bits(word, 9, 5), bits)
    rm = gpr_or_zr(_bits(word, 20, 16), bits)
    mnemonic = [["and", "bic"], ["orr", "orn"], ["eor", "eon"],
                ["ands", "bics"]][opc][n]
    if mnemonic == "orr" and rn.is_zero and shift == 0 and amount == 0:
        return Instruction("mov", (rd, rm))
    src = rm if shift == 0 and amount == 0 else Shifted(
        rm, _SHIFT_NAMES[shift], amount
    )
    return Instruction(mnemonic, (rd, rn, src))


def _dec_addsub_shifted(word: int, pc: int) -> Optional[Instruction]:
    if _bits(word, 28, 24) != 0b01011 or _bits(word, 21, 21):
        return None
    if _bits(word, 23, 22) == 0b11:
        return None
    sf, op, s = word >> 31, _bits(word, 30, 30), _bits(word, 29, 29)
    bits = 64 if sf else 32
    shift = _bits(word, 23, 22)
    amount = _bits(word, 15, 10)
    if not sf and amount > 31:
        return None
    rd = gpr_or_zr(_bits(word, 4, 0), bits)
    rn = gpr_or_zr(_bits(word, 9, 5), bits)
    rm = gpr_or_zr(_bits(word, 20, 16), bits)
    mnemonic = ("sub" if op else "add") + ("s" if s else "")
    src = rm if shift == 0 and amount == 0 else Shifted(
        rm, _SHIFT_NAMES[shift], amount
    )
    return Instruction(mnemonic, (rd, rn, src))


def _dec_addsub_extended(word: int, pc: int) -> Optional[Instruction]:
    if _bits(word, 28, 24) != 0b01011 or not _bits(word, 21, 21):
        return None
    if _bits(word, 23, 22) != 0b00:
        return None
    sf, op, s = word >> 31, _bits(word, 30, 30), _bits(word, 29, 29)
    bits = 64 if sf else 32
    option = _bits(word, 15, 13)
    amount = _bits(word, 12, 10)
    if amount > 4:
        return None
    rd = (gpr_or_zr if s else gpr_or_sp)(_bits(word, 4, 0), bits)
    rn = gpr_or_sp(_bits(word, 9, 5), bits)
    rm_bits = 64 if option & 0x3 == 0x3 else 32
    rm = gpr_or_zr(_bits(word, 20, 16), rm_bits)
    mnemonic = ("sub" if op else "add") + ("s" if s else "")
    src = Extended(rm, _EXTEND_NAMES[option], amount or None)
    return Instruction(mnemonic, (rd, rn, src))


def _dec_dp2(word: int, pc: int) -> Optional[Instruction]:
    if _bits(word, 30, 21) != 0b0011010110:
        return None
    sf = word >> 31
    bits = 64 if sf else 32
    opcode = _bits(word, 15, 10)
    mnemonic = {0b000010: "udiv", 0b000011: "sdiv", 0b001000: "lsl",
                0b001001: "lsr", 0b001010: "asr", 0b001011: "ror"}.get(opcode)
    if mnemonic is None:
        return None
    rd = gpr_or_zr(_bits(word, 4, 0), bits)
    rn = gpr_or_zr(_bits(word, 9, 5), bits)
    rm = gpr_or_zr(_bits(word, 20, 16), bits)
    return Instruction(mnemonic, (rd, rn, rm))


def _dec_dp1(word: int, pc: int) -> Optional[Instruction]:
    if _bits(word, 30, 21) != 0b1011010110 or _bits(word, 20, 16):
        return None
    sf = word >> 31
    bits = 64 if sf else 32
    opcode = _bits(word, 15, 10)
    table = {0b000000: "rbit", 0b000001: "rev16", 0b000100: "clz"}
    if sf:
        table[0b000010] = "rev32"
        table[0b000011] = "rev"
    else:
        table[0b000010] = "rev"
    mnemonic = table.get(opcode)
    if mnemonic is None:
        return None
    rd = gpr_or_zr(_bits(word, 4, 0), bits)
    rn = gpr_or_zr(_bits(word, 9, 5), bits)
    return Instruction(mnemonic, (rd, rn))


def _dec_dp3(word: int, pc: int) -> Optional[Instruction]:
    if _bits(word, 30, 24) != 0b0011011:
        return None
    sf = word >> 31
    op31 = _bits(word, 23, 21)
    o0 = _bits(word, 15, 15)
    bits = 64 if sf else 32
    ra_field = _bits(word, 14, 10)
    rd = gpr_or_zr(_bits(word, 4, 0), bits)
    if op31 == 0b000:
        rn = gpr_or_zr(_bits(word, 9, 5), bits)
        rm = gpr_or_zr(_bits(word, 20, 16), bits)
        ra = gpr_or_zr(ra_field, bits)
        mnemonic = "msub" if o0 else "madd"
        return Instruction(mnemonic, (rd, rn, rm, ra))
    if not sf:
        return None
    rn32 = gpr_or_zr(_bits(word, 9, 5), 32)
    rm32 = gpr_or_zr(_bits(word, 20, 16), 32)
    rn64 = gpr_or_zr(_bits(word, 9, 5), 64)
    rm64 = gpr_or_zr(_bits(word, 20, 16), 64)
    if op31 == 0b001 and o0 == 0 and ra_field == INDEX_31:
        return Instruction("smull", (rd, rn32, rm32))
    if op31 == 0b101 and o0 == 0 and ra_field == INDEX_31:
        return Instruction("umull", (rd, rn32, rm32))
    if op31 == 0b010 and o0 == 0 and ra_field == INDEX_31:
        return Instruction("smulh", (rd, rn64, rm64))
    if op31 == 0b110 and o0 == 0 and ra_field == INDEX_31:
        return Instruction("umulh", (rd, rn64, rm64))
    return None


def _dec_condsel(word: int, pc: int) -> Optional[Instruction]:
    if _bits(word, 30, 21) & 0b0111111111 != 0b0011010100:
        return None
    if _bits(word, 28, 21) != 0b11010100:
        return None
    if _bits(word, 29, 29):
        return None
    sf = word >> 31
    op = _bits(word, 30, 30)
    op2 = _bits(word, 11, 10)
    bits = 64 if sf else 32
    mnemonic = {(0, 0b00): "csel", (0, 0b01): "csinc", (1, 0b00): "csinv",
                (1, 0b01): "csneg"}.get((op, op2))
    if mnemonic is None:
        return None
    rd = gpr_or_zr(_bits(word, 4, 0), bits)
    rn = gpr_or_zr(_bits(word, 9, 5), bits)
    rm = gpr_or_zr(_bits(word, 20, 16), bits)
    cond = Cond(CONDITION_CODES[_bits(word, 15, 12)])
    return Instruction(mnemonic, (rd, rn, rm, cond))


def _dec_ccmp(word: int, pc: int) -> Optional[Instruction]:
    if _bits(word, 28, 21) != 0b11010010 or not _bits(word, 29, 29):
        return None
    if _bits(word, 10, 10) or _bits(word, 4, 4):
        return None
    sf = word >> 31
    op = _bits(word, 30, 30)
    bits = 64 if sf else 32
    mnemonic = "ccmp" if op else "ccmn"
    rn = gpr_or_zr(_bits(word, 9, 5), bits)
    cond = Cond(CONDITION_CODES[_bits(word, 15, 12)])
    nzcv = Imm(_bits(word, 3, 0))
    if _bits(word, 11, 11):
        src = Imm(_bits(word, 20, 16))
    else:
        src = gpr_or_zr(_bits(word, 20, 16), bits)
    return Instruction(mnemonic, (rn, src, nzcv, cond))


# ---------------------------------------------------------------------------
# Loads and stores
# ---------------------------------------------------------------------------

def _int_ldst_name(size: int, opc: int) -> Optional[tuple]:
    """(mnemonic, reg_bits) for an integer load/store size/opc pair."""
    table = {
        (0b11, 0b01): ("ldr", 64), (0b11, 0b00): ("str", 64),
        (0b10, 0b01): ("ldr", 32), (0b10, 0b00): ("str", 32),
        (0b00, 0b01): ("ldrb", 32), (0b00, 0b00): ("strb", 32),
        (0b01, 0b01): ("ldrh", 32), (0b01, 0b00): ("strh", 32),
        (0b00, 0b10): ("ldrsb", 64), (0b00, 0b11): ("ldrsb", 32),
        (0b01, 0b10): ("ldrsh", 64), (0b01, 0b11): ("ldrsh", 32),
        (0b10, 0b10): ("ldrsw", 64),
    }
    return table.get((size, opc))


def _fp_ldst_name(size: int, opc: int) -> Optional[tuple]:
    table = {
        (0b00, 0b01): ("ldr", 8), (0b00, 0b00): ("str", 8),
        (0b01, 0b01): ("ldr", 16), (0b01, 0b00): ("str", 16),
        (0b10, 0b01): ("ldr", 32), (0b10, 0b00): ("str", 32),
        (0b11, 0b01): ("ldr", 64), (0b11, 0b00): ("str", 64),
        (0b00, 0b11): ("ldr", 128), (0b00, 0b10): ("str", 128),
    }
    return table.get((size, opc))


def _ldst_regs(v: int, size: int, opc: int):
    """(mnemonic, rt_factory, scale) or None."""
    if v:
        named = _fp_ldst_name(size, opc)
        if named is None:
            return None
        mnemonic, bits = named
        scale = {8: 0, 16: 1, 32: 2, 64: 3, 128: 4}[bits]
        return mnemonic, (lambda idx: vec(idx, bits)), scale
    named = _int_ldst_name(size, opc)
    if named is None:
        return None
    mnemonic, bits = named
    if mnemonic in ("ldrb", "strb", "ldrsb"):
        scale = 0
    elif mnemonic in ("ldrh", "strh", "ldrsh"):
        scale = 1
    elif mnemonic == "ldrsw":
        scale = 2
    else:
        scale = 3 if bits == 64 else 2
    return mnemonic, (lambda idx: gpr_or_zr(idx, bits)), scale


def _dec_ldst_unsigned(word: int, pc: int) -> Optional[Instruction]:
    if _bits(word, 29, 27) != 0b111 or _bits(word, 25, 24) != 0b01:
        return None
    size, v, opc = _bits(word, 31, 30), _bits(word, 26, 26), _bits(word, 23, 22)
    named = _ldst_regs(v, size, opc)
    if named is None:
        return None
    mnemonic, rt_of, scale = named
    rt = rt_of(_bits(word, 4, 0))
    rn = gpr_or_sp(_bits(word, 9, 5))
    imm = _bits(word, 21, 10) << scale
    offset = Imm(imm) if imm else None
    return Instruction(mnemonic, (rt, Mem(rn, offset)))


def _dec_ldst_imm9(word: int, pc: int) -> Optional[Instruction]:
    if _bits(word, 29, 27) != 0b111 or _bits(word, 25, 24) != 0b00:
        return None
    if _bits(word, 21, 21):
        return None
    mode_bits = _bits(word, 11, 10)
    size, v, opc = _bits(word, 31, 30), _bits(word, 26, 26), _bits(word, 23, 22)
    named = _ldst_regs(v, size, opc)
    if named is None:
        return None
    mnemonic, rt_of, scale = named
    rt = rt_of(_bits(word, 4, 0))
    rn = gpr_or_sp(_bits(word, 9, 5))
    imm = _sext(_bits(word, 20, 12), 9)
    if mode_bits == 0b00:
        # Unscaled: canonical only if a scaled encoding could not express it.
        if imm >= 0 and imm % (1 << scale) == 0:
            return None
        unscaled = {"ldr": "ldur", "str": "stur"}.get(mnemonic)
        if unscaled is None:
            return None
        return Instruction(unscaled, (rt, Mem(rn, Imm(imm))))
    if mode_bits == 0b01:
        return Instruction(mnemonic, (rt, Mem(rn, Imm(imm), POST_INDEX)))
    if mode_bits == 0b11:
        return Instruction(mnemonic, (rt, Mem(rn, Imm(imm), PRE_INDEX)))
    return None


def _dec_ldst_regoffset(word: int, pc: int) -> Optional[Instruction]:
    if _bits(word, 29, 27) != 0b111 or _bits(word, 25, 24) != 0b00:
        return None
    if not _bits(word, 21, 21) or _bits(word, 11, 10) != 0b10:
        return None
    size, v, opc = _bits(word, 31, 30), _bits(word, 26, 26), _bits(word, 23, 22)
    named = _ldst_regs(v, size, opc)
    if named is None:
        return None
    mnemonic, rt_of, scale = named
    rt = rt_of(_bits(word, 4, 0))
    rn = gpr_or_sp(_bits(word, 9, 5))
    option = _bits(word, 15, 13)
    s = _bits(word, 12, 12)
    amount = scale if s else 0
    if s and scale == 0:
        return None  # non-canonical for our encoder
    rm_idx = _bits(word, 20, 16)
    if option == 0b011:
        rm = gpr_or_zr(rm_idx, 64)
        offset = rm if not s else Shifted(rm, "lsl", amount)
    elif option in (0b010, 0b110):
        rm = gpr_or_zr(rm_idx, 32)
        offset = Extended(rm, _EXTEND_NAMES[option], amount if s else None)
    elif option == 0b111:
        rm = gpr_or_zr(rm_idx, 64)
        offset = Extended(rm, "sxtx", amount if s else None)
    else:
        return None
    return Instruction(mnemonic, (rt, Mem(rn, offset)))


def _dec_ldst_pair(word: int, pc: int) -> Optional[Instruction]:
    if _bits(word, 29, 27) != 0b101 or _bits(word, 25, 25):
        return None
    opc = _bits(word, 31, 30)
    v = _bits(word, 26, 26)
    mode = _bits(word, 24, 23)
    load = _bits(word, 22, 22)
    if v:
        table = {0b00: 32, 0b01: 64, 0b10: 128}
        bits = table.get(opc)
        if bits is None:
            return None
        scale = {32: 2, 64: 3, 128: 4}[bits]
        rt_of = lambda idx: vec(idx, bits)
    else:
        if opc == 0b10:
            bits, scale = 64, 3
        elif opc == 0b00:
            bits, scale = 32, 2
        else:
            return None
        rt_of = lambda idx: gpr_or_zr(idx, bits)
    mode_name = {0b01: POST_INDEX, 0b11: PRE_INDEX, 0b10: OFFSET}.get(mode)
    if mode_name is None:
        return None
    mnemonic = "ldp" if load else "stp"
    rt = rt_of(_bits(word, 4, 0))
    rt2 = rt_of(_bits(word, 14, 10))
    rn = gpr_or_sp(_bits(word, 9, 5))
    imm = _sext(_bits(word, 21, 15), 7) << scale
    offset = Imm(imm) if (imm or mode_name != OFFSET) else None
    if offset is None and mode_name == OFFSET:
        return Instruction(mnemonic, (rt, rt2, Mem(rn, None)))
    return Instruction(mnemonic, (rt, rt2, Mem(rn, Imm(imm), mode_name)))


def _dec_exclusive(word: int, pc: int) -> Optional[Instruction]:
    if _bits(word, 29, 24) != 0b001000:
        return None
    size = _bits(word, 31, 30)
    if size not in (0b10, 0b11):
        return None
    bits = 64 if size == 0b11 else 32
    o2 = _bits(word, 23, 23)
    load = _bits(word, 22, 22)
    o1 = _bits(word, 21, 21)
    rs_field = _bits(word, 20, 16)
    o0 = _bits(word, 15, 15)
    rt2_field = _bits(word, 14, 10)
    if o1 or rt2_field != INDEX_31:
        return None
    rn = gpr_or_sp(_bits(word, 9, 5))
    rt = gpr_or_zr(_bits(word, 4, 0), bits)
    mem = Mem(rn, None)
    if o2 == 0:
        if load:
            if rs_field != INDEX_31:
                return None
            return Instruction("ldaxr" if o0 else "ldxr", (rt, mem))
        rs = gpr_or_zr(rs_field, 32)
        return Instruction("stlxr" if o0 else "stxr", (rs, rt, mem))
    if not o0 or rs_field != INDEX_31:
        return None
    return Instruction("ldar" if load else "stlr", (rt, mem))


# ---------------------------------------------------------------------------
# FP and SIMD
# ---------------------------------------------------------------------------

_FP_BITS = {0b00: 32, 0b01: 64, 0b11: 16}
_FP2_NAMES = {0b0000: "fmul", 0b0001: "fdiv", 0b0010: "fadd", 0b0011: "fsub",
              0b0100: "fmax", 0b0101: "fmin", 0b1000: "fnmul"}
_FP1_NAMES = {0b000000: "fmov", 0b000001: "fabs", 0b000010: "fneg",
              0b000011: "fsqrt"}


def _dec_fp(word: int, pc: int) -> Optional[Instruction]:
    if _bits(word, 28, 24) not in (0b11110, 0b11111):
        return None
    if _bits(word, 30, 29):
        return None
    t = _bits(word, 23, 22)
    bits = _FP_BITS.get(t)
    if bits is None:
        return None
    sf = word >> 31

    if _bits(word, 28, 24) == 0b11111:
        if sf:
            return None
        o0 = _bits(word, 15, 15)
        rd = vec(_bits(word, 4, 0), bits)
        rn = vec(_bits(word, 9, 5), bits)
        rm = vec(_bits(word, 20, 16), bits)
        ra = vec(_bits(word, 14, 10), bits)
        if _bits(word, 21, 21):
            return None
        return Instruction("fmsub" if o0 else "fmadd", (rd, rn, rm, ra))

    if not _bits(word, 21, 21):
        # int<->fp conversions live here with bit21 set; nothing else.
        return None

    # Conversions and general moves (bits [15:10] == 000000).
    if _bits(word, 15, 10) == 0 and (sf or True) and _bits(word, 20, 19) in (
        0b00, 0b11
    ) and _bits(word, 18, 16) in (0b000, 0b001, 0b010, 0b011, 0b110, 0b111):
        rmode = _bits(word, 20, 19)
        opcode = _bits(word, 18, 16)
        gbits = 64 if sf else 32
        if rmode == 0b00 and opcode == 0b010:
            return Instruction(
                "scvtf", (vec(_bits(word, 4, 0), bits),
                          gpr_or_zr(_bits(word, 9, 5), gbits))
            )
        if rmode == 0b00 and opcode == 0b011:
            return Instruction(
                "ucvtf", (vec(_bits(word, 4, 0), bits),
                          gpr_or_zr(_bits(word, 9, 5), gbits))
            )
        if rmode == 0b11 and opcode == 0b000:
            return Instruction(
                "fcvtzs", (gpr_or_zr(_bits(word, 4, 0), gbits),
                           vec(_bits(word, 9, 5), bits))
            )
        if rmode == 0b11 and opcode == 0b001:
            return Instruction(
                "fcvtzu", (gpr_or_zr(_bits(word, 4, 0), gbits),
                           vec(_bits(word, 9, 5), bits))
            )
        if rmode == 0b00 and opcode == 0b110:
            if (sf and bits != 64) or (not sf and bits != 32):
                return None
            return Instruction(
                "fmov", (gpr_or_zr(_bits(word, 4, 0), gbits),
                         vec(_bits(word, 9, 5), bits))
            )
        if rmode == 0b00 and opcode == 0b111:
            if (sf and bits != 64) or (not sf and bits != 32):
                return None
            return Instruction(
                "fmov", (vec(_bits(word, 4, 0), bits),
                         gpr_or_zr(_bits(word, 9, 5), gbits))
            )
        return None

    if sf:
        return None

    low = _bits(word, 11, 10)
    if low == 0b10:
        # Two-source arithmetic.
        name = _FP2_NAMES.get(_bits(word, 15, 12))
        if name is None:
            return None
        return Instruction(name, (
            vec(_bits(word, 4, 0), bits), vec(_bits(word, 9, 5), bits),
            vec(_bits(word, 20, 16), bits),
        ))
    if low == 0b11:
        cond = Cond(CONDITION_CODES[_bits(word, 15, 12)])
        return Instruction("fcsel", (
            vec(_bits(word, 4, 0), bits), vec(_bits(word, 9, 5), bits),
            vec(_bits(word, 20, 16), bits), cond,
        ))
    if low == 0b00:
        if _bits(word, 15, 10) == 0b001000:
            # fcmp family.
            opcode2 = _bits(word, 4, 0)
            rn = vec(_bits(word, 9, 5), bits)
            rm_field = _bits(word, 20, 16)
            if opcode2 == 0b00000:
                return Instruction("fcmp", (rn, vec(rm_field, bits)))
            if opcode2 == 0b01000 and rm_field == 0:
                return Instruction("fcmp", (rn, FloatImm(0.0)))
            if opcode2 == 0b10000:
                return Instruction("fcmpe", (rn, vec(rm_field, bits)))
            if opcode2 == 0b11000 and rm_field == 0:
                return Instruction("fcmpe", (rn, FloatImm(0.0)))
            return None
        if _bits(word, 12, 10) == 0b100 and _bits(word, 4, 0) != 0 or True:
            pass
        return None
    if low == 0b01:
        return None
    return None


def _dec_fp_imm(word: int, pc: int) -> Optional[Instruction]:
    # fmov (scalar, immediate): 000 11110 tt 1 imm8 100 00000 Rd
    if _bits(word, 31, 24) != 0b00011110 or not _bits(word, 21, 21):
        return None
    if _bits(word, 12, 10) != 0b100 or _bits(word, 9, 5) != 0:
        return None
    bits = _FP_BITS.get(_bits(word, 23, 22))
    if bits is None:
        return None
    imm8 = _bits(word, 20, 13)
    return Instruction(
        "fmov", (vec(_bits(word, 4, 0), bits), FloatImm(decode_fp8(imm8)))
    )


def _dec_fp1(word: int, pc: int) -> Optional[Instruction]:
    # One-source FP: 000 11110 tt 1 opcode6 10000 Rn Rd
    if _bits(word, 31, 24) != 0b00011110 or not _bits(word, 21, 21):
        return None
    if _bits(word, 14, 10) != 0b10000:
        return None
    bits = _FP_BITS.get(_bits(word, 23, 22))
    if bits is None:
        return None
    opcode = _bits(word, 20, 15)
    rd_idx, rn_idx = _bits(word, 4, 0), _bits(word, 9, 5)
    name = _FP1_NAMES.get(opcode)
    if name is not None:
        return Instruction(name, (vec(rd_idx, bits), vec(rn_idx, bits)))
    if opcode in (0b000100, 0b000101, 0b000111):
        dst_bits = {0b000100: 32, 0b000101: 64, 0b000111: 16}[opcode]
        if dst_bits == bits:
            return None
        return Instruction("fcvt", (vec(rd_idx, dst_bits), vec(rn_idx, bits)))
    return None


_ARRANGEMENTS = {
    (0, 0b00): "8b", (1, 0b00): "16b", (0, 0b01): "4h", (1, 0b01): "8h",
    (0, 0b10): "2s", (1, 0b10): "4s", (1, 0b11): "2d",
}


def _dec_simd3(word: int, pc: int) -> Optional[Instruction]:
    if _bits(word, 28, 24) != 0b01110 or _bits(word, 31, 31):
        return None
    if not _bits(word, 21, 21) or not _bits(word, 10, 10):
        return None
    q = _bits(word, 30, 30)
    u = _bits(word, 29, 29)
    size = _bits(word, 23, 22)
    opcode = _bits(word, 15, 11)
    arrangement = _ARRANGEMENTS.get((q, size))
    if arrangement is None:
        return None

    def v3(name: str, arr: str) -> Instruction:
        return Instruction(name, (
            VecReg(V[_bits(word, 4, 0)], arr),
            VecReg(V[_bits(word, 9, 5)], arr),
            VecReg(V[_bits(word, 20, 16)], arr),
        ))

    if opcode == 0b10000:
        return v3("sub" if u else "add", arrangement)
    if opcode == 0b10011 and not u:
        return v3("mul", arrangement)
    if opcode == 0b00011:
        logic = {(0, 0b00): "and", (0, 0b10): "orr", (1, 0b00): "eor",
                 (0, 0b01): "bic"}.get((u, size))
        if logic is None:
            return None
        arr = "16b" if q else "8b"
        return v3(logic, arr)
    # FP three-same: size = hi|sz with lanes 2s/4s/2d.
    sz = size & 1
    hi = size >> 1
    lanes = {(0, 0): "2s", (1, 0): "4s"}.get((q, sz)) if True else None
    arr = None
    if sz == 0:
        arr = "4s" if q else "2s"
    elif q:
        arr = "2d"
    if arr is None:
        return None
    fp_table = {
        (0, 0b11010, 0): "fadd", (0, 0b11010, 1): "fsub",
        (1, 0b11011, 0): "fmul", (0, 0b11110, 0): "fmax",
        (0, 0b11110, 1): "fmin", (1, 0b11111, 0): "fdiv",
    }
    name = fp_table.get((u, opcode, hi))
    if name is None:
        return None
    return v3(name, arr)


def _dec_movi(word: int, pc: int) -> Optional[Instruction]:
    if _bits(word, 28, 19) != 0b0111100000 or _bits(word, 31, 31):
        return None
    if _bits(word, 11, 10) != 0b01 or _bits(word, 15, 12) != 0b1110:
        return None
    q = _bits(word, 30, 30)
    op = _bits(word, 29, 29)
    imm8 = (_bits(word, 18, 16) << 5) | _bits(word, 9, 5)
    rd = V[_bits(word, 4, 0)]
    if op == 0:
        arr = "16b" if q else "8b"
        return Instruction("movi", (VecReg(rd, arr), Imm(imm8)))
    if q and imm8 == 0:
        return Instruction("movi", (VecReg(rd, "2d"), Imm(0)))
    return None


def _dec_dup(word: int, pc: int) -> Optional[Instruction]:
    if _bits(word, 28, 21) != 0b01110000 or _bits(word, 31, 31):
        return None
    if _bits(word, 15, 10) != 0b000011 or _bits(word, 29, 29):
        return None
    q = _bits(word, 30, 30)
    imm5 = _bits(word, 20, 16)
    lane = None
    for name, pattern, bits in (("b", 0b00001, 32), ("h", 0b00010, 32),
                                ("s", 0b00100, 32), ("d", 0b01000, 64)):
        if imm5 == pattern:
            lane, gbits = name, bits
            break
    if lane is None:
        return None
    arrangement = {("b", 0): "8b", ("b", 1): "16b", ("h", 0): "4h",
                   ("h", 1): "8h", ("s", 0): "2s", ("s", 1): "4s",
                   ("d", 1): "2d"}.get((lane, q))
    if arrangement is None:
        return None
    rn = gpr_or_zr(_bits(word, 9, 5), gbits)
    return Instruction("dup", (VecReg(V[_bits(word, 4, 0)], arrangement), rn))


_DECODERS = (
    _dec_system,
    _dec_branch_imm,
    _dec_branch_cond,
    _dec_branch_reg,
    _dec_cb,
    _dec_tb,
    _dec_adr,
    _dec_addsub_imm,
    _dec_logical_imm,
    _dec_movewide,
    _dec_bitfield,
    _dec_extr,
    _dec_logical_shifted,
    _dec_addsub_shifted,
    _dec_addsub_extended,
    _dec_dp2,
    _dec_dp1,
    _dec_dp3,
    _dec_condsel,
    _dec_ccmp,
    _dec_ldst_unsigned,
    _dec_ldst_imm9,
    _dec_ldst_regoffset,
    _dec_ldst_pair,
    _dec_exclusive,
    _dec_fp_imm,
    _dec_fp1,
    _dec_fp,
    _dec_simd3,
    _dec_movi,
    _dec_dup,
)

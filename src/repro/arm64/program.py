"""Assembly program container: instructions, labels, and directives."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from .instructions import Instruction


@dataclass(frozen=True)
class LabelDef:
    """A label definition line (``foo:``)."""

    name: str

    def __str__(self) -> str:
        return f"{self.name}:"


@dataclass(frozen=True)
class Directive:
    """An assembler directive line (``.text``, ``.quad 1, 2``)."""

    name: str  # includes the leading dot
    args: Tuple[str, ...] = ()

    def __str__(self) -> str:
        if not self.args:
            return self.name
        return f"{self.name} " + ", ".join(self.args)


Item = Union[LabelDef, Directive, Instruction]

#: Directives that emit data, with their element size in bytes.
DATA_DIRECTIVES = {
    ".byte": 1,
    ".hword": 2,
    ".short": 2,
    ".word": 4,
    ".long": 4,
    ".quad": 8,
    ".xword": 8,
}

#: Directives that switch the current section.
SECTION_DIRECTIVES = (".text", ".data", ".bss", ".rodata", ".section")


@dataclass
class Program:
    """A parsed (or generated) assembly file."""

    items: List[Item] = field(default_factory=list)

    def __iter__(self) -> Iterator[Item]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def add(self, *items: Item) -> "Program":
        self.items.extend(items)
        return self

    def label(self, name: str) -> "Program":
        return self.add(LabelDef(name))

    def directive(self, name: str, *args: str) -> "Program":
        return self.add(Directive(name, tuple(args)))

    def instructions(self) -> Iterator[Instruction]:
        for item in self.items:
            if isinstance(item, Instruction):
                yield item

    def text_instructions(self) -> Iterator[Instruction]:
        """Instructions that fall in .text sections."""
        for item, section in self.items_with_sections():
            if isinstance(item, Instruction) and section == ".text":
                yield item

    def items_with_sections(self) -> Iterator[Tuple[Item, str]]:
        """Each item paired with the section it belongs to (default .text)."""
        section = ".text"
        for item in self.items:
            if isinstance(item, Directive):
                if item.name in (".text", ".data", ".bss", ".rodata"):
                    section = item.name
                elif item.name == ".section" and item.args:
                    name = item.args[0]
                    section = name if name.startswith(".") else f".{name}"
            yield item, section

    def labels(self) -> Dict[str, int]:
        """Map label name -> item index of its definition."""
        return {
            item.name: i
            for i, item in enumerate(self.items)
            if isinstance(item, LabelDef)
        }

    def instruction_count(self) -> int:
        return sum(1 for _ in self.instructions())

    def copy(self) -> "Program":
        return Program(list(self.items))

"""ISA metadata: mnemonic classification used across the system.

This module plays the role of the paper's auto-generated "instruction
definitions" (paper §5.2): for each supported mnemonic it records whether
the instruction loads, stores, branches, or is a system instruction, which
the verifier, rewriter, and emulator all consult.  The verifier's allowlist
of safe ARMv8.0 instructions is derived from these sets.
"""

from __future__ import annotations

from .operands import CONDITION_CODES

# --------------------------------------------------------------------------
# Data-processing
# --------------------------------------------------------------------------

ALU_BASIC = frozenset({
    "add", "adds", "sub", "subs",
    "and", "ands", "orr", "orn", "eor", "eon", "bic", "bics",
})
ALU_ALIASES = frozenset({"neg", "negs", "mvn", "mov", "cmp", "cmn", "tst"})
SHIFTS = frozenset({"lsl", "lsr", "asr", "ror"})
BITFIELD = frozenset({
    "ubfm", "sbfm", "bfm", "ubfx", "sbfx", "bfi", "bfxil",
    "sxtb", "sxth", "sxtw", "uxtb", "uxth",
})
MULDIV = frozenset({
    "mul", "madd", "msub", "mneg", "smull", "umull", "smulh", "umulh",
    "sdiv", "udiv",
})
CONDOPS = frozenset({
    "csel", "csinc", "csinv", "csneg", "cset", "csetm", "cinc", "cneg",
    "ccmp", "ccmn",
})
WIDE_MOVES = frozenset({"movz", "movn", "movk"})
ADDRESS = frozenset({"adr", "adrp"})
MISC_ALU = frozenset({"clz", "rbit", "rev", "rev16", "rev32"})

DATA_PROCESSING = (
    ALU_BASIC | ALU_ALIASES | SHIFTS | BITFIELD | MULDIV | CONDOPS
    | WIDE_MOVES | ADDRESS | MISC_ALU
)

#: Data-processing mnemonics that only set flags and write no register.
FLAG_ONLY = frozenset({"cmp", "cmn", "tst", "ccmp", "ccmn", "fcmp", "fcmpe"})

# --------------------------------------------------------------------------
# Memory
# --------------------------------------------------------------------------

LOADS = frozenset({
    "ldr", "ldrb", "ldrh", "ldrsb", "ldrsh", "ldrsw", "ldur",
    "ldp", "ldxr", "ldaxr", "ldar",
})
STORES = frozenset({
    "str", "strb", "strh", "stur", "stp", "stxr", "stlxr", "stlr",
})
MEMORY = LOADS | STORES

PAIR_MEMORY = frozenset({"ldp", "stp"})
EXCLUSIVE_MEMORY = frozenset({"ldxr", "ldaxr", "stxr", "stlxr"})
ACQUIRE_RELEASE = frozenset({"ldar", "stlr", "ldaxr", "stlxr"})
#: Atomic/ordered memory ops only support the plain ``[xN]`` addressing mode.
BASE_ONLY_MEMORY = EXCLUSIVE_MEMORY | frozenset({"ldar", "stlr"})
UNSCALED_MEMORY = frozenset({"ldur", "stur"})

#: Basic loads/stores that support the full Table-1 addressing-mode set,
#: including the guard-form ``[x21, wN, uxtw]`` register-offset mode.
FULL_ADDRESSING = frozenset({
    "ldr", "ldrb", "ldrh", "ldrsb", "ldrsh", "ldrsw", "str", "strb", "strh",
})

# --------------------------------------------------------------------------
# Branches
# --------------------------------------------------------------------------

CONDITIONAL_BRANCHES = frozenset({f"b.{c}" for c in CONDITION_CODES} | {
    "b.hs", "b.lo",
})
COMPARE_BRANCHES = frozenset({"cbz", "cbnz"})
TEST_BRANCHES = frozenset({"tbz", "tbnz"})
DIRECT_BRANCHES = (
    frozenset({"b", "bl"}) | CONDITIONAL_BRANCHES | COMPARE_BRANCHES
    | TEST_BRANCHES
)
INDIRECT_BRANCHES = frozenset({"br", "blr", "ret"})
BRANCHES = DIRECT_BRANCHES | INDIRECT_BRANCHES
CALLS = frozenset({"bl", "blr"})

# --------------------------------------------------------------------------
# Floating point and SIMD
# --------------------------------------------------------------------------

FP_ARITH = frozenset({
    "fadd", "fsub", "fmul", "fdiv", "fneg", "fabs", "fsqrt",
    "fmax", "fmin", "fmadd", "fmsub", "fnmul",
})
FP_MOVE_CMP = frozenset({"fmov", "fcmp", "fcmpe", "fcsel"})
FP_CONVERT = frozenset({"scvtf", "ucvtf", "fcvtzs", "fcvtzu", "fcvt"})
FP = FP_ARITH | FP_MOVE_CMP | FP_CONVERT
#: Vector forms reuse arithmetic mnemonics; ``movi`` is vector-only.
SIMD_ONLY = frozenset({"movi", "dup"})

# --------------------------------------------------------------------------
# System
# --------------------------------------------------------------------------

BARRIERS = frozenset({"dmb", "dsb", "isb"})
SAFE_SYSTEM = frozenset({"nop", "brk"}) | BARRIERS
#: Instructions that must never appear inside a sandbox (paper §5.2 rule 3).
UNSAFE_SYSTEM = frozenset({"svc", "hvc", "smc", "hlt", "mrs", "msr", "eret",
                           "wfi", "wfe", "dc", "ic", "at", "tlbi"})
SYSTEM = SAFE_SYSTEM | UNSAFE_SYSTEM

# --------------------------------------------------------------------------
# Aggregates
# --------------------------------------------------------------------------

ALL_MNEMONICS = DATA_PROCESSING | MEMORY | BRANCHES | FP | SIMD_ONLY | SYSTEM

#: The premade list of safe ARMv8.0 instructions (paper §5.2, property 3).
#: Memory and indirect-branch instructions are on the list but additionally
#: subject to the addressing-mode / reserved-register rules.
SAFE_MNEMONICS = (
    DATA_PROCESSING | MEMORY | BRANCHES | FP | SIMD_ONLY | SAFE_SYSTEM
)


def is_load(mnemonic: str) -> bool:
    return mnemonic in LOADS


def is_store(mnemonic: str) -> bool:
    return mnemonic in STORES


def is_memory(mnemonic: str) -> bool:
    return mnemonic in MEMORY


def is_branch(mnemonic: str) -> bool:
    return mnemonic in BRANCHES


def is_indirect_branch(mnemonic: str) -> bool:
    return mnemonic in INDIRECT_BRANCHES


def branch_condition(mnemonic: str) -> str:
    """The condition suffix of a ``b.cond`` mnemonic."""
    if not mnemonic.startswith("b."):
        raise ValueError(f"not a conditional branch: {mnemonic}")
    return mnemonic[2:]

"""ARM64 register model.

ARM64 has 31 general-purpose 64-bit registers (``x0``-``x30``), a zero
register (``xzr``), and a dedicated stack pointer (``sp``).  Each 64-bit
register has a 32-bit view (``w0``-``w30``, ``wzr``, ``wsp``).  The SIMD and
floating-point register file has 32 128-bit registers (``v0``-``v31``) with
scalar views ``b``/``h``/``s``/``d``/``q`` of 8/16/32/64/128 bits.

Registers are interned: parsing the same name twice yields the same object,
so registers can be compared with ``is`` or ``==`` interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

# Register-file kinds.
GPR = "gpr"  # x0-x30 / w0-w30
ZERO = "zero"  # xzr / wzr
STACK = "sp"  # sp / wsp
VECTOR = "vec"  # v/q/d/s/h/b views of the SIMD&FP file

#: Encoding index shared by the zero register and the stack pointer.
#: Which one a 0b11111 field means is determined by instruction context.
INDEX_31 = 31


@dataclass(frozen=True)
class Reg:
    """A single architectural register (a specific *view*, e.g. ``w3``)."""

    name: str
    index: int  # encoding index, 0-31
    bits: int  # width of this view in bits
    kind: str  # one of GPR, ZERO, STACK, VECTOR

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Reg({self.name})"

    @property
    def is_gpr(self) -> bool:
        """True for general-purpose registers (not sp/zr/vector)."""
        return self.kind == GPR

    @property
    def is_zero(self) -> bool:
        return self.kind == ZERO

    @property
    def is_sp(self) -> bool:
        return self.kind == STACK

    @property
    def is_vector(self) -> bool:
        """True for any view of the SIMD&FP register file."""
        return self.kind == VECTOR

    @property
    def is_64(self) -> bool:
        return self.bits == 64

    @property
    def is_32(self) -> bool:
        return self.bits == 32

    def as_64(self) -> "Reg":
        """The 64-bit view of this GPR/zero/sp register (``w3`` -> ``x3``)."""
        if self.is_vector:
            raise ValueError(f"{self.name} has no x-view")
        if self.kind == ZERO:
            return XZR
        if self.kind == STACK:
            return SP
        return X[self.index]

    def as_32(self) -> "Reg":
        """The 32-bit view of this GPR/zero/sp register (``x3`` -> ``w3``)."""
        if self.is_vector:
            raise ValueError(f"{self.name} has no w-view")
        if self.kind == ZERO:
            return WZR
        if self.kind == STACK:
            return WSP
        return W[self.index]


def _make_file() -> Dict[str, Reg]:
    regs: Dict[str, Reg] = {}
    for i in range(31):
        regs[f"x{i}"] = Reg(f"x{i}", i, 64, GPR)
        regs[f"w{i}"] = Reg(f"w{i}", i, 32, GPR)
    regs["xzr"] = Reg("xzr", INDEX_31, 64, ZERO)
    regs["wzr"] = Reg("wzr", INDEX_31, 32, ZERO)
    regs["sp"] = Reg("sp", INDEX_31, 64, STACK)
    regs["wsp"] = Reg("wsp", INDEX_31, 32, STACK)
    vec_bits = {"b": 8, "h": 16, "s": 32, "d": 64, "q": 128, "v": 128}
    for prefix, bits in vec_bits.items():
        for i in range(32):
            regs[f"{prefix}{i}"] = Reg(f"{prefix}{i}", i, bits, VECTOR)
    # Common aliases.
    regs["lr"] = regs["x30"]
    regs["fp"] = regs["x29"]
    return regs


_REGISTERS = _make_file()

X = [_REGISTERS[f"x{i}"] for i in range(31)]
W = [_REGISTERS[f"w{i}"] for i in range(31)]
V = [_REGISTERS[f"v{i}"] for i in range(32)]
D = [_REGISTERS[f"d{i}"] for i in range(32)]
S = [_REGISTERS[f"s{i}"] for i in range(32)]
Q = [_REGISTERS[f"q{i}"] for i in range(32)]
XZR = _REGISTERS["xzr"]
WZR = _REGISTERS["wzr"]
SP = _REGISTERS["sp"]
WSP = _REGISTERS["wsp"]
LR = _REGISTERS["x30"]


def lookup_register(name: str) -> Optional[Reg]:
    """Return the register named ``name`` (case-insensitive), or None."""
    return _REGISTERS.get(name.lower())


def parse_register(name: str) -> Reg:
    """Return the register named ``name``, raising ValueError if unknown."""
    reg = lookup_register(name)
    if reg is None:
        raise ValueError(f"unknown register: {name!r}")
    return reg


def gpr_or_zr(index: int, bits: int = 64) -> Reg:
    """Register for an encoding field where index 31 means the zero register."""
    if index == INDEX_31:
        return XZR if bits == 64 else WZR
    return X[index] if bits == 64 else W[index]


def gpr_or_sp(index: int, bits: int = 64) -> Reg:
    """Register for an encoding field where index 31 means the stack pointer."""
    if index == INDEX_31:
        return SP if bits == 64 else WSP
    return X[index] if bits == 64 else W[index]


def vec(index: int, bits: int = 128) -> Reg:
    """SIMD&FP register view of the given width."""
    prefix = {8: "b", 16: "h", 32: "s", 64: "d", 128: "q"}[bits]
    return _REGISTERS[f"{prefix}{index}"]

"""ARM64 (AArch64) ISA substrate: registers, operands, instructions,
GNU-assembly parsing/printing, and genuine ARMv8.0 machine-code
encoding/decoding for the supported instruction subset.

This package is the foundation the paper's toolchain operates on: the
rewriter transforms parsed assembly, the assembler encodes it to machine
code, and the verifier decodes machine code back for its linear check.
"""

from .instructions import Instruction, access_bytes, ins, total_access_bytes
from .operands import (
    Cond,
    Extended,
    FloatImm,
    Imm,
    Label,
    Mem,
    OFFSET,
    POST_INDEX,
    PRE_INDEX,
    Shifted,
    VecReg,
)
from .parser import AsmSyntaxError, parse_assembly, parse_operand
from .printer import format_item, print_assembly
from .program import DATA_DIRECTIVES, Directive, LabelDef, Program
from .registers import (
    D,
    LR,
    Q,
    Reg,
    S,
    SP,
    V,
    W,
    WSP,
    WZR,
    X,
    XZR,
    lookup_register,
    parse_register,
)

__all__ = [
    "Instruction",
    "ins",
    "access_bytes",
    "total_access_bytes",
    "Cond",
    "Extended",
    "FloatImm",
    "Imm",
    "Label",
    "Mem",
    "OFFSET",
    "POST_INDEX",
    "PRE_INDEX",
    "Shifted",
    "VecReg",
    "AsmSyntaxError",
    "parse_assembly",
    "parse_operand",
    "format_item",
    "print_assembly",
    "DATA_DIRECTIVES",
    "Directive",
    "LabelDef",
    "Program",
    "Reg",
    "X",
    "W",
    "V",
    "D",
    "S",
    "Q",
    "SP",
    "WSP",
    "XZR",
    "WZR",
    "LR",
    "lookup_register",
    "parse_register",
]

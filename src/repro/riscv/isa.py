"""A small RV64IC + Zba instruction model and GNU-assembly parser.

Just enough of RISC-V to express the paper's §7.2 port: integer ALU ops,
loads/stores (``ld rd, imm(rs)`` syntax), branches/jumps, a few compressed
("c.") forms to exercise the alignment constraint, and ``add.uw`` from Zba
for the guard.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

__all__ = ["RvInstruction", "RvLabel", "RvDirective", "RvProgram",
           "COMPRESSED", "LOADS", "STORES", "BRANCHES", "JUMPS",
           "parse_riscv", "print_riscv", "reg_number"]

#: ABI register names -> x-number.
_ABI = {
    "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
    "t0": 5, "t1": 6, "t2": 7, "s0": 8, "fp": 8, "s1": 9,
    "a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15,
    "a6": 16, "a7": 17,
    "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23,
    "s8": 24, "s9": 25, "s10": 26, "s11": 27,
    "t3": 28, "t4": 29, "t5": 30, "t6": 31,
}


def reg_number(name: str) -> Optional[int]:
    """x-number of a register name (``x7``, ``a0``, ``s11``), or None."""
    name = name.lower()
    if name in _ABI:
        return _ABI[name]
    match = re.fullmatch(r"x(\d+)", name)
    if match and 0 <= int(match.group(1)) <= 31:
        return int(match.group(1))
    return None


LOADS = frozenset({"ld", "lw", "lwu", "lh", "lhu", "lb", "lbu", "c.ld",
                   "c.lw"})
STORES = frozenset({"sd", "sw", "sh", "sb", "c.sd", "c.sw"})
BRANCHES = frozenset({"beq", "bne", "blt", "bge", "bltu", "bgeu", "c.beqz",
                      "c.bnez"})
JUMPS = frozenset({"jal", "jalr", "j", "jr", "ret", "call", "tail", "c.j",
                   "c.jr", "c.jalr"})
#: 2-byte compressed forms (RVC) — the §7.2 alignment problem.
COMPRESSED = frozenset({m for m in LOADS | STORES | BRANCHES | JUMPS
                        if m.startswith("c.")} | {"c.addi", "c.mv", "c.add",
                                                  "c.li", "c.nop"})
UNSAFE = frozenset({"ecall", "ebreak_unsafe", "csrr", "csrw", "csrrw",
                    "mret", "sret", "wfi", "fence.i"})

#: Expansion of each compressed mnemonic to its 4-byte equivalent.
UNCOMPRESSED_FORM = {
    "c.addi": "addi", "c.mv": "mv", "c.add": "add", "c.li": "li",
    "c.ld": "ld", "c.sd": "sd", "c.lw": "lw", "c.sw": "sw",
    "c.beqz": "beqz", "c.bnez": "bnez", "c.j": "j", "c.jr": "jr",
    "c.jalr": "jalr", "c.nop": "nop",
}


@dataclass
class RvInstruction:
    """One instruction: mnemonic + raw operand strings.

    Memory operands keep the RISC-V ``imm(base)`` shape in ``mem``:
    (offset, base register number).
    """

    mnemonic: str
    operands: Tuple[str, ...] = ()

    def __str__(self) -> str:
        if not self.operands:
            return self.mnemonic
        return f"{self.mnemonic} " + ", ".join(self.operands)

    @property
    def size(self) -> int:
        """Encoded size in bytes (2 for compressed forms)."""
        return 2 if self.mnemonic in COMPRESSED else 4

    @property
    def is_load(self) -> bool:
        return self.mnemonic in LOADS

    @property
    def is_store(self) -> bool:
        return self.mnemonic in STORES

    @property
    def is_memory(self) -> bool:
        return self.is_load or self.is_store

    @property
    def is_branch(self) -> bool:
        return self.mnemonic in BRANCHES

    @property
    def is_jump(self) -> bool:
        return self.mnemonic in JUMPS

    @property
    def mem(self) -> Optional[Tuple[int, int]]:
        """(offset, base register) of a memory operand, if present."""
        for op in self.operands:
            match = re.fullmatch(r"(-?\d*)\((\w+)\)", op.strip())
            if match:
                base = reg_number(match.group(2))
                if base is None:
                    return None
                offset = int(match.group(1)) if match.group(1) else 0
                return offset, base
        return None

    def dest(self) -> Optional[int]:
        """Destination register number for ALU/load forms."""
        if self.is_store or self.is_branch or not self.operands:
            return None
        if self.mnemonic in ("j", "c.j", "ret", "ecall", "nop", "c.nop"):
            return None
        if self.mnemonic in ("jal", "call"):
            return 1  # ra
        if self.mnemonic in ("jr", "c.jr", "tail"):
            return None
        return reg_number(self.operands[0])

    def sources(self) -> List[int]:
        out = []
        start = 0 if (self.is_store or self.is_branch) else 1
        for op in self.operands[start:]:
            number = reg_number(op.strip())
            if number is not None:
                out.append(number)
        mem = self.mem
        if mem is not None:
            out.append(mem[1])
        return out

    def branch_target(self) -> Optional[str]:
        if not (self.is_branch or self.is_jump):
            return None
        for op in reversed(self.operands):
            op = op.strip()
            if reg_number(op) is None and not re.fullmatch(
                r"-?\d*\(\w+\)", op
            ) and not re.fullmatch(r"-?\d+", op):
                return op
        return None


@dataclass(frozen=True)
class RvLabel:
    name: str

    def __str__(self) -> str:
        return f"{self.name}:"


@dataclass(frozen=True)
class RvDirective:
    text: str

    def __str__(self) -> str:
        return self.text


Item = Union[RvInstruction, RvLabel, RvDirective]


@dataclass
class RvProgram:
    items: List[Item] = field(default_factory=list)

    def instructions(self):
        return [i for i in self.items if isinstance(i, RvInstruction)]

    def label_offsets(self) -> dict:
        """Byte offset of every label (compressed forms count 2 bytes)."""
        offsets = {}
        cursor = 0
        for item in self.items:
            if isinstance(item, RvLabel):
                offsets[item.name] = cursor
            elif isinstance(item, RvInstruction):
                cursor += item.size
        return offsets


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")


def parse_riscv(text: str) -> RvProgram:
    """Parse RISC-V GNU assembly (labels, directives, instructions)."""
    program = RvProgram()
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].split("//", 1)[0].strip()
        while line:
            match = _LABEL_RE.match(line)
            if match:
                program.items.append(RvLabel(match.group(1)))
                line = line[match.end():].strip()
                continue
            if line.startswith("."):
                program.items.append(RvDirective(line))
                break
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            operands = tuple(
                p.strip() for p in parts[1].split(",")
            ) if len(parts) > 1 else ()
            program.items.append(RvInstruction(mnemonic, operands))
            break
    return program


def print_riscv(program: RvProgram) -> str:
    lines = []
    for item in program.items:
        if isinstance(item, RvLabel):
            lines.append(str(item))
        else:
            lines.append(f"\t{item}")
    return "\n".join(lines) + "\n"

"""Verifier for the RISC-V port: the §5.2 rules plus the §7.2 alignment
constraint, checked at the instruction-stream level."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .isa import RvInstruction, RvLabel, UNSAFE, parse_riscv, reg_number
from .rewriter import BASE_REG, RA, RESERVED, SCRATCH_REG, SP, SP_SMALL_IMM

__all__ = ["RvViolation", "verify_riscv"]

_MAX_DISPLACEMENT = 1 << 11  # 12-bit signed immediates: +-2KiB


@dataclass(frozen=True)
class RvViolation:
    index: int
    reason: str

    def __str__(self) -> str:
        return f"instruction {self.index}: {self.reason}"


def _is_guard(inst: RvInstruction, dest: int) -> bool:
    """``add.uw x<dest>, xN, x26`` — the Zba guard."""
    if inst.mnemonic != "add.uw" or len(inst.operands) != 3:
        return False
    d = reg_number(inst.operands[0])
    base = reg_number(inst.operands[2])
    return d == dest and base == BASE_REG


def _is_sp_guard(inst: RvInstruction) -> bool:
    if inst.mnemonic != "add.uw" or len(inst.operands) != 3:
        return False
    return (reg_number(inst.operands[0]) == SP
            and reg_number(inst.operands[1]) == SP
            and reg_number(inst.operands[2]) == BASE_REG)


def verify_riscv(text: str) -> List[RvViolation]:
    """Return the violations of one rewritten RISC-V program (empty = ok)."""
    program = parse_riscv(text)
    items = program.items
    insts = [
        (i, item) for i, item in enumerate(items)
        if isinstance(item, RvInstruction)
    ]
    violations: List[RvViolation] = []

    def fail(index: int, reason: str) -> None:
        violations.append(RvViolation(index, reason))

    # Property 4 (the §7.2 addition): jump targets are 4-byte aligned.
    cursor = 0
    for item in items:
        if isinstance(item, RvLabel):
            if cursor % 4:
                violations.append(
                    RvViolation(-1, f"label {item.name} at misaligned "
                                    f"offset {cursor}")
                )
        elif isinstance(item, RvInstruction):
            cursor += item.size

    for position, (index, inst) in enumerate(insts):
        nxt = insts[position + 1][1] if position + 1 < len(insts) else None
        m = inst.mnemonic
        if m in UNSAFE:
            fail(index, f"unsafe instruction {m}")
            continue
        if inst.is_memory:
            mem = inst.mem
            if mem is None:
                fail(index, "memory instruction without memory operand")
                continue
            offset, base = mem
            if base not in (SCRATCH_REG, SP, BASE_REG):
                fail(index, f"unguarded base register x{base}")
            elif abs(offset) >= _MAX_DISPLACEMENT:
                fail(index, f"displacement {offset} exceeds 12-bit range")
            if inst.is_load:
                dest = inst.dest()
                if dest in RESERVED:
                    fail(index, f"load writes reserved register x{dest}")
                elif dest == RA and not (nxt is not None
                                         and _is_guard(nxt, RA)):
                    fail(index, "load writes ra without a following guard")
            continue
        if m in ("jalr", "jr", "c.jalr", "c.jr"):
            target = _target_of(inst)
            if target not in (RA, SCRATCH_REG):
                fail(index, f"indirect jump through unguarded x{target}")
            continue
        dest = inst.dest()
        if dest == BASE_REG:
            fail(index, "write to the sandbox base register")
        elif dest == SCRATCH_REG:
            if not _is_guard(inst, SCRATCH_REG) and m != "andi":
                fail(index, f"scratch register modified by {m}")
            elif m == "andi" and inst.operands[-1].strip() != "-4":
                fail(index, "scratch register masked with a bad constant")
        elif dest == SP:
            if _is_sp_guard(inst):
                continue
            small = (
                m in ("addi", "c.addi")
                and reg_number(inst.operands[1]) == SP
                and abs(int(inst.operands[2])) < SP_SMALL_IMM
            )
            if not (small and _sp_ok_after(insts, position)):
                if not (nxt is not None and _is_sp_guard(nxt)):
                    fail(index, f"unsafe sp modification: {inst}")
        elif dest == RA and not inst.is_jump:
            if not (_is_guard(inst, RA)
                    or (nxt is not None and _is_guard(nxt, RA))):
                fail(index, f"ra modified by something other than the "
                            f"guard: {inst}")
    return violations


def _target_of(inst: RvInstruction) -> Optional[int]:
    import re

    for op in inst.operands:
        op = op.strip()
        match = re.fullmatch(r"-?\d*\((\w+)\)", op)
        if match:
            return reg_number(match.group(1))
    candidates = [reg_number(op.strip()) for op in inst.operands]
    candidates = [c for c in candidates if c is not None]
    if inst.mnemonic in ("jalr", "c.jalr") and len(candidates) > 1:
        return candidates[1]
    if candidates:
        return candidates[-1]
    return RA


def _sp_ok_after(insts, position) -> bool:
    for _, inst in insts[position + 1:]:
        mem = inst.mem
        if mem is not None and mem[1] == SP:
            return True
        if _is_sp_guard(inst):
            return True
        if inst.dest() == SP or inst.is_branch or inst.is_jump:
            return False
    return False

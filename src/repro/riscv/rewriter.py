"""The §7.2 RISC-V rewriter: Zba guards + the minimal alignment constraint.

Register assignment (mirroring the ARM64 scheme's roles):

* ``s10`` (x26) — sandbox base, 4GiB-aligned, never modified;
* ``s11`` (x27) — guard scratch: always a valid sandbox address;
* ``sp``  (x2)  — always valid (sp-relative immediates ride the guard
  regions, as on ARM64);
* ``ra``  (x1)  — always a valid jump target.

The guard is a single Zba instruction::

    add.uw s11, xN, s10        # s11 = zext32(xN) + base

RISC-V has no register-register addressing modes, so every guarded access
is the two-instruction O0 shape (the paper notes macro-op fusion could
recover the ARM64 form).  Immediate displacements are 12-bit (±2KiB),
comfortably inside the 48KiB guard regions.

Compressed instructions are 2 bytes, so a ``jalr`` could otherwise land in
the middle of a 4-byte instruction.  The port enforces the paper's minimal
alignment constraint: **every jump target is 4-byte aligned**, achieved by
uncompressing (or padding with ``c.nop``) so each label lands on a 4-byte
boundary; indirect jump guards additionally clear the target's low two
bits.
"""

from __future__ import annotations

from typing import List

from ..errors import RewriteError
from .isa import (
    COMPRESSED,
    RvDirective,
    RvInstruction,
    RvLabel,
    RvProgram,
    UNCOMPRESSED_FORM,
    UNSAFE,
    parse_riscv,
    print_riscv,
    reg_number,
)

__all__ = ["RvRewriteError", "rewrite_riscv", "align_jump_targets",
           "BASE_REG", "SCRATCH_REG"]

BASE_REG = 26  # s10
SCRATCH_REG = 27  # s11
RESERVED = {BASE_REG, SCRATCH_REG}
RA, SP = 1, 2

#: sp arithmetic below this is elidable when an access follows (§4.2).
SP_SMALL_IMM = 1 << 10


class RvRewriteError(RewriteError):
    pass


def _ins(mnemonic: str, *ops: str) -> RvInstruction:
    return RvInstruction(mnemonic, tuple(ops))


def _guard(source_reg: int) -> RvInstruction:
    return _ins("add.uw", f"x{SCRATCH_REG}", f"x{source_reg}",
                f"x{BASE_REG}")


def _sp_guard() -> RvInstruction:
    # sp may be an add.uw operand directly on RISC-V: one instruction.
    return _ins("add.uw", "sp", "sp", f"x{BASE_REG}")


def _ra_guard() -> RvInstruction:
    return _ins("add.uw", "ra", "ra", f"x{BASE_REG}")


def rewrite_riscv(text: str) -> str:
    """Rewrite RISC-V assembly per the §7.2 LFI port design."""
    program = parse_riscv(text)
    out = RvProgram()

    items = program.items
    for index, item in enumerate(items):
        if not isinstance(item, RvInstruction):
            out.items.append(item)
            continue
        _check_reserved(item)
        _rewrite_one(item, items, index, out)

    align_jump_targets(out)
    return print_riscv(out)


def _check_reserved(inst: RvInstruction) -> None:
    if inst.mnemonic in UNSAFE:
        raise RvRewriteError(f"unsafe instruction in input: {inst}")
    dest = inst.dest()
    if dest in RESERVED:
        raise RvRewriteError(f"input writes reserved register: {inst}")
    for src in inst.sources():
        if src in RESERVED:
            raise RvRewriteError(f"input reads reserved register: {inst}")


def _rewrite_one(inst: RvInstruction, items, index, out: RvProgram) -> None:
    mem = inst.mem

    if inst.is_memory and mem is not None:
        offset, base = mem
        if base in (SP, SCRATCH_REG, BASE_REG):
            out.items.append(_maybe_uncompress(inst))
        else:
            # The Zba guard, then the access through the scratch register.
            out.items.append(_guard(base))
            rewritten = _replace_mem(inst, offset, SCRATCH_REG)
            out.items.append(_maybe_uncompress(rewritten))
        if inst.is_load and inst.dest() == RA:
            out.items.append(_ra_guard())
        return

    if inst.mnemonic in ("jalr", "c.jalr", "jr", "c.jr"):
        target = _jump_target_reg(inst)
        if target == RA:
            out.items.append(_maybe_uncompress(inst))
            return
        out.items.append(_guard(target))
        # Clear the low bits: jump targets must be 4-byte aligned (§7.2).
        out.items.append(_ins("andi", f"x{SCRATCH_REG}",
                              f"x{SCRATCH_REG}", "-4"))
        if inst.mnemonic in ("jalr", "c.jalr"):
            out.items.append(_ins("jalr", "ra", f"0(x{SCRATCH_REG})"))
        else:
            out.items.append(_ins("jr", f"x{SCRATCH_REG}"))
        return

    dest = inst.dest()
    if dest == SP:
        small = (
            inst.mnemonic in ("addi", "c.addi")
            and reg_number(inst.operands[1]) == SP
            and abs(int(inst.operands[2])) < SP_SMALL_IMM
            and _sp_access_follows(items, index)
        )
        out.items.append(_maybe_uncompress(inst))
        if not small:
            out.items.append(_sp_guard())
        return
    if dest == RA and not inst.is_jump:
        out.items.append(_maybe_uncompress(inst))
        out.items.append(_ra_guard())
        return

    out.items.append(inst)


def _jump_target_reg(inst: RvInstruction) -> int:
    for op in inst.operands:
        op = op.strip()
        number = reg_number(op)
        if number is not None and number != RA:
            return number
        import re

        match = re.fullmatch(r"(-?\d*)\((\w+)\)", op)
        if match:
            return reg_number(match.group(2))
    number = reg_number(inst.operands[-1]) if inst.operands else None
    return number if number is not None else RA


def _replace_mem(inst: RvInstruction, offset: int,
                 base: int) -> RvInstruction:
    mnemonic = UNCOMPRESSED_FORM.get(inst.mnemonic, inst.mnemonic)
    new_ops = []
    import re

    for op in inst.operands:
        if re.fullmatch(r"-?\d*\(\w+\)", op.strip()):
            new_ops.append(f"{offset}(x{base})")
        else:
            new_ops.append(op)
    return RvInstruction(mnemonic, tuple(new_ops))


def _maybe_uncompress(inst: RvInstruction) -> RvInstruction:
    return inst


def _sp_access_follows(items, index) -> bool:
    for item in items[index + 1:]:
        if not isinstance(item, RvInstruction):
            return False
        mem = item.mem
        if mem is not None and mem[1] == SP:
            return True
        if item.dest() == SP or item.is_branch or item.is_jump:
            return False
    return False


def align_jump_targets(program: RvProgram) -> int:
    """Enforce the §7.2 minimal alignment constraint.

    Walk the program keeping a byte cursor; whenever a label would land at
    a 2-byte offset, uncompress the *preceding* compressed instruction
    (or insert a ``c.nop``) so the label is 4-byte aligned.  Returns the
    number of adjustments.
    """
    fixes = 0
    changed = True
    while changed:
        changed = False
        cursor = 0
        for index, item in enumerate(program.items):
            if isinstance(item, RvLabel):
                if cursor % 4:
                    # Prefer uncompressing the previous instruction.
                    prev = _previous_instruction(program.items, index)
                    if prev is not None and prev.mnemonic in COMPRESSED:
                        prev.mnemonic = UNCOMPRESSED_FORM[prev.mnemonic]
                    else:
                        program.items.insert(index, _ins("c.nop"))
                    fixes += 1
                    changed = True
                    break
            elif isinstance(item, RvInstruction):
                cursor += item.size
        # loop until no misaligned labels remain
    return fixes


def _previous_instruction(items, index):
    for item in reversed(items[:index]):
        if isinstance(item, RvInstruction):
            return item
        if isinstance(item, RvLabel):
            return None  # don't mutate across another label
    return None

"""LFI for RISC-V: a working implementation of the paper's §7.2 design.

The paper sketches how LFI would port to RV64:

* the ``add.uw`` instruction from the **Zba** extension performs the guard
  (``add.uw rd, rs1, rs2`` computes ``zext32(rs1) + rs2`` — exactly the
  ARM64 ``add rd, rs2, w(rs1), uxtw``);
* RISC-V has **no register-register addressing modes**, so every guarded
  access goes through a reserved address register (the ARM64 O0 shape;
  the paper notes instruction fusion could recover the difference);
* compressed (2-byte) instructions break the "every word is an
  instruction boundary" property, so the port enforces a **minimal
  alignment constraint**: every jump target is 4-byte aligned, padding or
  uncompressing instructions as needed.

This subpackage implements that design end to end at the assembly level:
a parser for a small RV64IC+Zba subset, the guard rewriter, the alignment
pass, and a verifier enforcing the §5.2 properties plus the alignment
rule.  (Unlike the ARM64 implementation, there is no machine-code
encoder — this is the design study the paper describes, validated at the
instruction-stream level; see DESIGN.md §6.)
"""

from .isa import COMPRESSED, RvInstruction, parse_riscv, print_riscv
from .rewriter import RvRewriteError, rewrite_riscv
from .verifier import RvViolation, verify_riscv

__all__ = [
    "COMPRESSED",
    "RvInstruction",
    "parse_riscv",
    "print_riscv",
    "RvRewriteError",
    "rewrite_riscv",
    "RvViolation",
    "verify_riscv",
]

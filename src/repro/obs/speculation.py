"""Leakage observer for the bounded-speculation emulator mode.

The speculative engine (DESIGN.md §16) records every transiently executed
memory access — the microarchitectural footprint an attacker could recover
through a cache side channel — into a :class:`SpeculationLog` attached to
the machine.  The log is *observer state only*: it never feeds back into
cycle accounting or architectural results, so speculative runs stay
byte-identical to non-speculative runs at the architectural level.

Axioms of the observer (what it can and cannot see):

* It sees the *address and size* of every transient load/store the window
  actually issued, in program order, including accesses that faulted (the
  address is computed before the access is attempted).
* It sees the residency of each address in the TLB and L1 gauges at the
  time of the access (non-mutating probes), standing in for the
  prime+probe measurement a real attacker would perform.
* It does **not** model inter-core coherence traffic, prefetchers, or port
  contention; leakage through those channels is out of scope.
* Leakage is judged *differentially*: two runs of the same program that
  differ only in a secret byte leak iff their transient access traces
  differ.  A hardened program may still speculate — it is safe when its
  transient footprint is secret-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = [
    "TransientAccess",
    "SpeculationWindow",
    "SpeculationLog",
    "differential_leakage",
]


@dataclass(frozen=True)
class TransientAccess:
    """One memory access issued on a squashed (wrong) path."""

    pc: int
    address: int
    size: int
    is_store: bool
    depth: int                      # instructions into the window (1-based)
    tlb_hit: Optional[bool] = None  # residency at access time, if modelled
    l1_hit: Optional[bool] = None


@dataclass
class SpeculationWindow:
    """One mispredicted branch and the transient work it caused."""

    kind: str                 # "cond" (PHT mispredict) or "ret" (RSB)
    branch_pc: int
    wrong_pc: int             # first transiently fetched pc
    resolved_pc: int          # architectural successor after rollback
    depth: int = 0            # transient instructions actually executed
    squash: str = "resolved"  # why the window ended
    accesses: List[TransientAccess] = field(default_factory=list)


class SpeculationLog:
    """Per-machine record of predictions, windows, and transient accesses."""

    def __init__(self):
        self.windows: List[SpeculationWindow] = []
        self.predictions = 0
        self.mispredicts = 0
        self.transient_instructions = 0
        self.squashes: dict = {}

    def begin_window(self, window: SpeculationWindow) -> SpeculationWindow:
        self.windows.append(window)
        self.mispredicts += 1
        return window

    def end_window(self, window: SpeculationWindow, reason: str) -> None:
        window.squash = reason
        self.transient_instructions += window.depth
        self.squashes[reason] = self.squashes.get(reason, 0) + 1

    @property
    def transient_accesses(self) -> int:
        return sum(len(w.accesses) for w in self.windows)

    def access_trace(self) -> Tuple[Tuple[int, int, bool], ...]:
        """The transient footprint: (address, size, is_store) in order."""
        return tuple((a.address, a.size, a.is_store)
                     for w in self.windows for a in w.accesses)

    def summary(self) -> str:
        return (f"predictions={self.predictions} "
                f"mispredicts={self.mispredicts} "
                f"windows={len(self.windows)} "
                f"transient-insns={self.transient_instructions} "
                f"transient-accesses={self.transient_accesses}")


def differential_leakage(a: SpeculationLog, b: SpeculationLog) -> int:
    """Number of positions where two runs' transient footprints differ.

    The two logs should come from runs of the *same* program under the
    *same* predictor seed that differ only in a secret value.  Zero means
    the transient footprint is secret-independent (no leakage through
    this observer); nonzero counts the differing trace positions,
    including length mismatches.
    """
    ta, tb = a.access_trace(), b.access_trace()
    diffs = sum(1 for xa, xb in zip(ta, tb) if xa != xb)
    return diffs + abs(len(ta) - len(tb))

"""Per-sandbox metrics: counters, gauges, histograms + a text exporter.

The :class:`MetricsHub` aggregates along two paths:

* **push** — it subscribes to a :class:`~repro.obs.tracer.Tracer` for
  runtime-call spans, faults, scheduling slices, and lifecycle events,
  and installs a machine step probe for *exact* guard-execution counts
  (unlike the tracer's sampling, counting must not miss instructions);
* **pull** — :meth:`collect` reads point-in-time state from the runtime:
  quota headroom per sandbox, TLB and cache hit/miss totals.

Snapshots are deterministic text (sorted keys, fixed float formatting),
so they can be diffed across runs exactly like traces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .events import (
    ContextSwitch,
    FaultEvent,
    ProcessEvent,
    RuntimeCallSpan,
    TraceEvent,
)

__all__ = ["Counter", "Gauge", "Histogram", "MetricsHub",
           "merge_snapshots", "CALL_LATENCY_BUCKETS"]

#: Histogram bounds for runtime-call latency, in emulated cycles.  The
#: interesting range spans the ~44-cycle direct-invoke yield (§5.3) up to
#: calls that copy data or fork.
CALL_LATENCY_BUCKETS = (32.0, 64.0, 128.0, 256.0, 1024.0, 8192.0)


class Counter:
    """Monotonic count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-written point-in-time value."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bound cumulative histogram (le-style buckets + sum/count)."""

    __slots__ = ("bounds", "buckets", "total", "count")

    def __init__(self, bounds: Tuple[float, ...] = CALL_LATENCY_BUCKETS):
        self.bounds = bounds
        self.buckets = [0] * (len(bounds) + 1)  # last bucket = +inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[i] += 1
                break
        else:
            self.buckets[-1] += 1
        self.total += value
        self.count += 1

    def lines(self, prefix: str) -> List[str]:
        out = []
        cumulative = 0
        for bound, n in zip(self.bounds, self.buckets):
            cumulative += n
            out.append(f"{prefix}.le_{bound:g} {cumulative}")
        out.append(f"{prefix}.le_inf {cumulative + self.buckets[-1]}")
        out.append(f"{prefix}.sum {self.total:.1f}")
        out.append(f"{prefix}.count {self.count}")
        return out

    def state_dict(self) -> dict:
        return {"bounds": tuple(self.bounds), "buckets": list(self.buckets),
                "total": self.total, "count": self.count}

    def load_state(self, state: dict) -> None:
        self.bounds = tuple(state["bounds"])
        self.buckets = list(state["buckets"])
        self.total = state["total"]
        self.count = state["count"]


class _SandboxMetrics:
    """The metric set kept for each sandbox pid."""

    def __init__(self):
        self.instructions = Counter()
        self.slices = Counter()
        self.faults = Counter()
        self.calls: Dict[str, Counter] = {}
        self.call_latency = Histogram()
        self.guard_exec: Dict[str, Counter] = {}
        #: Quota headroom gauges, filled by ``collect``.
        self.headroom: Dict[str, Gauge] = {}


class MetricsHub:
    """Aggregates obs events into per-sandbox and host-level metrics."""

    def __init__(self):
        self.sandboxes: Dict[int, _SandboxMetrics] = {}
        self.host: Dict[str, Gauge] = {}
        #: Named host-level counters/histograms (ops metrics: restarts,
        #: checkpoints, restore latency).  Distinct from the pull-path
        #: gauges so ``collect`` never clobbers them.
        self.host_counters: Dict[str, Counter] = {}
        self.host_histograms: Dict[str, Histogram] = {}
        self._tracer = None
        self._runtime = None

    def sandbox(self, pid: int) -> _SandboxMetrics:
        metrics = self.sandboxes.get(pid)
        if metrics is None:
            metrics = self.sandboxes[pid] = _SandboxMetrics()
        return metrics

    # -- push path -----------------------------------------------------------

    def attach(self, tracer, runtime=None) -> "MetricsHub":
        """Subscribe to ``tracer``; with ``runtime``, also count guards."""
        self._tracer = tracer
        tracer.subscribe(self.on_event)
        if runtime is not None:
            self._runtime = runtime
            runtime.machine.add_step_probe(self._on_step)
        return self

    def detach(self) -> None:
        if self._tracer is not None:
            self._tracer.unsubscribe(self.on_event)
            self._tracer = None
        if self._runtime is not None:
            self._runtime.machine.remove_step_probe(self._on_step)
            self._runtime = None

    def on_event(self, event: TraceEvent) -> None:
        if isinstance(event, RuntimeCallSpan):
            metrics = self.sandbox(event.pid)
            counter = metrics.calls.get(event.call)
            if counter is None:
                counter = metrics.calls[event.call] = Counter()
            counter.inc()
            metrics.call_latency.observe(event.dur)
        elif isinstance(event, ContextSwitch):
            metrics = self.sandbox(event.pid)
            metrics.slices.inc()
            metrics.instructions.inc(event.instructions)
        elif isinstance(event, FaultEvent):
            self.sandbox(event.pid).faults.inc()
        elif isinstance(event, ProcessEvent):
            self.sandbox(event.pid)  # materialize the track

    def _on_step(self, machine, pc: Optional[int], klass: str,
                 delta: float) -> None:
        if pc is None:
            return
        proc = self._runtime._current
        if proc is None:
            return
        guard = proc.guard_map.get(pc)
        if guard is None:
            return
        metrics = self.sandbox(proc.pid)
        counter = metrics.guard_exec.get(guard)
        if counter is None:
            counter = metrics.guard_exec[guard] = Counter()
        counter.inc()

    # -- pull path -----------------------------------------------------------

    def collect(self, runtime) -> None:
        """Sample point-in-time gauges from ``runtime``."""
        machine = runtime.machine
        for name, cache in (("tlb", machine.tlb), ("l1", machine.l1),
                            ("l2", machine.l2)):
            if cache is None:
                continue
            self._host_gauge(f"{name}_hits").set(cache.hits)
            self._host_gauge(f"{name}_misses").set(cache.misses)
        self._host_gauge("cycles").set(machine.cycles)
        self._host_gauge("instructions").set(machine.instret)
        for pid, proc in runtime.processes.items():
            metrics = self.sandbox(pid)
            quota = runtime.quotas.get(pid)
            if quota is None:
                continue
            if quota.max_instructions is not None:
                self._headroom(metrics, "instructions").set(
                    max(0, quota.max_instructions - proc.instructions)
                )
            if quota.max_fds is not None:
                self._headroom(metrics, "fds").set(
                    max(0, quota.max_fds - len(proc.fds))
                )
            if quota.max_mapped_pages is not None:
                used = runtime.memory.pages_in_range(
                    proc.layout.base, proc.layout.end
                )
                self._headroom(metrics, "pages").set(
                    max(0, quota.max_mapped_pages - used)
                )

    def _host_gauge(self, name: str) -> Gauge:
        gauge = self.host.get(name)
        if gauge is None:
            gauge = self.host[name] = Gauge()
        return gauge

    def host_gauge(self, name: str) -> Gauge:
        """Named host-level gauge (ops metrics: lane count, queue depth)."""
        return self._host_gauge(name)

    def host_counter(self, name: str) -> Counter:
        counter = self.host_counters.get(name)
        if counter is None:
            counter = self.host_counters[name] = Counter()
        return counter

    def host_histogram(self, name: str,
                       bounds: Tuple[float, ...] = CALL_LATENCY_BUCKETS,
                       ) -> Histogram:
        histogram = self.host_histograms.get(name)
        if histogram is None:
            histogram = self.host_histograms[name] = Histogram(bounds)
        return histogram

    @staticmethod
    def _headroom(metrics: _SandboxMetrics, name: str) -> Gauge:
        gauge = metrics.headroom.get(name)
        if gauge is None:
            gauge = metrics.headroom[name] = Gauge()
        return gauge

    # -- export --------------------------------------------------------------

    def snapshot(self) -> str:
        """Deterministic text dump: one ``name value`` line per metric."""
        lines: List[str] = []
        for name in sorted(set(self.host) | set(self.host_counters)):
            if name in self.host:
                lines.append(f"host.{name} {_fmt(self.host[name].value)}")
            if name in self.host_counters:
                lines.append(f"host.{name} "
                             f"{self.host_counters[name].value}")
        for name in sorted(self.host_histograms):
            lines.extend(self.host_histograms[name].lines(f"host.{name}"))
        for pid in sorted(self.sandboxes):
            metrics = self.sandboxes[pid]
            prefix = f"sandbox[{pid}]"
            lines.append(f"{prefix}.instructions "
                         f"{metrics.instructions.value}")
            lines.append(f"{prefix}.slices {metrics.slices.value}")
            lines.append(f"{prefix}.faults {metrics.faults.value}")
            for call in sorted(metrics.calls):
                lines.append(f"{prefix}.calls.{call} "
                             f"{metrics.calls[call].value}")
            if metrics.call_latency.count:
                lines.extend(
                    metrics.call_latency.lines(f"{prefix}.call_cycles")
                )
            for klass in sorted(metrics.guard_exec):
                lines.append(f"{prefix}.guards.{klass} "
                             f"{metrics.guard_exec[klass].value}")
            for name in sorted(metrics.headroom):
                lines.append(f"{prefix}.headroom.{name} "
                             f"{_fmt(metrics.headroom[name].value)}")
        return "\n".join(lines) + "\n"

    # -- checkpoint support ----------------------------------------------------

    def state_dict(self, pid_base: int = 0) -> dict:
        """Serializable sandbox-track state, pids relative to ``pid_base``.

        Host gauges/counters are deliberately excluded: they describe the
        *hub's* host, which a migrated job leaves behind.
        """
        out = {}
        for pid, metrics in self.sandboxes.items():
            out[pid - pid_base] = {
                "instructions": metrics.instructions.value,
                "slices": metrics.slices.value,
                "faults": metrics.faults.value,
                "calls": {name: c.value
                          for name, c in metrics.calls.items()},
                "call_latency": metrics.call_latency.state_dict(),
                "guard_exec": {name: c.value
                               for name, c in metrics.guard_exec.items()},
                "headroom": {name: g.value
                             for name, g in metrics.headroom.items()},
            }
        return {"sandboxes": out}

    def load_state(self, state: dict, pid_base: int = 0) -> None:
        """Restore :meth:`state_dict` output, rebasing pids onto ``pid_base``."""
        for offset, entry in state["sandboxes"].items():
            metrics = self.sandbox(pid_base + offset)
            metrics.instructions.value = entry["instructions"]
            metrics.slices.value = entry["slices"]
            metrics.faults.value = entry["faults"]
            for name, value in entry["calls"].items():
                counter = metrics.calls.setdefault(name, Counter())
                counter.value = value
            metrics.call_latency.load_state(entry["call_latency"])
            for name, value in entry["guard_exec"].items():
                counter = metrics.guard_exec.setdefault(name, Counter())
                counter.value = value
            for name, value in entry["headroom"].items():
                gauge = metrics.headroom.setdefault(name, Gauge())
                gauge.value = value


def merge_snapshots(parts) -> str:
    """Merge labeled snapshot texts into one deterministic report.

    ``parts`` is an ordered iterable of ``(label, snapshot_text)`` pairs
    (the caller fixes the order — e.g. the cluster sorts by job id); every
    line of each part is prefixed with its label.  Because the inputs are
    deterministic text and the order is caller-controlled, the merged
    report is byte-identical however the parts were produced — one worker
    or many.
    """
    lines: List[str] = []
    for label, text in parts:
        for line in text.splitlines():
            if line:
                lines.append(f"{label}.{line}")
    return "\n".join(lines) + "\n" if lines else ""


def _fmt(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.1f}"

"""Deterministic event bus: low-overhead tracing for runtime + machine.

The :class:`Tracer` is a multi-subscriber bus.  Producers (the runtime's
dispatch/fault/lifecycle paths, the supervisor, the machine's step probes)
call :meth:`emit`; subscribers (the recorder, a metrics hub, ad-hoc
callbacks) receive every event in emission order.

Determinism contract (DESIGN.md §9): events are timestamped in *emulated
cycles* and ordered by the single-threaded emulation loop, so two runs of
the same workload with equal seeds produce identical event sequences —
and therefore byte-identical exported traces.  Nothing in this module may
read wall-clock time or any other host-dependent source.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .events import InstSample, TraceEvent

__all__ = ["Tracer"]


class Tracer:
    """Multi-subscriber trace-event bus, optionally recording to a list.

    ``sample_every=N`` additionally installs a machine step probe on
    :meth:`attach` that emits an :class:`InstSample` for every Nth retired
    instruction (N=0, the default, disables instruction sampling — the
    span/lifecycle events alone are cheap enough for always-on use).
    """

    def __init__(self, sample_every: int = 0, record: bool = True):
        if sample_every < 0:
            raise ValueError("sample_every must be >= 0")
        self.sample_every = sample_every
        self.record = record
        #: Recorded events in emission order (when ``record``).
        self.events: List[TraceEvent] = []
        self._subscribers: List[Callable[[TraceEvent], None]] = []
        self._runtime = None
        self._steps = 0

    # -- bus -----------------------------------------------------------------

    def subscribe(self, fn: Callable[[TraceEvent], None]) -> Callable:
        if fn not in self._subscribers:
            self._subscribers.append(fn)
        return fn

    def unsubscribe(self, fn: Callable[[TraceEvent], None]) -> None:
        if fn in self._subscribers:
            self._subscribers.remove(fn)

    def emit(self, event: TraceEvent) -> None:
        if self.record:
            self.events.append(event)
        for fn in self._subscribers:
            fn(event)

    def clear(self) -> None:
        self.events.clear()

    # -- attachment ----------------------------------------------------------

    def attach(self, runtime) -> "Tracer":
        """Start receiving events from ``runtime`` (and its machine)."""
        if self._runtime is not None:
            raise RuntimeError("tracer is already attached")
        self._runtime = runtime
        runtime.tracer = self
        if self.sample_every:
            runtime.machine.add_step_probe(self._on_step)
        return self

    def detach(self) -> None:
        runtime = self._runtime
        if runtime is None:
            return
        if self.sample_every:
            runtime.machine.remove_step_probe(self._on_step)
        if runtime.tracer is self:
            runtime.tracer = None
        self._runtime = None

    def _on_step(self, machine, pc: Optional[int], klass: str,
                 delta: float) -> None:
        if pc is None:  # flat host charge, not a retired instruction
            return
        self._steps += 1
        if self._steps % self.sample_every:
            return
        proc = self._runtime._current
        self.emit(InstSample(
            ts=machine.cycles,
            pid=proc.pid if proc is not None else 0,
            pc=pc,
            klass=klass,
            guard=proc.guard_map.get(pc) if proc is not None else None,
            instret=machine.instret,
        ))

"""repro.obs — deterministic tracing, metrics, and guard attribution.

Three cooperating pieces (DESIGN.md §9):

* :class:`Tracer` — a multi-subscriber event bus fed by the runtime, the
  machine's step probes, and the supervisor; timestamps are emulated
  cycles, so equal-seed runs trace identically;
* :class:`MetricsHub` — per-sandbox counters/gauges/histograms with a
  deterministic text snapshot;
* :class:`GuardProfiler` — attributes every cycle to application code or
  a guard class using the provenance map threaded from the rewriter.

This package never imports the runtime stack at module scope: the runtime
imports :mod:`repro.obs.events`, and anything here that needs a
``Runtime`` receives it as an argument (or imports lazily).
"""

from .chrome import export_chrome_trace, to_chrome_events, validate_trace
from .events import (
    ContextSwitch,
    FaultEvent,
    InstSample,
    ProcessEvent,
    RuntimeCallSpan,
    SupervisorEvent,
    TraceEvent,
)
from .metrics import Counter, Gauge, Histogram, MetricsHub, merge_snapshots
from .prometheus import prometheus_exposition, validate_exposition
from .speculation import (
    SpeculationLog,
    SpeculationWindow,
    TransientAccess,
    differential_leakage,
)
from .profiler import (
    BUCKET_ORDER,
    GuardProfiler,
    ProfileReport,
    profile_workload,
)
from .tracer import Tracer

__all__ = [
    "TraceEvent",
    "InstSample",
    "RuntimeCallSpan",
    "ContextSwitch",
    "FaultEvent",
    "ProcessEvent",
    "SupervisorEvent",
    "Tracer",
    "export_chrome_trace",
    "to_chrome_events",
    "validate_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsHub",
    "merge_snapshots",
    "prometheus_exposition",
    "validate_exposition",
    "SpeculationLog",
    "SpeculationWindow",
    "TransientAccess",
    "differential_leakage",
    "BUCKET_ORDER",
    "GuardProfiler",
    "ProfileReport",
    "profile_workload",
]

"""Typed trace events (the obs subsystem's wire format, DESIGN.md §9).

Every event is a frozen dataclass timestamped in **emulated cycles**
(``Machine.cycles`` at emission).  Cycle time is the only clock the obs
layer ever reads: two runs of the same workload with the same seeds emit
identical event streams, which is what makes exported traces
byte-deterministic and diffable.

Durations (``dur``) are also in cycles.  ``pid`` is the sandbox pid, or
0 for host-level events (supervisor incidents, host errors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "TraceEvent",
    "InstSample",
    "RuntimeCallSpan",
    "ContextSwitch",
    "FaultEvent",
    "ProcessEvent",
    "SupervisorEvent",
]


@dataclass(frozen=True)
class TraceEvent:
    """Base class: a timestamp (emulated cycles) plus the owning sandbox."""

    ts: float
    pid: int


@dataclass(frozen=True)
class InstSample(TraceEvent):
    """One sampled retired instruction (every Nth step when sampling)."""

    pc: int
    klass: str  # cost class (``alu``/``load``/...) from repro.emulator.costs
    guard: Optional[str]  # guard class when pc is a guard site, else None
    instret: int  # machine-wide instructions retired at sample time


@dataclass(frozen=True)
class RuntimeCallSpan(TraceEvent):
    """One runtime-call dispatch: entry to completion (§4.4)."""

    call: str  # runtime call name ("write", "yield", ...)
    dur: float  # host-side cycles spent dispatching
    result: Optional[int]  # completion value; None when the call blocked
    blocked: bool
    injected: bool  # True when a call hook short-circuited the handler


@dataclass(frozen=True)
class ContextSwitch(TraceEvent):
    """One scheduling slice of a sandbox on the emulated hardware thread."""

    dur: float  # cycles from switch-in to switch-out
    instructions: int  # instructions retired during the slice
    reason: str  # preempt|call|fault|exit|block


@dataclass(frozen=True)
class FaultEvent(TraceEvent):
    """A sandbox was killed by a trap (mirrors ``ProcessFault``)."""

    kind: str  # segv|sigill|badcall|quota
    detail: str
    pc: int


@dataclass(frozen=True)
class ProcessEvent(TraceEvent):
    """Process lifecycle: spawn (the exec analogue), fork, exit."""

    kind: str  # spawn|fork|exit
    detail: str = ""
    parent: Optional[int] = None
    exit_code: Optional[int] = None


@dataclass(frozen=True)
class SupervisorEvent(TraceEvent):
    """One supervision incident (restart, demote, deadlock-break, ...)."""

    kind: str
    name: str  # the supervised sandbox's name
    detail: str = ""

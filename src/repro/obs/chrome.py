"""Chrome ``trace_event`` JSON exporter (loadable in Perfetto / about:tracing).

The exporter maps obs events onto the Trace Event Format:

* :class:`ContextSwitch` and :class:`RuntimeCallSpan` become complete
  events (``ph: "X"``) with a cycle timestamp and duration;
* :class:`InstSample`, :class:`FaultEvent`, :class:`ProcessEvent`, and
  :class:`SupervisorEvent` become instant events (``ph: "i"``);
* one metadata event (``ph: "M"``) names each sandbox's track.

Timestamps are emulated cycles, not microseconds — viewers only assume a
monotonic unit, and cycles are the deterministic clock of this repo.  The
serializer uses ``sort_keys`` and compact separators so equal event
streams produce byte-identical files (the CI determinism gate diffs two
same-seed exports).
"""

from __future__ import annotations

import json
from typing import Iterable, List, Optional

from .events import (
    ContextSwitch,
    FaultEvent,
    InstSample,
    ProcessEvent,
    RuntimeCallSpan,
    SupervisorEvent,
    TraceEvent,
)

__all__ = ["to_chrome_events", "export_chrome_trace", "validate_trace"]

#: Phases the validator accepts (the subset this exporter emits).
_KNOWN_PHASES = ("X", "i", "M")


def _event_dict(event: TraceEvent) -> Optional[dict]:
    """One obs event -> one trace_event dict (None to drop)."""
    base = {"ts": event.ts, "pid": event.pid, "tid": 0}
    if isinstance(event, ContextSwitch):
        return dict(base, ph="X", cat="sched", name="slice",
                    dur=event.dur,
                    args={"instructions": event.instructions,
                          "reason": event.reason})
    if isinstance(event, RuntimeCallSpan):
        return dict(base, ph="X", cat="runtime", name=event.call,
                    dur=event.dur,
                    args={"result": event.result, "blocked": event.blocked,
                          "injected": event.injected})
    if isinstance(event, InstSample):
        return dict(base, ph="i", s="t", cat="sample",
                    name=event.guard or event.klass,
                    args={"pc": event.pc, "klass": event.klass,
                          "guard": event.guard, "instret": event.instret})
    if isinstance(event, FaultEvent):
        return dict(base, ph="i", s="p", cat="fault", name=event.kind,
                    args={"detail": event.detail, "pc": event.pc})
    if isinstance(event, ProcessEvent):
        return dict(base, ph="i", s="p", cat="process", name=event.kind,
                    args={"detail": event.detail, "parent": event.parent,
                          "exit_code": event.exit_code})
    if isinstance(event, SupervisorEvent):
        return dict(base, ph="i", s="p", cat="supervisor", name=event.kind,
                    args={"name": event.name, "detail": event.detail})
    return None


def to_chrome_events(events: Iterable[TraceEvent]) -> List[dict]:
    """Map obs events to trace_event dicts, prefixed by track metadata."""
    out: List[dict] = []
    seen_pids: List[int] = []
    for event in events:
        mapped = _event_dict(event)
        if mapped is None:
            continue
        if event.pid not in seen_pids:
            seen_pids.append(event.pid)
        out.append(mapped)
    meta = [
        {"ph": "M", "ts": 0, "pid": pid, "tid": 0, "cat": "__metadata",
         "name": "process_name",
         "args": {"name": "host" if pid == 0 else f"sandbox {pid}"}}
        for pid in sorted(seen_pids)
    ]
    return meta + out


def export_chrome_trace(events: Iterable[TraceEvent],
                        path: Optional[str] = None) -> str:
    """Serialize events to a Chrome trace JSON string (and maybe a file).

    Output is byte-deterministic for equal event streams: keys are sorted
    and separators fixed, and every value in the document derives from the
    deterministic emulation (no wall-clock, no ids).
    """
    document = {
        "traceEvents": to_chrome_events(events),
        "displayTimeUnit": "ns",
        "otherData": {"clock": "emulated-cycles", "producer": "repro.obs"},
    }
    text = json.dumps(document, sort_keys=True, separators=(",", ":"))
    if path is not None:
        with open(path, "w") as fh:
            fh.write(text)
    return text


def validate_trace(text: str) -> List[str]:
    """Check a serialized trace against the Chrome trace schema subset.

    Returns a list of problems (empty = valid).  Used by the CI smoke job
    and the ``trace --validate`` CLI flag.
    """
    problems: List[str] = []
    try:
        document = json.loads(text)
    except ValueError as exc:
        return [f"not valid JSON: {exc}"]
    if not isinstance(document, dict):
        return ["top level must be an object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str):
            problems.append(f"{where}: missing name")
        if not isinstance(ev.get("pid"), int) \
                or not isinstance(ev.get("tid"), int):
            problems.append(f"{where}: pid/tid must be integers")
        if not isinstance(ev.get("ts"), (int, float)):
            problems.append(f"{where}: ts must be a number")
        if ph == "X" and not isinstance(ev.get("dur"), (int, float)):
            problems.append(f"{where}: complete event missing dur")
        if ph == "i" and ev.get("s") not in ("g", "p", "t"):
            problems.append(f"{where}: instant event scope must be g/p/t")
    return problems

"""Guard-attribution profiler: who pays for each emulated cycle?

The rewriter tags every instruction it *adds* with a guard class
(``memory``/``branch``/``sp``/``x30``/``hoist``); the assembler, ELF
builder, and loader thread that provenance through to the loaded image as
``Process.guard_map`` (absolute pc -> class).  The profiler subscribes to
the machine's per-instruction cycle probe and charges each delta to:

* the instruction's guard class, when its pc is a guard site;
* ``app``, for every other retired sandbox instruction;
* the flat-charge kind (``call``/``host``), for runtime-side work
  charged via :meth:`Machine.add_cycles`.

Because the cost model's cycle counter is monotonic and every mutation is
probed, the attribution is *complete*: the buckets sum to exactly the
cycles elapsed while attached.  That is what lets
``examples/overhead_report.py`` decompose Table 4's overhead percentages
into per-guard-class contributions that add up.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["GuardProfiler", "ProfileReport", "profile_workload"]

#: Guard classes in the paper's presentation order (Table 3 / §4), then
#: the non-guard buckets.
BUCKET_ORDER = ("memory", "branch", "sp", "x30", "hoist", "fence", "mask",
                "app", "call", "host")


class GuardProfiler:
    """Attribute per-instruction cycle charges to app vs guard classes."""

    def __init__(self):
        #: pid -> bucket -> cycles.
        self.cycles: Dict[int, Dict[str, float]] = {}
        #: pid -> bucket -> retired instruction count (no flat charges).
        self.instructions: Dict[int, Dict[str, int]] = {}
        #: guard class -> standalone cost (issue + result latency) of every
        #: executed guard instruction, as if nothing overlapped.  The gap
        #: between this and the marginal ``cycles`` is guard cost hidden
        #: under latency — the effect the paper leans on (§6.2).
        self.standalone: Dict[str, float] = {}
        self._runtime = None
        self.start_cycles = 0.0

    # -- attachment ----------------------------------------------------------

    def attach(self, runtime) -> "GuardProfiler":
        if self._runtime is not None:
            raise RuntimeError("profiler is already attached")
        self._runtime = runtime
        self.start_cycles = runtime.machine.cycles
        runtime.machine.add_step_probe(self._on_step)
        return self

    def detach(self) -> None:
        if self._runtime is None:
            return
        self._runtime.machine.remove_step_probe(self._on_step)
        self._runtime = None

    def _on_step(self, machine, pc: Optional[int], klass: str,
                 delta: float) -> None:
        proc = self._runtime._current
        pid = proc.pid if proc is not None else 0
        if pc is None:
            bucket = klass  # a flat charge: "call", "host", ...
        elif proc is not None:
            bucket = proc.guard_map.get(pc, "app")
        else:
            bucket = "app"
        per = self.cycles.get(pid)
        if per is None:
            per = self.cycles[pid] = {}
        per[bucket] = per.get(bucket, 0.0) + delta
        if pc is not None:
            counts = self.instructions.get(pid)
            if counts is None:
                counts = self.instructions[pid] = {}
            counts[bucket] = counts.get(bucket, 0) + 1
            if bucket != "app":
                model = machine.model
                cost = (model.issue_cost(klass) + model.result_latency(klass)
                        if model is not None else 1.0)
                self.standalone[bucket] = \
                    self.standalone.get(bucket, 0.0) + cost

    # -- queries -------------------------------------------------------------

    def breakdown(self, pid: Optional[int] = None) -> Dict[str, float]:
        """Bucket -> cycles, for one sandbox or summed over all."""
        out: Dict[str, float] = {}
        for owner, per in self.cycles.items():
            if pid is not None and owner != pid:
                continue
            for bucket, cycles in per.items():
                out[bucket] = out.get(bucket, 0.0) + cycles
        return out

    def instruction_counts(self, pid: Optional[int] = None) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for owner, per in self.instructions.items():
            if pid is not None and owner != pid:
                continue
            for bucket, count in per.items():
                out[bucket] = out.get(bucket, 0) + count
        return out

    def total_cycles(self) -> float:
        return sum(sum(per.values()) for per in self.cycles.values())

    def guard_cycles(self) -> float:
        """Cycles attributed to guard instructions (all classes)."""
        return sum(
            cycles
            for per in self.cycles.values()
            for bucket, cycles in per.items()
            if bucket not in ("app", "call", "host")
        )

    def decompose_overhead(self, overhead_cycles: float) -> Dict[str, float]:
        """Split a measured overhead-vs-native across guard classes.

        The marginal breakdown is an *undercount*: a guard in the shadow of
        a cache miss has near-zero marginal cost, yet the whole-program
        overhead it belongs to is real (longer chains, bigger footprint).
        This amortized view distributes the measured overhead proportional
        to each class's standalone executed cost, so the returned values
        sum to ``overhead_cycles`` exactly; ``other`` absorbs everything
        when no guards executed at all.
        """
        weights = {
            bucket: weight for bucket, weight in self.standalone.items()
            if bucket not in ("call", "host")
        }
        total = sum(weights.values())
        if total <= 0.0:
            return {"other": overhead_cycles}
        return {
            bucket: overhead_cycles * weight / total
            for bucket, weight in weights.items()
        }

    def report(self) -> str:
        """Deterministic text table of the aggregate breakdown."""
        breakdown = self.breakdown()
        counts = self.instruction_counts()
        total = sum(breakdown.values()) or 1.0
        lines = [f"{'bucket':<8} {'cycles':>14} {'share':>7} {'insts':>10}"]
        order = list(BUCKET_ORDER) + sorted(
            b for b in breakdown if b not in BUCKET_ORDER
        )
        for bucket in order:
            if bucket not in breakdown:
                continue
            cycles = breakdown[bucket]
            lines.append(
                f"{bucket:<8} {cycles:>14.1f} "
                f"{100.0 * cycles / total:>6.2f}% "
                f"{counts.get(bucket, 0):>10}"
            )
        lines.append(f"{'total':<8} {sum(breakdown.values()):>14.1f} "
                     f"{'100.00%':>7} "
                     f"{sum(counts.values()):>10}")
        return "\n".join(lines)


class ProfileReport:
    """Everything ``profile_workload`` measured for one Table 4 workload."""

    def __init__(self, name, options, native, lfi, profiler, static_counts):
        self.name = name
        self.options = options
        self.native = native  # RunMetrics of the native baseline
        self.lfi = lfi  # RunMetrics of the sandboxed run
        self.profiler = profiler
        #: Static per-class guard counts from RewriteStats (the same
        #: numbers ``repro.tools rewrite`` prints).
        self.static_counts = static_counts

    @property
    def overhead_pct(self) -> float:
        from ..perf.measure import overhead_pct

        return overhead_pct(self.native.cycles, self.lfi.cycles)

    def breakdown(self) -> Dict[str, float]:
        return self.profiler.breakdown()

    def guard_overhead_pct(self) -> Dict[str, float]:
        """Per-guard-class *marginal* cycles as a percent of native."""
        return {
            bucket: 100.0 * cycles / self.native.cycles
            for bucket, cycles in self.profiler.breakdown().items()
            if bucket not in ("app", "call", "host")
        }

    def decomposed_overhead(self) -> Dict[str, float]:
        """Guard class -> overhead cycles; sums to (lfi - native) exactly."""
        return self.profiler.decompose_overhead(
            self.lfi.cycles - self.native.cycles
        )

    def decomposed_overhead_pct(self) -> Dict[str, float]:
        """Guard class -> percentage points of Table 4's overhead number."""
        return {
            bucket: 100.0 * cycles / self.native.cycles
            for bucket, cycles in self.decomposed_overhead().items()
        }


def profile_workload(name: str, options=None, model=None,
                     target_instructions: int = 60_000) -> ProfileReport:
    """Run one Table 4 workload natively and sandboxed, with attribution.

    The sandboxed run carries a :class:`GuardProfiler`; the returned
    report pairs its dynamic breakdown with the rewriter's static counts
    and the native baseline, so the caller can decompose the overhead.
    """
    # Imported lazily: this module must not pull the runtime stack in at
    # import time (runtime.py imports obs.events).
    from ..core.options import O2
    from ..emulator.costs import CostModel
    from ..perf.measure import (
        RunMetrics,
        lfi_variant,
        native_variant,
        run_variant,
    )
    from ..runtime.runtime import Runtime
    from ..toolchain import compile_lfi
    from ..workloads.spec import arena_bss_size, build_benchmark

    options = options or O2
    model = model or CostModel()
    asm = build_benchmark(name, target_instructions=target_instructions)
    bss = arena_bss_size(name)
    native = run_variant(asm, bss, native_variant(), model)

    compiled = compile_lfi(asm, options=options, bss_size=bss)
    variant = lfi_variant(options)
    runtime = Runtime(model=model)
    profiler = GuardProfiler().attach(runtime)
    proc = runtime.spawn(compiled.elf, verify=True, policy=variant.policy)
    code = runtime.run_until_exit(proc)
    profiler.detach()
    if code != 0:
        raise RuntimeError(f"{name} exited {code}; faults: {runtime.faults}")
    machine = runtime.machine
    lfi = RunMetrics(
        variant=variant.name,
        cycles=machine.cycles,
        instructions=machine.instret,
        ns=runtime.virtual_ns(),
        tlb_miss_rate=machine.tlb.miss_rate if machine.tlb else 0.0,
        exit_code=code,
    )
    static_counts = compiled.rewrite.stats.guard_class_counts()
    return ProfileReport(name, options, native, lfi, profiler, static_counts)

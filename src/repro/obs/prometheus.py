"""Prometheus text-format exporter for :class:`MetricsHub` + validator.

:func:`prometheus_exposition` renders a hub into the Prometheus text
exposition format (version 0.0.4): ``# TYPE`` headers, ``_total``
counters, ``le``-bucketed histograms with ``+Inf``/``_sum``/``_count``,
label values escaped per the spec.  The repo's bracket-label naming
convention for host metrics —

    ``serve.rejected[tenant=acme,reason=queue-full]``

— becomes a properly labeled family —

    ``repro_serve_rejected_total{reason="queue-full",tenant="acme"}``

— so per-tenant serving counters scrape as real label dimensions, not
as an unbounded family namespace.  Per-sandbox metrics get a ``pid``
label plus the natural sub-label of each family (``call``, ``guard``,
``resource``).

:func:`validate_exposition` is the scrape-side twin, mirroring the
Chrome-trace validator (:func:`repro.obs.chrome.validate_trace`): it
re-parses an exposition and returns a list of violated invariants —
grammar, ``TYPE`` discipline, duplicate series, histogram bucket
monotonicity and ``+Inf``/``_count`` agreement — so CI can assert a
serving run exports something a real Prometheus server would ingest.
Output is deterministic: families and label sets are emitted sorted.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .metrics import MetricsHub

__all__ = ["prometheus_exposition", "validate_exposition"]

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")
_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _sanitize(name: str) -> str:
    return _SANITIZE_RE.sub("_", name)


def _split_brackets(name: str) -> Tuple[str, Dict[str, str]]:
    """``a.b[k=v,k2=v2]`` -> (``a.b``, {k: v, k2: v2})."""
    if not name.endswith("]") or "[" not in name:
        return name, {}
    base, _, inner = name[:-1].partition("[")
    labels: Dict[str, str] = {}
    for part in inner.split(","):
        key, sep, value = part.partition("=")
        if not sep:
            return name, {}  # not our convention; keep the name whole
        labels[key.strip()] = value.strip()
    return base, labels


def _labelset(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{_sanitize(k)}="{_escape(str(v))}"'
                     for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _fmt_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


class _Family:
    def __init__(self, kind: str):
        self.kind = kind                       # counter|gauge|histogram
        self.samples: List[Tuple[str, str, str]] = []
        # (sample_name, labelset, value) — histograms carry their
        # _bucket/_sum/_count suffixes in sample_name.

    def add(self, suffix: str, labels: Dict[str, str], value) -> None:
        self.samples.append((suffix, _labelset(labels),
                             _fmt_value(value)))


def prometheus_exposition(hub: MetricsHub,
                          namespace: str = "repro") -> str:
    """Render ``hub`` as Prometheus text exposition format 0.0.4."""
    families: Dict[str, _Family] = {}

    def family(name: str, kind: str) -> _Family:
        fam = families.get(name)
        if fam is None:
            fam = families[name] = _Family(kind)
        return fam

    def host_name(raw: str) -> Tuple[str, Dict[str, str]]:
        base, labels = _split_brackets(raw)
        return f"{namespace}_{_sanitize(base)}", labels

    for raw in hub.host:
        name, labels = host_name(raw)
        family(name, "gauge").add("", labels, hub.host[raw].value)
    for raw in hub.host_counters:
        name, labels = host_name(raw)
        if not name.endswith("_total"):
            name += "_total"
        family(name, "counter").add("", labels,
                                    hub.host_counters[raw].value)
    for raw in hub.host_histograms:
        name, labels = host_name(raw)
        _add_histogram(family(name, "histogram"), labels,
                       hub.host_histograms[raw])

    prefix = f"{namespace}_sandbox"
    for pid, metrics in hub.sandboxes.items():
        labels = {"pid": str(pid)}
        family(f"{prefix}_instructions_total", "counter").add(
            "", labels, metrics.instructions.value)
        family(f"{prefix}_slices_total", "counter").add(
            "", labels, metrics.slices.value)
        family(f"{prefix}_faults_total", "counter").add(
            "", labels, metrics.faults.value)
        for call, counter in metrics.calls.items():
            family(f"{prefix}_calls_total", "counter").add(
                "", {**labels, "call": call}, counter.value)
        if metrics.call_latency.count:
            _add_histogram(family(f"{prefix}_call_cycles", "histogram"),
                           labels, metrics.call_latency)
        for guard, counter in metrics.guard_exec.items():
            family(f"{prefix}_guard_exec_total", "counter").add(
                "", {**labels, "guard": guard}, counter.value)
        for resource, gauge in metrics.headroom.items():
            family(f"{prefix}_quota_headroom", "gauge").add(
                "", {**labels, "resource": resource}, gauge.value)

    lines: List[str] = []
    for name in sorted(families):
        fam = families[name]
        lines.append(f"# TYPE {name} {fam.kind}")
        for suffix, labelset, value in sorted(fam.samples):
            lines.append(f"{name}{suffix}{labelset} {value}")
    return "\n".join(lines) + "\n" if lines else ""


def _add_histogram(fam: _Family, labels: Dict[str, str],
                   histogram) -> None:
    cumulative = 0
    for bound, count in zip(histogram.bounds, histogram.buckets):
        cumulative += count
        fam.add("_bucket", {**labels, "le": f"{bound:g}"}, cumulative)
    fam.add("_bucket", {**labels, "le": "+Inf"}, histogram.count)
    fam.add("_sum", labels, histogram.total)
    fam.add("_count", labels, histogram.count)


# -- validation ---------------------------------------------------------------

_SUFFIXES = ("_bucket", "_sum", "_count")


def _parse_labels(text: str) -> Optional[Dict[str, str]]:
    """Parse ``k="v",k2="v2"`` (inner part of a labelset); None on error."""
    labels: Dict[str, str] = {}
    i = 0
    while i < len(text):
        match = re.match(r'([a-zA-Z_][a-zA-Z0-9_]*)="', text[i:])
        if match is None:
            return None
        key = match.group(1)
        i += match.end()
        value = []
        while i < len(text):
            ch = text[i]
            if ch == "\\":
                if i + 1 >= len(text) or text[i + 1] not in '\\"n':
                    return None
                value.append({"\\": "\\", '"': '"',
                              "n": "\n"}[text[i + 1]])
                i += 2
                continue
            if ch == '"':
                break
            if ch == "\n":
                return None
            value.append(ch)
            i += 1
        else:
            return None
        if key in labels:
            return None  # duplicate label name
        labels[key] = "".join(value)
        i += 1  # closing quote
        if i < len(text):
            if text[i] != ",":
                return None
            i += 1
    return labels


def validate_exposition(text: str) -> List[str]:
    """Check ``text`` against the exposition-format invariants.

    Returns a list of violation strings (empty = valid):

    * sample-line grammar: ``name[{labels}] value``, valid metric and
      label names, properly quoted/escaped label values, numeric value;
    * ``# TYPE`` discipline: announced once per family, before any of
      its samples; every sample belongs to an announced family
      (histogram samples match their base family via
      ``_bucket``/``_sum``/``_count``);
    * type shape: histogram families have exactly the three suffixes, a
      ``+Inf`` bucket per label subgroup agreeing with ``_count``, and
      cumulative bucket counts that never decrease as ``le`` rises;
      counter families use the ``_total`` naming convention and stay
      non-negative;
    * no duplicate series (same sample name + label set twice).
    """
    errors: List[str] = []
    types: Dict[str, str] = {}
    seen_series: set = set()
    # histogram family -> labelset-sans-le -> {"buckets": [(le, v)],
    #                                          "count": v or None}
    histograms: Dict[str, Dict[str, dict]] = {}

    def err(line_no: int, message: str) -> None:
        errors.append(f"line {line_no}: {message}")

    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            fields = line.split(None, 3)
            if len(fields) >= 2 and fields[1] == "TYPE":
                if len(fields) != 4:
                    err(line_no, f"malformed TYPE line: {line!r}")
                    continue
                _, _, name, kind = fields
                if not _NAME_RE.match(name):
                    err(line_no, f"invalid metric name {name!r}")
                if kind not in ("counter", "gauge", "histogram",
                                "summary", "untyped"):
                    err(line_no, f"unknown metric type {kind!r}")
                if name in types:
                    err(line_no, f"duplicate TYPE for family {name!r}")
                types[name] = kind
            continue
        # sample line: name[{labels}] value
        match = re.match(r"([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)$",
                         line)
        if match is None:
            err(line_no, f"unparseable sample line: {line!r}")
            continue
        name, _braced, inner, raw_value = match.groups()
        labels = _parse_labels(inner) if inner is not None else {}
        if labels is None:
            err(line_no, f"malformed labels in {line!r}")
            continue
        try:
            value = float(raw_value)
        except ValueError:
            err(line_no, f"non-numeric value {raw_value!r}")
            continue
        # resolve the family this sample belongs to
        fam = None
        for suffix in _SUFFIXES:
            if name.endswith(suffix) \
                    and types.get(name[:-len(suffix)]) == "histogram":
                fam = name[:-len(suffix)]
                break
        if fam is None:
            fam = name
        kind = types.get(fam)
        if kind is None:
            err(line_no, f"sample {name!r} has no preceding TYPE")
            continue
        series = (name, tuple(sorted(labels.items())))
        if series in seen_series:
            err(line_no, f"duplicate series {name!r} "
                         f"labels={dict(sorted(labels.items()))}")
        seen_series.add(series)
        if kind == "counter":
            if not name.endswith("_total"):
                err(line_no, f"counter {name!r} should end with _total")
            if value < 0:
                err(line_no, f"counter {name!r} is negative ({value})")
        if kind == "histogram":
            group = histograms.setdefault(fam, {})
            sub = tuple(sorted((k, v) for k, v in labels.items()
                               if k != "le"))
            entry = group.setdefault(sub, {"buckets": [], "count": None,
                                           "line": line_no})
            if name == fam + "_bucket":
                le = labels.get("le")
                if le is None:
                    err(line_no, f"bucket of {fam!r} missing le label")
                else:
                    entry["buckets"].append((line_no, le, value))
            elif name == fam + "_count":
                entry["count"] = value
                if value < 0:
                    err(line_no, f"histogram count negative in {fam!r}")

    for fam, group in histograms.items():
        for sub, entry in group.items():
            buckets = entry["buckets"]
            labels_text = dict(sub) or "{}"
            if not buckets:
                errors.append(f"histogram {fam!r} {labels_text} has no "
                              f"buckets")
                continue
            inf = [v for _ln, le, v in buckets if le == "+Inf"]
            if not inf:
                errors.append(f"histogram {fam!r} {labels_text} missing "
                              f"+Inf bucket")
            elif entry["count"] is not None and inf[0] != entry["count"]:
                errors.append(
                    f"histogram {fam!r} {labels_text}: +Inf bucket "
                    f"{inf[0]:g} != _count {entry['count']:g}")
            finite = []
            for _ln, le, v in buckets:
                if le == "+Inf":
                    continue
                try:
                    finite.append((float(le), v))
                except ValueError:
                    errors.append(f"histogram {fam!r} {labels_text}: "
                                  f"bad le value {le!r}")
            finite.sort()
            for (lo_le, lo), (hi_le, hi) in zip(finite, finite[1:]):
                if hi < lo:
                    errors.append(
                        f"histogram {fam!r} {labels_text}: bucket "
                        f"le={hi_le:g} count {hi:g} < le={lo_le:g} "
                        f"count {lo:g} (not cumulative)")
            if finite and inf and inf[0] < finite[-1][1]:
                errors.append(
                    f"histogram {fam!r} {labels_text}: +Inf bucket "
                    f"below last finite bucket")
    return errors

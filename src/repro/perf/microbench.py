"""Context-switch microbenchmarks (paper Table 5).

Three measurements, all *executed* in the LFI runtime on the cycle model:

* **syscall** — a null runtime call (``getpid``) in a loop.  LFI needs no
  hardware mode switch: the call is ``ldr x30, [x21, #n]; blr x30`` plus
  the runtime's register save/restore.
* **pipe** — two sandboxes pass one byte back and forth through a pair of
  pipes; dominated by isolation-domain switches.
* **yield** — the direct cross-sandbox invocation (microkernel-style IPC):
  only callee-saved registers are switched (§5.3, ~50 cycles).

The Linux and gVisor columns come from
:mod:`repro.baselines.hardware` cost models (we cannot run either here);
the LFI columns are measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..baselines.hardware import GVISOR_MODEL, LINUX_MODEL
from ..emulator.costs import CostModel
from ..runtime.runtime import Runtime
from ..runtime.table import RuntimeCall, table_offset
from ..toolchain import compile_lfi
from ..workloads.rtlib import prologue, rt_exit, rtcall

__all__ = ["MicrobenchResult", "measure_syscall_ns", "measure_pipe_ns",
           "measure_yield_ns", "run_table5"]


@dataclass
class MicrobenchResult:
    """ns/operation for every system of Table 5."""

    benchmark: str
    lfi_ns: float
    linux_ns: float
    gvisor_ns: float


def _loop(body: str, count: int, counter: str = "x27") -> str:
    return f"""
    movz {counter}, #{count}
.Lsys_loop:
{body}
    subs {counter}, {counter}, #1
    b.ne .Lsys_loop
"""


def measure_syscall_ns(model: CostModel, count: int = 200) -> float:
    """Cycles per null runtime call, in ns at the model's frequency."""
    src = prologue() + _loop(rtcall(RuntimeCall.GETPID), count) + """
    mov x0, #0
""" + rt_exit()
    runtime = Runtime(model=model)
    proc = runtime.spawn(compile_lfi(src).elf)
    # Baseline: the same loop without the runtime call.
    base_src = prologue() + _loop("    nop", count) + """
    mov x0, #0
""" + rt_exit()
    baseline = Runtime(model=model)
    base_proc = baseline.spawn(compile_lfi(base_src).elf)

    runtime.run_until_exit(proc)
    baseline.run_until_exit(base_proc)
    cycles = (runtime.cycles - baseline.cycles) / count
    return cycles * model.ns_per_cycle()


def measure_pipe_ns(model: CostModel, count: int = 60) -> float:
    """ns per one-byte pipe pass between two isolation domains."""
    src = prologue() + f"""
    adrp x19, fds
    add x19, x19, :lo12:fds
    mov x0, x19
""" + rtcall(RuntimeCall.PIPE) + f"""
    add x0, x19, #8
""" + rtcall(RuntimeCall.PIPE) + rtcall(RuntimeCall.FORK) + f"""
    cbnz x0, .Lparent
    // child: read pipe1, write pipe2, {count} times
    movz x27, #{count}
.Lchild_loop:
    ldr w20, [x19]               // pipe1 read end
    adrp x1, buf
    add x1, x1, :lo12:buf
    mov x2, #1
    mov x0, x20
""" + rtcall(RuntimeCall.READ) + """
    ldr w20, [x19, #12]          // pipe2 write end
    adrp x1, buf
    add x1, x1, :lo12:buf
    mov x2, #1
    mov x0, x20
""" + rtcall(RuntimeCall.WRITE) + """
    subs x27, x27, #1
    b.ne .Lchild_loop
    mov x0, #0
""" + rt_exit() + f"""
.Lparent:
    movz x27, #{count}
.Lparent_loop:
    ldr w20, [x19, #4]           // pipe1 write end
    adrp x1, buf
    add x1, x1, :lo12:buf
    mov x2, #1
    mov x0, x20
""" + rtcall(RuntimeCall.WRITE) + """
    ldr w20, [x19, #8]           // pipe2 read end
    adrp x1, buf
    add x1, x1, :lo12:buf
    mov x2, #1
    mov x0, x20
""" + rtcall(RuntimeCall.READ) + """
    subs x27, x27, #1
    b.ne .Lparent_loop
    mov x0, #0
""" + rtcall(RuntimeCall.WAIT) + """
    mov x0, #0
""" + rt_exit() + """
.data
.balign 8
fds: .skip 16
buf: .skip 8
"""
    runtime = Runtime(model=model)
    proc = runtime.spawn(compile_lfi(src).elf)
    runtime.run()
    if runtime.faults:
        raise RuntimeError(f"pipe microbenchmark faulted: {runtime.faults}")
    # 2*count one-way passes; subtract nothing (the loop is part of the
    # real cost on the real system too).
    cycles = runtime.cycles / (2 * count)
    return cycles * model.ns_per_cycle()


def measure_yield_ns(model: CostModel, count: int = 200) -> float:
    """ns per direct cross-sandbox yield (the IPC fast path)."""
    # Two processes yield_to each other; pids are 1 and 2 by spawn order.
    def src(other_pid: int) -> str:
        return prologue() + f"""
    movz x27, #{count}
.Lyield_loop:
    mov x0, #{other_pid}
""" + rtcall(RuntimeCall.YIELD_TO) + """
    subs x27, x27, #1
    b.ne .Lyield_loop
    mov x0, #0
""" + rt_exit()

    runtime = Runtime(model=model)
    a = runtime.spawn(compile_lfi(src(2)).elf)
    b = runtime.spawn(compile_lfi(src(1)).elf)
    runtime.run()
    if runtime.faults:
        raise RuntimeError(f"yield microbenchmark faulted: {runtime.faults}")
    total_yields = 2 * count
    cycles = runtime.cycles / total_yields
    return cycles * model.ns_per_cycle()


def run_table5(model: CostModel) -> Dict[str, MicrobenchResult]:
    """All three rows of Table 5 for one machine model."""
    freq = model.freq_ghz
    syscall = MicrobenchResult(
        "syscall",
        lfi_ns=measure_syscall_ns(model),
        linux_ns=LINUX_MODEL.syscall_ns(freq),
        gvisor_ns=GVISOR_MODEL.syscall_ns(freq),
    )
    pipe = MicrobenchResult(
        "pipe",
        lfi_ns=measure_pipe_ns(model),
        linux_ns=LINUX_MODEL.pipe_ns(freq),
        gvisor_ns=GVISOR_MODEL.pipe_ns(freq),
    )
    yield_row = MicrobenchResult(
        "yield",
        lfi_ns=measure_yield_ns(model),
        linux_ns=float("nan"),  # no hardware equivalent (paper: "-")
        gvisor_ns=float("nan"),
    )
    return {"syscall": syscall, "pipe": pipe, "yield": yield_row}

"""Measurement harness: run workload variants and compute overheads.

The paper's methodology (§6.1) is followed exactly: the *native* baseline
runs inside the LFI runtime too (so it also benefits from accelerated
runtime calls), and every overhead is the percent increase of a variant's
modeled cycles over the native run of the same workload on the same machine
model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..baselines.hardware import NESTED_WALK_SCALE
from ..baselines.wasm import WasmEngineModel, wasm_rewrite
from ..core.options import RewriteOptions
from ..core.verifier import VerifierPolicy
from ..emulator.costs import CostModel
from ..engine import EngineConfig
from ..runtime.runtime import Runtime
from ..toolchain import compile_lfi, compile_native
from ..workloads.spec import arena_bss_size, build_benchmark

__all__ = [
    "RunMetrics",
    "Variant",
    "native_variant",
    "kvm_variant",
    "lfi_variant",
    "wasm_variant",
    "run_variant",
    "measure_benchmark",
    "measure_suite",
    "geomean",
    "overhead_pct",
]


@dataclass
class RunMetrics:
    """Observables from one simulated run."""

    variant: str
    cycles: float
    instructions: int
    ns: float
    tlb_miss_rate: float
    exit_code: int

    def overhead_over(self, base: "RunMetrics") -> float:
        """Percent increase in cycles over a baseline run."""
        return overhead_pct(base.cycles, self.cycles)


@dataclass(frozen=True)
class Variant:
    """One system under comparison: how to compile and how to run."""

    name: str
    #: (asm text) -> ELF image.
    compile: Callable[[str, int], object]
    verify: bool = False
    policy: Optional[VerifierPolicy] = None
    tlb_walk_scale: float = 1.0


def native_variant(name: str = "native") -> Variant:
    return Variant(name, lambda asm, bss: compile_native(asm, bss_size=bss).elf)


def kvm_variant(name: str = "kvm") -> Variant:
    """Native code under nested paging (Figure 5's QEMU/KVM baseline)."""
    return Variant(
        name, lambda asm, bss: compile_native(asm, bss_size=bss).elf,
        tlb_walk_scale=NESTED_WALK_SCALE,
    )


def lfi_variant(options: RewriteOptions, name: Optional[str] = None) -> Variant:
    label = name or f"lfi-{options.label.replace(', ', '-').replace(' ', '')}"
    return Variant(
        label,
        lambda asm, bss: compile_lfi(asm, options=options, bss_size=bss).elf,
        verify=True,
        policy=VerifierPolicy(sandbox_loads=options.sandbox_loads,
                              allow_exclusives=options.allow_exclusives),
    )


def wasm_variant(engine: WasmEngineModel) -> Variant:
    return Variant(
        engine.name,
        lambda asm, bss: compile_native(wasm_rewrite(asm, engine),
                                        bss_size=bss).elf,
    )


def run_variant(asm: str, bss_size: int, variant: Variant,
                model: CostModel, engine=None) -> RunMetrics:
    """Compile one variant of a workload and run it to completion.

    ``engine`` takes an :class:`~repro.engine.EngineConfig` (or None for
    the default superblock engine; a bare kind string still works behind
    a deprecation shim).
    """
    elf = variant.compile(asm, bss_size)
    runtime = Runtime(model=model, tlb_walk_scale=variant.tlb_walk_scale,
                      engine=EngineConfig.coerce(engine))
    proc = runtime.spawn(elf, verify=variant.verify, policy=variant.policy)
    code = runtime.run_until_exit(proc)
    if code != 0:
        raise RuntimeError(
            f"{variant.name} exited {code}; faults: {runtime.faults}"
        )
    machine = runtime.machine
    return RunMetrics(
        variant=variant.name,
        cycles=machine.cycles,
        instructions=machine.instret,
        ns=runtime.virtual_ns(),
        tlb_miss_rate=machine.tlb.miss_rate if machine.tlb else 0.0,
        exit_code=code,
    )


def measure_benchmark(
    name: str,
    variants: Sequence[Variant],
    model: CostModel,
    target_instructions: int = 60_000,
    baseline: Optional[Variant] = None,
) -> Dict[str, object]:
    """Run one benchmark under every variant; returns metrics + overheads.

    The returned dict maps variant name -> RunMetrics, plus
    ``"overheads"`` -> {variant name -> percent over the baseline}.
    """
    base_variant = baseline or native_variant()
    asm = build_benchmark(name, target_instructions=target_instructions)
    bss = arena_bss_size(name)
    base = run_variant(asm, bss, base_variant, model)
    out: Dict[str, object] = {base_variant.name: base}
    overheads: Dict[str, float] = {}
    for variant in variants:
        metrics = run_variant(asm, bss, variant, model)
        out[variant.name] = metrics
        overheads[variant.name] = metrics.overhead_over(base)
    out["overheads"] = overheads
    return out


def measure_suite(
    names: Iterable[str],
    variants: Sequence[Variant],
    model: CostModel,
    target_instructions: int = 60_000,
) -> Dict[str, Dict[str, float]]:
    """Overhead table: benchmark -> variant -> percent over native."""
    table: Dict[str, Dict[str, float]] = {}
    for name in names:
        result = measure_benchmark(
            name, variants, model, target_instructions=target_instructions
        )
        table[name] = result["overheads"]
    return table


def geomean(overheads_pct: Iterable[float]) -> float:
    """Geometric mean of (1 + overhead) ratios, as a percentage."""
    values = list(overheads_pct)
    if not values:
        return 0.0
    log_sum = sum(math.log1p(v / 100.0) for v in values)
    return 100.0 * (math.exp(log_sum / len(values)) - 1.0)


def overhead_pct(base_cycles: float, variant_cycles: float) -> float:
    return 100.0 * (variant_cycles - base_cycles) / base_cycles

"""Rendering of experiment results: the paper's tables and figure series.

Figures are rendered as aligned ASCII tables (one row per benchmark, one
column per system) plus geometric-mean summary rows — the same rows/series
the paper's bar charts plot.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from .measure import geomean

__all__ = ["format_overhead_table", "format_geomean_table", "format_bars"]


def format_overhead_table(
    table: Mapping[str, Mapping[str, float]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
    unit: str = "%",
) -> str:
    """Render benchmark-by-system overheads with a geomean footer."""
    benchmarks = sorted(table)
    if columns is None:
        seen: List[str] = []
        for row in table.values():
            for key in row:
                if key not in seen:
                    seen.append(key)
        columns = seen
    name_width = max([len(b) for b in benchmarks] + [len("geomean"), 9])
    col_width = max([len(c) for c in columns] + [8])

    lines: List[str] = []
    if title:
        lines.append(title)
    header = " " * name_width + " | " + " | ".join(
        f"{c:>{col_width}}" for c in columns
    )
    lines.append(header)
    lines.append("-" * len(header))
    for bench in benchmarks:
        row = table[bench]
        cells = " | ".join(
            f"{row.get(c, float('nan')):>{col_width - 1}.1f}{unit}"
            for c in columns
        )
        lines.append(f"{bench:<{name_width}} | {cells}")
    lines.append("-" * len(header))
    means = {
        c: geomean([table[b][c] for b in benchmarks if c in table[b]])
        for c in columns
    }
    cells = " | ".join(
        f"{means[c]:>{col_width - 1}.1f}{unit}" for c in columns
    )
    lines.append(f"{'geomean':<{name_width}} | {cells}")
    return "\n".join(lines)


def format_geomean_table(
    table: Mapping[str, Mapping[str, float]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render just the geomean row per system (the paper's Table 4)."""
    benchmarks = sorted(table)
    if columns is None:
        columns = list(next(iter(table.values())))
    lines = []
    if title:
        lines.append(title)
    width = max(len(c) for c in columns) + 2
    for column in columns:
        mean = geomean([table[b][column] for b in benchmarks
                        if column in table[b]])
        lines.append(f"{column:<{width}} {mean:6.1f}%")
    return "\n".join(lines)


def format_bars(values: Mapping[str, float], width: int = 50,
                unit: str = "%", title: str = "") -> str:
    """A quick horizontal bar rendering for one series."""
    lines = []
    if title:
        lines.append(title)
    if not values:
        return title
    peak = max(abs(v) for v in values.values()) or 1.0
    name_width = max(len(k) for k in values)
    for key, value in values.items():
        bar = "#" * max(0, int(round(width * abs(value) / peak)))
        lines.append(f"{key:<{name_width}} {value:7.1f}{unit} {bar}")
    return "\n".join(lines)

"""Evaluation harness: variant runners, overhead math, and table rendering."""

from .measure import (
    RunMetrics,
    Variant,
    geomean,
    kvm_variant,
    lfi_variant,
    measure_benchmark,
    measure_suite,
    native_variant,
    overhead_pct,
    run_variant,
    wasm_variant,
)
from .microbench import (
    MicrobenchResult,
    measure_pipe_ns,
    measure_syscall_ns,
    measure_yield_ns,
    run_table5,
)
from .report import format_bars, format_geomean_table, format_overhead_table

__all__ = [
    "RunMetrics",
    "Variant",
    "geomean",
    "kvm_variant",
    "lfi_variant",
    "measure_benchmark",
    "measure_suite",
    "native_variant",
    "overhead_pct",
    "run_variant",
    "wasm_variant",
    "format_bars",
    "format_geomean_table",
    "format_overhead_table",
    "MicrobenchResult",
    "measure_pipe_ns",
    "measure_syscall_ns",
    "measure_yield_ns",
    "run_table5",
]

"""The §7.2 x86-64 rewriter: %gs-based guards plus CET landing pads.

Scheme (see the package docstring for the design decisions):

* memory access ``disp(%rN)``            ->  ``movl %eN, %r15d``
                                             ``op %gs:disp(%r15)``
* indexed access ``disp(%rN, %rM, s)``   ->  ``leal disp(%rN,%rM,s), %r15d``
                                             ``op %gs:(%r15)``
* indirect branch ``jmp *%rN``           ->  ``movl %eN, %r15d``
                                             ``addq %gs:0, %r15``
                                             ``jmp *%r15``
* every function label / indirect target gets an ``endbr64`` landing pad
  (Intel CET replaces NaCl's bundle alignment, §7.2);
* ``%rsp`` accesses with immediate displacements and push/pop are free;
  rsp writes are re-guarded (``movl %esp, %esp; addq %gs:0, %rsp``).
"""

from __future__ import annotations

from typing import List

from ..errors import RewriteError
from .isa import (
    MemRef,
    UNSAFE_OPS,
    X86Directive,
    X86Instruction,
    X86Label,
    X86Program,
    parse_x86,
    print_x86,
    reg32_of,
    reg64_of,
)

__all__ = ["X86RewriteError", "rewrite_x86", "SCRATCH", "BASE_SLOT"]

SCRATCH = "r15"
#: %gs:BASE_SLOT holds the numeric sandbox base (first table-page slot).
BASE_SLOT = 0

_RSP_SMALL = 1 << 10


class X86RewriteError(RewriteError):
    pass


def _ins(mnemonic: str, *ops) -> X86Instruction:
    return X86Instruction(mnemonic, tuple(ops))


def _guard_move(reg: str) -> X86Instruction:
    """``movl %eN, %r15d`` — the 32-bit move zero-extends into %r15."""
    return _ins("movl", f"%{reg32_of('%' + reg)}", "%r15d")


def _guard_lea(mem: MemRef) -> X86Instruction:
    """``leal disp(%base,%index,scale), %r15d`` — fold indexed addresses."""
    return _ins("leal", MemRef(disp=mem.disp, base=mem.base,
                               index=mem.index, scale=mem.scale), "%r15d")


def _rebase() -> X86Instruction:
    return _ins("addq", MemRef(disp=BASE_SLOT, segment="gs"), "%r15")


def _rsp_guard() -> List[X86Instruction]:
    return [
        _ins("movl", "%esp", "%esp"),  # zero-extend rsp in place
        _ins("addq", MemRef(disp=BASE_SLOT, segment="gs"), "%rsp"),
    ]


def rewrite_x86(text: str) -> str:
    """Rewrite AT&T x86-64 assembly per the §7.2 LFI port design."""
    program = parse_x86(text)
    out = X86Program()
    items = program.items
    for index, item in enumerate(items):
        if isinstance(item, X86Label):
            out.items.append(item)
            # CET landing pad on potential indirect targets: function-ish
            # labels (not local .L ones).
            if not item.name.startswith(".L"):
                out.items.append(_ins("endbr64"))
            continue
        if not isinstance(item, X86Instruction):
            out.items.append(item)
            continue
        _check_input(item)
        _rewrite_one(item, items, index, out)
    return print_x86(out)


def _check_input(inst: X86Instruction) -> None:
    if inst.mnemonic in UNSAFE_OPS:
        raise X86RewriteError(f"unsafe instruction in input: {inst}")
    for reg in inst.reg_operands():
        if reg == SCRATCH:
            raise X86RewriteError(f"input uses reserved %r15: {inst}")


def _rewrite_one(inst: X86Instruction, items, index, out: X86Program) -> None:
    mem = inst.mem

    # Indirect branches: guard + rebase + CET-checked jump.
    target = _indirect_target(inst)
    if target is not None:
        out.items.append(_guard_move(target))
        out.items.append(_rebase())
        out.items.append(_ins(inst.mnemonic, "*%r15"))
        return

    if mem is not None and inst.mnemonic != "lea" and not (
        inst.mnemonic.startswith("lea")
    ):
        if mem.segment == "gs":
            raise X86RewriteError(f"input uses %gs segment: {inst}")
        if mem.base == "rsp" or mem.base == "rbp":
            if mem.index is None:
                out.items.append(inst)  # rides the guard regions
                return
        if mem.base is None and mem.index is None:
            out.items.append(inst)  # absolute constant: linker's business
            return
        if mem.index is not None:
            out.items.append(_guard_lea(mem))
            new_mem = MemRef(disp=0, base=SCRATCH, segment="gs")
        else:
            out.items.append(_guard_move(mem.base))
            new_mem = MemRef(disp=mem.disp, base=SCRATCH, segment="gs")
        new_ops = tuple(
            new_mem if isinstance(op, MemRef) else op for op in inst.operands
        )
        out.items.append(X86Instruction(inst.mnemonic, new_ops))
        return

    # rsp writes (other than push/pop, which stay within guard reach).
    dest = inst.dest_reg()
    if dest == "rsp" and inst.mnemonic not in ("push", "pushq", "pop",
                                               "popq", "call", "ret"):
        small = (
            inst.mnemonic in ("addq", "subq", "add", "sub")
            and isinstance(inst.operands[0], int)
            and abs(inst.operands[0]) < _RSP_SMALL
            and _rsp_access_follows(items, index)
        )
        out.items.append(inst)
        if not small:
            out.items.extend(_rsp_guard())
        return

    out.items.append(inst)


def _indirect_target(inst: X86Instruction):
    if inst.mnemonic not in ("jmp", "jmpq", "call", "callq"):
        return None
    for op in inst.operands:
        if isinstance(op, str) and op.startswith("*%"):
            return reg64_of(op[1:])
    return None


def _rsp_access_follows(items, index) -> bool:
    for item in items[index + 1:]:
        if not isinstance(item, X86Instruction):
            return False
        mem = item.mem
        if mem is not None and mem.base == "rsp" and mem.index is None:
            return True
        if item.mnemonic in ("push", "pushq", "pop", "popq"):
            return True
        if item.dest_reg() == "rsp" or item.mnemonic.startswith("j") \
                or item.mnemonic in ("call", "ret", "callq", "retq"):
            return False
    return False

"""LFI for x86-64: a working implementation of the paper's §7.2 design.

The paper sketches the x86-64 port:

* reserve one register (``%r15``) and place the sandbox base in a segment
  register (``%gs``);
* rewrite memory operations as 32-bit offsets from ``%gs`` — the
  ``%gs:(%r15d)`` shape: a 32-bit move into ``%r15d`` zero-extends (the
  x86-64 rule), and the segment base supplies the sandbox base;
* rely on **Intel CET** indirect-branch tracking for control flow, which
  removes NaCl's 32-byte bundling/alignment constraints entirely: every
  indirect branch must land on an ``endbr64`` instruction.

Design choices documented for this study (the paper is a sketch):

* the runtime stores the numeric sandbox base at ``%gs:0`` (the first
  slot of the read-only table page), so indirect-branch guards can
  materialize absolute targets with ``movl %eN, %r15d; addq %gs:0, %r15``;
* ``%rsp``/``%rbp`` carry the ARM64 sp-style invariants: immediate
  displacements ride the guard regions, and rsp writes are re-guarded;
* the verifier checks CET discipline (``endbr64`` after labels that are
  indirect-branch targets) instead of alignment.

Like :mod:`repro.riscv`, this is validated at the assembly level (no
machine-code encoder; DESIGN.md §6).
"""

from .isa import X86Instruction, parse_x86, print_x86
from .rewriter import X86RewriteError, rewrite_x86
from .verifier import X86Violation, verify_x86

__all__ = [
    "X86Instruction",
    "parse_x86",
    "print_x86",
    "X86RewriteError",
    "rewrite_x86",
    "X86Violation",
    "verify_x86",
]

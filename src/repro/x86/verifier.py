"""Verifier for the x86-64 port: §5.2 rules under the §7.2 scheme.

Checks, at the instruction-stream level:

1. memory accesses use the ``%gs`` segment with a 32-bit-constructed
   ``%r15``, or are rsp/rbp-relative with immediate displacements;
2. ``%r15`` is only written by the zero-extending guard forms
   (``movl/leal ..., %r15d``) or the rebase ``addq %gs:0, %r15`` that
   must immediately follow one;
3. ``%rsp`` is only modified by push/pop/call/ret, small immediates with
   a following rsp access, or the rsp guard pair;
4. indirect branches go through ``*%r15`` after a guard+rebase, and
   (CET discipline) every non-local label is followed by ``endbr64``;
5. no unsafe instructions (syscall, wrgsbase, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .isa import (
    MemRef,
    UNSAFE_OPS,
    X86Instruction,
    X86Label,
    parse_x86,
)
from .rewriter import BASE_SLOT, SCRATCH, _RSP_SMALL

__all__ = ["X86Violation", "verify_x86"]

_MAX_DISPLACEMENT = 1 << 15


@dataclass(frozen=True)
class X86Violation:
    index: int
    reason: str

    def __str__(self) -> str:
        return f"instruction {self.index}: {self.reason}"


def _is_guard_write(inst: X86Instruction) -> bool:
    """``movl ..., %r15d`` or ``leal mem, %r15d`` (zero-extending)."""
    if inst.mnemonic not in ("movl", "leal"):
        return False
    last = inst.operands[-1] if inst.operands else None
    return last == "%r15d"


def _is_rebase(inst: X86Instruction) -> bool:
    if inst.mnemonic != "addq" or len(inst.operands) != 2:
        return False
    src, dst = inst.operands
    return (isinstance(src, MemRef) and src.segment == "gs"
            and src.disp == BASE_SLOT and src.base is None
            and dst == "%r15")


def _is_rsp_guard_pair(a: X86Instruction, b: Optional[X86Instruction]) -> bool:
    if a.mnemonic != "movl" or tuple(a.operands) != ("%esp", "%esp"):
        return False
    if b is None or b.mnemonic != "addq" or len(b.operands) != 2:
        return False
    src, dst = b.operands
    return (isinstance(src, MemRef) and src.segment == "gs"
            and src.disp == BASE_SLOT and dst == "%rsp")


def verify_x86(text: str) -> List[X86Violation]:
    program = parse_x86(text)
    items = program.items
    insts = [
        (i, item) for i, item in enumerate(items)
        if isinstance(item, X86Instruction)
    ]
    violations: List[X86Violation] = []

    def fail(index: int, reason: str) -> None:
        violations.append(X86Violation(index, reason))

    # CET discipline: non-local labels must be endbr64 landing pads.
    for position, item in enumerate(items):
        if isinstance(item, X86Label) and not item.name.startswith(".L"):
            nxt = next(
                (x for x in items[position + 1:]
                 if isinstance(x, X86Instruction)), None
            )
            if nxt is None or nxt.mnemonic != "endbr64":
                fail(position, f"label {item.name} lacks an endbr64 "
                               f"landing pad")

    for position, (index, inst) in enumerate(insts):
        prev = insts[position - 1][1] if position > 0 else None
        nxt = insts[position + 1][1] if position + 1 < len(insts) else None
        m = inst.mnemonic

        if m in UNSAFE_OPS:
            fail(index, f"unsafe instruction {m}")
            continue

        # Indirect branches.
        star = [op for op in inst.operands
                if isinstance(op, str) and op.startswith("*")]
        if star:
            if star[0] != "*%r15":
                fail(index, f"indirect branch through unguarded {star[0]}")
            elif prev is None or not _is_rebase(prev):
                fail(index, "indirect branch without a guard+rebase")
            continue

        # r15 writes.
        dest = inst.dest_reg()
        if dest == SCRATCH:
            if _is_guard_write(inst):
                pass
            elif _is_rebase(inst):
                if prev is None or not _is_guard_write(prev):
                    fail(index, "rebase without a preceding 32-bit guard")
            else:
                fail(index, f"%r15 modified by {m}")
            continue

        # rsp writes.
        if dest == "rsp" and m not in ("push", "pushq", "pop", "popq",
                                       "call", "ret", "callq", "retq"):
            if m == "movl" and tuple(inst.operands) == ("%esp", "%esp"):
                if nxt is None or not _is_rsp_guard_pair(inst, nxt):
                    fail(index, "dangling rsp zero-extension")
                continue
            if m == "addq" and isinstance(inst.operands[0], MemRef) \
                    and inst.operands[0].segment == "gs":
                if prev is None or not _is_rsp_guard_pair(prev, inst):
                    fail(index, "rsp rebase without zero-extension")
                continue
            small = (
                m in ("addq", "subq", "add", "sub")
                and isinstance(inst.operands[0], int)
                and abs(inst.operands[0]) < _RSP_SMALL
                and _rsp_ok_after(insts, position)
            )
            if not small and not (
                nxt is not None and nxt.mnemonic == "movl"
                and tuple(nxt.operands) == ("%esp", "%esp")
            ):
                fail(index, f"unsafe rsp modification: {inst}")
            continue

        # Memory operands.
        mem = inst.mem
        if mem is None or m.startswith("lea"):
            continue
        if mem.segment == "gs":
            if mem.base == SCRATCH and mem.index is None:
                if abs(mem.disp) >= _MAX_DISPLACEMENT:
                    fail(index, f"displacement {mem.disp} exceeds guard "
                                f"regions")
                elif prev is None or not _is_guard_write(prev):
                    fail(index, "gs access without a preceding guard")
            elif mem.base is None and mem.index is None:
                if not 0 <= mem.disp < _MAX_DISPLACEMENT:
                    fail(index, "gs-absolute access out of table range")
            else:
                fail(index, f"unsafe gs addressing: {mem}")
            continue
        if mem.base in ("rsp", "rbp") and mem.index is None:
            if abs(mem.disp) >= _MAX_DISPLACEMENT:
                fail(index, f"stack displacement {mem.disp} too large")
            continue
        if mem.base is None and mem.index is None:
            continue  # absolute (rodata) — covered by page permissions
        fail(index, f"unguarded memory operand {mem}")

    return violations


def _rsp_ok_after(insts, position) -> bool:
    for _, inst in insts[position + 1:]:
        mem = inst.mem
        if mem is not None and mem.base == "rsp" and mem.index is None:
            return True
        if inst.mnemonic in ("push", "pushq", "pop", "popq"):
            return True
        if inst.dest_reg() == "rsp" or inst.mnemonic.startswith("j") \
                or inst.mnemonic in ("call", "callq", "ret", "retq"):
            return False
    return False

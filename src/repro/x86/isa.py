"""A small AT&T-syntax x86-64 model and parser for the §7.2 port study."""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

__all__ = ["X86Instruction", "X86Label", "X86Directive", "X86Program",
           "MemRef", "parse_x86", "print_x86", "reg64_of", "LOADSTORE_OPS"]

#: 64-bit register names and their 32-bit views.
_R64 = ["rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
        "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15"]
_R32 = ["eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
        "r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d"]
_TO64 = {name: _R64[i] for i, name in enumerate(_R32)}
_TO64.update({name: name for name in _R64})
_TO32 = {name: _R32[i] for i, name in enumerate(_R64)}


def reg64_of(name: str) -> Optional[str]:
    """Canonical 64-bit name of a register operand (``%eax`` -> ``rax``)."""
    return _TO64.get(name.lstrip("%").lower())


def reg32_of(name: str) -> str:
    return _TO32[reg64_of(name)]


#: Mnemonics whose memory operand is read and/or written (others, like
#: lea, only compute addresses).
LOADSTORE_OPS = frozenset({
    "mov", "movq", "movl", "movb", "movw", "movzbl", "movzwl", "movslq",
    "add", "addq", "addl", "sub", "subq", "subl", "and", "andq", "or",
    "orq", "xor", "xorq", "cmp", "cmpq", "cmpl", "test", "imul", "imulq",
    "inc", "incq", "dec", "decq",
})

UNSAFE_OPS = frozenset({"syscall", "int", "sysenter", "wrmsr", "rdmsr",
                        "wrgsbase", "wrfsbase", "iret", "iretq"})


@dataclass(frozen=True)
class MemRef:
    """AT&T memory operand: ``seg:disp(base, index, scale)``."""

    disp: int = 0
    base: Optional[str] = None  # canonical 64-bit name
    index: Optional[str] = None
    scale: int = 1
    segment: Optional[str] = None  # "gs" for guarded accesses

    def __str__(self) -> str:
        seg = f"%{self.segment}:" if self.segment else ""
        disp = str(self.disp) if self.disp else ""
        if self.base is None and self.index is None:
            return f"{seg}{self.disp}"
        inner = f"%{self.base}" if self.base else ""
        if self.index:
            inner += f", %{self.index}"
            if self.scale != 1:
                inner += f", {self.scale}"
        return f"{seg}{disp}({inner})"


Operand = Union[str, int, MemRef]


@dataclass
class X86Instruction:
    """One AT&T instruction; operands keep source order (src, dst)."""

    mnemonic: str
    operands: Tuple[Operand, ...] = ()

    def __str__(self) -> str:
        if not self.operands:
            return self.mnemonic
        rendered = []
        for op in self.operands:
            if isinstance(op, MemRef):
                rendered.append(str(op))
            elif isinstance(op, int):
                rendered.append(f"${op}")
            else:
                rendered.append(op)
        return f"{self.mnemonic} " + ", ".join(rendered)

    @property
    def mem(self) -> Optional[MemRef]:
        for op in self.operands:
            if isinstance(op, MemRef):
                return op
        return None

    @property
    def is_indirect_branch(self) -> bool:
        return self.mnemonic in ("jmp", "call") and any(
            isinstance(op, str) and op.startswith("*") for op in self.operands
        ) or self.mnemonic in ("jmpq", "callq") and any(
            isinstance(op, str) and op.startswith("*") for op in self.operands
        )

    def dest_reg(self) -> Optional[str]:
        """Canonical 64-bit destination register (AT&T: last operand)."""
        if not self.operands:
            return None
        if self.mnemonic.startswith(("j", "call", "ret", "push", "cmp",
                                     "test")):
            if self.mnemonic == "pop" or self.mnemonic == "popq":
                pass
            else:
                return None
        last = self.operands[-1]
        if isinstance(last, str) and last.startswith("%"):
            return reg64_of(last)
        return None

    def reg_operands(self) -> List[str]:
        out = []
        for op in self.operands:
            if isinstance(op, str) and op.startswith("%"):
                reg = reg64_of(op)
                if reg:
                    out.append(reg)
            elif isinstance(op, str) and op.startswith("*%"):
                reg = reg64_of(op[1:])
                if reg:
                    out.append(reg)
            elif isinstance(op, MemRef):
                if op.base:
                    out.append(op.base)
                if op.index:
                    out.append(op.index)
        return out


@dataclass(frozen=True)
class X86Label:
    name: str

    def __str__(self) -> str:
        return f"{self.name}:"


@dataclass(frozen=True)
class X86Directive:
    text: str

    def __str__(self) -> str:
        return self.text


Item = Union[X86Instruction, X86Label, X86Directive]


@dataclass
class X86Program:
    items: List[Item] = field(default_factory=list)

    def instructions(self) -> List[X86Instruction]:
        return [i for i in self.items if isinstance(i, X86Instruction)]


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_MEM_RE = re.compile(
    r"^(?:%(\w+):)?(-?\d*)\(\s*(%\w+)?\s*(?:,\s*(%\w+)\s*(?:,\s*(\d+))?)?\)$"
)


def _parse_operand(text: str) -> Operand:
    text = text.strip()
    if text.startswith("$"):
        return int(text[1:], 0)
    match = _MEM_RE.match(text)
    if match:
        seg, disp, base, index, scale = match.groups()
        return MemRef(
            disp=int(disp) if disp else 0,
            base=reg64_of(base) if base else None,
            index=reg64_of(index) if index else None,
            scale=int(scale) if scale else 1,
            segment=seg,
        )
    # Bare gs-absolute (``%gs:0``).
    gs_abs = re.match(r"^%(\w+):(-?\d+)$", text)
    if gs_abs:
        return MemRef(disp=int(gs_abs.group(2)), segment=gs_abs.group(1))
    return text  # register (%rax), indirect target (*%rax), or label


def _split_operands(text: str) -> List[str]:
    parts, depth, current = [], 0, []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def parse_x86(text: str) -> X86Program:
    """Parse AT&T-syntax x86-64 assembly."""
    program = X86Program()
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        while line:
            match = _LABEL_RE.match(line)
            if match:
                program.items.append(X86Label(match.group(1)))
                line = line[match.end():].strip()
                continue
            if line.startswith("."):
                program.items.append(X86Directive(line))
                break
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            operands = tuple(
                _parse_operand(p) for p in _split_operands(parts[1])
            ) if len(parts) > 1 else ()
            program.items.append(X86Instruction(mnemonic, operands))
            break
    return program


def print_x86(program: X86Program) -> str:
    lines = []
    for item in program.items:
        if isinstance(item, X86Label):
            lines.append(str(item))
        else:
            lines.append(f"\t{item}")
    return "\n".join(lines) + "\n"

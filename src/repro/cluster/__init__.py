"""repro.cluster — sharded multi-worker execution with warm spawn.

The paper's runtime scales to ~64Ki sandboxes in one address space (§1/§3)
but a single interpreter thread caps throughput; this package shards
sandboxes across N OS worker processes (DESIGN.md §11):

* :class:`Cluster` — the batching front-end: ``submit`` routes jobs to the
  least-loaded worker, ``drain`` collects results deterministically
  (ordered by submission id, byte-identical however many workers ran);
* each worker owns a private :class:`~repro.runtime.Runtime` with the
  superblock engine and executes its jobs sequentially;
* :class:`ImageCache` / :class:`WarmPool` — verify an image once, then
  warm-spawn clones by COW snapshot restore instead of cold load+verify;
* crashed workers are restarted by a
  :class:`~repro.robustness.WorkerSupervisor` (bounded-jitter exponential
  backoff) and their in-flight jobs re-dispatched from their latest
  checkpoint, so a mid-batch worker death redoes at most one checkpoint
  interval of work and loses no jobs;
* :meth:`Cluster.migrate` live-migrates a running job between workers at
  a checkpoint boundary, and :meth:`Cluster.resize` grows or drains the
  pool elastically — results stay byte-identical throughout
  (DESIGN.md §12).
"""

from ..errors import ClusterError
from .cluster import Cluster, DEFAULT_CHECKPOINT_INTERVAL
from .jobs import Job, JobResult, normalize_metrics
from .snapshot import ImageCache, WarmPool
from .worker import derive_worker_seed, execute_job

__all__ = [
    "Cluster",
    "ClusterError",
    "DEFAULT_CHECKPOINT_INTERVAL",
    "Job",
    "JobResult",
    "ImageCache",
    "WarmPool",
    "derive_worker_seed",
    "execute_job",
    "normalize_metrics",
]

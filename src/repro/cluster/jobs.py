"""Job and result types for the sharded cluster runtime (DESIGN.md §11).

A job is a sandbox execution request — ELF bytes plus stdin and an
instruction budget.  A result separates two kinds of fields:

* **deterministic** — exit code, stdout/stderr, fault kinds, and the
  pid-normalized metrics snapshot.  These depend only on the job itself,
  never on which worker (or slot) ran it, so the same batch on 1 worker
  and on 4 workers produces byte-identical results;
* **diagnostics** (``diag``) — worker id, generation, warm-hit flag,
  cycle counts.  These describe *how* the job was placed and are excluded
  from the determinism contract.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["Job", "JobResult", "normalize_metrics"]

_SANDBOX_KEY = re.compile(r"^sandbox\[(\d+)\]")


@dataclass(frozen=True)
class Job:
    """One sandbox execution request, picklable across the worker boundary."""

    job_id: int
    program: bytes
    stdin: bytes = b""
    max_instructions: Optional[int] = None

    def payload(self, resume: Optional[bytes] = None) -> dict:
        """The wire dict a worker consumes.

        ``resume`` carries serialized checkpoint bytes when the job is
        being re-dispatched mid-execution (crash recovery, migration):
        the worker restores that state instead of spawning afresh.
        """
        out = {
            "job_id": self.job_id,
            "program": self.program,
            "stdin": self.stdin,
            "max_instructions": self.max_instructions,
        }
        if resume is not None:
            out["resume"] = resume
        return out


@dataclass
class JobResult:
    """The outcome of one job; see the module docstring for the split."""

    job_id: int
    exit_code: int
    stdout: str
    stderr: str
    metrics: str
    faults: Tuple[str, ...] = ()
    diag: Dict[str, object] = field(default_factory=dict)

    def deterministic_key(self) -> tuple:
        """Everything that must match between 1-worker and N-worker runs."""
        return (self.job_id, self.exit_code, self.stdout, self.stderr,
                self.metrics, self.faults)

    @classmethod
    def from_payload(cls, payload: dict) -> "JobResult":
        return cls(
            job_id=payload["job_id"],
            exit_code=payload["exit_code"],
            stdout=payload["stdout"],
            stderr=payload["stderr"],
            metrics=payload["metrics"],
            faults=tuple(payload["faults"]),
            diag=dict(payload.get("diag", {})),
        )


def normalize_metrics(text: str, root_pid: int) -> str:
    """Rebase ``sandbox[pid]`` metric keys to be relative to the job root.

    Worker-local pids are allocation-order artifacts; the job's root
    sandbox becomes ``sandbox[0]`` and its forked descendants keep their
    (contiguous) offsets, so per-job snapshots compare byte-for-byte
    across worker placements.
    """
    lines = []
    for line in text.splitlines():
        match = _SANDBOX_KEY.match(line)
        if match is not None:
            pid = int(match.group(1))
            line = f"sandbox[{pid - root_pid}]" + line[match.end():]
        lines.append(line)
    return "\n".join(lines) + "\n" if lines else text

"""The sharded cluster front-end: submit, route, drain (DESIGN.md §11).

The :class:`Cluster` partitions a job batch across N OS worker processes
(`multiprocessing` fork context), each running a private superblock
runtime.  Three rules make it safe and deterministic:

* **routing** — ``submit`` sends a job to the worker with the fewest
  outstanding jobs (ties to the lowest worker id).  Routing affects only
  placement diagnostics, never results;
* **determinism** — ``drain`` orders results by submission id, and every
  result's deterministic fields (exit code, stdout/stderr, fault kinds,
  pid-normalized metrics) are placement-independent, so 1-worker and
  N-worker runs of the same batch are byte-identical;
* **fault tolerance** — the front-end retains every job payload *and its
  latest checkpoint* until the result arrives.  A dead worker is
  reported to a :class:`~repro.robustness.WorkerSupervisor`; under an
  on-failure policy it is relaunched after a bounded-jitter exponential
  backoff and its in-flight jobs re-dispatched — resuming from their
  last checkpoint, so at most one checkpoint interval of work is redone.
  Duplicate results (a worker that died *after* reporting) are
  deduplicated by job id — executions are deterministic, so duplicates
  are identical.

On top of checkpoint retention sit live migration (:meth:`migrate` asks
a worker to yield a running job at its next checkpoint boundary and
re-dispatches it elsewhere) and elastic rebalancing (:meth:`resize`
grows the pool, or drains victims by yield-and-bounce).  Both preserve
the byte-identity contract (DESIGN.md §12).
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection as _mpconn
import time
from typing import Dict, List, Optional, Set

from ..engine import EngineConfig
from ..errors import ClusterError
from ..obs.metrics import MetricsHub, merge_snapshots
from ..robustness.supervisor import ON_FAILURE, RestartPolicy, WorkerSupervisor
from .jobs import Job, JobResult
from .worker import DEFAULT_JOB_BUDGET, worker_main

__all__ = ["Cluster", "DEFAULT_CHECKPOINT_INTERVAL"]

#: Instructions between periodic job checkpoints.  Also the bound on work
#: redone after a worker crash.  Deliberately larger than typical smoke
#: jobs: short jobs never pause, so chunking is free for them.
DEFAULT_CHECKPOINT_INTERVAL = 250_000

#: Restore latency histogram bounds, in wall-clock seconds.
RESTORE_LATENCY_BUCKETS = (0.0005, 0.002, 0.01, 0.05, 0.25, 1.0)


class _WorkerHandle:
    """Front-end bookkeeping for one worker process (one per shard)."""

    __slots__ = ("worker_id", "generation", "process", "job_queue",
                 "ctrl_queue", "result_conn", "outstanding", "completed",
                 "dead", "draining")

    def __init__(self, worker_id: int, generation: int, process, job_queue,
                 ctrl_queue, result_conn):
        self.worker_id = worker_id
        self.generation = generation
        self.process = process
        self.job_queue = job_queue
        self.ctrl_queue = ctrl_queue
        #: Read end of this worker's private result pipe (the worker holds
        #: the only write end, so worker death reads as a clean EOF).
        self.result_conn = result_conn
        self.outstanding: Set[int] = set()
        self.completed = 0
        #: Crashed and not restarted; excluded from routing and rechecks.
        self.dead = False
        #: Being drained for scale-down; accepts no new jobs.
        self.draining = False


class Cluster:
    """Batching front-end over N sharded runtime workers."""

    def __init__(self, workers: int = 2, *,
                 engine=None,
                 timeslice: int = 50_000,
                 warm_spawn: bool = True,
                 budget: int = DEFAULT_JOB_BUDGET,
                 restart_policy: RestartPolicy = ON_FAILURE,
                 chaos: Optional[Dict[int, int]] = None,
                 chaos_faults: Optional[Dict[int, int]] = None,
                 checkpoint_interval: Optional[int]
                 = DEFAULT_CHECKPOINT_INTERVAL,
                 seed: int = 0,
                 poll_interval: float = 0.05):
        if workers < 1:
            raise ValueError("a cluster needs at least one worker")
        # The config dict crosses the fork boundary; ship the EngineConfig
        # as its dict form so workers rebuild it without pickling classes.
        self._config = {
            "engine": EngineConfig.coerce(engine).to_dict(),
            "timeslice": timeslice,
            "warm_spawn": warm_spawn,
            "budget": budget,
            "chaos": dict(chaos) if chaos else {},
            "chaos_faults": dict(chaos_faults) if chaos_faults else {},
            "checkpoint_interval": checkpoint_interval,
            "seed": seed,
        }
        self._ctx = multiprocessing.get_context("fork")
        self._poll_interval = poll_interval
        #: Read ends of dead/retired workers, polled until EOF so results
        #: they reported just before dying are not lost.
        self._zombie_conns: List = []
        self.supervisor = WorkerSupervisor(restart_policy, seed=seed)
        self._jobs: Dict[int, Job] = {}
        self._results: Dict[int, JobResult] = {}
        #: job id -> latest checkpoint bytes (cleared when the result lands).
        self._checkpoints: Dict[int, bytes] = {}
        #: job id -> requested migration target worker id.
        self._migrations: Dict[int, int] = {}
        #: Deferred relaunches: [{handle, worker_id, generation, due, jobs}].
        self._pending_restarts: List[dict] = []
        #: Host-level ops metrics (restarts, checkpoints, restore latency).
        self.ops = MetricsHub()
        self._next_job_id = 0
        self._closed = False
        self._workers: List[_WorkerHandle] = [
            self._launch(worker_id, generation=0)
            for worker_id in range(workers)
        ]

    # -- lifecycle -----------------------------------------------------------

    def _launch(self, worker_id: int, generation: int) -> _WorkerHandle:
        job_queue = self._ctx.Queue()
        ctrl_queue = self._ctx.Queue()
        # One private result pipe per worker.  A shared results queue is a
        # single point of failure: a worker dying mid-put (chaos kill, OOM)
        # leaves the shared write lock held or a partial frame in the
        # shared pipe, wedging every other worker's reporting forever.
        # With a single writer per pipe and the parent's write end closed
        # right after fork, a worker crash is always observable as EOF.
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=worker_main,
            args=(worker_id, generation, self._config, job_queue,
                  send_conn, ctrl_queue),
            daemon=True,
            name=f"repro-cluster-w{worker_id}g{generation}",
        )
        process.start()
        send_conn.close()
        return _WorkerHandle(worker_id, generation, process, job_queue,
                             ctrl_queue, recv_conn)

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for handle in self._workers:
            if handle.process.is_alive():
                try:
                    handle.job_queue.put(None)
                except (OSError, ValueError):
                    pass
        for handle in self._workers:
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
        for handle in self._workers:
            if handle.result_conn is not None:
                handle.result_conn.close()
                handle.result_conn = None
        for conn in self._zombie_conns:
            conn.close()
        self._zombie_conns.clear()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission ----------------------------------------------------------

    def submit(self, program: bytes, stdin: bytes = b"",
               max_instructions: Optional[int] = None) -> int:
        """Queue one job; returns its submission id."""
        if self._closed:
            raise ClusterError("cluster is closed")
        job = Job(self._next_job_id, bytes(program), bytes(stdin),
                  max_instructions)
        self._next_job_id += 1
        self._jobs[job.job_id] = job
        self._dispatch(job)
        return job.job_id

    def _routable(self) -> List[_WorkerHandle]:
        return [h for h in self._workers
                if not h.dead and not h.draining]

    def _dispatch(self, job: Job,
                  target: Optional[_WorkerHandle] = None) -> None:
        if target is None:
            candidates = self._routable()
            if not candidates:
                if self._pending_restarts:
                    # Every worker is between generations; park the job
                    # until a relaunch comes due.
                    self._pending_restarts[0]["jobs"].append(job.job_id)
                    return
                raise ClusterError("no live workers left to dispatch to")
            target = min(candidates,
                         key=lambda h: (len(h.outstanding), h.worker_id))
        target.outstanding.add(job.job_id)
        target.job_queue.put(
            job.payload(resume=self._checkpoints.get(job.job_id)))

    # -- live migration / elastic resize -------------------------------------

    def migrate(self, job_id: int, worker_id: int) -> None:
        """Move a running job to ``worker_id`` at its next checkpoint.

        Asynchronous: the current owner is asked to yield the job — it
        stops at the next checkpoint-interval boundary and hands back a
        fresh checkpoint, which :meth:`drain` re-dispatches to the
        requested target.  A job that finishes before reaching a boundary
        simply completes where it is (the migration dissolves).  The
        result is byte-identical either way (DESIGN.md §12).
        """
        if job_id in self._results or job_id not in self._jobs:
            raise ClusterError(f"job {job_id} is not in flight")
        target = next((h for h in self._routable()
                       if h.worker_id == worker_id), None)
        if target is None:
            raise ClusterError(f"worker-{worker_id} is not accepting jobs")
        owner = next((h for h in self._workers
                      if job_id in h.outstanding), None)
        if owner is None:
            raise ClusterError(f"job {job_id} is not assigned to any worker")
        if owner is target:
            return
        self._migrations[job_id] = worker_id
        owner.ctrl_queue.put({"op": "yield", "job_id": job_id})

    def resize(self, workers: int) -> None:
        """Scale the worker pool to ``workers`` (elastic rebalancing).

        Growing launches fresh workers (new ids above the highest ever
        used).  Shrinking drains the highest-id workers: each yields its
        running job at the next checkpoint boundary, bounces its queued
        jobs back unexecuted, and exits; :meth:`drain` re-dispatches all
        of it to the survivors, resuming from checkpoints.  Results stay
        byte-identical across any resize schedule.
        """
        if workers < 1:
            raise ValueError("a cluster needs at least one worker")
        if self._closed:
            raise ClusterError("cluster is closed")
        active = self._routable()
        if workers > len(active):
            next_id = 1 + max(h.worker_id for h in self._workers)
            for offset in range(workers - len(active)):
                self._workers.append(self._launch(next_id + offset,
                                                  generation=0))
        elif workers < len(active):
            victims = sorted(active, key=lambda h: -h.worker_id)
            for handle in victims[:len(active) - workers]:
                handle.draining = True
                handle.ctrl_queue.put({"op": "yield_all"})
                handle.job_queue.put(None)

    # -- collection ----------------------------------------------------------

    def drain(self) -> List[JobResult]:
        """Block until every submitted job has a result; ordered by id.

        Survives worker crashes: dead workers are restarted per the
        supervisor's policy (after its backoff) and their in-flight jobs
        re-dispatched, resuming from their last checkpoint.  Handles the
        checkpoint/yield/bounce traffic that crash recovery, migration,
        and resize generate.  Raises :class:`ClusterError` once a crashed
        worker's restart budget is exhausted with jobs still assigned.
        """
        pending = set(self._jobs) - set(self._results)
        while pending:
            self._check_workers()
            self._launch_due_restarts()
            self._reap_drained()
            for payload in self._poll_results():
                self._absorb(payload, pending)
        return [self._results[job_id] for job_id in sorted(self._results)]

    def _poll_results(self) -> List[dict]:
        """Collect every payload ready on any worker's result pipe.

        Dead workers' pipes stay in the poll set (``_zombie_conns``) until
        EOF, so anything they reported just before crashing is recovered
        before their jobs are re-dispatched from checkpoints.
        """
        conns = [h.result_conn for h in self._workers
                 if h.result_conn is not None]
        conns.extend(self._zombie_conns)
        if not conns:
            time.sleep(self._poll_interval)
            return []
        payloads = []
        for conn in _mpconn.wait(conns, timeout=self._poll_interval):
            try:
                payloads.append(conn.recv())
            except (EOFError, OSError):
                self._retire_conn(conn)
        return payloads

    def _retire_conn(self, conn) -> None:
        """Close a result pipe that hit EOF and drop it from the poll set."""
        if conn in self._zombie_conns:
            self._zombie_conns.remove(conn)
        for handle in self._workers:
            if handle.result_conn is conn:
                handle.result_conn = None
        conn.close()

    def _absorb(self, payload: dict, pending: Set[int]) -> None:
        kind = payload.get("kind", "result")
        job_id = payload["job_id"]
        if job_id in self._results:
            return  # duplicate after a crash re-dispatch
        if kind == "checkpoint":
            self._checkpoints[job_id] = payload["checkpoint"]
            self.ops.host_counter("job.checkpoints").inc()
            return
        if kind == "yield":
            self._checkpoints[job_id] = payload["checkpoint"]
            self.ops.host_counter("job.checkpoints").inc()
            self.ops.host_counter("job.yields").inc()
            self._forget_assignment(job_id)
            self._redispatch_to_target(job_id)
            return
        if kind == "bounce":
            self._forget_assignment(job_id)
            self._dispatch(self._jobs[job_id])
            return
        self._forget_assignment(job_id, completed=True)
        self._migrations.pop(job_id, None)
        self._checkpoints.pop(job_id, None)
        result = JobResult.from_payload(payload)
        restore_s = result.diag.get("restore_s")
        if restore_s is not None:
            self.ops.host_counter("job.restores").inc()
            self.ops.host_histogram(
                "job.restore_latency_s",
                RESTORE_LATENCY_BUCKETS).observe(restore_s)
        self._results[job_id] = result
        pending.discard(job_id)

    def _forget_assignment(self, job_id: int,
                           completed: bool = False) -> None:
        for handle in self._workers:
            if job_id in handle.outstanding:
                handle.outstanding.discard(job_id)
                if completed:
                    handle.completed += 1

    def _redispatch_to_target(self, job_id: int) -> None:
        target_id = self._migrations.pop(job_id, None)
        target = None
        if target_id is not None:
            target = next((h for h in self._routable()
                           if h.worker_id == target_id), None)
            if target is not None:
                self.ops.host_counter("job.migrations").inc()
        self._dispatch(self._jobs[job_id], target=target)

    def _check_workers(self) -> None:
        for handle in self._workers:
            if handle.dead or handle.draining or handle.process.is_alive():
                continue
            in_flight = sorted(handle.outstanding)
            if handle.result_conn is not None:
                # Keep reading the dead worker's pipe until EOF; results
                # it sent before crashing are still buffered there.
                self._zombie_conns.append(handle.result_conn)
                handle.result_conn = None
            restart = self.supervisor.worker_crashed(
                handle.worker_id, handle.process.pid or 0,
                handle.process.exitcode, len(in_flight))
            if not restart:
                handle.dead = True
                if in_flight:
                    raise ClusterError(
                        f"worker-{handle.worker_id} died "
                        f"(exitcode={handle.process.exitcode}) with "
                        f"{len(in_flight)} job(s) in flight and no "
                        f"restarts left")
                continue
            handle.dead = True
            handle.outstanding.clear()
            self._pending_restarts.append({
                "handle": handle,
                "worker_id": handle.worker_id,
                "generation": handle.generation + 1,
                "due": time.monotonic()
                + self.supervisor.next_backoff(handle.worker_id),
                "jobs": in_flight,
                "completed": handle.completed,
            })

    def _launch_due_restarts(self) -> None:
        now = time.monotonic()
        for entry in [e for e in self._pending_restarts
                      if e["due"] <= now]:
            self._pending_restarts.remove(entry)
            replacement = self._launch(entry["worker_id"],
                                       entry["generation"])
            replacement.completed = entry["completed"]
            index = self._workers.index(entry["handle"])
            self._workers[index] = replacement
            self.ops.host_counter("worker.restarts").inc()
            # Re-dispatch everything the dead worker still owed, through
            # normal routing (any worker may pick the job up); each job
            # resumes from its latest retained checkpoint, so at most one
            # checkpoint interval of its execution is repeated.
            for job_id in entry["jobs"]:
                if job_id not in self._results:
                    self._dispatch(self._jobs[job_id])

    def _reap_drained(self) -> None:
        for handle in [h for h in self._workers if h.draining]:
            if handle.process.is_alive():
                continue
            if handle.result_conn is not None:
                # Bounces/yields it sent on the way out are still buffered.
                self._zombie_conns.append(handle.result_conn)
                handle.result_conn = None
            if handle.outstanding:
                # Drained worker died before yielding everything (e.g.
                # chaos); its jobs resume from checkpoints elsewhere.
                for job_id in sorted(handle.outstanding):
                    if job_id not in self._results:
                        self._dispatch(self._jobs[job_id])
                handle.outstanding.clear()
            self._workers.remove(handle)

    # -- reporting -----------------------------------------------------------

    def metrics_report(self) -> str:
        """One merged, deterministic metrics report for the whole batch.

        Byte-identical for the same batch regardless of worker count,
        crashes, migrations, or resizes: per-job snapshots are already
        placement-independent, and they are merged in submission order
        under ``job[<id>]`` prefixes.
        """
        parts = [(f"job[{job_id}]", self._results[job_id].metrics)
                 for job_id in sorted(self._results)]
        return f"cluster.jobs {len(parts)}\n" + merge_snapshots(parts)

    def ops_report(self) -> str:
        """Host-level operations metrics (worker-count dependent).

        Restart/checkpoint/restore counters plus the restore-latency
        histogram, exported through the same deterministic text format as
        sandbox metrics — but, unlike :meth:`metrics_report`, these
        describe *this run's* placement history, so they are diagnostics,
        not part of the determinism contract.
        """
        return merge_snapshots([("ops", self.ops.snapshot())])

    def fleet_report(self) -> dict:
        """Placement and health diagnostics (worker-count dependent)."""
        warm_hits = sum(1 for r in self._results.values()
                        if r.diag.get("warm"))
        return {
            "workers": len(self._workers),
            "jobs": len(self._results),
            "completed_per_worker": {
                handle.worker_id: handle.completed
                for handle in self._workers
            },
            "warm_hits": warm_hits,
            "warm_misses": len(self._results) - warm_hits,
            "restarts": self.supervisor.total_restarts,
            "checkpoints": self.ops.host_counter("job.checkpoints").value,
            "migrations": self.ops.host_counter("job.migrations").value,
            "restores": self.ops.host_counter("job.restores").value,
            "incidents": self.supervisor.incident_log(),
        }

"""The sharded cluster front-end: submit, route, drain (DESIGN.md §11).

The :class:`Cluster` partitions a job batch across N OS worker processes
(`multiprocessing` fork context), each running a private superblock
runtime.  Three rules make it safe and deterministic:

* **routing** — ``submit`` sends a job to the worker with the fewest
  outstanding jobs (ties to the lowest worker id).  Routing affects only
  placement diagnostics, never results;
* **determinism** — ``drain`` orders results by submission id, and every
  result's deterministic fields (exit code, stdout/stderr, fault kinds,
  pid-normalized metrics) are placement-independent, so 1-worker and
  N-worker runs of the same batch are byte-identical;
* **fault tolerance** — the front-end retains every job payload until its
  result arrives.  A dead worker is reported to a
  :class:`~repro.robustness.WorkerSupervisor`; under an on-failure policy
  it is relaunched (fresh queue, next generation) and its in-flight jobs
  are re-dispatched through normal routing.  Duplicate results (a worker
  that died *after* reporting) are deduplicated by job id — executions
  are deterministic, so duplicates are identical.
"""

from __future__ import annotations

import multiprocessing
import queue as _queue
from typing import Dict, List, Optional, Set

from ..errors import ClusterError
from ..obs.metrics import merge_snapshots
from ..robustness.supervisor import ON_FAILURE, RestartPolicy, WorkerSupervisor
from .jobs import Job, JobResult
from .worker import DEFAULT_JOB_BUDGET, worker_main

__all__ = ["Cluster"]


class _WorkerHandle:
    """Front-end bookkeeping for one worker process (one per shard)."""

    __slots__ = ("worker_id", "generation", "process", "job_queue",
                 "outstanding", "completed", "dead")

    def __init__(self, worker_id: int, generation: int, process, job_queue):
        self.worker_id = worker_id
        self.generation = generation
        self.process = process
        self.job_queue = job_queue
        self.outstanding: Set[int] = set()
        self.completed = 0
        #: Crashed and not restarted; excluded from routing and rechecks.
        self.dead = False


class Cluster:
    """Batching front-end over N sharded runtime workers."""

    def __init__(self, workers: int = 2, *,
                 engine: str = "superblock",
                 timeslice: int = 50_000,
                 warm_spawn: bool = True,
                 budget: int = DEFAULT_JOB_BUDGET,
                 restart_policy: RestartPolicy = ON_FAILURE,
                 chaos: Optional[Dict[int, int]] = None,
                 poll_interval: float = 0.05):
        if workers < 1:
            raise ValueError("a cluster needs at least one worker")
        self._config = {
            "engine": engine,
            "timeslice": timeslice,
            "warm_spawn": warm_spawn,
            "budget": budget,
            "chaos": dict(chaos) if chaos else {},
        }
        self._ctx = multiprocessing.get_context("fork")
        self._result_queue = self._ctx.Queue()
        self._poll_interval = poll_interval
        self.supervisor = WorkerSupervisor(restart_policy)
        self._jobs: Dict[int, Job] = {}
        self._results: Dict[int, JobResult] = {}
        self._next_job_id = 0
        self._closed = False
        self._workers: List[_WorkerHandle] = [
            self._launch(worker_id, generation=0)
            for worker_id in range(workers)
        ]

    # -- lifecycle -----------------------------------------------------------

    def _launch(self, worker_id: int, generation: int) -> _WorkerHandle:
        job_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_main,
            args=(worker_id, generation, self._config, job_queue,
                  self._result_queue),
            daemon=True,
            name=f"repro-cluster-w{worker_id}g{generation}",
        )
        process.start()
        return _WorkerHandle(worker_id, generation, process, job_queue)

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for handle in self._workers:
            if handle.process.is_alive():
                try:
                    handle.job_queue.put(None)
                except (OSError, ValueError):
                    pass
        for handle in self._workers:
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission ----------------------------------------------------------

    def submit(self, program: bytes, stdin: bytes = b"",
               max_instructions: Optional[int] = None) -> int:
        """Queue one job; returns its submission id."""
        if self._closed:
            raise ClusterError("cluster is closed")
        job = Job(self._next_job_id, bytes(program), bytes(stdin),
                  max_instructions)
        self._next_job_id += 1
        self._jobs[job.job_id] = job
        self._dispatch(job)
        return job.job_id

    def _dispatch(self, job: Job) -> None:
        alive = [h for h in self._workers if not h.dead]
        if not alive:
            raise ClusterError("no live workers left to dispatch to")
        handle = min(alive,
                     key=lambda h: (len(h.outstanding), h.worker_id))
        handle.outstanding.add(job.job_id)
        handle.job_queue.put(job.payload())

    # -- collection ----------------------------------------------------------

    def drain(self) -> List[JobResult]:
        """Block until every submitted job has a result; ordered by id.

        Survives worker crashes: dead workers are restarted per the
        supervisor's policy and their in-flight jobs re-dispatched.  Raises
        :class:`ClusterError` once a crashed worker's restart budget is
        exhausted with jobs still assigned to it.
        """
        pending = set(self._jobs) - set(self._results)
        while pending:
            try:
                payload = self._result_queue.get(
                    timeout=self._poll_interval)
            except _queue.Empty:
                self._check_workers()
                continue
            job_id = payload["job_id"]
            if job_id in self._results:
                continue  # duplicate after a crash re-dispatch
            for handle in self._workers:
                if job_id in handle.outstanding:
                    handle.outstanding.discard(job_id)
                    handle.completed += 1
            self._results[job_id] = JobResult.from_payload(payload)
            pending.discard(job_id)
        return [self._results[job_id] for job_id in sorted(self._results)]

    def _check_workers(self) -> None:
        for index, handle in enumerate(self._workers):
            if handle.dead or handle.process.is_alive():
                continue
            in_flight = sorted(handle.outstanding)
            restart = self.supervisor.worker_crashed(
                handle.worker_id, handle.process.pid or 0,
                handle.process.exitcode, len(in_flight))
            if not restart:
                handle.dead = True
                if in_flight:
                    raise ClusterError(
                        f"worker-{handle.worker_id} died "
                        f"(exitcode={handle.process.exitcode}) with "
                        f"{len(in_flight)} job(s) in flight and no "
                        f"restarts left")
                continue
            replacement = self._launch(handle.worker_id,
                                       handle.generation + 1)
            replacement.completed = handle.completed
            self._workers[index] = replacement
            # Re-dispatch everything the dead worker still owed, through
            # normal routing (any worker may pick the job up).
            for job_id in in_flight:
                self._dispatch(self._jobs[job_id])

    # -- reporting -----------------------------------------------------------

    def metrics_report(self) -> str:
        """One merged, deterministic metrics report for the whole batch.

        Byte-identical for the same batch regardless of worker count:
        per-job snapshots are already placement-independent, and they are
        merged in submission order under ``job[<id>]`` prefixes.
        """
        parts = [(f"job[{job_id}]", self._results[job_id].metrics)
                 for job_id in sorted(self._results)]
        return f"cluster.jobs {len(parts)}\n" + merge_snapshots(parts)

    def fleet_report(self) -> dict:
        """Placement and health diagnostics (worker-count dependent)."""
        warm_hits = sum(1 for r in self._results.values()
                        if r.diag.get("warm"))
        return {
            "workers": len(self._workers),
            "jobs": len(self._results),
            "completed_per_worker": {
                handle.worker_id: handle.completed
                for handle in self._workers
            },
            "warm_hits": warm_hits,
            "warm_misses": len(self._results) - warm_hits,
            "restarts": self.supervisor.total_restarts,
            "incidents": self.supervisor.incident_log(),
        }

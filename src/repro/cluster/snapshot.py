"""Verify-once image cache and snapshot warm-spawn pool (DESIGN.md §11).

"Isolation Without Taxation" identifies instantiation cost — parse,
verify, populate pages — as the tax that dominates sandboxing at scale.
Both halves of that tax are one-time per *image*, not per *sandbox*:

* :class:`ImageCache` keys verified :class:`~repro.elf.format.ElfImage`
  objects by content hash, so each distinct binary is parsed and verified
  exactly once per worker however many sandboxes run it;
* :class:`WarmPool` keeps one loaded-but-never-run *template* process per
  image and spawns sandboxes as COW snapshot restores
  (:meth:`~repro.runtime.Runtime.spawn_clone`) — no page population, no
  verification, just region aliasing plus a register rebase.

A warm spawn is observably identical to a cold ``Runtime.spawn`` of the
same ELF (tests/test_cluster.py asserts byte-identical execution).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional

from ..core.verifier import Verifier, VerifierPolicy
from ..elf.format import ElfImage, read_elf
from ..runtime.process import Process
from ..runtime.runtime import Runtime

__all__ = ["ImageCache", "WarmPool"]


def image_key(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class ImageCache:
    """Content-hash cache of parsed + verified ELF images."""

    def __init__(self, policy: Optional[VerifierPolicy] = None):
        self.policy = policy
        self._images: Dict[str, ElfImage] = {}
        self.hits = 0
        self.misses = 0

    def get(self, data: bytes) -> ElfImage:
        """The verified image for ``data``, verifying on first sight only."""
        key = image_key(data)
        image = self._images.get(key)
        if image is None:
            image = read_elf(bytes(data))
            Verifier(self.policy).verify_elf(image).raise_if_failed()
            self._images[key] = image
            self.misses += 1
        else:
            self.hits += 1
        return image

    def __len__(self) -> int:
        return len(self._images)


class WarmPool:
    """Per-runtime template processes enabling snapshot warm-spawn."""

    def __init__(self, runtime: Runtime,
                 cache: Optional[ImageCache] = None):
        self.runtime = runtime
        self.cache = cache if cache is not None else ImageCache()
        self._templates: Dict[str, Process] = {}
        self.clones = 0
        self.restores = 0

    def has_template(self, data: bytes) -> bool:
        return image_key(data) in self._templates

    def template_slots(self) -> set:
        """Slot bases the pool owns (exempt from per-job reclamation)."""
        return {t.layout.base for t in self._templates.values()}

    def spawn(self, data: bytes) -> Process:
        """Spawn a sandbox for ``data``, warm when a template exists.

        The first spawn of an image pays parse + verify + load once to
        build the template; every spawn (including the first) is then a
        clone, so the per-job process state is identical either way.
        """
        key = image_key(data)
        template = self._templates.get(key)
        if template is None:
            image = self.cache.get(data)  # verified here, once
            template = self.runtime.load_template(image, verify=False)
            self._templates[key] = template
        self.clones += 1
        return self.runtime.spawn_clone(template)

    def restore(self, ckpt, hub=None) -> Process:
        """Restore a mid-execution checkpoint into this pool's runtime.

        The third instantiation path next to cold spawn and warm clone:
        no verification (the checkpointed pages were verified when first
        loaded, and a checkpoint is trusted exactly as far as the worker
        that took it).  Counted separately from ``clones``.
        """
        from ..checkpoint import restore_job

        self.restores += 1
        return restore_job(self.runtime, ckpt, hub)

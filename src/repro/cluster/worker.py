"""Cluster worker: one OS process, one Runtime, jobs run sequentially.

Each worker owns a private :class:`~repro.runtime.Runtime` (superblock
engine, no cost model) plus a :class:`~repro.cluster.snapshot.WarmPool`,
and executes the jobs it is handed one at a time.  Determinism contract
(DESIGN.md §11): with ``model=None`` the machine's cycle counter is the
instruction counter, there are no TLB/cache side channels, and each job
runs in a fresh slot with fresh per-job observers — so a job's
deterministic result fields depend only on the job, never on the worker,
the slot, or what ran before it.

Execution is *chunked* on checkpoint-interval boundaries (DESIGN.md §12):
``execute_job`` runs to the next multiple of the interval in
job-consumed-instruction space, captures an incremental checkpoint, polls
the control channel, and continues.  Because the boundaries are aligned
in consumed instructions — not in this particular run's progress — a job
restored from a checkpoint hits the *same* subsequent boundaries as the
uninterrupted run, which keeps crash recovery and migration
byte-identical.
"""

from __future__ import annotations

import hashlib
import os
import queue as _queue
import random
import time
from typing import Callable, Optional

from ..checkpoint import Checkpoint, CheckpointSession, restore_job
from ..engine import EngineConfig
from ..errors import Deadlock, RuntimeError_
from ..memory.layout import SandboxLayout
from ..obs.metrics import MetricsHub
from ..obs.tracer import Tracer
from ..robustness.faultinject import FaultInjector
from ..runtime.process import ProcessState
from ..runtime.runtime import ResourceQuota, Runtime
from .jobs import normalize_metrics
from .snapshot import WarmPool

__all__ = ["execute_job", "execute_job_steps", "worker_main",
           "derive_worker_seed", "DEFAULT_JOB_BUDGET", "CHAOS_EXIT"]

#: Hard per-job safety net so a runaway job cannot hang the worker.
DEFAULT_JOB_BUDGET = 20_000_000

#: Exit status a chaos-crashed worker dies with (fault injection).
CHAOS_EXIT = 17


def derive_worker_seed(cluster_seed: int, worker_id: int,
                       generation: int) -> int:
    """Deterministic per-worker-generation seed from the cluster seed.

    Hash-derived so neighbouring worker ids do not get correlated PRNG
    streams, and a restarted worker (next generation) draws a fresh but
    replayable stream.
    """
    digest = hashlib.sha256(
        f"{cluster_seed}:{worker_id}:{generation}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def execute_job_steps(runtime: Runtime, pool: Optional[WarmPool],
                      job: dict, budget: int = DEFAULT_JOB_BUDGET,
                      checkpoint_interval: Optional[int] = None,
                      record_trace: bool = False):
    """Generator core of one job execution; the driver owns the pacing.

    Both consumers of a job execution drive this generator: the cluster
    worker (through :func:`execute_job`) and the serving gateway's lanes,
    which interleave many lanes in virtual time and hot-apply per-tenant
    policy between chunks.  Protocol:

    1. the first ``next()`` yields ``{"kind": "begin", "pid",
       "slot_base", "executed"}`` before any guest instruction runs
       (``executed`` is the consumed count carried by a resume
       checkpoint, 0 for a fresh spawn);
    2. each ``send(cmd)`` runs to the next checkpoint-interval boundary
       and yields ``{"kind": "chunk", "executed", "pid", "slot_base",
       "checkpoint"}``.  ``cmd`` (a dict, or None) applies *before* the
       chunk: ``{"quota": {...}}`` replaces the root process's
       :class:`ResourceQuota` without touching the guest (policy
       hot-reload; an empty dict clears the quota), ``{"stop": True}``
       stops at the current boundary instead of running on;
    3. the generator returns (``StopIteration.value``) the final payload
       dict — ``kind == "result"`` normally, ``kind == "yield"``
       (carrying the boundary checkpoint) after a stop.

    ``job["resume"]`` holds serialized :class:`Checkpoint` bytes when the
    front-end is re-dispatching a previously checkpointed job: the worker
    restores it — original pids, COW pages, counters — and continues from
    the captured boundary instead of starting over.  ``job["quota"]``
    carries :class:`ResourceQuota` kwargs applied at spawn (the per-tenant
    budget of the serving gateway).

    Boundaries are aligned in *job-consumed* instructions, so a resumed
    run pauses at the same points as an uninterrupted one regardless of
    where it picked up (the byte-identity contract, DESIGN.md §12).

    The runtime is left clean for the next job however the job ends:
    every process the job created is terminated and reaped, and every
    slot the job allocated (including those of already-reaped fork
    children) is unmapped with its translations swept.  Template slots
    owned by the pool persist — they are the point of warm spawn.
    Abandoning the generator (``close()``) skips the cleanup: that models
    a worker crash, where the whole runtime is discarded.
    """
    slot_start = runtime._next_slot
    pid_start = runtime._next_pid
    hub = MetricsHub()
    consumed = 0
    consumed_cycles = 0.0
    restored_faults: list = []
    restore_s = None
    warm_hit = False
    resume = job.get("resume")
    if resume is not None:
        ckpt = Checkpoint.from_bytes(resume)
        wall0 = time.perf_counter()
        proc = restore_job(runtime, ckpt, hub)
        restore_s = time.perf_counter() - wall0
        # The restored job reuses its original absolute pids, which may
        # lie below this worker's high-water mark.
        pid_start = min(pid_start, ckpt.root_pid)
        consumed = ckpt.consumed_instructions
        consumed_cycles = ckpt.consumed_cycles
        restored_faults = list(ckpt.fault_kinds)
    else:
        program = job["program"]
        if pool is not None:
            warm_hit = pool.has_template(program)
            proc = pool.spawn(program)
        else:
            proc = runtime.spawn(program)
        if job.get("stdin"):
            proc.fds[0].buffer.extend(job["stdin"])
        if job.get("quota"):
            runtime.set_quota(proc, ResourceQuota(**job["quota"]))
        elif job.get("max_instructions") is not None:
            runtime.set_quota(
                proc,
                ResourceQuota(max_instructions=job["max_instructions"]))

    # Attach observers only now: template builds (warm spawn) and restore
    # plumbing must not register phantom sandboxes in the job's metrics.
    tracer = Tracer(record=record_trace)
    tracer.attach(runtime)
    hub.attach(tracer)  # no runtime: no step probe, no stepping
    #                     fallback, superblocks stay
    session = (CheckpointSession(runtime, proc, hub)
               if checkpoint_interval else None)
    fault_cursor = len(runtime.faults)
    instret0 = runtime.machine.instret
    cycles0 = runtime.machine.cycles
    status = "ok"
    yielded = None
    cmd = (yield {"kind": "begin", "pid": proc.pid,
                  "slot_base": proc.layout.base,
                  "executed": consumed}) or {}
    try:
        while True:
            if "quota" in cmd:
                quota = cmd["quota"]
                runtime.set_quota(
                    proc, ResourceQuota(**quota) if quota else None)
            executed = consumed + (runtime.machine.instret - instret0)
            if checkpoint_interval:
                boundary = ((executed // checkpoint_interval) + 1) \
                    * checkpoint_interval
                chunk_end = min(boundary, budget)
            else:
                chunk_end = budget
            done = runtime.run_bounded(proc, chunk_end - executed)
            executed = consumed + (runtime.machine.instret - instret0)
            if done:
                break
            if executed > budget:
                raise RuntimeError_("job instruction budget exceeded")
            if session is not None:
                kinds = restored_faults + [
                    f.kind for f in runtime.faults[fault_cursor:]]
                ckpt = session.capture(
                    consumed_instructions=executed,
                    consumed_cycles=(consumed_cycles
                                     + (runtime.machine.cycles - cycles0)),
                    fault_kinds=kinds,
                )
                cmd = (yield {"kind": "chunk", "executed": executed,
                              "pid": proc.pid,
                              "slot_base": proc.layout.base,
                              "checkpoint": ckpt}) or {}
                if cmd.get("stop"):
                    yielded = ckpt
                    break
    except Deadlock:
        status = "deadlock"
        _kill_live(runtime, 128 + 6)
    except RuntimeError_:
        status = "budget"
        _kill_live(runtime, 128 + 9)
    finally:
        hub.detach()
        tracer.detach()

    if yielded is not None:
        payload = {
            "kind": "yield",
            "job_id": job["job_id"],
            "checkpoint": yielded.to_bytes(),
        }
        _cleanup(runtime, pool, slot_start, pid_start)
        return payload

    stderr = proc.fds[2].text() if 2 in proc.fds else ""
    payload = {
        "kind": "result",
        "job_id": job["job_id"],
        "exit_code": proc.exit_code or 0,
        "stdout": runtime.stdout_of(proc),
        "stderr": stderr,
        "metrics": normalize_metrics(hub.snapshot(), proc.pid),
        "faults": restored_faults + [
            f.kind for f in runtime.faults[fault_cursor:]],
        "diag": {
            "warm": warm_hit,
            "status": status,
            "instructions": consumed + (runtime.machine.instret - instret0),
            "cycles": consumed_cycles + (runtime.machine.cycles - cycles0),
            "checkpoints": session.seq if session is not None else 0,
        },
    }
    if record_trace:
        payload["trace"] = list(tracer.events)
    if restore_s is not None:
        payload["diag"]["restore_s"] = restore_s
        payload["diag"]["resumed_at"] = consumed
    _cleanup(runtime, pool, slot_start, pid_start)
    return payload


def execute_job(runtime: Runtime, pool: Optional[WarmPool],
                job: dict, budget: int = DEFAULT_JOB_BUDGET,
                checkpoint_interval: Optional[int] = None,
                checkpoint_sink: Optional[Callable] = None,
                control_poll: Optional[Callable] = None) -> dict:
    """Run one job (to completion or a yield); returns the payload dict.

    The cluster worker's driver around :func:`execute_job_steps`: at each
    checkpoint boundary it consults ``control_poll(job_id)`` — a True
    return means the front-end wants this job back (migration/drain), so
    the job stops and the payload is a ``{"kind": "yield"}`` carrying the
    boundary checkpoint — and otherwise hands the fresh checkpoint to
    ``checkpoint_sink``.
    """
    steps = execute_job_steps(runtime, pool, job, budget=budget,
                              checkpoint_interval=checkpoint_interval)
    cmd = None
    try:
        while True:
            info = steps.send(cmd)
            cmd = {}
            if info["kind"] == "begin":
                continue
            if control_poll is not None and control_poll(job["job_id"]):
                cmd = {"stop": True}
            elif checkpoint_sink is not None:
                checkpoint_sink(info["checkpoint"])
    except StopIteration as stop:
        return stop.value


def _kill_live(runtime: Runtime, code: int) -> None:
    for pid in sorted(runtime.processes):
        p = runtime.processes[pid]
        if p.state != ProcessState.ZOMBIE:
            runtime.terminate(p, code)


def _cleanup(runtime: Runtime, pool: Optional[WarmPool],
             slot_start: int, pid_start: int) -> None:
    """Tear down everything the finished job left behind, deterministically.

    Slots are swept by allocation watermark, not by surviving processes —
    a fork child reaped by ``wait`` is gone from the process table but its
    slot is still mapped.  Pool-owned template slots are exempt.
    """
    _kill_live(runtime, 128 + 9)
    for pid in sorted(runtime.processes):
        runtime.reap(runtime.processes[pid])
    keep = pool.template_slots() if pool is not None else set()
    for slot in range(slot_start, runtime._next_slot):
        layout = SandboxLayout.for_slot(slot)
        if layout.base in keep:
            continue
        runtime.reclaim_slot(layout)
    for pid in range(pid_start, runtime._next_pid):
        runtime._mmap_cursors.pop(pid, None)
        runtime.quotas.pop(pid, None)
        runtime._pending_call.pop(pid, None)


def worker_main(worker_id: int, generation: int, config: dict,
                job_queue, result_conn, ctrl_queue=None) -> None:
    """Worker process entry point: pull jobs until the shutdown sentinel.

    ``result_conn`` is this worker's *private* pipe to the front-end.
    Results are sent synchronously from the worker's main thread — there
    is no feeder thread and no lock shared with any other process, so a
    crash (even an ``os._exit`` mid-job) can never wedge another worker's
    reporting, and the front-end sees a clean EOF once the sole writer is
    gone.  (A shared ``multiprocessing.Queue`` here deadlocked the whole
    cluster whenever a chaos kill landed while the dying worker's feeder
    thread held the shared write lock.)

    Fault injection, all seeded from ``config["seed"]`` via
    :func:`derive_worker_seed` so chaos runs replay exactly:

    * ``config["chaos"]`` maps this worker id to N: on its first
      generation the worker dies with ``os._exit`` during its (N+1)th job
      — at a seeded scheduling slice, or (for jobs too short to get
      there) right after execution but *before* reporting the result.
      Either way the crash window is one the front-end must survive;
    * ``config["chaos_faults"]`` maps this worker id to a count of
      sandbox-level fault injections (:class:`FaultInjector`) armed
      against whatever this worker runs.

    ``ctrl_queue`` carries yield requests from the front-end: ``{"op":
    "yield", "job_id": n}`` asks for one job back at its next checkpoint
    boundary (migration); ``{"op": "yield_all"}`` puts the worker into
    draining mode — the current job yields and every queued job bounces
    back unexecuted (elastic scale-down).
    """
    engine = config.get("engine")
    if isinstance(engine, dict):
        engine = EngineConfig.from_dict(engine)
    runtime = Runtime(model=None,
                      engine=engine,
                      timeslice=config.get("timeslice", 50_000))
    pool = WarmPool(runtime) if config.get("warm_spawn", True) else None
    budget = config.get("budget", DEFAULT_JOB_BUDGET)
    interval = config.get("checkpoint_interval")
    seed = derive_worker_seed(config.get("seed", 0), worker_id, generation)
    rng = random.Random(seed)
    chaos_faults = (config.get("chaos_faults") or {}).get(worker_id)
    if chaos_faults:
        injector = FaultInjector(runtime, seed=seed)
        injector.arm(injector.plan(chaos_faults))
    crash_after = None
    if generation == 0:
        crash_after = (config.get("chaos") or {}).get(worker_id)

    state = {"draining": False, "yields": set()}

    def drain_ctrl() -> None:
        if ctrl_queue is None:
            return
        while True:
            try:
                msg = ctrl_queue.get_nowait()
            except _queue.Empty:
                return
            if msg.get("op") == "yield":
                state["yields"].add(msg["job_id"])
            elif msg.get("op") == "yield_all":
                state["draining"] = True

    def control_poll(job_id: int) -> bool:
        drain_ctrl()
        return state["draining"] or job_id in state["yields"]

    taken = 0
    while True:
        job = job_queue.get()
        if job is None:
            return
        drain_ctrl()
        if state["draining"]:
            result_conn.send({"kind": "bounce", "job_id": job["job_id"]})
            continue
        taken += 1
        fatal = crash_after is not None and taken > crash_after
        if fatal:
            # Seeded mid-job crash: blow up at the top of a scheduling
            # slice somewhere inside this job's execution.
            fuse = [rng.randint(3, 40)]

            def blow(machine, fuel, _fuse=fuse):
                _fuse[0] -= 1
                if _fuse[0] <= 0:
                    os._exit(CHAOS_EXIT)

            runtime.machine.run_hooks.add(blow)

        def sink(ckpt, _job_id=job["job_id"]):
            result_conn.send({"kind": "checkpoint", "job_id": _job_id,
                              "checkpoint": ckpt.to_bytes(),
                              "seq": ckpt.stats.get("seq", 0)})

        payload = execute_job(
            runtime, pool, job, budget=budget,
            checkpoint_interval=interval,
            checkpoint_sink=sink,
            control_poll=control_poll if ctrl_queue is not None else None,
        )
        if fatal:
            # The job was too short to reach the slice fuse: die in the
            # same window the pre-chunking chaos used — after execution,
            # before the result reaches the front-end.
            os._exit(CHAOS_EXIT)
        if payload.get("kind") == "yield":
            state["yields"].discard(job["job_id"])
        else:
            # Diagnostic only — placement is intentionally outside the
            # deterministic result key (it varies with worker count).
            payload["diag"]["worker"] = worker_id
        result_conn.send(payload)

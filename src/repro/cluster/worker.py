"""Cluster worker: one OS process, one Runtime, jobs run sequentially.

Each worker owns a private :class:`~repro.runtime.Runtime` (superblock
engine, no cost model) plus a :class:`~repro.cluster.snapshot.WarmPool`,
and executes the jobs it is handed one at a time.  Determinism contract
(DESIGN.md §11): with ``model=None`` the machine's cycle counter is the
instruction counter, there are no TLB/cache side channels, and each job
runs in a fresh slot with fresh per-job observers — so a job's
deterministic result fields depend only on the job, never on the worker,
the slot, or what ran before it.
"""

from __future__ import annotations

import os
from typing import Optional

from ..errors import Deadlock, RuntimeError_
from ..memory.layout import SandboxLayout
from ..obs.metrics import MetricsHub
from ..obs.tracer import Tracer
from ..runtime.process import ProcessState
from ..runtime.runtime import ResourceQuota, Runtime
from .jobs import normalize_metrics
from .snapshot import WarmPool

__all__ = ["execute_job", "worker_main"]

#: Hard per-job safety net so a runaway job cannot hang the worker.
DEFAULT_JOB_BUDGET = 20_000_000

#: Exit status a chaos-crashed worker dies with (fault injection).
CHAOS_EXIT = 17


def execute_job(runtime: Runtime, pool: Optional[WarmPool],
                job: dict, budget: int = DEFAULT_JOB_BUDGET) -> dict:
    """Run one job to completion; returns the result payload dict.

    The runtime is left clean for the next job: every process the job
    created is terminated and reaped, and every slot the job allocated
    (including those of already-reaped fork children) is unmapped with its
    translations swept.  Template slots owned by the pool persist — they
    are the point of warm spawn.
    """
    slot_start = runtime._next_slot
    pid_start = runtime._next_pid
    program = job["program"]
    if pool is not None:
        warm_hit = pool.has_template(program)
        proc = pool.spawn(program)
    else:
        warm_hit = False
        proc = runtime.spawn(program)
    if job.get("stdin"):
        proc.fds[0].buffer.extend(job["stdin"])
    if job.get("max_instructions") is not None:
        runtime.set_quota(
            proc, ResourceQuota(max_instructions=job["max_instructions"]))

    tracer = Tracer(record=False)
    tracer.attach(runtime)
    hub = MetricsHub().attach(tracer)  # no runtime: no step probe, no
    #                                    stepping fallback, superblocks stay
    fault_cursor = len(runtime.faults)
    instret0 = runtime.machine.instret
    cycles0 = runtime.machine.cycles
    status = "ok"
    try:
        runtime.run_until_exit(proc, max_instructions=budget)
    except Deadlock:
        status = "deadlock"
        _kill_live(runtime, 128 + 6)
    except RuntimeError_:
        status = "budget"
        _kill_live(runtime, 128 + 9)
    finally:
        hub.detach()
        tracer.detach()

    stderr = proc.fds[2].text() if 2 in proc.fds else ""
    payload = {
        "job_id": job["job_id"],
        "exit_code": proc.exit_code or 0,
        "stdout": runtime.stdout_of(proc),
        "stderr": stderr,
        "metrics": normalize_metrics(hub.snapshot(), proc.pid),
        "faults": [f.kind for f in runtime.faults[fault_cursor:]],
        "diag": {
            "warm": warm_hit,
            "status": status,
            "instructions": runtime.machine.instret - instret0,
            "cycles": runtime.machine.cycles - cycles0,
        },
    }
    _cleanup(runtime, pool, slot_start, pid_start)
    return payload


def _kill_live(runtime: Runtime, code: int) -> None:
    for pid in sorted(runtime.processes):
        p = runtime.processes[pid]
        if p.state != ProcessState.ZOMBIE:
            runtime.terminate(p, code)


def _cleanup(runtime: Runtime, pool: Optional[WarmPool],
             slot_start: int, pid_start: int) -> None:
    """Tear down everything the finished job left behind, deterministically.

    Slots are swept by allocation watermark, not by surviving processes —
    a fork child reaped by ``wait`` is gone from the process table but its
    slot is still mapped.  Pool-owned template slots are exempt.
    """
    _kill_live(runtime, 128 + 9)
    for pid in sorted(runtime.processes):
        runtime.reap(runtime.processes[pid])
    keep = pool.template_slots() if pool is not None else set()
    for slot in range(slot_start, runtime._next_slot):
        layout = SandboxLayout.for_slot(slot)
        if layout.base in keep:
            continue
        runtime.reclaim_slot(layout)
    for pid in range(pid_start, runtime._next_pid):
        runtime._mmap_cursors.pop(pid, None)
        runtime.quotas.pop(pid, None)


def worker_main(worker_id: int, generation: int, config: dict,
                job_queue, result_queue) -> None:
    """Worker process entry point: pull jobs until the shutdown sentinel.

    Fault injection: when ``config["chaos"]`` maps this worker id to N and
    this is the worker's first generation, the process dies with
    ``os._exit`` on taking its (N+1)th job — before producing a result —
    which is exactly the crash window the front-end must survive.
    """
    runtime = Runtime(model=None,
                      engine=config.get("engine", "superblock"),
                      timeslice=config.get("timeslice", 50_000))
    pool = WarmPool(runtime) if config.get("warm_spawn", True) else None
    budget = config.get("budget", DEFAULT_JOB_BUDGET)
    crash_after = None
    if generation == 0:
        crash_after = (config.get("chaos") or {}).get(worker_id)
    taken = 0
    while True:
        job = job_queue.get()
        if job is None:
            return
        taken += 1
        if crash_after is not None and taken > crash_after:
            os._exit(CHAOS_EXIT)
        payload = execute_job(runtime, pool, job, budget=budget)
        # Diagnostic only — placement is intentionally outside the
        # deterministic result key (it varies with worker count).
        payload["diag"]["worker"] = worker_id
        result_queue.put(payload)

"""Per-machine cycle cost models (the paper's timing substitute).

Real silicon is unavailable, so overhead percentages are computed from a
*dataflow cost model*: an idealized out-of-order core with a sustained issue
bandwidth and per-class result latencies.  Executed instruction ``i`` issues
at ``t_issue += issue_cost(i)``; it starts when its source registers are
ready, finishes ``latency(i)`` later, and the program's cycle count is the
maximum completion time.  This captures exactly the effects the paper
attributes guard costs to (§4):

* the O0 ``add xA, xB, wC, uxtw`` guard has 2-cycle latency and half
  throughput and sits on the address-generation critical path;
* the zero-instruction guard ``[x21, wN, uxtw]`` has the *same* cost as the
  unguarded addressing mode;
* Table-3 forms that need one extra ``add`` pay ~1 cycle of latency.

Model parameters follow the sources the paper cites: the Apple Firestorm
microarchitecture notes (dougallj) for the M1 and the Neoverse-N1/V1
software optimization guides for the GCP T2A (Ampere Altra).  Absolute
cycles are approximate; all experiment outputs are *ratios* between two runs
on the same model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["CostModel", "APPLE_M1", "GCP_T2A", "MACHINE_MODELS"]

# Instruction cost classes assigned by the emulator.
ALU = "alu"
ALU_EXT = "alu_ext"  # add/sub with an extended-register operand (the guard)
MOVE = "move"
MUL = "mul"
DIV = "div"
LOAD = "load"
STORE = "store"
LOAD_PAIR = "load_pair"
STORE_PAIR = "store_pair"
ATOMIC = "atomic"
BRANCH = "branch"
BRANCH_COND = "branch_cond"
BRANCH_INDIRECT = "branch_indirect"
FP = "fp"
FP_DIV = "fp_div"
SIMD = "simd"
NOP = "nop"
SYSTEM = "system"


@dataclass(frozen=True)
class CostModel:
    """Issue costs, latencies, and memory hierarchy for one machine."""

    name: str
    freq_ghz: float
    issue: Dict[str, float]
    latency: Dict[str, float]
    #: Cycles for a page-table walk on a TLB miss.
    tlb_walk_cycles: float
    #: Number of last-level TLB entries modeled.
    tlb_entries: int
    #: Extra fetch-bubble cost charged per *taken* branch.
    taken_branch_cost: float
    #: Cache hierarchy: line size and per-level capacity (in lines) and
    #: miss penalties.  Memory-bound code (lbm, mcf) spends its cycles
    #: here, which is what hides guard overhead on real hardware.
    cache_line: int = 64
    l1_lines: int = 2048
    l1_ways: int = 8
    l1_miss_cycles: float = 14.0  # L2 hit latency on top of L1
    l2_lines: int = 65536
    l2_ways: int = 8
    l2_miss_cycles: float = 90.0  # DRAM on top of L2
    #: Bandwidth occupancy: issue-side cycles consumed per miss (a line
    #: fill occupies the memory pipes even when latency is overlapped).
    l1_miss_issue: float = 2.0
    l2_miss_issue: float = 8.0
    #: Fraction of the TLB walk that occupies the pipeline even when its
    #: latency overlaps (the hardware page walker shares the load pipes).
    #: This is the mechanism that makes nested paging (KVM, Figure 5)
    #: visible on TLB-miss-heavy workloads.
    tlb_walk_issue_fraction: float = 0.15

    def issue_cost(self, klass: str) -> float:
        return self.issue.get(klass, self.issue[ALU])

    def result_latency(self, klass: str) -> float:
        return self.latency.get(klass, self.latency[ALU])

    def ns_per_cycle(self) -> float:
        return 1.0 / self.freq_ghz


def _model(name, freq, width, lat, *, tlb_walk_cycles, tlb_entries,
           taken_branch_cost, **cache_kwargs):
    base = 1.0 / width
    issue = {
        ALU: base, MOVE: base * 0.5, NOP: base * 0.25,
        ALU_EXT: base * 2,  # half throughput (paper §4)
        MUL: base * 2, DIV: 6.0,
        LOAD: base * 2, STORE: base * 2,
        LOAD_PAIR: base * 3, STORE_PAIR: base * 3,
        ATOMIC: 4.0,
        BRANCH: base, BRANCH_COND: base, BRANCH_INDIRECT: base * 2,
        FP: base * 2, FP_DIV: 8.0, SIMD: base * 2,
        SYSTEM: 2.0,
    }
    return CostModel(
        name=name, freq_ghz=freq, issue=issue, latency=lat,
        tlb_walk_cycles=tlb_walk_cycles, tlb_entries=tlb_entries,
        taken_branch_cost=taken_branch_cost, **cache_kwargs,
    )


#: Apple M1 Firestorm: 3.2GHz, very wide (sustained ~4 IPC on SPEC-like
#: code), 4-cycle loads, 2-cycle extended-register add, 128KiB L1D and a
#: large shared L2.  TLB entries are the *effective* capacity of the
#: two-level DTLB (160-entry L1 + shared L2 TLB).
APPLE_M1 = _model(
    "apple-m1", 3.2, 4.0,
    {
        ALU: 1.0, ALU_EXT: 2.0, MOVE: 0.5, MUL: 3.0, DIV: 8.0,
        LOAD: 4.0, LOAD_PAIR: 4.0, STORE: 1.0, STORE_PAIR: 1.0,
        ATOMIC: 8.0, BRANCH: 1.0, BRANCH_COND: 1.0, BRANCH_INDIRECT: 1.0,
        FP: 4.0, FP_DIV: 10.0, SIMD: 3.0, NOP: 0.0, SYSTEM: 2.0,
    },
    tlb_walk_cycles=28.0, tlb_entries=512, taken_branch_cost=0.6,
    l1_lines=2048, l1_ways=8, l1_miss_cycles=14.0,
    l2_lines=49152, l2_ways=8, l2_miss_cycles=95.0,
)

#: GCP T2A (Ampere Altra, Neoverse N1): 3.0GHz, narrower (sustained ~3 IPC),
#: same 2-cycle extended-register add behaviour, 64KiB L1D, 1MiB L2.
GCP_T2A = _model(
    "gcp-t2a", 3.0, 3.0,
    {
        ALU: 1.0, ALU_EXT: 2.0, MOVE: 0.5, MUL: 3.0, DIV: 10.0,
        LOAD: 4.0, LOAD_PAIR: 5.0, STORE: 1.0, STORE_PAIR: 1.0,
        ATOMIC: 10.0, BRANCH: 1.0, BRANCH_COND: 1.0, BRANCH_INDIRECT: 1.0,
        FP: 4.0, FP_DIV: 12.0, SIMD: 4.0, NOP: 0.0, SYSTEM: 2.0,
    },
    tlb_walk_cycles=36.0, tlb_entries=384, taken_branch_cost=0.8,
    l1_lines=1024, l1_ways=4, l1_miss_cycles=11.0,
    l2_lines=16384, l2_ways=8, l2_miss_cycles=110.0,
)

MACHINE_MODELS = {model.name: model for model in (APPLE_M1, GCP_T2A)}

"""A set-associative TLB model.

Used by the cycle accounting to charge page-walk latency on misses; the
KVM baseline (paper §6.4, Figure 5) multiplies the walk cost because nested
page tables double the translation depth.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["Tlb"]


class Tlb:
    """LRU set-associative TLB over fixed-size pages."""

    def __init__(self, entries: int = 1024, ways: int = 4,
                 page_size: int = 16 * 1024):
        if entries % ways:
            raise ValueError("entries must be divisible by ways")
        self.sets = entries // ways
        self.ways = ways
        self.page_size = page_size
        self._sets: List[List[int]] = [[] for _ in range(self.sets)]
        self.hits = 0
        self.misses = 0
        # Shift/mask addressing when the geometry is a power of two
        # (always true for the built-in models); falls back to div/mod.
        self._shift = (page_size.bit_length() - 1
                       if page_size & (page_size - 1) == 0 else None)
        self._mask = (self.sets - 1
                      if self.sets & (self.sets - 1) == 0 else None)

    def lookup(self, address: int) -> bool:
        """True on hit; on miss the translation is filled (LRU evict)."""
        shift = self._shift
        page = (address >> shift if shift is not None
                else address // self.page_size)
        mask = self._mask
        entries = self._sets[page & mask if mask is not None
                             else page % self.sets]
        if entries:
            # MRU shortcut: re-touching the newest entry is a no-op move.
            if entries[-1] == page:
                self.hits += 1
                return True
            if page in entries:
                entries.remove(page)
                entries.append(page)
                self.hits += 1
                return True
        self.misses += 1
        if len(entries) >= self.ways:
            entries.pop(0)
        entries.append(page)
        return False

    def probe(self, address: int) -> bool:
        """Non-mutating residency check (no fill, no LRU movement).

        Used by the speculation leakage observer to ask "would this
        address hit right now?" without perturbing the gauge state that
        the architectural run depends on.
        """
        shift = self._shift
        page = (address >> shift if shift is not None
                else address // self.page_size)
        mask = self._mask
        entries = self._sets[page & mask if mask is not None
                             else page % self.sets]
        return page in entries

    def flush(self) -> None:
        self._sets = [[] for _ in range(self.sets)]

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

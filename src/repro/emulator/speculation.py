"""Bounded-speculation execution mode (DESIGN.md §16).

Wraps the stepping interpreter with a seeded branch predictor — a
pattern-history table (PHT) of 2-bit saturating counters for conditional
branches and a circular return-stack buffer (RSB) for ``ret`` — and, on
every mispredict, executes a *bounded transient window* down the wrong
path before rolling the machine back to its architectural state.

The contract with the rest of the emulator:

* **Architectural transparency.** After every window the CPU state,
  memory, ``instret``, cycle accounting, and the TLB/L1/L2 gauges are
  restored exactly; a speculative run is byte-identical to a
  non-speculative stepping run on everything the runtime can observe
  (enforced by :func:`repro.fuzz.differential.check_speculation`).
* **Fuel counts architectural retirements only.** Transient instructions
  are free, exactly as preemption budgets ignore squashed work on real
  hardware.
* **Predictors learn architecturally.** PHT counters update from
  resolved outcomes; the RSB pushes on ``bl``/``blr`` and pops on
  ``ret``.  Nothing executed inside a window touches predictor state and
  windows never nest — in-window branches resolve directly.
* **Transient side effects are observer-only.**  Every wrong-path memory
  access is recorded in the machine's
  :class:`~repro.obs.speculation.SpeculationLog` (address, size,
  store-ness, gauge residency), the channel the Spectre gallery measures.

What squashes a window early: fences (``dsb``/``isb``), trapping
instructions (``svc``/``brk``/``hlt``), any fault or undecodable fetch,
reaching a registered host entry, or exhausting the configured window.

Not modelled: a BTB (unconditional ``b``/``br``/``blr`` are always
"predicted" correctly) and nested speculation.  RSB underflow wraps onto
seeded stale entries pointing into the never-mapped first page, so an
underflowed prediction squashes on its first transient fetch.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..arm64 import isa
from ..arm64.decoder import decode_word
from ..arm64.instructions import Instruction, access_bytes
from ..arm64.operands import Mem
from ..engine import SpeculationConfig
from ..memory.pages import MemoryFault
from ..obs.speculation import SpeculationLog, SpeculationWindow, TransientAccess
from .cpu import MASK64

__all__ = ["PatternHistoryTable", "ReturnStack", "SpeculativeEngine"]

#: Barriers that stop speculation dead (the fencing hardening relies on
#: this: a ``dsb`` on the wrong path squashes before any access issues).
_SPEC_BARRIERS = frozenset({"dsb", "isb"})

#: Trapping instructions are never executed transiently.
_SPEC_TRAPS = frozenset({"svc", "brk", "hlt"})

_COND_BRANCHES = frozenset({"cbz", "cbnz", "tbz", "tbnz"})


class PatternHistoryTable:
    """Direct-mapped table of 2-bit saturating counters, seeded."""

    def __init__(self, entries: int, rng: random.Random):
        self._mask = entries - 1
        self.counters: List[int] = [rng.randrange(4) for _ in range(entries)]

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int) -> bool:
        """True = predict taken (counter in the upper half)."""
        return self.counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        i = self._index(pc)
        c = self.counters[i]
        self.counters[i] = min(3, c + 1) if taken else max(0, c - 1)


class ReturnStack:
    """Circular return-stack buffer.

    Pushes wrap around and overwrite the oldest entry; pops past the
    fill level *underflow* onto whatever is there — stale survivors of
    earlier calls or the seeded initial entries (addresses inside the
    never-mapped first page, chosen so an underflowed prediction
    squashes immediately instead of executing arbitrary bytes).
    """

    def __init__(self, depth: int, rng: random.Random):
        self.depth = depth
        self.entries: List[int] = [
            rng.randrange(0x40, 0x1000) & ~3 for _ in range(depth)]
        self.top = depth - 1

    def push(self, address: int) -> None:
        self.top = (self.top + 1) % self.depth
        self.entries[self.top] = address

    def pop(self) -> int:
        value = self.entries[self.top]
        self.top = (self.top - 1) % self.depth
        return value


class SpeculativeEngine:
    """Drives one :class:`~repro.emulator.machine.Machine` speculatively."""

    def __init__(self, machine, config: SpeculationConfig):
        self.machine = machine
        self.config = config
        self.log = SpeculationLog()
        rng = random.Random(config.seed)
        self.pht = PatternHistoryTable(config.pht_entries, rng)
        self.rsb = ReturnStack(config.rsb_depth, rng)

    # -- architectural loop -------------------------------------------------

    def run(self, fuel: Optional[int] = None) -> None:
        """Mirror of the stepping ``Machine.run`` loop, with prediction."""
        from .machine import OutOfFuel
        step = self._step
        if fuel is None:
            while True:
                step()
        for _ in range(fuel):
            step()
        raise OutOfFuel()

    def _step(self) -> None:
        """One architectural instruction, plus any transient window."""
        machine = self.machine
        cpu = machine.cpu
        pc = cpu.pc
        if pc in machine._host_entries:
            machine.step()  # raises HostCallTrap like the stepping path
            return
        inst = self._peek(pc)
        if inst is None:
            machine.step()  # raises the precise fetch/decode trap
            return
        mnemonic = inst.mnemonic
        if mnemonic.startswith("b.") or mnemonic in _COND_BRANCHES:
            self._step_conditional(inst, pc, mnemonic)
        elif mnemonic == "ret":
            self._step_return(pc)
        elif mnemonic in ("bl", "blr"):
            machine.step()
            self.rsb.push((pc + 4) & MASK64)
        else:
            machine.step()

    def _step_conditional(self, inst: Instruction, pc: int,
                          mnemonic: str) -> None:
        machine = self.machine
        predicted_taken = self.pht.predict(pc)
        self.log.predictions += 1
        # Decoded branch targets are value-bearing (absolute) operands,
        # so the wrong-path address is known before the branch executes.
        if mnemonic.startswith("b."):
            target_op = inst.operands[0]
        elif mnemonic in ("cbz", "cbnz"):
            target_op = inst.operands[1]
        else:  # tbz/tbnz
            target_op = inst.operands[2]
        target = machine._value(target_op) & MASK64
        machine.step()
        actual_taken = machine.cpu.pc != ((pc + 4) & MASK64)
        self.pht.update(pc, actual_taken)
        if actual_taken != predicted_taken:
            wrong = target if predicted_taken else (pc + 4) & MASK64
            self._run_window("cond", pc, wrong)

    def _step_return(self, pc: int) -> None:
        machine = self.machine
        predicted = self.rsb.pop()
        self.log.predictions += 1
        machine.step()
        if machine.cpu.pc != predicted:
            self._run_window("ret", pc, predicted)

    # -- transient window ---------------------------------------------------

    def _peek(self, pc: int) -> Optional[Instruction]:
        """Decode without executing or raising; None = would trap on fetch."""
        machine = self.machine
        cached = machine._decode_cache.get(pc)
        if cached is not None:
            return cached[0]
        try:
            word = machine.memory.fetch(pc)
        except MemoryFault:
            return None
        inst = decode_word(word, pc)
        if inst is None or machine._exec.get(inst.base) is None:
            return None
        return inst

    def _run_window(self, kind: str, branch_pc: int, wrong_pc: int) -> None:
        from .machine import Trap
        machine = self.machine
        cpu = machine.cpu
        window = self.log.begin_window(SpeculationWindow(
            kind=kind, branch_pc=branch_pc, wrong_pc=wrong_pc,
            resolved_pc=cpu.pc))

        # Full microarchitectural snapshot of everything a transient
        # instruction can touch through machine.step().
        snapshot = cpu.snapshot()
        exclusive = cpu.exclusive_addr
        instret = machine.instret
        costing = machine._costing
        if costing is not None:
            cost_state = (costing.t_issue, costing.t_done, dict(costing.ready))
        gauges = []
        for gauge in (machine.tlb, machine.l1, machine.l2):
            if gauge is not None:
                gauges.append((gauge, [list(e) for e in gauge._sets],
                               gauge.hits, gauge.misses))
        undo: List = []

        cpu.pc = wrong_pc & MASK64
        reason = "window-exhausted"
        for depth in range(1, self.config.window + 1):
            pc = cpu.pc
            if pc in machine._host_entries:
                reason = "host-entry"
                break
            inst = self._peek(pc)
            if inst is None:
                reason = "fetch-fault"
                break
            mnemonic = inst.mnemonic
            if mnemonic in _SPEC_BARRIERS:
                reason = "fence"
                break
            if mnemonic in _SPEC_TRAPS:
                reason = "trap"
                break
            window.depth = depth
            memop = None
            for op in inst.operands:
                if isinstance(op, Mem):
                    memop = op
                    break
            old = None
            address = None
            is_store = False
            if memop is not None:
                # Record the access *before* executing it: a faulting
                # transient access still touched the translation path.
                address = machine._address(memop)[0]
                size = access_bytes(inst)
                if mnemonic in isa.PAIR_MEMORY:
                    size *= 2
                is_store = isa.is_store(mnemonic)
                window.accesses.append(TransientAccess(
                    pc=pc, address=address, size=size, is_store=is_store,
                    depth=depth,
                    tlb_hit=(machine.tlb.probe(address)
                             if machine.tlb is not None else None),
                    l1_hit=(machine.l1.probe(address)
                            if machine.l1 is not None else None)))
                if is_store:
                    try:
                        old = machine.memory.read(address, size)
                    except MemoryFault:
                        reason = "fault"
                        break
            try:
                machine.step()
            except Trap:
                reason = "fault"
                break
            if is_store and old is not None:
                # Append only after the store succeeded, so rollback
                # never replays a write that was itself squashed.
                undo.append((address, old))

        self.log.end_window(window, reason)

        # -- rollback: reverse order of effects ----------------------------
        for address, old in reversed(undo):
            machine.memory.write(address, old)
        for gauge, sets, hits, misses in gauges:
            gauge._sets = sets
            gauge.hits = hits
            gauge.misses = misses
        if costing is not None:
            costing.t_issue, costing.t_done, costing.ready = (
                cost_state[0], cost_state[1], cost_state[2])
        machine.instret = instret
        cpu.restore(snapshot)
        cpu.exclusive_addr = exclusive

"""Instruction-accurate ARM64 interpreter with dataflow cycle accounting.

The machine fetches words through :class:`PagedMemory` (so execute
permissions and guard pages are enforced exactly), decodes them with the
trusted decoder, and interprets them.  Decoded instructions and their
dataflow metadata are cached per address, so hot loops do not re-decode.

Cycle accounting implements the dataflow model described in
``repro.emulator.costs``: issue bandwidth plus register-dependency chains,
with TLB walk penalties folded into load/store latency.
"""

from __future__ import annotations

import math
import struct
from typing import Callable, Dict, List, Optional, Tuple

from ..arm64 import isa
from ..arm64.decoder import decode_word
from ..arm64.instructions import Instruction, access_bytes
from ..arm64.operands import (
    Extended,
    FloatImm,
    Imm,
    Mem,
    POST_INDEX,
    PRE_INDEX,
    Shifted,
    ShiftedImm,
    VecReg,
)
from ..arm64.registers import LR, Reg
from ..engine import EngineConfig
from ..errors import ConfigError
from ..hooks import HookRegistry
from ..memory.pages import MemoryFault, PagedMemory
from . import costs
from .cpu import CpuState, MASK32, MASK64
from .superblock import SuperblockEngine
from .tlb import Tlb

__all__ = [
    "Machine",
    "Trap",
    "SvcTrap",
    "BrkTrap",
    "HltTrap",
    "MemTrap",
    "UnknownInstructionTrap",
    "HostCallTrap",
    "OutOfFuel",
]


class Trap(Exception):
    """Base class for execution traps; ``pc`` is the faulting instruction."""

    def __init__(self, pc: int, message: str = ""):
        self.pc = pc
        super().__init__(message or f"{type(self).__name__} at {pc:#x}")


class SvcTrap(Trap):
    """A supervisor call (``svc #imm``) — the host syscall interface."""

    def __init__(self, pc: int, imm: int):
        self.imm = imm
        super().__init__(pc, f"svc #{imm} at {pc:#x}")


class BrkTrap(Trap):
    def __init__(self, pc: int, imm: int):
        self.imm = imm
        super().__init__(pc, f"brk #{imm} at {pc:#x}")


class HltTrap(Trap):
    pass


class MemTrap(Trap):
    """A memory fault escalated to the runtime (guard page, protection)."""

    def __init__(self, pc: int, fault: MemoryFault):
        self.fault = fault
        super().__init__(pc, f"{fault} (pc={pc:#x})")


class UnknownInstructionTrap(Trap):
    def __init__(self, pc: int, word: int):
        self.word = word
        super().__init__(pc, f"undecodable word {word:#010x} at {pc:#x}")


class HostCallTrap(Trap):
    """Control reached a registered host entry point (runtime call, §4.4)."""

    def __init__(self, pc: int, entry: int):
        self.entry = entry
        super().__init__(pc, f"host call to entry {entry:#x}")


class OutOfFuel(Exception):
    """The run() fuel budget was exhausted (used for preemption)."""


def _to_signed(value: int, bits: int) -> int:
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


_F32 = struct.Struct("<f")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_F32_UNPACK = _F32.unpack
_F64_UNPACK = _F64.unpack
_U32_PACK = _U32.pack
_U64_PACK = _U64.pack


def _bits_to_float(bits: int, width: int) -> float:
    if width == 64:
        return _F64_UNPACK(_U64_PACK(bits & MASK64))[0]
    return _F32_UNPACK(_U32_PACK(bits & MASK32))[0]


def _float_to_bits(value: float, width: int) -> int:
    try:
        if width == 64:
            return _U64.unpack(_F64.pack(value))[0]
        return _U32.unpack(_F32.pack(value))[0]
    except (OverflowError, ValueError):
        # Overflow to infinity with the right sign.
        inf = math.inf if value > 0 else -math.inf
        if width == 64:
            return _U64.unpack(_F64.pack(inf))[0]
        return _U32.unpack(_F32.pack(inf))[0]


class _Costing:
    """Dataflow cycle accounting state."""

    __slots__ = ("model", "t_issue", "t_done", "ready", "tlb")

    def __init__(self, model: costs.CostModel, tlb: Optional[Tlb]):
        self.model = model
        self.t_issue = 0.0
        self.t_done = 0.0
        self.ready: Dict[object, float] = {}
        self.tlb = tlb

    def charge(self, klass: str, uses: Tuple, defs: Tuple,
               extra_latency: float = 0.0, fetch_bubble: float = 0.0,
               extra_issue: float = 0.0) -> None:
        model = self.model
        self.t_issue += model.issue_cost(klass) + fetch_bubble + extra_issue
        start = self.t_issue
        ready = self.ready
        for key in uses:
            t = ready.get(key)
            if t is not None and t > start:
                start = t
        finish = start + model.result_latency(klass) + extra_latency
        for key in defs:
            ready[key] = finish
        if finish > self.t_done:
            self.t_done = finish

    @property
    def cycles(self) -> float:
        return max(self.t_issue, self.t_done)


def _reg_key(reg: Reg):
    if reg.is_zero:
        return None
    if reg.is_sp:
        return "sp"
    if reg.is_vector:
        return 32 + reg.index
    return reg.index


class Machine:
    """One emulated hardware thread over a shared address space."""

    def __init__(self, memory: PagedMemory,
                 model: Optional[costs.CostModel] = None,
                 tlb: Optional[Tlb] = None,
                 tlb_walk_scale: float = 1.0,
                 engine=None):
        config = EngineConfig.coerce(engine)
        self.memory = memory
        self.cpu = CpuState()
        self.instret = 0
        self.model = model
        #: The validated :class:`~repro.engine.EngineConfig` selecting and
        #: tuning the execution engine.  Read by the superblock engine at
        #: construction (chaining, cache cap).
        self.engine_config = config
        #: Execution engine kind: "superblock" dispatches translated
        #: blocks from :meth:`run`; "stepping" forces the per-instruction
        #: interpreter.  Both produce bit-identical architectural state
        #: and cycle counts (tests/test_superblock.py).
        self.engine = config.kind
        #: Runtime springboard for fused runtime calls, or ``None``.
        #: Set by :class:`repro.runtime.runtime.Runtime`; called by the
        #: superblock dispatch loops with the host entry address after a
        #: fused ``ldr``/``blr`` pair lands on a registered host entry.
        #: Returns ``(fresh_fuel, force_step)`` to resume translated
        #: execution inline, or raises to end the slice.
        self.springboard = None
        #: When True, :meth:`run` uses the stepping interpreter even if
        #: the superblock engine is enabled.  The runtime sets this from
        #: the scheduled process (fault injection, per-step tooling).
        self.force_stepping = False
        #: pc -> guard class for verified guard instructions (loader's
        #: PT_NOTE guard map).  The superblock translator fuses a guard
        #: and its consumer into one op when the guard pc is listed here.
        self.guard_map: Dict[int, str] = {}
        #: Multiplier on TLB walk cost (2.0 models nested paging / KVM).
        self.tlb_walk_scale = tlb_walk_scale
        if model is not None and tlb is None:
            tlb = Tlb(entries=model.tlb_entries, ways=4,
                      page_size=memory.page_size)
        self.tlb = tlb
        # Data-cache hierarchy (same set-associative structure, line
        # granularity).  Memory-bound workloads accumulate their cycles
        # here, hiding guard overhead exactly as on real hardware.
        self.l1 = self.l2 = None
        if model is not None:
            self.l1 = Tlb(entries=model.l1_lines, ways=model.l1_ways,
                          page_size=model.cache_line)
            self.l2 = Tlb(entries=model.l2_lines, ways=model.l2_ways,
                          page_size=model.cache_line)
        self._costing = _Costing(model, tlb) if model else None
        self._decode_cache: Dict[int, Tuple[Instruction, Callable, str,
                                            Tuple, Tuple]] = {}
        self._host_entries: Dict[int, object] = {}
        #: Multi-subscriber hook fired at the top of every :meth:`run`
        #: slice with ``(machine, fuel)``.  Fault injectors use it to
        #: corrupt state or force traps at deterministic points; raising a
        #: :class:`Trap` here is delivered to the runtime like any hardware
        #: trap.  The tracer subscribes alongside without clobbering.
        self.run_hooks = HookRegistry()
        #: Per-retired-instruction probes ``(machine, pc, klass, cycles)``
        #: where ``cycles`` is this instruction's charge against the cost
        #: model (deltas telescope: their sum equals :attr:`cycles`).
        #: A plain list, not a registry — this is the emulator's hottest
        #: path and the empty-list check must stay cheap.
        self._step_probes: List[Callable] = []
        self._exec = _build_dispatch(self)
        self._sb = SuperblockEngine(self)
        #: Bounded-speculation mode (DESIGN.md §16): when the engine
        #: config carries a SpeculationConfig, :meth:`run` drives the
        #: stepping interpreter through a SpeculativeEngine and
        #: :attr:`speculation_log` records the transient footprint.
        #: ``None`` (the default) leaves every execution path untouched.
        self._spec = None
        self.speculation_log = None
        if config.speculation is not None:
            from .speculation import SpeculativeEngine
            self._spec = SpeculativeEngine(self, config.speculation)
            self.speculation_log = self._spec.log
        memory.map_observers.append(self._on_map_change)

    # -- hooks ---------------------------------------------------------------

    def add_step_probe(self, probe: Callable) -> Callable:
        """Subscribe a per-instruction cycle probe (obs profiler/tracer)."""
        if probe not in self._step_probes:
            self._step_probes.append(probe)
        return probe

    def remove_step_probe(self, probe: Callable) -> None:
        if probe in self._step_probes:
            self._step_probes.remove(probe)

    # -- host integration ----------------------------------------------------

    def register_host_entry(self, address: int, token: object = None) -> None:
        """Branching to ``address`` raises HostCallTrap (runtime-call path)."""
        self._host_entries[address] = token
        # A cached block translated before this entry existed could run
        # straight through it; drop any block covering the address.
        self._sb.invalidate_range(address, 4)

    def host_token(self, address: int):
        return self._host_entries.get(address)

    @property
    def cycles(self) -> float:
        return self._costing.cycles if self._costing else float(self.instret)

    def add_cycles(self, amount: float, kind: str = "host") -> None:
        """Charge a flat cost (used by the runtime for host-side work).

        The charge is reported to step probes under ``kind`` with no pc,
        so profiler attribution stays complete (sum of probe deltas ==
        :attr:`cycles`).
        """
        costing = self._costing
        if costing is None:
            return
        probes = self._step_probes
        before = costing.cycles if probes else 0.0
        costing.t_issue += amount
        if costing.t_issue > costing.t_done:
            costing.t_done = costing.t_issue
        if probes:
            delta = costing.cycles - before
            for probe in probes:
                probe(self, None, kind, delta)

    def invalidate_code(self, address: int, size: int) -> None:
        # Sweep-based: invalidating a whole 4GiB slot must stay O(cached
        # entries), not O(range).
        cache = self._decode_cache
        if cache:
            end = address + size
            for addr in [a for a in cache if address <= a < end]:
                del cache[addr]
        self._sb.invalidate_range(address, size)

    def _on_map_change(self, address: int, size: int) -> None:
        """Mapping-change observer: drop translations over the range.

        Sweep-based so that unmapping a multi-GiB region stays O(cached
        entries), not O(range).
        """
        self._sb.invalidate_range(address, size)
        cache = self._decode_cache
        if cache:
            end = address + size
            for addr in [a for a in cache if address <= a < end]:
                del cache[addr]

    # -- execution -------------------------------------------------------------

    def step(self) -> None:
        cpu = self.cpu
        pc = cpu.pc
        if pc in self._host_entries:
            raise HostCallTrap(pc, pc)
        cached = self._decode_cache.get(pc)
        if cached is None:
            try:
                word = self.memory.fetch(pc)
            except MemoryFault as fault:
                raise MemTrap(pc, fault) from None
            inst = decode_word(word, pc)
            if inst is None:
                raise UnknownInstructionTrap(pc, word)
            handler = self._exec.get(inst.base)
            if handler is None:
                raise UnknownInstructionTrap(pc, word)
            klass = _classify(inst)
            uses = tuple(
                k for k in (_reg_key(r) for r in inst.uses()) if k is not None
            )
            defs = tuple(
                k for k in (_reg_key(r) for r in inst.defs()) if k is not None
            )
            cached = (inst, handler, klass, uses, defs)
            self._decode_cache[pc] = cached
        inst, handler, klass, uses, defs = cached
        try:
            taken, mem_addr = handler(inst)
        except MemoryFault as fault:
            raise MemTrap(pc, fault) from None
        self.instret += 1
        costing = self._costing
        probes = self._step_probes
        if probes:
            before = costing.cycles if costing is not None \
                else float(self.instret - 1)
        if costing is not None:
            extra = 0.0
            bw = 0.0
            if mem_addr is not None:
                model = self.model
                if self.tlb is not None and not self.tlb.lookup(mem_addr):
                    walk = model.tlb_walk_cycles * self.tlb_walk_scale
                    extra += walk
                    bw += walk * model.tlb_walk_issue_fraction
                if self.l1 is not None and not self.l1.lookup(mem_addr):
                    extra += model.l1_miss_cycles
                    bw += model.l1_miss_issue
                    if not self.l2.lookup(mem_addr):
                        extra += model.l2_miss_cycles
                        bw += model.l2_miss_issue
            bubble = self.model.taken_branch_cost if taken else 0.0
            costing.charge(klass, uses, defs, extra, bubble, bw)
        if probes:
            after = costing.cycles if costing is not None \
                else float(self.instret)
            delta = after - before
            for probe in probes:
                probe(self, pc, klass, delta)
        if not taken:
            cpu.pc = pc + 4

    def run(self, fuel: Optional[int] = None) -> None:
        """Run until a trap; raises OutOfFuel when the budget is exhausted."""
        if self.run_hooks:
            self.run_hooks(self, fuel)
        if self._spec is not None:
            # Speculation implies the plain stepping interpreter: the
            # rollback contract cannot hold under per-step probes (they
            # would observe transient charges) or block translation.
            if self._step_probes or self.force_stepping:
                raise ConfigError(
                    "EngineConfig(speculation=...) cannot be combined with "
                    "per-step probes or forced stepping (--probe, trace "
                    "--sample, fault injection)")
            self._spec.run(fuel)
            return
        # Per-instruction observability (step probes, forced stepping)
        # requires the stepping interpreter; the hook check comes first
        # because a run hook may have just registered a probe.
        if (self.engine == "superblock" and not self.force_stepping
                and not self._step_probes):
            self._sb.run(fuel)
            return
        step = self.step
        if fuel is None:
            while True:
                step()
        for _ in range(fuel):
            step()
        raise OutOfFuel()

    # -- operand evaluation ------------------------------------------------------

    def _value(self, op) -> int:
        cpu = self.cpu
        if isinstance(op, Reg):
            return cpu.read(op)
        if isinstance(op, Imm):
            return op.value
        if isinstance(op, ShiftedImm):
            return op.value << op.shift
        if isinstance(op, Shifted):
            value = cpu.read(op.reg)
            width = op.reg.bits
            amount = op.amount % width
            if op.kind == "lsl":
                return (value << amount) & ((1 << width) - 1)
            if op.kind == "lsr":
                return value >> amount
            if op.kind == "asr":
                return _to_signed(value, width) >> amount & ((1 << width) - 1)
            if op.kind == "ror":
                mask = (1 << width) - 1
                return ((value >> amount) | (value << (width - amount))) & mask
        if isinstance(op, Extended):
            return self._extended_value(op)
        raise TypeError(f"cannot evaluate operand {op!r}")

    def _extended_value(self, op: Extended) -> int:
        value = self.cpu.read(op.reg)
        kind = op.kind
        size = {"b": 8, "h": 16, "w": 32, "x": 64}[kind[-1]]
        value &= (1 << size) - 1
        if kind.startswith("s"):
            value = _to_signed(value, size) & MASK64
        return (value << (op.amount or 0)) & MASK64

    def _address(self, mem: Mem) -> Tuple[int, Optional[int]]:
        """(access address, post-writeback value or None)."""
        cpu = self.cpu
        base = cpu.read(mem.base)
        if mem.mode == POST_INDEX:
            wb = (base + mem.imm_value) & MASK64
            return base, wb
        if mem.offset is None:
            return base, None
        if isinstance(mem.offset, Imm):
            addr = (base + mem.offset.value) & MASK64
            return addr, (addr if mem.mode == PRE_INDEX else None)
        addr = (base + self._value(mem.offset)) & MASK64
        return addr, None

    # -- flags ----------------------------------------------------------------

    def _set_add_flags(self, a: int, b: int, width: int, carry_in: int = 0):
        mask = (1 << width) - 1
        raw = a + b + carry_in
        result = raw & mask
        n = (result >> (width - 1)) & 1
        z = 1 if result == 0 else 0
        c = 1 if raw > mask else 0
        sa = _to_signed(a, width)
        sb = _to_signed(b, width)
        sres = _to_signed(result, width)
        v = 1 if (sa + sb + carry_in != sres) else 0
        self.cpu.set_nzcv(n, z, c, v)
        return result

    def _set_logic_flags(self, result: int, width: int):
        n = (result >> (width - 1)) & 1
        z = 1 if result == 0 else 0
        self.cpu.set_nzcv(n, z, 0, 0)


def _classify(inst: Instruction) -> str:
    m = inst.mnemonic
    if m == "nop":
        return costs.NOP
    if m in isa.PAIR_MEMORY:
        return costs.LOAD_PAIR if m == "ldp" else costs.STORE_PAIR
    if m in isa.EXCLUSIVE_MEMORY or m in ("ldar", "stlr"):
        return costs.ATOMIC
    if isa.is_load(m):
        return costs.LOAD
    if isa.is_store(m):
        return costs.STORE
    if m in ("br", "blr", "ret"):
        return costs.BRANCH_INDIRECT
    if m.startswith("b.") or m in ("cbz", "cbnz", "tbz", "tbnz"):
        return costs.BRANCH_COND
    if m in ("b", "bl"):
        return costs.BRANCH
    if m in ("sdiv", "udiv"):
        return costs.DIV
    if m in ("madd", "msub", "smull", "umull", "smulh", "umulh"):
        return costs.MUL
    if m == "fdiv" and not any(isinstance(o, VecReg) for o in inst.operands):
        return costs.FP_DIV
    if m in isa.FP or any(isinstance(o, VecReg) for o in inst.operands):
        if any(isinstance(o, VecReg) for o in inst.operands):
            return costs.SIMD
        return costs.FP
    if m in ("mov", "movz", "movn", "movk", "adr", "adrp"):
        return costs.MOVE
    if m in ("svc", "brk", "hlt", "dmb", "dsb", "isb"):
        return costs.SYSTEM
    # The guard: add/sub with a zero/sign-*extending* register operand has
    # 2-cycle latency and half throughput (paper §4).  A plain uxtx/lsl #0
    # extended add (e.g. ``add sp, x21, x22``) behaves like a normal add —
    # that is exactly the saving of the paper's sp guard sequence (§4.2).
    for op in inst.operands:
        if isinstance(op, Extended):
            if op.kind in ("uxtx", "sxtx") and not op.amount:
                return costs.ALU
            return costs.ALU_EXT
    return costs.ALU


# ---------------------------------------------------------------------------
# Instruction handlers
#
# Each handler returns (branch_taken, memory_address_or_None).
# ---------------------------------------------------------------------------

def _build_dispatch(machine: Machine) -> Dict[str, Callable]:
    cpu = machine.cpu
    mem = machine.memory
    value = machine._value

    def not_taken(addr=None):
        return (False, addr)

    # -- data processing ----------------------------------------------------

    def do_addsub(inst: Instruction):
        m = inst.mnemonic
        rd = inst.operands[0]
        width = rd.bits
        mask = (1 << width) - 1
        a = cpu.read(inst.operands[1])
        b = value(inst.operands[2]) & mask
        sub = m.startswith("sub")
        setflags = m.endswith("s")
        if sub:
            if setflags:
                result = machine._set_add_flags(a, (~b) & mask, width, 1)
            else:
                result = (a - b) & mask
        else:
            if setflags:
                result = machine._set_add_flags(a, b, width)
            else:
                result = (a + b) & mask
        cpu.write(rd, result)
        return not_taken()

    def do_logic(inst: Instruction):
        m = inst.mnemonic
        rd = inst.operands[0]
        width = rd.bits
        mask = (1 << width) - 1
        a = cpu.read(inst.operands[1])
        b = value(inst.operands[2]) & mask
        if m in ("bic", "bics", "orn", "eon"):
            b = (~b) & mask
        if m.startswith("and") or m == "bic" or m == "bics":
            result = a & b
        elif m.startswith("orr") or m == "orn":
            result = a | b
        else:  # eor / eon
            result = a ^ b
        if m in ("ands", "bics"):
            machine._set_logic_flags(result, width)
        cpu.write(rd, result)
        return not_taken()

    def do_mov(inst: Instruction):
        rd, src = inst.operands
        cpu.write(rd, value(src))
        return not_taken()

    def do_movz(inst: Instruction):
        rd = inst.operands[0]
        cpu.write(rd, value(inst.operands[1]))
        return not_taken()

    def do_movn(inst: Instruction):
        rd = inst.operands[0]
        cpu.write(rd, ~value(inst.operands[1]))
        return not_taken()

    def do_movk(inst: Instruction):
        rd = inst.operands[0]
        op = inst.operands[1]
        shift = op.shift if isinstance(op, ShiftedImm) else 0
        imm = op.value if isinstance(op, ShiftedImm) else op.value
        old = cpu.read(rd.as_64()) if rd.bits == 64 else cpu.read(rd)
        mask = 0xFFFF << shift
        cpu.write(rd, (old & ~mask) | (imm << shift))
        return not_taken()

    def do_adr(inst: Instruction):
        cpu.write(inst.operands[0], value(inst.operands[1]))
        return not_taken()

    def do_bitfield(inst: Instruction):
        m = inst.mnemonic
        rd, rn, immr_op, imms_op = inst.operands
        width = rd.bits
        mask = (1 << width) - 1
        immr, imms = immr_op.value, imms_op.value
        src = cpu.read(rn)
        if imms >= immr:
            length = imms - immr + 1
            field = (src >> immr) & ((1 << length) - 1)
            shift = 0
        else:
            length = imms + 1
            field = src & ((1 << length) - 1)
            shift = width - immr
        result = (field << shift) & mask
        top = shift + length - 1
        if m == "sbfm" and (field >> (length - 1)) & 1:
            result |= mask & ~((1 << (top + 1)) - 1)
        if m == "bfm":
            keep = mask & ~(((1 << length) - 1) << shift)
            result |= cpu.read(rd) & keep
        cpu.write(rd, result)
        return not_taken()

    def do_shift_reg(inst: Instruction):
        m = inst.mnemonic
        rd, rn, src = inst.operands
        width = rd.bits
        mask = (1 << width) - 1
        a = cpu.read(rn)
        if isinstance(src, Imm):
            amount = src.value % width
        else:
            amount = cpu.read(src) % width
        if m == "lsl":
            result = (a << amount) & mask
        elif m == "lsr":
            result = a >> amount
        elif m == "asr":
            result = (_to_signed(a, width) >> amount) & mask
        else:  # ror
            result = ((a >> amount) | (a << (width - amount))) & mask
        cpu.write(rd, result)
        return not_taken()

    def do_muldiv(inst: Instruction):
        m = inst.mnemonic
        rd = inst.operands[0]
        width = rd.bits
        mask = (1 << width) - 1
        if m in ("madd", "msub"):
            rn, rm, ra = inst.operands[1:]
            prod = cpu.read(rn) * cpu.read(rm)
            acc = cpu.read(ra)
            result = (acc - prod) if m == "msub" else (acc + prod)
            cpu.write(rd, result & mask)
        elif m in ("smull", "umull"):
            rn, rm = inst.operands[1:]
            a, b = cpu.read(rn), cpu.read(rm)
            if m == "smull":
                a, b = _to_signed(a, 32), _to_signed(b, 32)
            cpu.write(rd, (a * b) & MASK64)
        elif m in ("smulh", "umulh"):
            rn, rm = inst.operands[1:]
            a, b = cpu.read(rn), cpu.read(rm)
            if m == "smulh":
                a, b = _to_signed(a, 64), _to_signed(b, 64)
            cpu.write(rd, ((a * b) >> 64) & MASK64)
        elif m in ("sdiv", "udiv"):
            rn, rm = inst.operands[1:]
            a, b = cpu.read(rn), cpu.read(rm)
            if m == "sdiv":
                a, b = _to_signed(a, width), _to_signed(b, width)
            if b == 0:
                result = 0
            else:
                q = abs(a) // abs(b)
                if (a < 0) != (b < 0):
                    q = -q
                result = q
            cpu.write(rd, result & mask)
        return not_taken()

    def do_dp1(inst: Instruction):
        m = inst.mnemonic
        rd, rn = inst.operands
        width = rd.bits
        a = cpu.read(rn)
        if m == "clz":
            result = width - a.bit_length()
        elif m == "rbit":
            result = int(format(a, f"0{width}b")[::-1], 2)
        elif m == "rev":
            result = int.from_bytes(
                a.to_bytes(width // 8, "little"), "big"
            )
        elif m == "rev16":
            data = a.to_bytes(width // 8, "little")
            out = bytearray()
            for i in range(0, len(data), 2):
                out.extend(data[i:i + 2][::-1])
            result = int.from_bytes(out, "little")
        elif m == "rev32":
            data = a.to_bytes(8, "little")
            out = bytearray()
            for i in range(0, 8, 4):
                out.extend(data[i:i + 4][::-1])
            result = int.from_bytes(out, "little")
        cpu.write(rd, result)
        return not_taken()

    def do_condsel(inst: Instruction):
        m = inst.mnemonic
        rd, rn, rm, cond = inst.operands
        width = rd.bits
        mask = (1 << width) - 1
        if cpu.condition_holds(cond.name):
            result = cpu.read(rn)
        else:
            b = cpu.read(rm)
            if m == "csinc":
                result = (b + 1) & mask
            elif m == "csinv":
                result = (~b) & mask
            elif m == "csneg":
                result = (-b) & mask
            else:
                result = b
        cpu.write(rd, result)
        return not_taken()

    def do_ccmp(inst: Instruction):
        m = inst.mnemonic
        rn, src, nzcv, cond = inst.operands
        width = rn.bits
        mask = (1 << width) - 1
        if cpu.condition_holds(cond.name):
            a = cpu.read(rn)
            b = value(src) & mask
            if m == "ccmp":
                machine._set_add_flags(a, (~b) & mask, width, 1)
            else:
                machine._set_add_flags(a, b, width)
        else:
            cpu.nzcv = nzcv.value
        return not_taken()

    # -- branches -------------------------------------------------------------

    def do_b(inst: Instruction):
        if inst.mnemonic == "b":
            cpu.pc = value(inst.operands[0]) & MASK64
            return (True, None)
        # b.cond
        cond = inst.mnemonic[2:]
        if cpu.condition_holds(cond):
            cpu.pc = value(inst.operands[0]) & MASK64
            return (True, None)
        return not_taken()

    def do_bl(inst: Instruction):
        cpu.write(LR, cpu.pc + 4)
        cpu.pc = value(inst.operands[0]) & MASK64
        return (True, None)

    def do_br(inst: Instruction):
        cpu.pc = cpu.read(inst.operands[0]) & MASK64
        return (True, None)

    def do_blr(inst: Instruction):
        target = cpu.read(inst.operands[0]) & MASK64
        cpu.write(LR, cpu.pc + 4)
        cpu.pc = target
        return (True, None)

    def do_ret(inst: Instruction):
        reg = inst.operands[0] if inst.operands else LR
        cpu.pc = cpu.read(reg) & MASK64
        return (True, None)

    def do_cb(inst: Instruction):
        rt, target = inst.operands
        is_zero = cpu.read(rt) == 0
        want_zero = inst.mnemonic == "cbz"
        if is_zero == want_zero:
            cpu.pc = value(target) & MASK64
            return (True, None)
        return not_taken()

    def do_tb(inst: Instruction):
        rt, bit, target = inst.operands
        bit_set = (cpu.read(rt.as_64()) >> bit.value) & 1
        want_set = inst.mnemonic == "tbnz"
        if bool(bit_set) == want_set:
            cpu.pc = value(target) & MASK64
            return (True, None)
        return not_taken()

    # -- memory ---------------------------------------------------------------

    _SIGNED_LOADS = {"ldrsb": 8, "ldrsh": 16, "ldrsw": 32}

    def do_load(inst: Instruction):
        m = inst.mnemonic
        rt = inst.operands[0]
        memop = inst.operands[1]
        addr, wb = machine._address(memop)
        size = access_bytes(inst)
        data = mem.read(addr, size)
        raw = int.from_bytes(data, "little")
        if rt.is_vector:
            cpu.write_v(rt, raw)
        else:
            signed_bits = _SIGNED_LOADS_MAP.get(m)
            if signed_bits:
                raw = _to_signed(raw, signed_bits) & (
                    MASK64 if rt.bits == 64 else MASK32
                )
            cpu.write(rt, raw)
        if wb is not None:
            cpu.write(memop.base, wb)
        if m in ("ldxr", "ldaxr"):
            cpu.exclusive_addr = addr
        return (False, addr)

    def do_store(inst: Instruction):
        m = inst.mnemonic
        rt = inst.operands[0]
        memop = inst.operands[1]
        addr, wb = machine._address(memop)
        size = access_bytes(inst)
        if rt.is_vector:
            data = cpu.read_v(rt).to_bytes(size, "little")
        else:
            data = (cpu.read(rt) & ((1 << (size * 8)) - 1)).to_bytes(
                size, "little"
            )
        mem.write(addr, data)
        if wb is not None:
            cpu.write(memop.base, wb)
        return (False, addr)

    def do_pair(inst: Instruction):
        m = inst.mnemonic
        rt, rt2, memop = inst.operands
        addr, wb = machine._address(memop)
        size = access_bytes(inst)
        if m == "ldp":
            for i, reg in enumerate((rt, rt2)):
                raw = int.from_bytes(mem.read(addr + i * size, size), "little")
                if reg.is_vector:
                    cpu.write_v(reg, raw)
                else:
                    cpu.write(reg, raw)
        else:
            for i, reg in enumerate((rt, rt2)):
                if reg.is_vector:
                    raw = cpu.read_v(reg)
                else:
                    raw = cpu.read(reg)
                mem.write(addr + i * size,
                          (raw & ((1 << (size * 8)) - 1)).to_bytes(size, "little"))
        if wb is not None:
            cpu.write(memop.base, wb)
        return (False, addr)

    def do_store_exclusive(inst: Instruction):
        rs, rt, memop = inst.operands
        addr, _ = machine._address(memop)
        size = access_bytes(inst)
        if cpu.exclusive_addr == addr:
            mem.write(addr, (cpu.read(rt) & ((1 << (size * 8)) - 1)).to_bytes(
                size, "little"))
            cpu.write(rs, 0)
        else:
            cpu.write(rs, 1)
        cpu.exclusive_addr = None
        return (False, addr)

    # -- floating point ---------------------------------------------------------

    def fp_read(reg: Reg) -> float:
        return _bits_to_float(cpu.read_v(reg), reg.bits)

    def fp_write(reg: Reg, val: float) -> None:
        cpu.write_v(reg, _float_to_bits(val, reg.bits))

    def do_fp2(inst: Instruction):
        m = inst.mnemonic
        rd, rn, rm = inst.operands
        a, b = fp_read(rn), fp_read(rm)
        if m == "fadd":
            r = a + b
        elif m == "fsub":
            r = a - b
        elif m == "fmul":
            r = a * b
        elif m == "fnmul":
            r = -(a * b)
        elif m == "fdiv":
            if b == 0:
                r = math.nan if a == 0 else math.copysign(
                    math.inf, math.copysign(1, a) * math.copysign(1, b)
                )
            else:
                r = a / b
        elif m == "fmax":
            r = max(a, b)
        else:
            r = min(a, b)
        fp_write(rd, r)
        return not_taken()

    def do_fp3(inst: Instruction):
        m = inst.mnemonic
        rd, rn, rm, ra = inst.operands
        prod = fp_read(rn) * fp_read(rm)
        acc = fp_read(ra)
        fp_write(rd, acc - prod if m == "fmsub" else acc + prod)
        return not_taken()

    def do_fp1(inst: Instruction):
        m = inst.mnemonic
        rd, rn = inst.operands
        a = fp_read(rn)
        if m == "fabs":
            r = abs(a)
        elif m == "fneg":
            r = -a
        elif m == "fsqrt":
            r = math.sqrt(a) if a >= 0 else math.nan
        fp_write(rd, r)
        return not_taken()

    def do_fcvt(inst: Instruction):
        rd, rn = inst.operands
        fp_write(rd, fp_read(rn))
        return not_taken()

    def do_fcmp(inst: Instruction):
        rn = inst.operands[0]
        a = fp_read(rn)
        other = inst.operands[1]
        if isinstance(other, (FloatImm, Imm)):
            b = float(other.value)
        else:
            b = fp_read(other)
        if math.isnan(a) or math.isnan(b):
            cpu.set_nzcv(0, 0, 1, 1)
        elif a == b:
            cpu.set_nzcv(0, 1, 1, 0)
        elif a < b:
            cpu.set_nzcv(1, 0, 0, 0)
        else:
            cpu.set_nzcv(0, 0, 1, 0)
        return not_taken()

    def do_fcsel(inst: Instruction):
        rd, rn, rm, cond = inst.operands
        src = rn if cpu.condition_holds(cond.name) else rm
        cpu.write_v(rd, cpu.read_v(src))
        return not_taken()

    def do_fmov(inst: Instruction):
        rd, src = inst.operands
        if isinstance(src, (FloatImm, Imm)):
            fp_write(rd, float(src.value))
        elif isinstance(rd, Reg) and rd.is_vector and src.is_vector:
            cpu.write_v(rd, cpu.read_v(src))
        elif rd.is_vector:
            cpu.write_v(rd, cpu.read(src))
        else:
            cpu.write(rd, cpu.read_v(src))
        return not_taken()

    def do_cvt_to_fp(inst: Instruction):
        m = inst.mnemonic
        rd, rn = inst.operands
        raw = cpu.read(rn)
        if m == "scvtf":
            raw = _to_signed(raw, rn.bits)
        fp_write(rd, float(raw))
        return not_taken()

    def do_cvt_from_fp(inst: Instruction):
        m = inst.mnemonic
        rd, rn = inst.operands
        a = fp_read(rn)
        width = rd.bits
        if math.isnan(a):
            result = 0
        else:
            truncated = int(a)
            if m == "fcvtzs":
                lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
            else:
                lo, hi = 0, (1 << width) - 1
            result = max(lo, min(hi, truncated))
        cpu.write(rd, result & ((1 << width) - 1))
        return not_taken()

    # -- SIMD --------------------------------------------------------------------

    def lanes_of(vreg: VecReg) -> List[int]:
        raw = cpu.vregs[vreg.reg.index]
        bits = vreg.lane_bits
        return [(raw >> (i * bits)) & ((1 << bits) - 1)
                for i in range(vreg.lanes)]

    def write_lanes(vreg: VecReg, lanes: List[int]) -> None:
        bits = vreg.lane_bits
        raw = 0
        for i, lane in enumerate(lanes):
            raw |= (lane & ((1 << bits) - 1)) << (i * bits)
        cpu.vregs[vreg.reg.index] = raw  # Q-form zeroes high half implicitly

    def do_vec3(inst: Instruction):
        m = inst.mnemonic
        rd, rn, rm = inst.operands
        a, b = lanes_of(rn), lanes_of(rm)
        bits = rd.lane_bits
        mask = (1 << bits) - 1
        if m in ("fadd", "fsub", "fmul", "fdiv", "fmax", "fmin"):
            out = []
            for x, y in zip(a, b):
                fx = _bits_to_float(x, bits)
                fy = _bits_to_float(y, bits)
                if m == "fadd":
                    r = fx + fy
                elif m == "fsub":
                    r = fx - fy
                elif m == "fmul":
                    r = fx * fy
                elif m == "fdiv":
                    r = fx / fy if fy else math.nan
                elif m == "fmax":
                    r = max(fx, fy)
                else:
                    r = min(fx, fy)
                out.append(_float_to_bits(r, bits))
        elif m == "add":
            out = [(x + y) & mask for x, y in zip(a, b)]
        elif m == "sub":
            out = [(x - y) & mask for x, y in zip(a, b)]
        elif m == "mul":
            out = [(x * y) & mask for x, y in zip(a, b)]
        elif m == "and":
            out = [x & y for x, y in zip(a, b)]
        elif m == "orr":
            out = [x | y for x, y in zip(a, b)]
        elif m == "eor":
            out = [x ^ y for x, y in zip(a, b)]
        elif m == "bic":
            out = [x & ~y & mask for x, y in zip(a, b)]
        write_lanes(rd, out)
        return not_taken()

    def do_movi(inst: Instruction):
        rd, imm = inst.operands
        write_lanes(rd, [imm.value] * rd.lanes)
        return not_taken()

    def do_dup(inst: Instruction):
        rd, rn = inst.operands
        val = cpu.read(rn) & ((1 << rd.lane_bits) - 1)
        write_lanes(rd, [val] * rd.lanes)
        return not_taken()

    # -- system -----------------------------------------------------------------

    def do_nop(inst: Instruction):
        return not_taken()

    def do_svc(inst: Instruction):
        raise SvcTrap(cpu.pc, inst.operands[0].value if inst.operands else 0)

    def do_brk(inst: Instruction):
        raise BrkTrap(cpu.pc, inst.operands[0].value if inst.operands else 0)

    def do_hlt(inst: Instruction):
        raise HltTrap(cpu.pc)

    def vec_dispatch(scalar, vector):
        def handler(inst: Instruction):
            if isinstance(inst.operands[0], VecReg):
                return vector(inst)
            return scalar(inst)
        return handler

    dispatch = {
        "add": vec_dispatch(do_addsub, do_vec3),
        "adds": do_addsub, "sub": vec_dispatch(do_addsub, do_vec3),
        "subs": do_addsub,
        "and": vec_dispatch(do_logic, do_vec3),
        "orr": vec_dispatch(do_logic, do_vec3),
        "eor": vec_dispatch(do_logic, do_vec3),
        "bic": vec_dispatch(do_logic, do_vec3),
        "ands": do_logic, "orn": do_logic, "eon": do_logic, "bics": do_logic,
        "mov": do_mov, "movz": do_movz, "movn": do_movn, "movk": do_movk,
        "adr": do_adr, "adrp": do_adr,
        "ubfm": do_bitfield, "sbfm": do_bitfield, "bfm": do_bitfield,
        "lsl": do_shift_reg, "lsr": do_shift_reg, "asr": do_shift_reg,
        "ror": do_shift_reg,
        "madd": do_muldiv, "msub": do_muldiv, "smull": do_muldiv,
        "umull": do_muldiv, "smulh": do_muldiv, "umulh": do_muldiv,
        "sdiv": do_muldiv, "udiv": do_muldiv,
        "clz": do_dp1, "rbit": do_dp1, "rev": do_dp1, "rev16": do_dp1,
        "rev32": do_dp1,
        "csel": do_condsel, "csinc": do_condsel, "csinv": do_condsel,
        "csneg": do_condsel,
        "ccmp": do_ccmp, "ccmn": do_ccmp,
        "b": do_b, "bl": do_bl, "br": do_br, "blr": do_blr, "ret": do_ret,
        "cbz": do_cb, "cbnz": do_cb, "tbz": do_tb, "tbnz": do_tb,
        "ldr": do_load, "ldrb": do_load, "ldrh": do_load, "ldrsb": do_load,
        "ldrsh": do_load, "ldrsw": do_load, "ldur": do_load, "ldxr": do_load,
        "ldaxr": do_load, "ldar": do_load,
        "str": do_store, "strb": do_store, "strh": do_store,
        "stur": do_store, "stlr": do_store,
        "ldp": do_pair, "stp": do_pair,
        "stxr": do_store_exclusive, "stlxr": do_store_exclusive,
        "fadd": vec_dispatch(do_fp2, do_vec3),
        "fsub": vec_dispatch(do_fp2, do_vec3),
        "fmul": vec_dispatch(do_fp2, do_vec3),
        "fdiv": vec_dispatch(do_fp2, do_vec3),
        "fmax": vec_dispatch(do_fp2, do_vec3),
        "fmin": vec_dispatch(do_fp2, do_vec3),
        "fnmul": do_fp2,
        "fmadd": do_fp3, "fmsub": do_fp3,
        "fabs": do_fp1, "fneg": do_fp1, "fsqrt": do_fp1,
        "fcvt": do_fcvt, "fcmp": do_fcmp, "fcmpe": do_fcmp,
        "fcsel": do_fcsel, "fmov": do_fmov,
        "scvtf": do_cvt_to_fp, "ucvtf": do_cvt_to_fp,
        "fcvtzs": do_cvt_from_fp, "fcvtzu": do_cvt_from_fp,
        "mul": vec_dispatch(do_muldiv, do_vec3),
        "movi": do_movi, "dup": do_dup,
        "nop": do_nop, "dmb": do_nop, "dsb": do_nop, "isb": do_nop,
        "svc": do_svc, "brk": do_brk, "hlt": do_hlt,
    }
    return dispatch


_SIGNED_LOADS_MAP = {"ldrsb": 8, "ldrsh": 16, "ldrsw": 32}

"""Architectural CPU state: general registers, sp, pc, NZCV, SIMD&FP file."""

from __future__ import annotations

from typing import List

from ..arm64.operands import canonical_condition
from ..arm64.registers import Reg

__all__ = ["CpuState", "MASK64", "MASK32"]

MASK64 = (1 << 64) - 1
MASK32 = (1 << 32) - 1


class CpuState:
    """Registers and flags of one hardware thread.

    General registers are stored as unsigned 64-bit Python ints; vector
    registers as unsigned 128-bit ints.  Register *views* (w vs x, s vs d vs
    q) are resolved at access time from the :class:`Reg` object.
    """

    __slots__ = ("regs", "sp", "pc", "n", "z", "c", "v", "vregs",
                 "exclusive_addr")

    def __init__(self):
        self.regs: List[int] = [0] * 31
        self.sp = 0
        self.pc = 0
        self.n = 0
        self.z = 0
        self.c = 0
        self.v = 0
        self.vregs: List[int] = [0] * 32
        # Exclusive monitor (ldxr/stxr); None when clear.
        self.exclusive_addr = None

    # -- integer registers ---------------------------------------------------

    def read(self, reg: Reg) -> int:
        """Read a GPR view; zero register reads as 0, sp reads the SP."""
        if reg.is_zero:
            return 0
        if reg.is_sp:
            value = self.sp
        else:
            value = self.regs[reg.index]
        if reg.bits == 32:
            return value & MASK32
        return value

    def write(self, reg: Reg, value: int) -> None:
        """Write a GPR view; 32-bit writes zero the top half (ARM64 rule)."""
        if reg.is_zero:
            return
        value &= MASK32 if reg.bits == 32 else MASK64
        if reg.is_sp:
            self.sp = value
        else:
            self.regs[reg.index] = value

    # -- vector registers ------------------------------------------------------

    def read_v(self, reg: Reg) -> int:
        value = self.vregs[reg.index]
        if reg.bits < 128:
            value &= (1 << reg.bits) - 1
        return value

    def write_v(self, reg: Reg, value: int) -> None:
        # Scalar writes zero the rest of the 128-bit register (ARM64 rule).
        self.vregs[reg.index] = value & ((1 << reg.bits) - 1)

    # -- flags -----------------------------------------------------------------

    def set_nzcv(self, n: int, z: int, c: int, v: int) -> None:
        self.n, self.z, self.c, self.v = n, z, c, v

    @property
    def nzcv(self) -> int:
        return (self.n << 3) | (self.z << 2) | (self.c << 1) | self.v

    @nzcv.setter
    def nzcv(self, value: int) -> None:
        self.n = (value >> 3) & 1
        self.z = (value >> 2) & 1
        self.c = (value >> 1) & 1
        self.v = value & 1

    def condition_holds(self, name: str) -> bool:
        cond = canonical_condition(name)
        n, z, c, v = self.n, self.z, self.c, self.v
        base = {
            "eq": z == 1,
            "ne": z == 0,
            "cs": c == 1,
            "cc": c == 0,
            "mi": n == 1,
            "pl": n == 0,
            "vs": v == 1,
            "vc": v == 0,
            "hi": c == 1 and z == 0,
            "ls": not (c == 1 and z == 0),
            "ge": n == v,
            "lt": n != v,
            "gt": z == 0 and n == v,
            "le": not (z == 0 and n == v),
            "al": True,
            "nv": True,
        }
        return base[cond]

    def snapshot(self) -> dict:
        """A copyable view of the register state (context switches)."""
        return {
            "regs": list(self.regs),
            "sp": self.sp,
            "pc": self.pc,
            "nzcv": self.nzcv,
            "vregs": list(self.vregs),
        }

    def restore(self, snap: dict) -> None:
        # In-place so that closures capturing the register lists (the
        # superblock engine's specialized ops) stay valid across context
        # switches.
        self.regs[:] = snap["regs"]
        self.sp = snap["sp"]
        self.pc = snap["pc"]
        self.nzcv = snap["nzcv"]
        self.vregs[:] = snap["vregs"]

    def clone(self) -> "CpuState":
        """An independent copy of the full state (differential probes).

        Unlike :meth:`snapshot`, includes ``exclusive_addr`` — the probe
        compares complete pre/post states, not just the context-switch
        view.
        """
        other = CpuState()
        other.restore(self.snapshot())
        other.exclusive_addr = self.exclusive_addr
        return other

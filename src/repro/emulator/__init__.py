"""ARM64 emulator: CPU state, interpreter, TLB, and cycle cost models.

This is the hardware substitute (DESIGN.md §2): it executes the genuine
machine code produced by the toolchain, enforces memory permissions via
:class:`repro.memory.PagedMemory`, and accounts cycles with a dataflow cost
model calibrated to the microarchitectures the paper evaluates on.
"""

from .costs import APPLE_M1, GCP_T2A, MACHINE_MODELS, CostModel
from .cpu import CpuState
from .machine import (
    BrkTrap,
    HltTrap,
    HostCallTrap,
    Machine,
    MemTrap,
    OutOfFuel,
    SvcTrap,
    Trap,
    UnknownInstructionTrap,
)
from .speculation import PatternHistoryTable, ReturnStack, SpeculativeEngine
from .tlb import Tlb

__all__ = [
    "PatternHistoryTable",
    "ReturnStack",
    "SpeculativeEngine",
    "APPLE_M1",
    "GCP_T2A",
    "MACHINE_MODELS",
    "CostModel",
    "CpuState",
    "BrkTrap",
    "HltTrap",
    "HostCallTrap",
    "Machine",
    "MemTrap",
    "OutOfFuel",
    "SvcTrap",
    "Trap",
    "UnknownInstructionTrap",
    "Tlb",
]

"""Superblock (translated-block) execution engine for the emulator hot path.

The stepping interpreter in :mod:`repro.emulator.machine` pays Python
dispatch cost on every instruction: a decode-cache lookup, a handler
dispatch, generic operand evaluation, and a :meth:`_Costing.charge` call.
This module predecodes straight-line instruction runs into immutable
:class:`Superblock` objects whose ops are *specialized closures* (direct
register-list access, precomputed immediates and branch targets) and
dispatches whole blocks from :meth:`Machine.run`.

Design rules (DESIGN.md §10):

* a block ends at the first branch, trap instruction (``svc``/``brk``/
  ``hlt``), registered host entry, undecodable word, or page boundary —
  blocks never cross a page, so invalidation is page-exact;
* verified guard sequences named by the loader's ``guard_map`` are fused
  into a single op that performs both architectural effects and both cost
  updates in one dispatch;
* cycle accounting replicates the stepping interpreter's float operation
  order exactly, so cycle counts, trace timestamps, and metrics snapshots
  are bit-identical between engines;
* a block never overruns the remaining fuel: oversized blocks fall back
  to per-instruction stepping for the tail of the timeslice;
* the block cache invalidates on any mapping change (``mmap``/``munmap``/
  ``mprotect``/``share_region``/image load) via the
  :class:`~repro.memory.pages.PagedMemory` map observer, which also covers
  fork (the child's slot is freshly shared into).

The engine is *not* used when per-instruction observability is active:
any registered step probe (profiler, metrics, sampling tracer), a
process's ``step_mode`` flag, or ``engine="stepping"`` forces the
original interpreter, whose behaviour is unchanged.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Tuple

from ..arm64.decoder import decode_word
from ..arm64.instructions import Instruction, access_bytes
from ..arm64.operands import Extended, Imm, Mem, POST_INDEX, PRE_INDEX, \
    Shifted, ShiftedImm, VecReg, canonical_condition
from ..arm64.registers import LR, Reg
from ..memory.pages import MemoryFault
from .cpu import MASK32, MASK64

__all__ = ["Superblock", "SuperblockEngine"]

#: Op kinds — the first element of every op tuple.  The execute loops
#: branch on these instead of unpacking a generic handler result.
K_SIMPLE = 0   # exec() -> None; no memory access, never taken
K_MEM = 1      # exec() -> address int; load/store, never taken
K_BRANCH = 2   # exec() -> taken bool; terminator
K_GENERIC = 3  # exec() -> (taken, mem_addr); original handler semantics
K_FUSED_MEM = 4     # guard add + load/store; exec() -> address
K_FUSED_BRANCH = 5  # guard add + br/blr/ret; exec() -> None, always taken
K_FUSED_SIMPLE = 6  # sp guard pair; exec() -> None

_TERMINATOR_BASES = frozenset([
    "b", "bl", "br", "blr", "ret", "cbz", "cbnz", "tbz", "tbnz",
    "svc", "brk", "hlt",
])

_UNSIGNED_LOADS = frozenset(["ldr", "ldrb", "ldrh", "ldur"])
_SIGNED_LOADS = {"ldrsb": 8, "ldrsh": 16, "ldrsw": 32}
_SIMPLE_STORES = frozenset(["str", "strb", "strh", "stur"])

#: Generic handlers that read ``cpu.pc`` (link registers, trap pcs).
#: Inside a block ``cpu.pc`` is stale, so their generic fallbacks are
#: wrapped to restore it first.  Every one of them is a terminator.
_PC_READING = frozenset(["bl", "blr", "svc", "brk", "hlt"])


def _pc_fix(cpu, pc, call):
    def run():
        cpu.pc = pc
        return call()
    return run


class Superblock:
    """An immutable predecoded straight-line run of instructions.

    ``ops`` is a list of ``(kind, exec, pc, icost, lat, uses, defs,
    fused)`` tuples; ``count`` is the run's fuel cost (fused ops count
    two, a trailing trap instruction counts one for the attempt);
    ``next_pc`` is the fall-through address; ``end`` is the exclusive
    byte bound used for invalidation overlap checks.
    """

    __slots__ = ("start", "end", "ops", "count", "next_pc")

    def __init__(self, start: int, end: int, ops: list, count: int,
                 next_pc: int):
        self.start = start
        self.end = end
        self.ops = ops
        self.count = count
        self.next_pc = next_pc

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"Superblock({self.start:#x}..{self.end:#x}, "
                f"{len(self.ops)} ops, fuel {self.count})")


# ---------------------------------------------------------------------------
# Specialized op thunk factories.
#
# Every factory closes over the CPU register list (kept identity-stable by
# CpuState.restore) and precomputed constants; each replicates the exact
# architectural effect of the corresponding machine.py handler.
# ---------------------------------------------------------------------------

def _is_plain_gpr(reg) -> bool:
    return (isinstance(reg, Reg) and reg.is_gpr and not reg.is_zero
            and not reg.is_sp)


_COND_EVAL = {
    "eq": lambda cpu: cpu.z == 1,
    "ne": lambda cpu: cpu.z == 0,
    "cs": lambda cpu: cpu.c == 1,
    "cc": lambda cpu: cpu.c == 0,
    "mi": lambda cpu: cpu.n == 1,
    "pl": lambda cpu: cpu.n == 0,
    "vs": lambda cpu: cpu.v == 1,
    "vc": lambda cpu: cpu.v == 0,
    "hi": lambda cpu: cpu.c == 1 and cpu.z == 0,
    "ls": lambda cpu: not (cpu.c == 1 and cpu.z == 0),
    "ge": lambda cpu: cpu.n == cpu.v,
    "lt": lambda cpu: cpu.n != cpu.v,
    "gt": lambda cpu: cpu.z == 0 and cpu.n == cpu.v,
    "le": lambda cpu: not (cpu.z == 0 and cpu.n == cpu.v),
    "al": lambda cpu: True,
    "nv": lambda cpu: True,
}


def _t_add_imm(regs, d, a_i, b, width, sub):
    if width == 64:
        if sub:
            def run():
                regs[d] = (regs[a_i] - b) & MASK64
        else:
            def run():
                regs[d] = (regs[a_i] + b) & MASK64
    else:
        if sub:
            def run():
                regs[d] = ((regs[a_i] & MASK32) - b) & MASK32
        else:
            def run():
                regs[d] = ((regs[a_i] & MASK32) + b) & MASK32
    return run


def _t_add_reg(regs, d, a_i, b_i, width, sub):
    if width == 64:
        if sub:
            def run():
                regs[d] = (regs[a_i] - regs[b_i]) & MASK64
        else:
            def run():
                regs[d] = (regs[a_i] + regs[b_i]) & MASK64
    else:
        if sub:
            def run():
                regs[d] = ((regs[a_i] & MASK32)
                           - (regs[b_i] & MASK32)) & MASK32
        else:
            def run():
                regs[d] = ((regs[a_i] & MASK32)
                           + (regs[b_i] & MASK32)) & MASK32
    return run


def _t_add_uxtw(regs, d, a_i, w_i):
    """``add Xd, Xn, wM, uxtw`` — the LFI guard form, unfused."""
    def run():
        regs[d] = (regs[a_i] + (regs[w_i] & MASK32)) & MASK64
    return run


def _flag_thunk(cpu, regs, d, a_i, width, get_b, carry_in):
    """Shared flags body for adds/subs/cmp/cmn (b already inverted for
    subtraction).  Replicates Machine._set_add_flags exactly."""
    mask = (1 << width) - 1
    top = 1 << (width - 1)
    wrap = 1 << width
    if width == 64:
        def read_a():
            return regs[a_i]
    else:
        def read_a():
            return regs[a_i] & MASK32

    def run():
        a = read_a()
        b = get_b()
        raw = a + b + carry_in
        result = raw & mask
        cpu.n = 1 if result & top else 0
        cpu.z = 1 if result == 0 else 0
        cpu.c = 1 if raw > mask else 0
        sa = a - wrap if a & top else a
        sb = b - wrap if b & top else b
        sres = result - wrap if result & top else result
        cpu.v = 1 if (sa + sb + carry_in != sres) else 0
        if d is not None:
            regs[d] = result
    return run


def _t_addsub_flags_imm(cpu, regs, d, a_i, b, width, sub):
    mask = (1 << width) - 1
    if sub:
        b = (~b) & mask
        carry = 1
    else:
        b = b & mask
        carry = 0
    return _flag_thunk(cpu, regs, d, a_i, width, lambda: b, carry)


def _t_addsub_flags_reg(cpu, regs, d, a_i, b_i, width, sub):
    mask = (1 << width) - 1
    if width == 64:
        if sub:
            def get_b():
                return (~regs[b_i]) & mask
        else:
            def get_b():
                return regs[b_i]
    else:
        if sub:
            def get_b():
                return (~(regs[b_i] & MASK32)) & mask
        else:
            def get_b():
                return regs[b_i] & MASK32
    return _flag_thunk(cpu, regs, d, a_i, width, get_b, 1 if sub else 0)


def _t_mov_const(regs, d, const):
    def run():
        regs[d] = const
    return run


def _t_mov_reg(regs, d, s_i, width):
    if width == 64:
        def run():
            regs[d] = regs[s_i]
    else:
        def run():
            regs[d] = regs[s_i] & MASK32
    return run


def _t_movk(regs, d, keep, bits, width):
    if width == 64:
        def run():
            regs[d] = (regs[d] & keep) | bits
    else:
        def run():
            regs[d] = ((regs[d] & MASK32) & keep) | bits
    return run


def _t_logic_imm(regs, d, a_i, b, width, op):
    if width == 64:
        if op == "and":
            def run():
                regs[d] = regs[a_i] & b
        elif op == "orr":
            def run():
                regs[d] = regs[a_i] | b
        else:
            def run():
                regs[d] = regs[a_i] ^ b
    else:
        if op == "and":
            def run():
                regs[d] = (regs[a_i] & MASK32) & b
        elif op == "orr":
            def run():
                regs[d] = (regs[a_i] & MASK32) | b
        else:
            def run():
                regs[d] = (regs[a_i] & MASK32) ^ b
    return run


def _t_logic_reg(regs, d, a_i, b_i, width, op):
    if width == 64:
        if op == "and":
            def run():
                regs[d] = regs[a_i] & regs[b_i]
        elif op == "orr":
            def run():
                regs[d] = regs[a_i] | regs[b_i]
        else:
            def run():
                regs[d] = regs[a_i] ^ regs[b_i]
    else:
        if op == "and":
            def run():
                regs[d] = (regs[a_i] & regs[b_i]) & MASK32
        elif op == "orr":
            def run():
                regs[d] = (regs[a_i] | regs[b_i]) & MASK32
        else:
            def run():
                regs[d] = (regs[a_i] ^ regs[b_i]) & MASK32
    return run


def _t_shift_imm(regs, d, a_i, amount, width, op):
    mask = (1 << width) - 1
    if op == "lsl":
        if width == 64:
            def run():
                regs[d] = (regs[a_i] << amount) & MASK64
        else:
            def run():
                regs[d] = ((regs[a_i] & MASK32) << amount) & MASK32
    elif op == "lsr":
        if width == 64:
            def run():
                regs[d] = regs[a_i] >> amount
        else:
            def run():
                regs[d] = (regs[a_i] & MASK32) >> amount
    else:  # asr
        top = 1 << (width - 1)
        wrap = 1 << width

        def run():
            a = regs[a_i] if width == 64 else regs[a_i] & MASK32
            if a & top:
                a -= wrap
            regs[d] = (a >> amount) & mask
    return run


def _t_addsub_shifted(regs, d, a_i, b_i, amount, width, sub):
    """``add/sub Xd, Xn, Xm, lsl #k`` (array indexing in the FP kernels)."""
    if width == 64:
        if sub:
            def run():
                regs[d] = (regs[a_i]
                           - ((regs[b_i] << amount) & MASK64)) & MASK64
        else:
            def run():
                regs[d] = (regs[a_i]
                           + ((regs[b_i] << amount) & MASK64)) & MASK64
    else:
        if sub:
            def run():
                regs[d] = ((regs[a_i] & MASK32)
                           - (((regs[b_i] & MASK32) << amount)
                              & MASK32)) & MASK32
        else:
            def run():
                regs[d] = ((regs[a_i] & MASK32)
                           + (((regs[b_i] & MASK32) << amount)
                              & MASK32)) & MASK32
    return run


def _t_madd(regs, d, n_i, m_i, a_i, width, msub):
    mask = (1 << width) - 1
    if width == 64:
        if msub:
            def run():
                regs[d] = (regs[a_i] - regs[n_i] * regs[m_i]) & mask
        else:
            def run():
                regs[d] = (regs[a_i] + regs[n_i] * regs[m_i]) & mask
    else:
        if msub:
            def run():
                regs[d] = ((regs[a_i] & MASK32)
                           - (regs[n_i] & MASK32)
                           * (regs[m_i] & MASK32)) & mask
        else:
            def run():
                regs[d] = ((regs[a_i] & MASK32)
                           + (regs[n_i] & MASK32)
                           * (regs[m_i] & MASK32)) & mask
    return run


def _t_bitfield(regs, d, n_i, width, immr, imms, signed):
    """ubfm/sbfm with precomputed field geometry (lsr/lsl/ubfx aliases)."""
    mask = (1 << width) - 1
    if imms >= immr:
        length = imms - immr + 1
        rshift = immr
        shift = 0
    else:
        length = imms + 1
        rshift = 0
        shift = width - immr
    fmask = (1 << length) - 1
    sign_bit = 1 << (length - 1)
    sign_fill = mask & ~((1 << min(shift + length, width)) - 1)
    src64 = width == 64

    def run():
        src = regs[n_i] if src64 else regs[n_i] & MASK32
        field = (src >> rshift) & fmask
        result = (field << shift) & mask
        if signed and field & sign_bit:
            result |= sign_fill
        regs[d] = result
    return run


# -- scalar floating point factories ------------------------------------------

def _t_fp2(vregs, d, n_i, m_i, bits, op, b2f, f2b):
    """Scalar fadd/fsub/fmul with equal-width d/s operands."""
    vmask = (1 << bits) - 1
    if op == "fadd":
        def run():
            vregs[d] = f2b(b2f(vregs[n_i] & vmask, bits)
                           + b2f(vregs[m_i] & vmask, bits), bits)
    elif op == "fsub":
        def run():
            vregs[d] = f2b(b2f(vregs[n_i] & vmask, bits)
                           - b2f(vregs[m_i] & vmask, bits), bits)
    else:  # fmul
        def run():
            vregs[d] = f2b(b2f(vregs[n_i] & vmask, bits)
                           * b2f(vregs[m_i] & vmask, bits), bits)
    return run


def _t_fp3(vregs, d, n_i, m_i, a_i, bits, msub, b2f, f2b):
    """Scalar fmadd/fmsub (the FP kernels' hottest data op)."""
    vmask = (1 << bits) - 1
    if msub:
        def run():
            prod = b2f(vregs[n_i] & vmask, bits) \
                * b2f(vregs[m_i] & vmask, bits)
            vregs[d] = f2b(b2f(vregs[a_i] & vmask, bits) - prod, bits)
    else:
        def run():
            prod = b2f(vregs[n_i] & vmask, bits) \
                * b2f(vregs[m_i] & vmask, bits)
            vregs[d] = f2b(b2f(vregs[a_i] & vmask, bits) + prod, bits)
    return run


# -- vector integer factories -------------------------------------------------

def _t_vec3_bitwise(vregs, d, n_i, m_i, full_mask, op):
    """Lane-independent vector and/orr/eor collapse to one bitop."""
    if op == "and":
        def run():
            vregs[d] = (vregs[n_i] & vregs[m_i]) & full_mask
    elif op == "orr":
        def run():
            vregs[d] = (vregs[n_i] | vregs[m_i]) & full_mask
    else:  # eor
        def run():
            vregs[d] = (vregs[n_i] ^ vregs[m_i]) & full_mask
    return run


def _t_vec3_lanes(vregs, d, n_i, m_i, lanes, bits, op):
    """Lane-wise vector add/sub/mul over a same-arrangement triple."""
    mask = (1 << bits) - 1
    shifts = tuple(range(0, lanes * bits, bits))
    if op == "add":
        def run():
            a = vregs[n_i]
            b = vregs[m_i]
            raw = 0
            for sh in shifts:
                raw |= ((((a >> sh) & mask) + ((b >> sh) & mask))
                        & mask) << sh
            vregs[d] = raw
    elif op == "sub":
        def run():
            a = vregs[n_i]
            b = vregs[m_i]
            raw = 0
            for sh in shifts:
                raw |= ((((a >> sh) & mask) - ((b >> sh) & mask))
                        & mask) << sh
            vregs[d] = raw
    else:  # mul
        def run():
            a = vregs[n_i]
            b = vregs[m_i]
            raw = 0
            for sh in shifts:
                raw |= ((((a >> sh) & mask) * ((b >> sh) & mask))
                        & mask) << sh
            vregs[d] = raw
    return run


# -- memory op factories ------------------------------------------------------

def _t_load(regs, cpu, read, t, base_i, imm, size, signed_bits, tbits,
            sp_base):
    """Loads with a register+immediate address into a GPR target."""
    if signed_bits is None:
        if sp_base:
            def run():
                addr = (cpu.sp + imm) & MASK64
                regs[t] = int.from_bytes(read(addr, size), "little")
                return addr
        else:
            def run():
                addr = (regs[base_i] + imm) & MASK64
                regs[t] = int.from_bytes(read(addr, size), "little")
                return addr
    else:
        sign = 1 << (signed_bits - 1)
        wrap = 1 << signed_bits
        tmask = MASK64 if tbits == 64 else MASK32
        if sp_base:
            def run():
                addr = (cpu.sp + imm) & MASK64
                raw = int.from_bytes(read(addr, size), "little")
                if raw & sign:
                    raw -= wrap
                regs[t] = raw & tmask
                return addr
        else:
            def run():
                addr = (regs[base_i] + imm) & MASK64
                raw = int.from_bytes(read(addr, size), "little")
                if raw & sign:
                    raw -= wrap
                regs[t] = raw & tmask
                return addr
    return run


def _t_load_uxtw(regs, read, t, base_i, w_i, size, signed_bits, tbits):
    """``ldr Xt, [x21, wM, uxtw]`` — the zero-instruction guard mode."""
    if signed_bits is None:
        def run():
            addr = (regs[base_i] + (regs[w_i] & MASK32)) & MASK64
            regs[t] = int.from_bytes(read(addr, size), "little")
            return addr
    else:
        sign = 1 << (signed_bits - 1)
        wrap = 1 << signed_bits
        tmask = MASK64 if tbits == 64 else MASK32

        def run():
            addr = (regs[base_i] + (regs[w_i] & MASK32)) & MASK64
            raw = int.from_bytes(read(addr, size), "little")
            if raw & sign:
                raw -= wrap
            regs[t] = raw & tmask
            return addr
    return run


def _t_store(regs, cpu, write, t, base_i, imm, size, sp_base, zero_src):
    smask = (1 << (size * 8)) - 1
    if sp_base:
        if zero_src:
            data = (0).to_bytes(size, "little")

            def run():
                addr = (cpu.sp + imm) & MASK64
                write(addr, data)
                return addr
        else:
            def run():
                addr = (cpu.sp + imm) & MASK64
                write(addr, (regs[t] & smask).to_bytes(size, "little"))
                return addr
    else:
        if zero_src:
            data = (0).to_bytes(size, "little")

            def run():
                addr = (regs[base_i] + imm) & MASK64
                write(addr, data)
                return addr
        else:
            def run():
                addr = (regs[base_i] + imm) & MASK64
                write(addr, (regs[t] & smask).to_bytes(size, "little"))
                return addr
    return run


def _t_store_uxtw(regs, write, t, base_i, w_i, size, zero_src):
    smask = (1 << (size * 8)) - 1
    if zero_src:
        data = (0).to_bytes(size, "little")

        def run():
            addr = (regs[base_i] + (regs[w_i] & MASK32)) & MASK64
            write(addr, data)
            return addr
    else:
        def run():
            addr = (regs[base_i] + (regs[w_i] & MASK32)) & MASK64
            write(addr, (regs[t] & smask).to_bytes(size, "little"))
            return addr
    return run


def _t_vload(vregs, regs, cpu, read, t, base_i, imm, size, vmask, sp_base):
    """FP/SIMD register load (``ldr d0, [x1, #8]`` and friends)."""
    if sp_base:
        def run():
            addr = (cpu.sp + imm) & MASK64
            vregs[t] = int.from_bytes(read(addr, size), "little") & vmask
            return addr
    else:
        def run():
            addr = (regs[base_i] + imm) & MASK64
            vregs[t] = int.from_bytes(read(addr, size), "little") & vmask
            return addr
    return run


def _t_vload_uxtw(vregs, regs, read, t, base_i, w_i, size, vmask):
    def run():
        addr = (regs[base_i] + (regs[w_i] & MASK32)) & MASK64
        vregs[t] = int.from_bytes(read(addr, size), "little") & vmask
        return addr
    return run


def _t_vstore(vregs, regs, cpu, write, t, base_i, imm, size, vmask, sp_base):
    if sp_base:
        def run():
            addr = (cpu.sp + imm) & MASK64
            write(addr, (vregs[t] & vmask).to_bytes(size, "little"))
            return addr
    else:
        def run():
            addr = (regs[base_i] + imm) & MASK64
            write(addr, (vregs[t] & vmask).to_bytes(size, "little"))
            return addr
    return run


def _t_vstore_uxtw(vregs, regs, write, t, base_i, w_i, size, vmask):
    def run():
        addr = (regs[base_i] + (regs[w_i] & MASK32)) & MASK64
        write(addr, (vregs[t] & vmask).to_bytes(size, "little"))
        return addr
    return run


def _t_ldp(regs, cpu, read, t1, t2, base_i, imm, sp_base):
    if sp_base:
        def run():
            addr = (cpu.sp + imm) & MASK64
            regs[t1] = int.from_bytes(read(addr, 8), "little")
            regs[t2] = int.from_bytes(read(addr + 8, 8), "little")
            return addr
    else:
        def run():
            addr = (regs[base_i] + imm) & MASK64
            regs[t1] = int.from_bytes(read(addr, 8), "little")
            regs[t2] = int.from_bytes(read(addr + 8, 8), "little")
            return addr
    return run


def _t_stp(regs, cpu, write, t1, t2, base_i, imm, sp_base):
    if sp_base:
        def run():
            addr = (cpu.sp + imm) & MASK64
            write(addr, (regs[t1] & MASK64).to_bytes(8, "little"))
            write(addr + 8, (regs[t2] & MASK64).to_bytes(8, "little"))
            return addr
    else:
        def run():
            addr = (regs[base_i] + imm) & MASK64
            write(addr, (regs[t1] & MASK64).to_bytes(8, "little"))
            write(addr + 8, (regs[t2] & MASK64).to_bytes(8, "little"))
            return addr
    return run


# -- branch factories ---------------------------------------------------------

def _t_b(cpu, target):
    def run():
        cpu.pc = target
        return True
    return run


def _t_bl(cpu, regs, target, link):
    def run():
        regs[30] = link
        cpu.pc = target
        return True
    return run


def _t_bcond(cpu, cond, target):
    holds = _COND_EVAL[cond]

    def run():
        if holds(cpu):
            cpu.pc = target
            return True
        return False
    return run


def _t_cb(cpu, regs, t_i, width, want_zero, target):
    if width == 64:
        def read_t():
            return regs[t_i]
    else:
        def read_t():
            return regs[t_i] & MASK32
    if want_zero:
        def run():
            if read_t() == 0:
                cpu.pc = target
                return True
            return False
    else:
        def run():
            if read_t() != 0:
                cpu.pc = target
                return True
            return False
    return run


def _t_tb(cpu, regs, t_i, bit, want_set, target):
    if want_set:
        def run():
            if (regs[t_i] >> bit) & 1:
                cpu.pc = target
                return True
            return False
    else:
        def run():
            if not ((regs[t_i] >> bit) & 1):
                cpu.pc = target
                return True
            return False
    return run


def _t_br(cpu, regs, t_i):
    def run():
        cpu.pc = regs[t_i] & MASK64
        return True
    return run


def _t_blr(cpu, regs, t_i, link):
    def run():
        target = regs[t_i] & MASK64
        regs[30] = link
        cpu.pc = target
        return True
    return run


def _t_trap(cpu, pc, exc_factory):
    def run():
        cpu.pc = pc
        raise exc_factory()
    return run


# -- fused guard factories ----------------------------------------------------

def _t_fused_guard_load(regs, read, g_d, g_s, t, imm, size, signed_bits,
                        tbits, base_i):
    """``add Xg, x21, wS, uxtw`` + ``ldr Xt, [Xg(, #imm)]``."""
    if signed_bits is None:
        def run():
            g = (regs[base_i] + (regs[g_s] & MASK32)) & MASK64
            regs[g_d] = g
            addr = (g + imm) & MASK64
            regs[t] = int.from_bytes(read(addr, size), "little")
            return addr
    else:
        sign = 1 << (signed_bits - 1)
        wrap = 1 << signed_bits
        tmask = MASK64 if tbits == 64 else MASK32

        def run():
            g = (regs[base_i] + (regs[g_s] & MASK32)) & MASK64
            regs[g_d] = g
            addr = (g + imm) & MASK64
            raw = int.from_bytes(read(addr, size), "little")
            if raw & sign:
                raw -= wrap
            regs[t] = raw & tmask
            return addr
    return run


def _t_fused_guard_store(regs, write, g_d, g_s, t, imm, size, base_i,
                         zero_src):
    smask = (1 << (size * 8)) - 1
    if zero_src:
        data = (0).to_bytes(size, "little")

        def run():
            g = (regs[base_i] + (regs[g_s] & MASK32)) & MASK64
            regs[g_d] = g
            addr = (g + imm) & MASK64
            write(addr, data)
            return addr
    else:
        def run():
            g = (regs[base_i] + (regs[g_s] & MASK32)) & MASK64
            regs[g_d] = g
            addr = (g + imm) & MASK64
            write(addr, (regs[t] & smask).to_bytes(size, "little"))
            return addr
    return run


def _t_fused_offset_load(regs, read, o_d, o_s, o_imm, o_sub, t, size,
                         signed_bits, tbits, base_i):
    """``add wD, wS, #imm`` + ``ldr Xt, [x21, wD, uxtw]`` (Table 3)."""
    if signed_bits is None:
        def run():
            if o_sub:
                w = ((regs[o_s] & MASK32) - o_imm) & MASK32
            else:
                w = ((regs[o_s] & MASK32) + o_imm) & MASK32
            regs[o_d] = w
            addr = (regs[base_i] + w) & MASK64
            regs[t] = int.from_bytes(read(addr, size), "little")
            return addr
    else:
        sign = 1 << (signed_bits - 1)
        wrap = 1 << signed_bits
        tmask = MASK64 if tbits == 64 else MASK32

        def run():
            if o_sub:
                w = ((regs[o_s] & MASK32) - o_imm) & MASK32
            else:
                w = ((regs[o_s] & MASK32) + o_imm) & MASK32
            regs[o_d] = w
            addr = (regs[base_i] + w) & MASK64
            raw = int.from_bytes(read(addr, size), "little")
            if raw & sign:
                raw -= wrap
            regs[t] = raw & tmask
            return addr
    return run


def _t_fused_offset_store(regs, write, o_d, o_s, o_imm, o_sub, t, size,
                          base_i, zero_src):
    smask = (1 << (size * 8)) - 1
    if zero_src:
        data = (0).to_bytes(size, "little")

        def run():
            if o_sub:
                w = ((regs[o_s] & MASK32) - o_imm) & MASK32
            else:
                w = ((regs[o_s] & MASK32) + o_imm) & MASK32
            regs[o_d] = w
            addr = (regs[base_i] + w) & MASK64
            write(addr, data)
            return addr
    else:
        def run():
            if o_sub:
                w = ((regs[o_s] & MASK32) - o_imm) & MASK32
            else:
                w = ((regs[o_s] & MASK32) + o_imm) & MASK32
            regs[o_d] = w
            addr = (regs[base_i] + w) & MASK64
            write(addr, (regs[t] & smask).to_bytes(size, "little"))
            return addr
    return run


def _t_fused_guard_branch(cpu, regs, g_d, g_s, base_i, link):
    """``add Xg, x21, wS, uxtw`` + ``br/blr/ret Xg`` (branch guard)."""
    if link is None:
        def run():
            g = (regs[base_i] + (regs[g_s] & MASK32)) & MASK64
            regs[g_d] = g
            cpu.pc = g
    else:
        def run():
            g = (regs[base_i] + (regs[g_s] & MASK32)) & MASK64
            regs[g_d] = g
            regs[30] = link
            cpu.pc = g
    return run


def _t_fused_sp_guard(cpu, regs, w_d, base_i):
    """``mov w22, wsp`` + ``add sp, x21, x22`` (sp guard pair)."""
    def run():
        w = cpu.sp & MASK32
        regs[w_d] = w
        cpu.sp = (regs[base_i] + w) & MASK64
    return run


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

class SuperblockEngine:
    """Block cache + translator + block-dispatch loops for one Machine."""

    def __init__(self, machine):
        # Imported lazily: machine.py imports this module at its top.
        from . import machine as M
        self._M = M
        self.machine = machine
        self._blocks: Dict[int, Superblock] = {}
        #: Counters exposed for tests and diagnostics.
        self.translations = 0
        self.invalidations = 0

    # -- cache management ---------------------------------------------------

    def invalidate_range(self, address: int, size: int) -> None:
        """Drop every block overlapping ``[address, address + size)``."""
        blocks = self._blocks
        if not blocks:
            return
        end = address + size
        dead = [start for start, block in blocks.items()
                if start < end and block.end > address]
        for start in dead:
            del blocks[start]
        if dead:
            self.invalidations += len(dead)

    def invalidate_all(self) -> None:
        self.invalidations += len(self._blocks)
        self._blocks.clear()

    @property
    def cached_blocks(self) -> int:
        return len(self._blocks)

    def block_at(self, pc: int) -> Optional[Superblock]:
        return self._blocks.get(pc)

    # -- driving ------------------------------------------------------------

    def run(self, fuel: Optional[int]) -> None:
        """Run blocks until a trap; raises OutOfFuel when fuel runs out.

        Semantics match ``Machine.run``'s stepping loop exactly: with
        fuel ``n``, exactly ``n`` instructions retire (the ``n+1``-th may
        raise its trap first) and then ``OutOfFuel`` is raised.
        """
        machine = self.machine
        remaining = fuel if fuel is not None else (1 << 62)
        if remaining <= 0:
            raise self._M.OutOfFuel()
        if machine._costing is not None:
            remaining = self._run_costed(remaining)
        else:
            remaining = self._run_fast(remaining)
        # A block larger than the remaining fuel: fall back to stepping
        # for the tail of the slice, then report preemption.
        step = machine.step
        for _ in range(remaining):
            step()
        raise self._M.OutOfFuel()

    def _run_costed(self, remaining: int) -> int:
        M = self._M
        machine = self.machine
        cpu = machine.cpu
        host = machine._host_entries
        blocks = self._blocks
        translate = self._translate
        costing = machine._costing
        model = machine.model
        tlb = machine.tlb
        l1 = machine.l1
        l2 = machine.l2
        tlb_lookup = tlb.lookup if tlb is not None else None
        l1_lookup = l1.lookup if l1 is not None else None
        l2_lookup = l2.lookup if l2 is not None else None
        walk = model.tlb_walk_cycles * machine.tlb_walk_scale
        walk_bw = walk * model.tlb_walk_issue_fraction
        l1_cyc = model.l1_miss_cycles
        l1_bw = model.l1_miss_issue
        l2_cyc = model.l2_miss_cycles
        l2_bw = model.l2_miss_issue
        tb = model.taken_branch_cost
        ready = costing.ready
        ready_get = ready.get
        t_issue = costing.t_issue
        t_done = costing.t_done
        n = 0
        kind = pc = fused = None
        try:
            while True:
                pc0 = cpu.pc
                if pc0 in host:
                    raise M.HostCallTrap(pc0, pc0)
                block = blocks.get(pc0)
                if block is None:
                    block = translate(pc0)
                count = block.count
                if count > remaining:
                    return remaining
                taken = False
                try:
                    for kind, exec_, pc, icost, lat, uses, defs, fused \
                            in block.ops:
                        if kind == 0:  # simple: no memory, never taken
                            exec_()
                            t_issue += icost
                            start = t_issue
                            for key in uses:
                                t = ready_get(key)
                                if t is not None and t > start:
                                    start = t
                            finish = start + lat
                            for key in defs:
                                ready[key] = finish
                            if finish > t_done:
                                t_done = finish
                            n += 1
                        elif kind == 1:  # load/store
                            addr = exec_()
                            extra = 0.0
                            bw = 0.0
                            if tlb_lookup is not None \
                                    and not tlb_lookup(addr):
                                extra += walk
                                bw += walk_bw
                            if l1_lookup is not None and not l1_lookup(addr):
                                extra += l1_cyc
                                bw += l1_bw
                                if not l2_lookup(addr):
                                    extra += l2_cyc
                                    bw += l2_bw
                            t_issue += icost + bw
                            start = t_issue
                            for key in uses:
                                t = ready_get(key)
                                if t is not None and t > start:
                                    start = t
                            finish = start + lat + extra
                            for key in defs:
                                ready[key] = finish
                            if finish > t_done:
                                t_done = finish
                            n += 1
                        elif kind == 2:  # branch terminator
                            taken = exec_()
                            if taken:
                                t_issue += icost + tb
                            else:
                                t_issue += icost
                            start = t_issue
                            for key in uses:
                                t = ready_get(key)
                                if t is not None and t > start:
                                    start = t
                            finish = start + lat
                            for key in defs:
                                ready[key] = finish
                            if finish > t_done:
                                t_done = finish
                            n += 1
                        elif kind == 4:  # fused guard + load/store
                            addr = exec_()
                            g_icost, g_lat, g_uses, g_defs, _a_pc = fused
                            t_issue += g_icost
                            start = t_issue
                            for key in g_uses:
                                t = ready_get(key)
                                if t is not None and t > start:
                                    start = t
                            finish = start + g_lat
                            for key in g_defs:
                                ready[key] = finish
                            if finish > t_done:
                                t_done = finish
                            extra = 0.0
                            bw = 0.0
                            if tlb_lookup is not None \
                                    and not tlb_lookup(addr):
                                extra += walk
                                bw += walk_bw
                            if l1_lookup is not None and not l1_lookup(addr):
                                extra += l1_cyc
                                bw += l1_bw
                                if not l2_lookup(addr):
                                    extra += l2_cyc
                                    bw += l2_bw
                            t_issue += icost + bw
                            start = t_issue
                            for key in uses:
                                t = ready_get(key)
                                if t is not None and t > start:
                                    start = t
                            finish = start + lat + extra
                            for key in defs:
                                ready[key] = finish
                            if finish > t_done:
                                t_done = finish
                            n += 2
                        elif kind == 5:  # fused guard + indirect branch
                            exec_()
                            g_icost, g_lat, g_uses, g_defs, _a_pc = fused
                            t_issue += g_icost
                            start = t_issue
                            for key in g_uses:
                                t = ready_get(key)
                                if t is not None and t > start:
                                    start = t
                            finish = start + g_lat
                            for key in g_defs:
                                ready[key] = finish
                            if finish > t_done:
                                t_done = finish
                            t_issue += icost + tb
                            start = t_issue
                            for key in uses:
                                t = ready_get(key)
                                if t is not None and t > start:
                                    start = t
                            finish = start + lat
                            for key in defs:
                                ready[key] = finish
                            if finish > t_done:
                                t_done = finish
                            n += 2
                            taken = True
                        elif kind == 6:  # fused sp guard pair
                            exec_()
                            g_icost, g_lat, g_uses, g_defs, _a_pc = fused
                            t_issue += g_icost
                            start = t_issue
                            for key in g_uses:
                                t = ready_get(key)
                                if t is not None and t > start:
                                    start = t
                            finish = start + g_lat
                            for key in g_defs:
                                ready[key] = finish
                            if finish > t_done:
                                t_done = finish
                            t_issue += icost
                            start = t_issue
                            for key in uses:
                                t = ready_get(key)
                                if t is not None and t > start:
                                    start = t
                            finish = start + lat
                            for key in defs:
                                ready[key] = finish
                            if finish > t_done:
                                t_done = finish
                            n += 2
                        else:  # generic handler semantics
                            taken, addr = exec_()
                            extra = 0.0
                            bw = 0.0
                            if addr is not None:
                                if tlb_lookup is not None \
                                        and not tlb_lookup(addr):
                                    extra += walk
                                    bw += walk_bw
                                if l1_lookup is not None \
                                        and not l1_lookup(addr):
                                    extra += l1_cyc
                                    bw += l1_bw
                                    if not l2_lookup(addr):
                                        extra += l2_cyc
                                        bw += l2_bw
                            if taken:
                                t_issue += icost + tb + bw
                            else:
                                t_issue += icost + bw
                            start = t_issue
                            for key in uses:
                                t = ready_get(key)
                                if t is not None and t > start:
                                    start = t
                            finish = start + lat + extra
                            for key in defs:
                                ready[key] = finish
                            if finish > t_done:
                                t_done = finish
                            n += 1
                except MemoryFault as fault:
                    if kind == 4:
                        # The guard half retired before the access faulted.
                        g_icost, g_lat, g_uses, g_defs, a_pc = fused
                        t_issue += g_icost
                        start = t_issue
                        for key in g_uses:
                            t = ready_get(key)
                            if t is not None and t > start:
                                start = t
                        finish = start + g_lat
                        for key in g_defs:
                            ready[key] = finish
                        if finish > t_done:
                            t_done = finish
                        n += 1
                        cpu.pc = a_pc
                        raise M.MemTrap(a_pc, fault) from None
                    cpu.pc = pc
                    raise M.MemTrap(pc, fault) from None
                if not taken:
                    cpu.pc = block.next_pc
                remaining -= count
                if remaining == 0:
                    raise M.OutOfFuel()
        finally:
            costing.t_issue = t_issue
            costing.t_done = t_done
            machine.instret += n

    def _run_fast(self, remaining: int) -> int:
        """Block dispatch without a cost model (fuzz oracles)."""
        M = self._M
        machine = self.machine
        cpu = machine.cpu
        host = machine._host_entries
        blocks = self._blocks
        translate = self._translate
        n = 0
        kind = pc = fused = None
        try:
            while True:
                pc0 = cpu.pc
                if pc0 in host:
                    raise M.HostCallTrap(pc0, pc0)
                block = blocks.get(pc0)
                if block is None:
                    block = translate(pc0)
                count = block.count
                if count > remaining:
                    return remaining
                taken = False
                try:
                    for kind, exec_, pc, icost, lat, uses, defs, fused \
                            in block.ops:
                        if kind == 0 or kind == 1:
                            exec_()
                            n += 1
                        elif kind == 2:
                            taken = exec_()
                            n += 1
                        elif kind == 4 or kind == 6:
                            exec_()
                            n += 2
                        elif kind == 5:
                            exec_()
                            n += 2
                            taken = True
                        else:
                            taken, _addr = exec_()
                            n += 1
                except MemoryFault as fault:
                    if kind == 4:
                        a_pc = fused[4]
                        n += 1
                        cpu.pc = a_pc
                        raise M.MemTrap(a_pc, fault) from None
                    cpu.pc = pc
                    raise M.MemTrap(pc, fault) from None
                if not taken:
                    cpu.pc = block.next_pc
                remaining -= count
                if remaining == 0:
                    raise M.OutOfFuel()
        finally:
            machine.instret += n

    # -- translation --------------------------------------------------------

    def _translate(self, start: int) -> Superblock:
        """Predecode the straight-line run starting at ``start``.

        Raises the same trap ``Machine.step`` would raise if the *first*
        instruction is unfetchable or undecodable; later problems simply
        end the block (the next dispatch raises them with the exact pc).
        """
        M = self._M
        machine = self.machine
        memory = machine.memory
        dispatch = machine._exec
        host = machine._host_entries
        page_size = memory.page_size
        limit = (start // page_size + 1) * page_size

        decoded: List[Tuple[int, Instruction, object]] = []
        pc = start
        while pc < limit:
            if pc in host and pc != start:
                break
            try:
                word = memory.fetch(pc)
            except MemoryFault as fault:
                if not decoded:
                    raise M.MemTrap(pc, fault) from None
                break
            inst = decode_word(word, pc)
            handler = dispatch.get(inst.base) if inst is not None else None
            if handler is None:
                if not decoded:
                    raise M.UnknownInstructionTrap(pc, word)
                break
            decoded.append((pc, inst, handler))
            if inst.base in _TERMINATOR_BASES:
                break
            pc += 4

        guard_map = machine.guard_map
        ops = []
        count = 0
        i = 0
        while i < len(decoded):
            pc_i, inst, handler = decoded[i]
            if guard_map and pc_i in guard_map and i + 1 < len(decoded):
                fused = self._try_fuse(pc_i, inst, decoded[i + 1][1])
                if fused is not None:
                    ops.append(fused)
                    count += 2
                    i += 2
                    continue
            ops.append(self._build_op(pc_i, inst, handler))
            count += 1
            i += 1

        last_pc = decoded[-1][0]
        block = Superblock(start, last_pc + 4, ops, count, last_pc + 4)
        self._blocks[start] = block
        self.translations += 1
        return block

    # -- op construction ----------------------------------------------------

    def _cost_entry(self, inst: Instruction):
        """(icost, lat, uses, defs) exactly as Machine.step caches them."""
        M = self._M
        machine = self.machine
        klass = M._classify(inst)
        model = machine.model
        if model is not None:
            icost = model.issue_cost(klass)
            lat = model.result_latency(klass)
        else:
            icost = lat = 0.0
        uses = tuple(k for k in (M._reg_key(r) for r in inst.uses())
                     if k is not None)
        defs = tuple(k for k in (M._reg_key(r) for r in inst.defs())
                     if k is not None)
        return icost, lat, uses, defs

    def _build_op(self, pc: int, inst: Instruction, handler) -> tuple:
        icost, lat, uses, defs = self._cost_entry(inst)
        spec = self._specialize(pc, inst)
        if spec is None:
            exec_ = partial(handler, inst)
            if inst.base in _PC_READING:
                exec_ = _pc_fix(self.machine.cpu, pc, exec_)
            return (K_GENERIC, exec_, pc, icost, lat, uses, defs, None)
        kind, exec_ = spec
        return (kind, exec_, pc, icost, lat, uses, defs, None)

    def _specialize(self, pc: int, inst: Instruction):
        """Build a specialized thunk, or None for the generic fallback."""
        M = self._M
        machine = self.machine
        cpu = machine.cpu
        regs = cpu.regs
        mem = machine.memory
        base = inst.base
        m = inst.mnemonic
        ops = inst.operands

        # -- traps (block terminators; pc set before the raise) -----------
        if base == "svc":
            imm = ops[0].value if ops else 0
            return (K_GENERIC,
                    _t_trap(cpu, pc, lambda: M.SvcTrap(pc, imm)))
        if base == "brk":
            imm = ops[0].value if ops else 0
            return (K_GENERIC,
                    _t_trap(cpu, pc, lambda: M.BrkTrap(pc, imm)))
        if base == "hlt":
            return (K_GENERIC, _t_trap(cpu, pc, lambda: M.HltTrap(pc)))

        # -- branches ------------------------------------------------------
        if base == "b":
            target = ops[0].value & MASK64 if isinstance(ops[0], Imm) \
                else None
            if target is None:
                return None
            if m == "b":
                return (K_BRANCH, _t_b(cpu, target))
            cond = self._canonical(m[2:])
            if cond is None:
                return None
            return (K_BRANCH, _t_bcond(cpu, cond, target))
        if base == "bl":
            if not isinstance(ops[0], Imm):
                return None
            return (K_BRANCH,
                    _t_bl(cpu, regs, ops[0].value & MASK64, pc + 4))
        if base == "br":
            if not _is_plain_gpr(ops[0]):
                return None
            return (K_BRANCH, _t_br(cpu, regs, ops[0].index))
        if base == "blr":
            if not _is_plain_gpr(ops[0]):
                return None
            return (K_BRANCH, _t_blr(cpu, regs, ops[0].index, pc + 4))
        if base == "ret":
            reg = ops[0] if ops else LR
            if not _is_plain_gpr(reg):
                return None
            return (K_BRANCH, _t_br(cpu, regs, reg.index))
        if base in ("cbz", "cbnz"):
            rt, target = ops
            if not _is_plain_gpr(rt) or not isinstance(target, Imm):
                return None
            return (K_BRANCH, _t_cb(cpu, regs, rt.index, rt.bits,
                                    base == "cbz", target.value & MASK64))
        if base in ("tbz", "tbnz"):
            rt, bit, target = ops
            if not _is_plain_gpr(rt) or not isinstance(target, Imm):
                return None
            return (K_BRANCH, _t_tb(cpu, regs, rt.index, bit.value,
                                    base == "tbnz", target.value & MASK64))

        # -- vector / floating point ---------------------------------------
        if ops and isinstance(ops[0], VecReg):
            return self._specialize_vector(inst)

        if base in ("fadd", "fsub", "fmul") and len(ops) == 3:
            rd, rn, rm = ops
            if all(isinstance(r, Reg) and r.is_vector for r in ops) \
                    and rd.bits == rn.bits == rm.bits \
                    and rd.bits in (32, 64):
                return (K_SIMPLE, _t_fp2(
                    cpu.vregs, rd.index, rn.index, rm.index, rd.bits,
                    base, M._bits_to_float, M._float_to_bits))
            return None

        if base in ("fmadd", "fmsub") and len(ops) == 4:
            rd, rn, rm, ra = ops
            if all(isinstance(r, Reg) and r.is_vector for r in ops) \
                    and rd.bits == rn.bits == rm.bits == ra.bits \
                    and rd.bits in (32, 64):
                return (K_SIMPLE, _t_fp3(
                    cpu.vregs, rd.index, rn.index, rm.index, ra.index,
                    rd.bits, base == "fmsub",
                    M._bits_to_float, M._float_to_bits))
            return None

        # -- data processing ----------------------------------------------
        if base in ("add", "sub", "adds", "subs"):
            rd, rn, rm = ops[0], ops[1], ops[2]
            if not isinstance(rd, Reg) or rd.is_vector:
                return None
            setflags = base.endswith("s")
            sub = base.startswith("sub")
            width = rd.bits
            if not _is_plain_gpr(rn):
                return None
            if setflags:
                if not (rd.is_zero or _is_plain_gpr(rd)):
                    return None
                d = None if rd.is_zero else rd.index
                if isinstance(rm, (Imm, ShiftedImm)):
                    b = (rm.value << rm.shift if isinstance(rm, ShiftedImm)
                         else rm.value) & ((1 << width) - 1)
                    return (K_SIMPLE, _t_addsub_flags_imm(
                        cpu, regs, d, rn.index, b, width, sub))
                if _is_plain_gpr(rm) and rm.bits == width:
                    return (K_SIMPLE, _t_addsub_flags_reg(
                        cpu, regs, d, rn.index, rm.index, width, sub))
                return None
            if not _is_plain_gpr(rd):
                return None
            if isinstance(rm, (Imm, ShiftedImm)):
                b = (rm.value << rm.shift if isinstance(rm, ShiftedImm)
                     else rm.value) & ((1 << width) - 1)
                return (K_SIMPLE, _t_add_imm(regs, rd.index, rn.index, b,
                                             width, sub))
            if isinstance(rm, Reg) and _is_plain_gpr(rm) \
                    and rm.bits == width:
                return (K_SIMPLE, _t_add_reg(regs, rd.index, rn.index,
                                             rm.index, width, sub))
            if not sub and width == 64 and isinstance(rm, Extended) \
                    and rm.kind == "uxtw" and not rm.amount \
                    and _is_plain_gpr(rm.reg):
                return (K_SIMPLE, _t_add_uxtw(regs, rd.index, rn.index,
                                              rm.reg.index))
            if isinstance(rm, Shifted) and rm.kind == "lsl" \
                    and _is_plain_gpr(rm.reg) and rm.reg.bits == width:
                return (K_SIMPLE, _t_addsub_shifted(
                    regs, rd.index, rn.index, rm.reg.index,
                    rm.amount % width, width, sub))
            return None

        if base in ("mov", "movz", "movn"):
            rd, src = ops
            if not isinstance(rd, Reg) or not _is_plain_gpr(rd):
                return None
            mask = (1 << rd.bits) - 1
            if isinstance(src, (Imm, ShiftedImm)):
                v = src.value << src.shift if isinstance(src, ShiftedImm) \
                    else src.value
                if base == "movn":
                    v = ~v
                return (K_SIMPLE, _t_mov_const(regs, rd.index, v & mask))
            if base == "mov" and _is_plain_gpr(src):
                return (K_SIMPLE, _t_mov_reg(regs, rd.index, src.index,
                                             rd.bits))
            return None

        if base == "movk":
            rd, src = ops
            if not _is_plain_gpr(rd):
                return None
            shift = src.shift if isinstance(src, ShiftedImm) else 0
            imm = src.value
            keep = ((1 << rd.bits) - 1) & ~(0xFFFF << shift)
            return (K_SIMPLE, _t_movk(regs, rd.index, keep, imm << shift,
                                      rd.bits))

        if base in ("adr", "adrp"):
            rd, src = ops
            if not _is_plain_gpr(rd) or not isinstance(src, Imm):
                return None
            return (K_SIMPLE,
                    _t_mov_const(regs, rd.index, src.value & MASK64))

        if base in ("and", "orr", "eor"):
            rd, rn, rm = ops
            if not isinstance(rd, Reg) or rd.is_vector \
                    or not _is_plain_gpr(rd) or not _is_plain_gpr(rn):
                return None
            width = rd.bits
            if isinstance(rm, Imm):
                b = rm.value & ((1 << width) - 1)
                return (K_SIMPLE, _t_logic_imm(regs, rd.index, rn.index, b,
                                               width, base))
            if isinstance(rm, Reg) and _is_plain_gpr(rm) \
                    and rm.bits == width:
                return (K_SIMPLE, _t_logic_reg(regs, rd.index, rn.index,
                                               rm.index, width, base))
            return None

        if base in ("lsl", "lsr", "asr"):
            rd, rn, src = ops
            if not _is_plain_gpr(rd) or not _is_plain_gpr(rn) \
                    or not isinstance(src, Imm):
                return None
            return (K_SIMPLE, _t_shift_imm(regs, rd.index, rn.index,
                                           src.value % rd.bits, rd.bits,
                                           base))

        if base in ("madd", "msub") and len(ops) == 4:
            rd, rn, rm, ra = ops
            if not (_is_plain_gpr(rd) and _is_plain_gpr(rn)
                    and _is_plain_gpr(rm) and _is_plain_gpr(ra)) \
                    or not rd.bits == rn.bits == rm.bits == ra.bits:
                return None
            return (K_SIMPLE, _t_madd(regs, rd.index, rn.index, rm.index,
                                      ra.index, rd.bits, base == "msub"))

        if base in ("ubfm", "sbfm") and len(ops) == 4:
            rd, rn, immr, imms = ops
            if not _is_plain_gpr(rd) or not _is_plain_gpr(rn) \
                    or rd.bits != rn.bits:
                return None
            return (K_SIMPLE, _t_bitfield(regs, rd.index, rn.index,
                                          rd.bits, immr.value, imms.value,
                                          base == "sbfm"))

        # -- memory --------------------------------------------------------
        if base in _UNSIGNED_LOADS or base in _SIGNED_LOADS:
            rt, memop = ops[0], ops[1]
            if not isinstance(memop, Mem) or isinstance(rt, VecReg):
                return None
            if rt.is_vector:
                if base in _SIGNED_LOADS:
                    return None
                form = self._mem_form(memop)
                if form is None:
                    return None
                mode, base_i, sp_base, imm, w_i = form
                size = access_bytes(inst)
                vmask = (1 << rt.bits) - 1
                if mode == "imm":
                    return (K_MEM, _t_vload(cpu.vregs, regs, cpu, mem.read,
                                            rt.index, base_i, imm, size,
                                            vmask, sp_base))
                return (K_MEM, _t_vload_uxtw(cpu.vregs, regs, mem.read,
                                             rt.index, base_i, w_i, size,
                                             vmask))
            if not (rt.is_zero or _is_plain_gpr(rt)):
                return None
            if rt.is_zero:
                return None  # prefetch-style form: keep generic
            signed_bits = _SIGNED_LOADS.get(base)
            size = access_bytes(inst)
            form = self._mem_form(memop)
            if form is None:
                return None
            mode, base_i, sp_base, imm, w_i = form
            if mode == "imm":
                return (K_MEM, _t_load(regs, cpu, mem.read, rt.index,
                                       base_i, imm, size, signed_bits,
                                       rt.bits, sp_base))
            return (K_MEM, _t_load_uxtw(regs, mem.read, rt.index, base_i,
                                        w_i, size, signed_bits, rt.bits))

        if base in _SIMPLE_STORES:
            rt, memop = ops[0], ops[1]
            if not isinstance(memop, Mem) or isinstance(rt, VecReg):
                return None
            if rt.is_vector:
                form = self._mem_form(memop)
                if form is None:
                    return None
                mode, base_i, sp_base, imm, w_i = form
                size = access_bytes(inst)
                vmask = (1 << rt.bits) - 1
                if mode == "imm":
                    return (K_MEM, _t_vstore(cpu.vregs, regs, cpu,
                                             mem.write, rt.index, base_i,
                                             imm, size, vmask, sp_base))
                return (K_MEM, _t_vstore_uxtw(cpu.vregs, regs, mem.write,
                                              rt.index, base_i, w_i, size,
                                              vmask))
            if not (rt.is_zero or _is_plain_gpr(rt)):
                return None
            size = access_bytes(inst)
            form = self._mem_form(memop)
            if form is None:
                return None
            mode, base_i, sp_base, imm, w_i = form
            t = 0 if rt.is_zero else rt.index
            if mode == "imm":
                return (K_MEM, _t_store(regs, cpu, mem.write, t, base_i,
                                        imm, size, sp_base, rt.is_zero))
            return (K_MEM, _t_store_uxtw(regs, mem.write, t, base_i, w_i,
                                         size, rt.is_zero))

        if base in ("ldp", "stp"):
            rt, rt2, memop = ops
            if rt.is_vector or rt2.is_vector or rt.bits != 64 \
                    or rt2.bits != 64:
                return None
            if not _is_plain_gpr(rt) or not _is_plain_gpr(rt2):
                return None
            form = self._mem_form(memop)
            if form is None:
                return None
            mode, base_i, sp_base, imm, _w_i = form
            if mode != "imm":
                return None
            factory = _t_ldp if base == "ldp" else _t_stp
            accessor = mem.read if base == "ldp" else mem.write
            return (K_MEM, factory(regs, cpu, accessor, rt.index,
                                   rt2.index, base_i, imm, sp_base))

        return None

    def _specialize_vector(self, inst: Instruction):
        """Lane-arranged vector ops (``add v0.4s, v1.4s, v2.4s`` etc.).

        Only the same-arrangement integer triple forms are specialized;
        anything else (float lanes, movi/dup, mixed arrangements) keeps
        the generic handler.
        """
        base = inst.base
        ops = inst.operands
        if base not in ("add", "sub", "mul", "and", "orr", "eor") \
                or len(ops) != 3:
            return None
        rd, rn, rm = ops
        if not all(isinstance(o, VecReg) for o in ops):
            return None
        if not (rd.arrangement == rn.arrangement == rm.arrangement):
            return None
        vregs = self.machine.cpu.vregs
        d, n, m = rd.reg.index, rn.reg.index, rm.reg.index
        bits = rd.lane_bits
        lanes = rd.lanes
        if base in ("and", "orr", "eor"):
            full_mask = (1 << (lanes * bits)) - 1
            return (K_SIMPLE,
                    _t_vec3_bitwise(vregs, d, n, m, full_mask, base))
        return (K_SIMPLE, _t_vec3_lanes(vregs, d, n, m, lanes, bits, base))

    @staticmethod
    def _mem_form(memop: Mem):
        """Classify a Mem operand for specialization.

        Returns ``(mode, base_index, sp_base, imm, w_index)`` where mode
        is ``"imm"`` (base register + immediate) or ``"uxtw"`` (the guard
        addressing mode), or None if the form needs the generic handler.
        """
        if memop.mode in (PRE_INDEX, POST_INDEX):
            return None
        base = memop.base
        if not isinstance(base, Reg) or base.is_zero or base.is_vector:
            return None
        sp_base = base.is_sp
        base_i = None if sp_base else base.index
        off = memop.offset
        if off is None:
            return ("imm", base_i, sp_base, 0, None)
        if isinstance(off, Imm):
            return ("imm", base_i, sp_base, off.value, None)
        if isinstance(off, Extended) and off.kind == "uxtw" \
                and not off.amount and _is_plain_gpr(off.reg) \
                and not sp_base:
            return ("uxtw", base_i, sp_base, 0, off.reg.index)
        return None

    @staticmethod
    def _canonical(cond: str) -> Optional[str]:
        try:
            cond = canonical_condition(cond)
        except ValueError:
            return None
        return cond if cond in _COND_EVAL else None

    # -- guard fusion --------------------------------------------------------

    def _try_fuse(self, pc: int, guard: Instruction,
                  access: Instruction) -> Optional[tuple]:
        """Fuse a verified guard instruction with its consumer.

        Returns a complete op tuple (kind K_FUSED_*) or None.  The op's
        main cost fields describe the *access* instruction; the ``fused``
        slot carries ``(guard_icost, guard_lat, guard_uses, guard_defs,
        access_pc)`` so the execute loop charges both entries in retire
        order — cycle accounting stays bit-identical to stepping.
        """
        machine = self.machine
        cpu = machine.cpu
        regs = cpu.regs
        mem = machine.memory
        gops = guard.operands

        fused_exec = None
        kind = None

        # Pattern 1: address guard  add Xg, Xb, wS, uxtw  + consumer.
        if guard.mnemonic == "add" and len(gops) == 3 \
                and _is_plain_gpr(gops[0]) and gops[0].bits == 64 \
                and _is_plain_gpr(gops[1]) \
                and isinstance(gops[2], Extended) \
                and gops[2].kind == "uxtw" and not gops[2].amount \
                and _is_plain_gpr(gops[2].reg):
            g_d = gops[0].index
            base_i = gops[1].index
            g_s = gops[2].reg.index
            aops = access.operands
            ab = access.base
            if ab in ("br", "blr", "ret"):
                reg = aops[0] if aops else LR
                if _is_plain_gpr(reg) and reg.index == g_d:
                    link = pc + 8 if ab == "blr" else None
                    fused_exec = _t_fused_guard_branch(cpu, regs, g_d, g_s,
                                                       base_i, link)
                    kind = K_FUSED_BRANCH
            elif (ab in _UNSIGNED_LOADS or ab in _SIGNED_LOADS
                    or ab in _SIMPLE_STORES) and len(aops) == 2 \
                    and isinstance(aops[1], Mem):
                rt, memop = aops
                form = self._mem_form(memop)
                if form is not None and form[0] == "imm" \
                        and not form[2] and form[1] == g_d \
                        and not rt.is_vector:
                    imm = form[3]
                    size = access_bytes(access)
                    is_store = ab in _SIMPLE_STORES
                    if is_store and (rt.is_zero or _is_plain_gpr(rt)):
                        t = 0 if rt.is_zero else rt.index
                        fused_exec = _t_fused_guard_store(
                            regs, mem.write, g_d, g_s, t, imm, size,
                            base_i, rt.is_zero)
                        kind = K_FUSED_MEM
                    elif not is_store and _is_plain_gpr(rt):
                        fused_exec = _t_fused_guard_load(
                            regs, mem.read, g_d, g_s, rt.index, imm, size,
                            _SIGNED_LOADS.get(ab), rt.bits, base_i)
                        kind = K_FUSED_MEM

        # Pattern 2: offset fold  add/sub wD, wS, #imm  +
        #            op [Xb, wD, uxtw]  (Table 3 rows 2, 5-7).
        elif guard.mnemonic in ("add", "sub") and len(gops) == 3 \
                and _is_plain_gpr(gops[0]) and gops[0].bits == 32 \
                and _is_plain_gpr(gops[1]) and gops[1].bits == 32 \
                and isinstance(gops[2], Imm):
            o_d = gops[0].index
            o_s = gops[1].index
            o_imm = gops[2].value & MASK32
            o_sub = guard.mnemonic == "sub"
            aops = access.operands
            ab = access.base
            if (ab in _UNSIGNED_LOADS or ab in _SIGNED_LOADS
                    or ab in _SIMPLE_STORES) and len(aops) == 2 \
                    and isinstance(aops[1], Mem):
                rt, memop = aops
                form = self._mem_form(memop)
                if form is not None and form[0] == "uxtw" \
                        and form[4] == o_d and not rt.is_vector:
                    base_i = form[1]
                    size = access_bytes(access)
                    is_store = ab in _SIMPLE_STORES
                    if is_store and (rt.is_zero or _is_plain_gpr(rt)):
                        t = 0 if rt.is_zero else rt.index
                        fused_exec = _t_fused_offset_store(
                            regs, mem.write, o_d, o_s, o_imm, o_sub, t,
                            size, base_i, rt.is_zero)
                        kind = K_FUSED_MEM
                    elif not is_store and _is_plain_gpr(rt):
                        fused_exec = _t_fused_offset_load(
                            regs, mem.read, o_d, o_s, o_imm, o_sub,
                            rt.index, size, _SIGNED_LOADS.get(ab),
                            rt.bits, base_i)
                        kind = K_FUSED_MEM

        # Pattern 3: sp guard pair  mov wD, wsp + add sp, Xb, XD.
        elif guard.mnemonic == "mov" and len(gops) == 2 \
                and _is_plain_gpr(gops[0]) and gops[0].bits == 32 \
                and isinstance(gops[1], Reg) and gops[1].is_sp \
                and gops[1].bits == 32:
            w_d = gops[0].index
            aops = access.operands
            if access.mnemonic == "add" and len(aops) == 3 \
                    and isinstance(aops[0], Reg) and aops[0].is_sp \
                    and _is_plain_gpr(aops[1]):
                src = aops[2]
                src_reg = src.reg if isinstance(src, Extended) else src
                src_ok = isinstance(src, Reg) and _is_plain_gpr(src) \
                    and src.bits == 64
                if isinstance(src, Extended):
                    src_ok = src.kind in ("uxtx", "lsl") \
                        and not src.amount and _is_plain_gpr(src.reg) \
                        and src.reg.bits == 64
                if src_ok and src_reg.index == w_d:
                    fused_exec = _t_fused_sp_guard(cpu, regs, w_d,
                                                   aops[1].index)
                    kind = K_FUSED_SIMPLE

        if fused_exec is None:
            return None
        g_icost, g_lat, g_uses, g_defs = self._cost_entry(guard)
        a_icost, a_lat, a_uses, a_defs = self._cost_entry(access)
        fused_info = (g_icost, g_lat, g_uses, g_defs, pc + 4)
        return (kind, fused_exec, pc, a_icost, a_lat, a_uses, a_defs,
                fused_info)
